#include "resolver/health.hpp"

namespace dnsboot::resolver {

std::string to_string(CircuitState state) {
  switch (state) {
    case CircuitState::kClosed: return "closed";
    case CircuitState::kOpen: return "open";
    case CircuitState::kHalfOpen: return "half-open";
  }
  return "?";
}

void ServerHealthTracker::open_circuit(Entry& e, net::SimTime now,
                                       bool reopen) {
  e.state = CircuitState::kOpen;
  e.opened_at = now;
  e.half_open_successes = 0;
  if (reopen) {
    ++stats_.circuit_reopens;
  } else {
    ++stats_.circuit_opens;
  }
}

void ServerHealthTracker::observe_loss(Entry& e, double sample) {
  if (!e.has_loss) {
    e.ewma_loss = sample;
    e.has_loss = true;
  } else {
    e.ewma_loss += options_.ewma_alpha * (sample - e.ewma_loss);
  }
}

bool ServerHealthTracker::allow(const net::IpAddress& server,
                                net::SimTime now) {
  if (!options_.enable_circuit_breaker) return true;
  Entry& e = entry(server);
  switch (e.state) {
    case CircuitState::kClosed:
      return true;
    case CircuitState::kOpen:
      if (now < e.opened_at + options_.open_cooldown) {
        ++stats_.fail_fast;
        return false;
      }
      e.state = CircuitState::kHalfOpen;
      e.half_open_successes = 0;
      [[fallthrough]];
    case CircuitState::kHalfOpen:
      ++stats_.half_open_probes;
      return true;
  }
  return true;
}

void ServerHealthTracker::record_success(const net::IpAddress& server,
                                         net::SimTime now, net::SimTime rtt) {
  Entry& e = entry(server);
  e.consecutive_failures = 0;
  if (!e.has_rtt) {
    e.ewma_rtt = static_cast<double>(rtt);
    e.has_rtt = true;
  } else {
    e.ewma_rtt += options_.ewma_alpha * (static_cast<double>(rtt) - e.ewma_rtt);
  }
  observe_loss(e, 0.0);
  if (e.state == CircuitState::kHalfOpen &&
      ++e.half_open_successes >= options_.half_open_successes) {
    e.state = CircuitState::kClosed;
    ++stats_.circuit_closes;
  }
  // A success while kOpen is a late answer to a pre-open query; the breaker
  // still waits out its cooldown.
  (void)now;
}

void ServerHealthTracker::record_failure(const net::IpAddress& server,
                                         net::SimTime now) {
  Entry& e = entry(server);
  observe_loss(e, 1.0);
  if (!options_.enable_circuit_breaker) return;
  if (e.state == CircuitState::kHalfOpen) {
    open_circuit(e, now, /*reopen=*/true);
    return;
  }
  if (e.state == CircuitState::kOpen) return;
  if (++e.consecutive_failures >= options_.failure_threshold) {
    open_circuit(e, now, /*reopen=*/false);
  }
}

void ServerHealthTracker::record_servfail(const net::IpAddress& server,
                                          const dns::Name& qname,
                                          dns::RRType qtype,
                                          net::SimTime now) {
  if (!options_.enable_servfail_cache) return;
  servfail_cache_[{server, qname.canonical_text(), qtype}] =
      now + options_.servfail_ttl;
  ++stats_.servfail_cached;
}

bool ServerHealthTracker::servfail_cached(const net::IpAddress& server,
                                          const dns::Name& qname,
                                          dns::RRType qtype,
                                          net::SimTime now) {
  if (!options_.enable_servfail_cache) return false;
  auto it = servfail_cache_.find({server, qname.canonical_text(), qtype});
  if (it == servfail_cache_.end()) return false;
  if (now >= it->second) {
    servfail_cache_.erase(it);
    return false;
  }
  ++stats_.servfail_cache_hits;
  return true;
}

CircuitState ServerHealthTracker::state(const net::IpAddress& server) const {
  auto it = servers_.find(server);
  return it == servers_.end() ? CircuitState::kClosed : it->second.state;
}

double ServerHealthTracker::ewma_rtt(const net::IpAddress& server) const {
  auto it = servers_.find(server);
  return it == servers_.end() ? 0.0 : it->second.ewma_rtt;
}

double ServerHealthTracker::ewma_loss(const net::IpAddress& server) const {
  auto it = servers_.find(server);
  return it == servers_.end() ? 0.0 : it->second.ewma_loss;
}

}  // namespace dnsboot::resolver
