#include "resolver/query_engine.hpp"

#include <algorithm>
#include <cmath>

namespace dnsboot::resolver {

QueryEngine::QueryEngine(net::Transport& network,
                         net::IpAddress local_address,
                         QueryEngineOptions options)
    : network_(network),
      local_address_(local_address),
      options_(options),
      health_(options.health),
      rng_(options.seed) {
  network_.bind(local_address_,
                [this](const net::Datagram& dgram) { handle_datagram(dgram); });
}

std::uint16_t QueryEngine::allocate_id() {
  if (options_.randomize_ids) {
    // Random 16-bit IDs (RFC 5452 §9.2): an off-path spoofer has to win a
    // 1-in-65535 lottery per candidate. A few draws before the sequential
    // fallback: the scanner bounds concurrency well below 65k, so a
    // collision is already rare at the first draw.
    for (int tries = 0; tries < 64; ++tries) {
      auto id = static_cast<std::uint16_t>(rng_.next_below(0x10000));
      if (id != 0 && pending_.find(id) == pending_.end()) return id;
    }
  }
  for (int tries = 0; tries < 0x10000; ++tries) {
    std::uint16_t id = next_id_++;
    if (id != 0 && pending_.find(id) == pending_.end()) return id;
  }
  return 0;  // exhausted (callers treat as overload)
}

std::string QueryEngine::question_key(const net::IpAddress& server,
                                      const dns::Name& qname,
                                      dns::RRType qtype) {
  return server.to_text() + "|" + qname.canonical_text() + "|" +
         dns::to_string(qtype);
}

void QueryEngine::index_question(std::uint16_t id, const Pending& p) {
  pending_by_question_.emplace(question_key(p.server, p.qname, p.qtype), id);
}

void QueryEngine::unindex_question(std::uint16_t id, const Pending& p) {
  auto it = pending_by_question_.find(question_key(p.server, p.qname, p.qtype));
  if (it != pending_by_question_.end() && it->second == id) {
    pending_by_question_.erase(it);
  }
}

void QueryEngine::mark_under_attack(const net::IpAddress& server) {
  if (under_attack_.insert(server).second) ++defense_.servers_marked;
}

void QueryEngine::count_forged_candidate(std::uint16_t id, Pending& p) {
  ++defense_.forged_rejected;
  ++p.forged_candidates;
  if (options_.forgery_abort_threshold <= 0 || p.forgery_aborted) return;
  if (p.forged_candidates < options_.forgery_abort_threshold) return;
  // Birthday attack in progress: someone is sweeping candidates at this
  // exact question. Stop racing the attacker on UDP — re-issue over TCP,
  // which an off-path spoofer cannot join (RFC 5452 §9.3).
  p.forgery_aborted = true;
  mark_under_attack(p.server);
  ++defense_.forgery_aborts;
  if (!p.use_tcp) {
    network_.cancel(p.timeout_timer);
    p.use_tcp = true;
    ++p.attempts_left;  // the defensive re-query is not a lost attempt
    send_attempt(id);
  }
}

void QueryEngine::note_forged_candidate(const net::Datagram& dgram,
                                        const dns::Message& message) {
  // A rejected response naming a question we do have in flight (from the
  // address we asked) is a spoof-sweep candidate against that query.
  if (message.questions.size() != 1) return;
  auto it = pending_by_question_.find(question_key(
      dgram.source, message.questions[0].name, message.questions[0].type));
  if (it == pending_by_question_.end()) return;
  auto entry = pending_.find(it->second);
  if (entry == pending_.end()) return;
  count_forged_candidate(entry->first, entry->second);
}

net::SimTime QueryEngine::attempt_timeout(int attempt) const {
  double t = static_cast<double>(options_.timeout) *
             std::pow(options_.timeout_multiplier, attempt);
  t = std::min(t, static_cast<double>(options_.timeout_cap));
  return std::max<net::SimTime>(1, static_cast<net::SimTime>(t));
}

net::SimTime QueryEngine::next_backoff(Pending& p) {
  if (options_.backoff_base == 0) return 0;
  // Decorrelated jitter: delay = min(cap, uniform(base, 3 * prev)).
  net::SimTime prev = std::max(p.prev_backoff, options_.backoff_base);
  net::SimTime upper = 3 * prev;
  net::SimTime delay = options_.backoff_base;
  if (upper > options_.backoff_base) {
    delay += rng_.next_below(upper - options_.backoff_base);
  }
  delay = std::min(delay, options_.backoff_cap);
  p.prev_backoff = delay;
  return delay;
}

bool QueryEngine::retry_budget_available() const {
  if (options_.retry_budget_ratio <= 0) return true;
  std::uint64_t budget = std::max<std::uint64_t>(
      options_.retry_budget_floor,
      static_cast<std::uint64_t>(options_.retry_budget_ratio *
                                 static_cast<double>(stats_.queries)));
  return stats_.retries < budget;
}

void QueryEngine::query(const net::IpAddress& server, const dns::Name& qname,
                        dns::RRType qtype, Callback callback) {
  ++stats_.queries;
  // Fail-fast paths deliver their error through a zero-delay event rather
  // than synchronously: a caller that issues the next query from its error
  // callback would otherwise recurse once per fast-failing query.
  auto fail = [this](Callback cb, Error error) {
    network_.schedule(0, [cb = std::move(cb), error = std::move(error)] {
      cb(std::move(error));
    });
  };
  // RFC 9520: repeated identical questions against a SERVFAILing server are
  // answered from the negative cache without touching the wire.
  if (health_.servfail_cached(server, qname, qtype, network_.now())) {
    ++stats_.servfail_cache_hits;
    fail(std::move(callback),
         Error{"query.servfail_cached",
               "server recently answered SERVFAIL for this question"});
    return;
  }
  // Open circuit: fail fast instead of burning attempts on a dead server.
  if (!health_.allow(server, network_.now())) {
    ++stats_.fail_fast;
    fail(std::move(callback),
         Error{"query.circuit_open",
               "server circuit breaker is open (consecutive failures)"});
    return;
  }
  std::uint16_t id = allocate_id();
  if (id == 0) {
    fail(std::move(callback), Error{"query.overload", "no free query ids"});
    return;
  }
  Pending pending;
  pending.server = server;
  pending.qname = qname;
  pending.qtype = qtype;
  pending.callback = std::move(callback);
  pending.attempts_left = options_.attempts;
  pending.issued_at = network_.now();
  pending.traced = options_.tracer != nullptr && options_.tracer->sample();
  // One randomized source port per logical query (kept across retries so a
  // late authentic answer to an earlier attempt still matches). Only drawn
  // on transports that model ports; the kernel does this for the wire.
  if (options_.randomize_ports && network_.models_ports()) {
    pending.sport =
        static_cast<std::uint16_t>(49152 + rng_.next_below(16384));
  }
  auto [entry, inserted] = pending_.emplace(id, std::move(pending));
  index_question(id, entry->second);
  send_attempt(id);
}

void QueryEngine::send_attempt(std::uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;

  // Backoff applies between attempts, never before the first.
  net::SimTime backoff = p.attempt > 0 ? next_backoff(p) : 0;
  net::SimTime timeout = attempt_timeout(p.attempt);
  ++p.attempt;
  --p.attempts_left;

  // Pace sends per destination: the next slot is 1/qps after the previous.
  net::SimTime interval =
      static_cast<net::SimTime>(1e6 / options_.per_server_qps);
  net::SimTime& next_free = next_free_[p.server];
  net::SimTime send_at = std::max(network_.now() + backoff, next_free);
  next_free = send_at + interval;
  net::SimTime delay = send_at - network_.now();

  dns::Message query = dns::Message::make_query(id, p.qname, p.qtype);
  Bytes wire = query.encode();
  // The closure fires exactly once, so the payload can be moved into the
  // network instead of copied per send.
  network_.schedule(delay, [this, id, wire = std::move(wire)]() mutable {
    auto entry = pending_.find(id);
    if (entry == pending_.end()) return;  // answered while queued
    ++stats_.sends;
    entry->second.sent_at = network_.now();
    net::Datagram dgram;
    dgram.source = local_address_;
    dgram.destination = entry->second.server;
    dgram.payload = std::move(wire);
    dgram.tcp = entry->second.use_tcp;
    if (entry->second.sport != 0) {
      dgram.source_port = entry->second.sport;
      dgram.destination_port = 53;
    }
    network_.send(std::move(dgram));
  });
  p.timeout_timer = network_.schedule(delay + timeout,
                                      [this, id] { handle_timeout(id); });
}

void QueryEngine::finish(std::uint16_t id, Result<dns::Message> result) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  network_.cancel(it->second.timeout_timer);
  if (it->second.traced) {
    // One span per sampled logical query: issue → final callback, covering
    // every retry and the TCP fallback in between.
    obs::TraceSpan span;
    span.kind = "query";
    span.name = it->second.qname.to_text() + " " +
                dns::to_string(it->second.qtype);
    span.detail = it->second.server.to_text();
    span.start_usec = it->second.issued_at;
    span.end_usec = network_.now();
    span.attempts = static_cast<std::uint64_t>(it->second.attempt);
    span.status = result.ok() ? (it->second.use_tcp ? "ok_tcp" : "ok")
                              : result.error().code;
    options_.tracer->record(std::move(span));
  }
  Callback callback = std::move(it->second.callback);
  unindex_question(id, it->second);
  pending_.erase(it);
  callback(std::move(result));
}

void QueryEngine::handle_timeout(std::uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  health_.record_failure(it->second.server, network_.now());
  if (it->second.attempts_left > 0) {
    if (retry_budget_available()) {
      ++stats_.retries;
      send_attempt(id);
      return;
    }
    ++stats_.budget_denied;
  }
  ++stats_.timeouts;
  finish(id, Error{"query.timeout", "no response after all attempts"});
}

void QueryEngine::handle_datagram(const net::Datagram& dgram) {
  auto message = dns::Message::decode(dgram.payload);
  if (!message.ok()) {
    ++stats_.mismatched;
    ++defense_.malformed_rejected;
    return;
  }
  if (!message->header.qr) {
    ++stats_.mismatched;
    return;
  }
  auto it = pending_.find(message->header.id);
  if (it == pending_.end()) {
    ++stats_.mismatched;
    // No pending ID — but if the question is one we have in flight, this is
    // a wrong-ID candidate from a spoof sweep; count it against that query.
    note_forged_candidate(dgram, *message);
    return;
  }
  // Guard against spoofed/crossed answers: source and question must match.
  // With a wrapped ID space this tuple check is what keeps a stale duplicate
  // from completing an unrelated fresh query that reused the ID.
  Pending& p = it->second;
  if (dgram.source != p.server || message->questions.size() != 1 ||
      !(message->questions[0].name == p.qname) ||
      message->questions[0].type != p.qtype) {
    ++stats_.mismatched;
    note_forged_candidate(dgram, *message);
    return;
  }
  // Source-port check (RFC 5452 §4.5): the answer must come back to the
  // port the query left from. Enforceable only when the transport models
  // ports; the kernel does this for real sockets, so 0 skips the check.
  if (dgram.destination_port != 0 && p.sport != 0 &&
      dgram.destination_port != p.sport) {
    ++stats_.mismatched;
    ++defense_.port_rejected;
    if (options_.port_mismatch_mark_threshold > 0 &&
        ++port_mismatches_[p.server] >=
            options_.port_mismatch_mark_threshold) {
      mark_under_attack(p.server);
    }
    count_forged_candidate(it->first, p);
    return;
  }
  if (message->header.tc) {
    if (!p.use_tcp) {
      // Truncated UDP answer: retry the same query over TCP (RFC 1035
      // §4.2.2).
      ++stats_.tcp_fallbacks;
      network_.cancel(p.timeout_timer);
      p.use_tcp = true;
      ++p.attempts_left;  // the TCP retry is not a lost attempt
      send_attempt(message->header.id);
      return;
    }
    if (!dgram.tcp) {
      // A duplicate of the truncated UDP answer arriving after the TCP
      // fallback started; completing the query with it would hand the
      // caller an empty message.
      ++stats_.mismatched;
      return;
    }
    // A TCP answer that is still truncated can never resolve: fail the
    // query instead of looping.
    ++stats_.truncation_loops;
    health_.record_failure(p.server, network_.now());
    finish(message->header.id,
           Error{"query.truncation_loop", "TCP response still truncated"});
    return;
  }
  ++stats_.responses;
  // Ground-truth accounting, never a gate: a crafted datagram that got this
  // far beat every defense. The adversarial acceptance criterion is that
  // this counter stays 0 under the off-path preset.
  if (dgram.injected) ++defense_.accepted_forgeries;
  net::SimTime rtt =
      network_.now() >= p.sent_at ? network_.now() - p.sent_at : 0;
  rtt_histogram_.observe(rtt);
  if (message->header.rcode == dns::Rcode::kServFail) {
    // SERVFAIL is an answer to the caller but a failure signal for health
    // tracking (RFC 9520).
    health_.record_servfail(p.server, p.qname, p.qtype, network_.now());
    health_.record_failure(p.server, network_.now());
  } else {
    health_.record_success(p.server, network_.now(), rtt);
  }
  finish(message->header.id, std::move(message).take());
}

}  // namespace dnsboot::resolver
