#include "resolver/query_engine.hpp"

namespace dnsboot::resolver {

QueryEngine::QueryEngine(net::SimNetwork& network,
                         net::IpAddress local_address,
                         QueryEngineOptions options)
    : network_(network),
      local_address_(local_address),
      options_(options) {
  network_.bind(local_address_,
                [this](const net::Datagram& dgram) { handle_datagram(dgram); });
}

std::uint16_t QueryEngine::allocate_id() {
  // Find a free 16-bit ID; the scanner bounds concurrency well below 65k.
  for (int tries = 0; tries < 0x10000; ++tries) {
    std::uint16_t id = next_id_++;
    if (id != 0 && pending_.find(id) == pending_.end()) return id;
  }
  return 0;  // exhausted (callers treat as overload)
}

void QueryEngine::query(const net::IpAddress& server, const dns::Name& qname,
                        dns::RRType qtype, Callback callback) {
  ++stats_.queries;
  std::uint16_t id = allocate_id();
  if (id == 0) {
    callback(Error{"query.overload", "no free query ids"});
    return;
  }
  Pending pending;
  pending.server = server;
  pending.qname = qname;
  pending.qtype = qtype;
  pending.callback = std::move(callback);
  pending.attempts_left = options_.attempts;
  pending_.emplace(id, std::move(pending));
  send_attempt(id);
}

void QueryEngine::send_attempt(std::uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  --p.attempts_left;

  // Pace sends per destination: the next slot is 1/qps after the previous.
  net::SimTime interval =
      static_cast<net::SimTime>(1e6 / options_.per_server_qps);
  net::SimTime& next_free = next_free_[p.server];
  net::SimTime send_at = std::max(network_.now(), next_free);
  next_free = send_at + interval;
  net::SimTime delay = send_at - network_.now();

  dns::Message query = dns::Message::make_query(id, p.qname, p.qtype);
  Bytes wire = query.encode();
  network_.schedule(delay, [this, id, wire = std::move(wire)] {
    auto entry = pending_.find(id);
    if (entry == pending_.end()) return;  // answered while queued
    ++stats_.sends;
    network_.send(local_address_, entry->second.server, wire,
                  entry->second.use_tcp);
  });
  p.timeout_timer = network_.schedule(delay + options_.timeout,
                                      [this, id] { handle_timeout(id); });
}

void QueryEngine::handle_timeout(std::uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  if (it->second.attempts_left > 0) {
    ++stats_.retries;
    send_attempt(id);
    return;
  }
  ++stats_.timeouts;
  Callback callback = std::move(it->second.callback);
  pending_.erase(it);
  callback(Error{"query.timeout", "no response after all attempts"});
}

void QueryEngine::handle_datagram(const net::Datagram& dgram) {
  auto message = dns::Message::decode(dgram.payload);
  if (!message.ok()) {
    ++stats_.mismatched;
    return;
  }
  auto it = pending_.find(message->header.id);
  if (it == pending_.end() || !message->header.qr) {
    ++stats_.mismatched;
    return;
  }
  // Guard against spoofed/crossed answers: source and question must match.
  const Pending& p = it->second;
  if (dgram.source != p.server || message->questions.size() != 1 ||
      !(message->questions[0].name == p.qname) ||
      message->questions[0].type != p.qtype) {
    ++stats_.mismatched;
    return;
  }
  // Truncated UDP answer: retry the same query over TCP (RFC 1035 §4.2.2).
  if (message->header.tc && !p.use_tcp) {
    ++stats_.tcp_fallbacks;
    network_.cancel(p.timeout_timer);
    it->second.use_tcp = true;
    ++it->second.attempts_left;  // the TCP retry is not a lost attempt
    send_attempt(message->header.id);
    return;
  }
  ++stats_.responses;
  network_.cancel(p.timeout_timer);
  Callback callback = std::move(it->second.callback);
  pending_.erase(it);
  callback(std::move(message).take());
}

}  // namespace dnsboot::resolver
