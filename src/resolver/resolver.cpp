#include "resolver/resolver.hpp"

#include <memory>

namespace dnsboot::resolver {
namespace {

constexpr int kMaxDepth = 8;

}  // namespace

DelegationResolver::DelegationResolver(QueryEngine& engine, RootHints hints)
    : engine_(engine), hints_(std::move(hints)) {}

std::optional<DelegationResolver::Referral>
DelegationResolver::extract_referral(const dns::Message& response,
                                     const dns::Name& parent) {
  if (response.header.aa) return std::nullopt;
  if (response.header.rcode != dns::Rcode::kNoError) return std::nullopt;

  Referral ref;
  bool found_ns = false;
  for (const auto& rr : response.authorities) {
    if (rr.type != dns::RRType::kNS) continue;
    if (!rr.name.is_strictly_under(parent)) continue;
    if (!found_ns) {
      ref.cut = rr.name;
      found_ns = true;
    }
    if (rr.name == ref.cut) {
      ref.ns_names.push_back(std::get<dns::NsRdata>(rr.rdata).nsdname);
    }
  }
  if (!found_ns) return std::nullopt;

  // Parent-side DS (+ RRSIGs) travels in the referral's authority section.
  for (const auto& rr : response.authorities) {
    if (rr.name != ref.cut) continue;
    if (rr.type == dns::RRType::kDS) {
      if (ref.ds.rrset.rdatas.empty()) {
        ref.ds.rrset.name = rr.name;
        ref.ds.rrset.type = dns::RRType::kDS;
        ref.ds.rrset.klass = rr.klass;
        ref.ds.rrset.ttl = rr.ttl;
      }
      ref.ds.rrset.rdatas.push_back(rr.rdata);
    } else if (rr.type == dns::RRType::kRRSIG) {
      const auto& sig = std::get<dns::RrsigRdata>(rr.rdata);
      if (sig.type_covered == dns::RRType::kDS) {
        ref.ds.signatures.push_back(sig);
      }
    }
  }

  // Glue.
  for (const auto& rr : response.additionals) {
    net::IpAddress address;
    if (rr.type == dns::RRType::kA) {
      const auto& a = std::get<dns::ARdata>(rr.rdata);
      address = net::IpAddress::v4(a.address);
    } else if (rr.type == dns::RRType::kAAAA) {
      const auto& a = std::get<dns::AaaaRdata>(rr.rdata);
      address = net::IpAddress::v6(a.address);
    } else {
      continue;
    }
    for (const auto& ns : ref.ns_names) {
      if (rr.name == ns) {
        ref.glue.push_back(NsEndpoint{ns, address});
        break;
      }
    }
  }
  return ref;
}

namespace {

// One iterative walk from the root towards qname. Owns its own retry/descend
// state; completes via exactly one of the two callbacks.
struct WalkTask : std::enable_shared_from_this<WalkTask> {
  DelegationResolver* resolver = nullptr;
  QueryEngine* engine = nullptr;
  dns::Name qname;
  dns::RRType qtype = dns::RRType::kSOA;
  std::optional<dns::Name> stop_at;  // stop when a referral cuts exactly here
  std::vector<net::IpAddress> servers;
  std::size_t server_index = 0;
  dns::Name parent;  // zone the current servers are authoritative for
  int depth = 0;
  // (response-or-error, answering server, zone it serves)
  std::function<void(Result<dns::Message>, net::IpAddress, dns::Name)>
      on_terminal;
  std::function<void(DelegationResolver::Referral, dns::Name)> on_stop;
  std::function<void(const dns::Name&, int,
                     DelegationResolver::HostCallback)>
      resolve_host_fn;

  void start() { try_server(); }

  void try_server() {
    if (server_index >= servers.size()) {
      on_terminal(Error{"resolve.unreachable",
                        "no server for " + parent.to_text() + " answered"},
                  net::IpAddress{}, parent);
      return;
    }
    net::IpAddress server = servers[server_index];
    auto self = shared_from_this();
    engine->query(server, qname, qtype,
                  [self, server](Result<dns::Message> result) {
                    self->handle(std::move(result), server);
                  });
  }

  void handle(Result<dns::Message> result, net::IpAddress server) {
    if (!result.ok()) {
      ++server_index;
      try_server();
      return;
    }
    dns::Message response = std::move(result).take();
    if (response.header.rcode == dns::Rcode::kServFail ||
        response.header.rcode == dns::Rcode::kRefused ||
        response.header.rcode == dns::Rcode::kFormErr) {
      ++server_index;
      try_server();
      return;
    }
    auto referral = DelegationResolver::extract_referral(response, parent);
    if (!referral.has_value()) {
      on_terminal(std::move(response), server, parent);
      return;
    }
    if (stop_at.has_value() && referral->cut == *stop_at) {
      on_stop(std::move(*referral), parent);
      return;
    }
    if (depth >= kMaxDepth) {
      on_terminal(Error{"resolve.too_deep", qname.to_text()},
                  net::IpAddress{}, parent);
      return;
    }
    descend_into(std::move(*referral));
  }

  void descend_into(DelegationResolver::Referral referral) {
    parent = referral.cut;
    ++depth;
    server_index = 0;
    if (!referral.glue.empty()) {
      servers.clear();
      for (const auto& endpoint : referral.glue) {
        servers.push_back(endpoint.address);
      }
      try_server();
      return;
    }
    // Glueless referral: resolve NS hostnames one at a time until one works.
    resolve_ns_list(std::make_shared<std::vector<dns::Name>>(
                        std::move(referral.ns_names)),
                    0);
  }

  void resolve_ns_list(std::shared_ptr<std::vector<dns::Name>> ns_names,
                       std::size_t index) {
    if (index >= ns_names->size()) {
      on_terminal(Error{"resolve.glueless_dead_end",
                        "no NS of " + parent.to_text() + " resolvable"},
                  net::IpAddress{}, parent);
      return;
    }
    auto self = shared_from_this();
    resolve_host_fn((*ns_names)[index], depth,
                    [self, ns_names, index](
                        Result<std::vector<net::IpAddress>> addresses) {
                      if (addresses.ok() && !addresses->empty()) {
                        self->servers = std::move(addresses).take();
                        self->server_index = 0;
                        self->try_server();
                      } else {
                        self->resolve_ns_list(ns_names, index + 1);
                      }
                    });
  }
};

}  // namespace

void DelegationResolver::resolve_host(const dns::Name& host,
                                      HostCallback callback) {
  // Public entry: depth 0.
  struct Impl {
    static void run(DelegationResolver* self, const dns::Name& host, int depth,
                    HostCallback callback) {
      const std::string key = host.canonical_text();
      auto cached = self->host_cache_.find(key);
      if (cached != self->host_cache_.end()) {
        ++self->cache_hits_;
        callback(cached->second);
        return;
      }
      ++self->cache_misses_;
      auto waiting = self->host_waiters_.find(key);
      if (waiting != self->host_waiters_.end()) {
        waiting->second.push_back(std::move(callback));
        return;
      }
      if (depth >= kMaxDepth) {
        callback(Error{"resolve.too_deep", host.to_text()});
        return;
      }
      self->host_waiters_[key].push_back(std::move(callback));

      auto finish = [self, key](std::vector<net::IpAddress> addresses) {
        self->host_cache_[key] = addresses;
        auto waiters = std::move(self->host_waiters_[key]);
        self->host_waiters_.erase(key);
        for (auto& cb : waiters) cb(addresses);
      };

      auto task = std::make_shared<WalkTask>();
      task->resolver = self;
      task->engine = &self->engine_;
      task->qname = host;
      task->qtype = dns::RRType::kA;
      task->servers = self->hints_.servers;
      task->parent = dns::Name::root();
      task->depth = depth;
      task->resolve_host_fn = [self](const dns::Name& h, int d,
                                     HostCallback cb) {
        Impl::run(self, h, d + 1, std::move(cb));
      };
      task->on_stop = [](DelegationResolver::Referral, dns::Name) {};
      task->on_terminal = [self, host, finish](Result<dns::Message> result,
                                               net::IpAddress server,
                                               dns::Name) {
        if (!result.ok() ||
            result->header.rcode != dns::Rcode::kNoError) {
          finish({});
          return;
        }
        auto addresses = std::make_shared<std::vector<net::IpAddress>>();
        for (const auto& rr : result->answers_of(host, dns::RRType::kA)) {
          addresses->push_back(
              net::IpAddress::v4(std::get<dns::ARdata>(rr.rdata).address));
        }
        // Follow up with AAAA at the same (authoritative) server.
        self->engine_.query(
            server, host, dns::RRType::kAAAA,
            [host, finish, addresses](Result<dns::Message> v6) {
              if (v6.ok() && v6->header.rcode == dns::Rcode::kNoError) {
                for (const auto& rr :
                     v6->answers_of(host, dns::RRType::kAAAA)) {
                  addresses->push_back(net::IpAddress::v6(
                      std::get<dns::AaaaRdata>(rr.rdata).address));
                }
              }
              finish(*addresses);
            });
      };
      task->start();
    }
  };
  Impl::run(this, host, 0, std::move(callback));
}

void DelegationResolver::finish_delegation(Delegation base,
                                           DelegationCallback callback) {
  // Resolve every NS hostname; glue already in `endpoints`.
  auto state = std::make_shared<Delegation>(std::move(base));
  auto remaining = std::make_shared<std::size_t>(0);
  auto cb = std::make_shared<DelegationCallback>(std::move(callback));

  std::vector<dns::Name> to_resolve;
  for (const auto& ns : state->ns_names) {
    bool have_glue = false;
    for (const auto& endpoint : state->endpoints) {
      if (endpoint.ns == ns) {
        have_glue = true;
        break;
      }
    }
    if (!have_glue) to_resolve.push_back(ns);
  }
  if (to_resolve.empty()) {
    (*cb)(std::move(*state));
    return;
  }
  *remaining = to_resolve.size();
  for (const auto& ns : to_resolve) {
    resolve_host(ns, [state, remaining, cb,
                      ns](Result<std::vector<net::IpAddress>> addresses) {
      if (addresses.ok() && !addresses->empty()) {
        for (const auto& address : addresses.value()) {
          state->endpoints.push_back(NsEndpoint{ns, address});
        }
      } else {
        state->unresolved_ns.push_back(ns);
      }
      if (--*remaining == 0) (*cb)(std::move(*state));
    });
  }
}

void DelegationResolver::resolve_zone(const dns::Name& zone,
                                      DelegationCallback callback) {
  auto cb = std::make_shared<DelegationCallback>(std::move(callback));
  auto task = std::make_shared<WalkTask>();
  task->resolver = this;
  task->engine = &engine_;
  task->qname = zone;
  task->qtype = dns::RRType::kSOA;
  task->stop_at = zone;
  task->servers = hints_.servers;
  task->parent = dns::Name::root();
  task->resolve_host_fn = [this](const dns::Name& h, int,
                                 HostCallback hcb) {
    resolve_host(h, std::move(hcb));
  };
  task->on_stop = [this, zone, cb](Referral referral, dns::Name parent) {
    Delegation delegation;
    delegation.zone = zone;
    delegation.parent = parent;
    delegation.ns_names = referral.ns_names;
    delegation.ds = std::move(referral.ds);
    delegation.endpoints = std::move(referral.glue);
    finish_delegation(std::move(delegation), [cb](Result<Delegation> result) {
      (*cb)(std::move(result));
    });
  };
  task->on_terminal = [zone, cb](Result<dns::Message> result, net::IpAddress,
                                 dns::Name) {
    if (!result.ok()) {
      (*cb)(result.error());
      return;
    }
    if (result->header.rcode == dns::Rcode::kNxDomain) {
      (*cb)(Error{"resolve.nxdomain", zone.to_text()});
      return;
    }
    (*cb)(Error{"resolve.not_delegated",
                zone.to_text() + " answered without a delegation"});
  };
  task->start();
}

}  // namespace dnsboot::resolver
