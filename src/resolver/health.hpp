// ServerHealthTracker — per-nameserver health state for the resilient query
// engine: an EWMA of RTT and loss, a consecutive-failure circuit breaker
// with a probing half-open state, and RFC 9520-style negative caching of
// SERVFAIL responses.
//
// The tracker exists so a chaos scan stops hammering dead or wedged servers:
// ZDNS-style retry discipline says the fastest way to finish a hostile scan
// is to give up quickly on endpoints that demonstrably cannot answer.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <unordered_map>

#include "dns/message.hpp"
#include "net/transport.hpp"

namespace dnsboot::resolver {

enum class CircuitState { kClosed, kOpen, kHalfOpen };

std::string to_string(CircuitState state);

struct HealthOptions {
  // Circuit breaker: after `failure_threshold` consecutive failures the
  // circuit opens and queries fail fast; after `open_cooldown` it half-opens
  // and lets probe queries through; `half_open_successes` successful probes
  // close it again, one failed probe re-opens it. Off by default — the seed
  // retry policy is preserved unless a caller opts in.
  bool enable_circuit_breaker = false;
  int failure_threshold = 5;
  net::SimTime open_cooldown = 5 * net::kSecond;
  int half_open_successes = 2;

  // RFC 9520 §3: resolvers MUST cache resolution failures; repeated
  // identical (server, qname, qtype) SERVFAILs within the TTL are answered
  // from cache without touching the wire.
  bool enable_servfail_cache = false;
  net::SimTime servfail_ttl = 5 * net::kSecond;

  // EWMA smoothing factor for RTT and loss estimates.
  double ewma_alpha = 0.2;
};

struct HealthStats {
  std::uint64_t circuit_opens = 0;
  std::uint64_t circuit_reopens = 0;     // half-open probe failed
  std::uint64_t circuit_closes = 0;
  std::uint64_t half_open_probes = 0;
  std::uint64_t fail_fast = 0;           // queries rejected while open
  std::uint64_t servfail_cached = 0;     // cache entries created
  std::uint64_t servfail_cache_hits = 0;
};

class ServerHealthTracker {
 public:
  explicit ServerHealthTracker(HealthOptions options) : options_(options) {}

  // May a query to `server` go out at `now`? Open circuits reject (counted
  // as fail_fast); a cooled-down circuit transitions to half-open and admits
  // the query as a probe.
  bool allow(const net::IpAddress& server, net::SimTime now);

  void record_success(const net::IpAddress& server, net::SimTime now,
                      net::SimTime rtt);
  // A failed attempt (timeout or SERVFAIL) against the server.
  void record_failure(const net::IpAddress& server, net::SimTime now);

  // SERVFAIL negative cache (keyed by server + question).
  void record_servfail(const net::IpAddress& server, const dns::Name& qname,
                       dns::RRType qtype, net::SimTime now);
  bool servfail_cached(const net::IpAddress& server, const dns::Name& qname,
                       dns::RRType qtype, net::SimTime now);

  CircuitState state(const net::IpAddress& server) const;
  // Smoothed estimates; 0 until the first sample.
  double ewma_rtt(const net::IpAddress& server) const;
  double ewma_loss(const net::IpAddress& server) const;

  const HealthStats& stats() const { return stats_; }
  const HealthOptions& options() const { return options_; }

 private:
  struct Entry {
    CircuitState state = CircuitState::kClosed;
    int consecutive_failures = 0;
    int half_open_successes = 0;
    net::SimTime opened_at = 0;
    double ewma_rtt = 0.0;
    double ewma_loss = 0.0;
    bool has_rtt = false;
    bool has_loss = false;
  };

  Entry& entry(const net::IpAddress& server) { return servers_[server]; }
  void open_circuit(Entry& e, net::SimTime now, bool reopen);
  void observe_loss(Entry& e, double sample);

  HealthOptions options_;
  std::unordered_map<net::IpAddress, Entry, net::IpAddressHash> servers_;
  // (server, qname, qtype) -> cache expiry; tuple-keyed and cold, so an
  // ordered map is fine here.
  std::map<std::tuple<net::IpAddress, std::string, dns::RRType>, net::SimTime>
      servfail_cache_;
  HealthStats stats_;
};

}  // namespace dnsboot::resolver
