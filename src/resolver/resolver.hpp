// DelegationResolver — iterative resolution over the simulated DNS tree.
//
// Mirrors YoDNS's behaviour (paper §3): it walks the delegation chain from
// the root, resolves the full NS dependency tree (including out-of-bailiwick
// nameserver hosts, with caching), and captures the parent-side DS RRset with
// its signatures so the analysis can validate chains offline.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dnssec/validator.hpp"
#include "resolver/query_engine.hpp"

namespace dnsboot::resolver {

struct RootHints {
  std::vector<net::IpAddress> servers;
  // The configured trust anchor: DS records committing to the root KSK.
  std::vector<dns::DsRdata> trust_anchor;
};

struct NsEndpoint {
  dns::Name ns;
  net::IpAddress address;

  bool operator==(const NsEndpoint& other) const {
    return ns == other.ns && address == other.address;
  }
};

// The parent-side view of one zone.
struct Delegation {
  dns::Name zone;
  dns::Name parent;                  // zone that served the referral
  std::vector<dns::Name> ns_names;   // NS set in the referral
  dnssec::SignedRRset ds;            // DS RRset at the parent (may be empty)
  std::vector<NsEndpoint> endpoints; // resolved address for every NS
  // NS hostnames that could not be resolved to any address.
  std::vector<dns::Name> unresolved_ns;
};

class DelegationResolver {
 public:
  using DelegationCallback = std::function<void(Result<Delegation>)>;
  using HostCallback =
      std::function<void(Result<std::vector<net::IpAddress>>)>;

  DelegationResolver(QueryEngine& engine, RootHints hints);

  // Find the delegation for `zone`, resolving every NS hostname.
  void resolve_zone(const dns::Name& zone, DelegationCallback callback);

  // Resolve a hostname to its addresses (A + AAAA), iteratively from root.
  // Results (and failures) are cached: a scan meets the same operator
  // nameservers millions of times.
  void resolve_host(const dns::Name& host, HostCallback callback);

  const RootHints& hints() const { return hints_; }

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }

  // A referral extracted from a response's authority/additional sections.
  // Public so the walk state machine (an implementation detail) and tests
  // can use it.
  struct Referral {
    dns::Name cut;                     // owner of the NS set
    std::vector<dns::Name> ns_names;
    std::vector<NsEndpoint> glue;      // in-bailiwick addresses
    dnssec::SignedRRset ds;
  };

  // Classify a response from a server authoritative for `parent` as a
  // referral, if it is one.
  static std::optional<Referral> extract_referral(const dns::Message& response,
                                                  const dns::Name& parent);

 private:
  void finish_delegation(Delegation base, DelegationCallback callback);

  QueryEngine& engine_;
  RootHints hints_;
  // Host address cache; nullopt-equivalent: empty vector means negative.
  std::map<std::string, std::vector<net::IpAddress>> host_cache_;
  std::map<std::string, std::vector<HostCallback>> host_waiters_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

}  // namespace dnsboot::resolver
