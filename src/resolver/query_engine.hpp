// QueryEngine — asynchronous DNS query transport over the simulated network,
// with per-nameserver rate limiting, timeouts and retries.
//
// This is the piece the calibration note says real DNS libraries make clunky:
// a large scan needs tens of thousands of outstanding queries with per-target
// pacing (the paper limits itself to 50 qps per NS, §3). The engine paces
// sends per destination address, matches responses by message ID, and
// retries on timeout.
//
// The retry policy is adaptive (ZDNS-style): per-attempt timeout schedules,
// exponential backoff with decorrelated jitter, a global retry budget, and a
// per-server health tracker (EWMA + circuit breaker + RFC 9520 SERVFAIL
// cache). Every knob defaults to the seed's fixed 2s × 3 policy; chaos scans
// opt in.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>

#include "base/rng.hpp"
#include "dns/message.hpp"
#include "net/transport.hpp"
#include "resolver/health.hpp"

namespace dnsboot::resolver {

struct QueryEngineOptions {
  net::SimTime timeout = 2 * net::kSecond;  // first-attempt timeout
  int attempts = 3;                         // total tries per query
  double per_server_qps = 50.0;             // paper's scan limit (§3)

  // Per-attempt timeout schedule: timeout_i = min(cap, timeout * mult^i).
  // 1.0 reproduces the seed's fixed schedule.
  double timeout_multiplier = 1.0;
  net::SimTime timeout_cap = 8 * net::kSecond;

  // Decorrelated-jitter backoff before each retry:
  //   delay_i = min(backoff_cap, uniform(backoff_base, 3 * delay_{i-1})).
  // 0 disables backoff (the seed retries immediately on timeout).
  net::SimTime backoff_base = 0;
  net::SimTime backoff_cap = 2 * net::kSecond;

  // Retry budget: across the engine's lifetime at most
  // max(floor, ratio * logical_queries) retries are spent; queries beyond
  // the budget fail after their first attempt. ratio 0 disables budgeting.
  double retry_budget_ratio = 0.0;
  std::uint64_t retry_budget_floor = 100;

  // Jitter RNG seed (deterministic runs).
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  // Per-server health tracking (breaker + SERVFAIL cache); off by default.
  HealthOptions health;
};

struct QueryEngineStats {
  std::uint64_t queries = 0;        // logical queries issued by callers
  std::uint64_t sends = 0;          // datagrams sent (includes retries)
  std::uint64_t responses = 0;      // matched responses
  std::uint64_t timeouts = 0;       // logical queries that exhausted retries
  std::uint64_t retries = 0;
  std::uint64_t mismatched = 0;     // responses that matched no pending query
  std::uint64_t tcp_fallbacks = 0;  // truncated UDP answers retried over TCP
  std::uint64_t truncation_loops = 0;  // TCP answers still truncated
  std::uint64_t fail_fast = 0;         // rejected by an open circuit
  std::uint64_t servfail_cache_hits = 0;  // answered from the RFC 9520 cache
  std::uint64_t budget_denied = 0;        // retries denied by the budget

  // Sends that never produced a matched response — the waste metric the
  // chaos bench compares across retry policies.
  std::uint64_t wasted_sends() const {
    return sends >= responses ? sends - responses : 0;
  }

  // Fold another engine's counters in (shard merge).
  void operator+=(const QueryEngineStats& other) {
    queries += other.queries;
    sends += other.sends;
    responses += other.responses;
    timeouts += other.timeouts;
    retries += other.retries;
    mismatched += other.mismatched;
    tcp_fallbacks += other.tcp_fallbacks;
    truncation_loops += other.truncation_loops;
    fail_fast += other.fail_fast;
    servfail_cache_hits += other.servfail_cache_hits;
    budget_denied += other.budget_denied;
  }
};

class QueryEngine {
 public:
  using Callback = std::function<void(Result<dns::Message>)>;

  QueryEngine(net::Transport& network, net::IpAddress local_address,
              QueryEngineOptions options);

  // Issue one query. The callback fires exactly once: with the decoded
  // response, or with an error after all attempts time out.
  void query(const net::IpAddress& server, const dns::Name& qname,
             dns::RRType qtype, Callback callback);

  const QueryEngineStats& stats() const { return stats_; }
  const ServerHealthTracker& health() const { return health_; }
  std::size_t in_flight() const { return pending_.size(); }

 private:
  struct Pending {
    net::IpAddress server;
    dns::Name qname;
    dns::RRType qtype;
    Callback callback;
    int attempts_left = 0;
    int attempt = 0;  // attempts started (0 before the first send)
    std::uint64_t timeout_timer = 0;
    bool use_tcp = false;  // set after a truncated (TC=1) UDP response
    net::SimTime sent_at = 0;        // when the last datagram left (for RTT)
    net::SimTime prev_backoff = 0;   // decorrelated-jitter state
  };

  void send_attempt(std::uint16_t id);
  void handle_datagram(const net::Datagram& dgram);
  void handle_timeout(std::uint16_t id);
  void finish(std::uint16_t id, Result<dns::Message> result);
  std::uint16_t allocate_id();
  net::SimTime attempt_timeout(int attempt) const;
  net::SimTime next_backoff(Pending& p);
  bool retry_budget_available() const;

  net::Transport& network_;
  net::IpAddress local_address_;
  QueryEngineOptions options_;
  std::unordered_map<std::uint16_t, Pending> pending_;
  std::uint16_t next_id_ = 1;
  // Rate pacing: earliest time the next datagram may leave for a server.
  std::unordered_map<net::IpAddress, net::SimTime, net::IpAddressHash>
      next_free_;
  QueryEngineStats stats_;
  ServerHealthTracker health_;
  Rng rng_;
};

}  // namespace dnsboot::resolver
