// QueryEngine — asynchronous DNS query transport over the simulated network,
// with per-nameserver rate limiting, timeouts and retries.
//
// This is the piece the calibration note says real DNS libraries make clunky:
// a large scan needs tens of thousands of outstanding queries with per-target
// pacing (the paper limits itself to 50 qps per NS, §3). The engine paces
// sends per destination address, matches responses by message ID, and
// retries on timeout.
#pragma once

#include <deque>
#include <functional>
#include <map>

#include "dns/message.hpp"
#include "net/simnet.hpp"

namespace dnsboot::resolver {

struct QueryEngineOptions {
  net::SimTime timeout = 2 * net::kSecond;  // per attempt
  int attempts = 3;                         // total tries per query
  double per_server_qps = 50.0;             // paper's scan limit (§3)
};

struct QueryEngineStats {
  std::uint64_t queries = 0;        // logical queries issued by callers
  std::uint64_t sends = 0;          // datagrams sent (includes retries)
  std::uint64_t responses = 0;      // matched responses
  std::uint64_t timeouts = 0;       // logical queries that exhausted retries
  std::uint64_t retries = 0;
  std::uint64_t mismatched = 0;     // responses that matched no pending query
  std::uint64_t tcp_fallbacks = 0;  // truncated UDP answers retried over TCP
};

class QueryEngine {
 public:
  using Callback = std::function<void(Result<dns::Message>)>;

  QueryEngine(net::SimNetwork& network, net::IpAddress local_address,
              QueryEngineOptions options);

  // Issue one query. The callback fires exactly once: with the decoded
  // response, or with an error after all attempts time out.
  void query(const net::IpAddress& server, const dns::Name& qname,
             dns::RRType qtype, Callback callback);

  const QueryEngineStats& stats() const { return stats_; }
  std::size_t in_flight() const { return pending_.size(); }

 private:
  struct Pending {
    net::IpAddress server;
    dns::Name qname;
    dns::RRType qtype;
    Callback callback;
    int attempts_left = 0;
    std::uint64_t timeout_timer = 0;
    bool use_tcp = false;  // set after a truncated (TC=1) UDP response
  };

  void send_attempt(std::uint16_t id);
  void handle_datagram(const net::Datagram& dgram);
  void handle_timeout(std::uint16_t id);
  std::uint16_t allocate_id();

  net::SimNetwork& network_;
  net::IpAddress local_address_;
  QueryEngineOptions options_;
  std::map<std::uint16_t, Pending> pending_;
  std::uint16_t next_id_ = 1;
  // Rate pacing: earliest time the next datagram may leave for a server.
  std::map<net::IpAddress, net::SimTime> next_free_;
  QueryEngineStats stats_;
};

}  // namespace dnsboot::resolver
