// QueryEngine — asynchronous DNS query transport over the simulated network,
// with per-nameserver rate limiting, timeouts and retries.
//
// This is the piece the calibration note says real DNS libraries make clunky:
// a large scan needs tens of thousands of outstanding queries with per-target
// pacing (the paper limits itself to 50 qps per NS, §3). The engine paces
// sends per destination address, matches responses by message ID, and
// retries on timeout.
//
// The retry policy is adaptive (ZDNS-style): per-attempt timeout schedules,
// exponential backoff with decorrelated jitter, a global retry budget, and a
// per-server health tracker (EWMA + circuit breaker + RFC 9520 SERVFAIL
// cache). Every knob defaults to the seed's fixed 2s × 3 policy; chaos scans
// opt in.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "base/rng.hpp"
#include "dns/message.hpp"
#include "net/transport.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "resolver/health.hpp"

namespace dnsboot::resolver {

struct QueryEngineOptions {
  net::SimTime timeout = 2 * net::kSecond;  // first-attempt timeout
  int attempts = 3;                         // total tries per query
  double per_server_qps = 50.0;             // paper's scan limit (§3)

  // Per-attempt timeout schedule: timeout_i = min(cap, timeout * mult^i).
  // 1.0 reproduces the seed's fixed schedule.
  double timeout_multiplier = 1.0;
  net::SimTime timeout_cap = 8 * net::kSecond;

  // Decorrelated-jitter backoff before each retry:
  //   delay_i = min(backoff_cap, uniform(backoff_base, 3 * delay_{i-1})).
  // 0 disables backoff (the seed retries immediately on timeout).
  net::SimTime backoff_base = 0;
  net::SimTime backoff_cap = 2 * net::kSecond;

  // Retry budget: across the engine's lifetime at most
  // max(floor, ratio * logical_queries) retries are spent; queries beyond
  // the budget fail after their first attempt. ratio 0 disables budgeting.
  double retry_budget_ratio = 0.0;
  std::uint64_t retry_budget_floor = 100;

  // Jitter RNG seed (deterministic runs).
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  // Anti-spoofing defenses (the attacker model the adversarial chaos tier
  // drives; see DESIGN.md §13). Randomized IDs make every query a fresh
  // 16-bit lottery; randomized source ports (only effective on transports
  // that model ports) add another 14 bits an off-path attacker must guess.
  bool randomize_ids = true;
  bool randomize_ports = true;
  // Birthday-attack detection: after this many rejected response candidates
  // attributed to one pending question, the engine abandons the UDP race and
  // re-queries over TCP (which an off-path attacker cannot join), marking
  // the server under_attack. 0 disables the abort.
  int forgery_abort_threshold = 8;
  // A server whose responses hit this many wrong-destination-port rejections
  // is marked under_attack even without a per-query abort.
  int port_mismatch_mark_threshold = 4;

  // Per-server health tracking (breaker + SERVFAIL cache); off by default.
  HealthOptions health;

  // Optional query-lifecycle tracing (obs/trace.hpp): every finished query
  // is a sampling candidate; sampled ones record a "query" span covering
  // issue → final callback with the attempt count and outcome. Not owned.
  obs::Tracer* tracer = nullptr;
};

// Registry-backed counter view (obs/stats.hpp): fields read like the old
// plain-uint64 struct but live in the engine's MetricsRegistry as
// dnsboot_engine_* counters; shard merging is MetricsRegistry::merge.
using QueryEngineStats = obs::QueryEngineStats;
using DefenseStats = obs::DefenseStats;

class QueryEngine {
 public:
  using Callback = std::function<void(Result<dns::Message>)>;

  QueryEngine(net::Transport& network, net::IpAddress local_address,
              QueryEngineOptions options);

  // Issue one query. The callback fires exactly once: with the decoded
  // response, or with an error after all attempts time out.
  void query(const net::IpAddress& server, const dns::Name& qname,
             dns::RRType qtype, Callback callback);

  const QueryEngineStats& stats() const { return stats_; }
  const DefenseStats& defense() const { return defense_; }
  const ServerHealthTracker& health() const { return health_; }
  std::size_t in_flight() const { return pending_.size(); }
  // True once the anti-spoofing defenses concluded this endpoint is being
  // attacked (a forgery abort fired, or repeated wrong-port rejections).
  // Scan provenance threads this into ScanQuality as `under_attack`.
  bool under_attack(const net::IpAddress& server) const {
    return under_attack_.count(server) > 0;
  }
  std::size_t servers_under_attack() const { return under_attack_.size(); }
  // The engine's dnsboot_engine_* counters and RTT histogram; run_survey
  // merges this into the survey-wide registry.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct Pending {
    net::IpAddress server;
    dns::Name qname;
    dns::RRType qtype;
    Callback callback;
    int attempts_left = 0;
    int attempt = 0;  // attempts started (0 before the first send)
    std::uint64_t timeout_timer = 0;
    bool use_tcp = false;  // set after a truncated (TC=1) UDP response
    net::SimTime sent_at = 0;        // when the last datagram left (for RTT)
    net::SimTime prev_backoff = 0;   // decorrelated-jitter state
    net::SimTime issued_at = 0;      // when the logical query was issued
    bool traced = false;             // sampled for a trace span
    std::uint16_t sport = 0;         // randomized source port (0: unmodelled)
    int forged_candidates = 0;       // rejected candidates attributed here
    bool forgery_aborted = false;    // birthday abort already fired
  };

  void send_attempt(std::uint16_t id);
  void handle_datagram(const net::Datagram& dgram);
  void handle_timeout(std::uint16_t id);
  void finish(std::uint16_t id, Result<dns::Message> result);
  std::uint16_t allocate_id();
  net::SimTime attempt_timeout(int attempt) const;
  net::SimTime next_backoff(Pending& p);
  bool retry_budget_available() const;
  // Anti-spoofing bookkeeping.
  static std::string question_key(const net::IpAddress& server,
                                  const dns::Name& qname, dns::RRType qtype);
  void index_question(std::uint16_t id, const Pending& p);
  void unindex_question(std::uint16_t id, const Pending& p);
  // A rejected response carrying a pending question: count it against that
  // query and fire the birthday abort at the threshold.
  void note_forged_candidate(const net::Datagram& dgram,
                             const dns::Message& message);
  void count_forged_candidate(std::uint16_t id, Pending& p);
  void mark_under_attack(const net::IpAddress& server);

  net::Transport& network_;
  net::IpAddress local_address_;
  QueryEngineOptions options_;
  std::unordered_map<std::uint16_t, Pending> pending_;
  std::uint16_t next_id_ = 1;
  // Rate pacing: earliest time the next datagram may leave for a server.
  std::unordered_map<net::IpAddress, net::SimTime, net::IpAddressHash>
      next_free_;
  // Forgery attribution: "server|qname|qtype" -> pending id. A rejected
  // response that names a pending question is a spoof candidate against that
  // query (the needle the birthday-abort defense counts). Duplicate
  // questions keep the first index entry; attribution is a heuristic, not a
  // correctness path.
  std::unordered_map<std::string, std::uint16_t> pending_by_question_;
  // Per-server wrong-destination-port rejections (threshold marks the
  // server) and the marked set itself.
  std::unordered_map<net::IpAddress, int, net::IpAddressHash> port_mismatches_;
  std::unordered_set<net::IpAddress, net::IpAddressHash> under_attack_;
  // Registry before its views (members initialize in declaration order).
  obs::MetricsRegistry metrics_;
  QueryEngineStats stats_{metrics_};
  DefenseStats defense_{metrics_};
  obs::Histogram& rtt_histogram_{metrics_.histogram("dnsboot_engine_rtt_usec")};
  ServerHealthTracker health_;
  Rng rng_;
};

}  // namespace dnsboot::resolver
