// EventLoop — a non-blocking epoll reactor with a hierarchical timer wheel.
//
// This is the real-time twin of SimNetwork's event heap: file descriptors
// register interest masks with callbacks, timers are kept in a 4-level
// hashed wheel (256 slots/level, ~1 ms ticks), and poll() runs one
// epoll_wait + timer-expiry pass. Time is the monotonic clock in
// microseconds since loop construction, so SimTime arithmetic from the
// simulator carries over unchanged.
//
// Single-threaded by design — one loop per worker thread, share-nothing
// (the SO_REUSEPORT model). The only cross-thread entry point is wakeup(),
// which is async-signal-safe and wakes a blocking poll(). Under
// DNSBOOT_VERIFY that contract is enforced at runtime: re-entering poll()
// from inside a dispatched callback fails ("reactor-reentrancy"), as does
// mutating the loop (schedule/cancel/watch/unwatch) from another thread
// while a poll is in flight ("loop-cross-thread") — see base/verify.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"

namespace dnsboot::net {

class EventLoop {
 public:
  // epoll event mask (EPOLLIN/EPOLLOUT/...) of the wakeup.
  using IoHandler = std::function<void(std::uint32_t events)>;
  using TimerHandler = Transport::TimerHandler;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Monotonic microseconds since construction.
  SimTime now() const;

  // Run `fn` once at now() + delay (rounded up to the next ~1 ms tick).
  // Returns a non-zero timer id for cancel().
  std::uint64_t schedule(SimTime delay, TimerHandler fn);
  void cancel(std::uint64_t timer_id);
  std::size_t live_timers() const { return live_timers_; }
  // Timers parked past the wheel horizon (~51 days); they sit in an ordered
  // overflow list instead of churning through top-level cascades, and are
  // re-admitted to the wheel once their expiry comes within the horizon.
  std::size_t overflow_timers() const { return overflow_.size(); }

  // Register or update interest in `fd`. `events` is an epoll mask; the
  // handler fires with the ready mask. unwatch() must precede close(fd).
  void watch(int fd, std::uint32_t events, IoHandler handler);
  void unwatch(int fd);
  std::size_t watched_fds() const { return io_.size(); }

  // One reactor pass: wait for io (at most `max_wait`, clipped to the next
  // timer expiry), dispatch ready fds, then fire due timers. Returns the
  // number of callbacks dispatched.
  std::size_t poll(SimTime max_wait);

  // Wake a blocking poll() from another thread or a signal handler.
  void wakeup();

  // First fatal loop error (epoll/eventfd syscall failure), empty if none.
  const std::string& error() const { return error_; }

 private:
  // Timer wheel geometry: 4 levels of 256 slots; level 0 ticks are 1024 µs,
  // each level up is 256× coarser (~4.5 hours of total horizon, beyond
  // which timers park in the top level and re-cascade).
  static constexpr int kTickShift = 10;  // 1 tick = 1024 µs
  static constexpr int kWheelBits = 8;
  static constexpr std::size_t kWheelSlots = 1u << kWheelBits;
  static constexpr int kLevels = 4;

  struct TimerEntry {
    std::uint64_t id;
    std::uint64_t expiry_tick;
  };

  std::uint64_t tick_of(SimTime t) const { return t >> kTickShift; }
  // The slot a timer with this expiry belongs to right now.
  void place(TimerEntry entry);
  // Advance the wheel to `target_tick`, firing due timers.
  std::size_t advance(std::uint64_t target_tick);
  // Earliest pending expiry relative to now, or kSimTimeForever.
  SimTime next_timer_delay() const;

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd, watched for cross-thread wakeups
  SimTime epoch_us_ = 0;

  std::vector<TimerEntry> wheel_[kLevels][kWheelSlots];
  // expiry_tick -> id for timers at least one full wheel horizon out.
  // Ordered so re-admission pops from the front; cancellation stays lazy
  // (a parked id missing from timers_ is dropped at re-admission).
  std::multimap<std::uint64_t, std::uint64_t> overflow_;
  std::unordered_map<std::uint64_t, TimerHandler> timers_;  // live only
  std::uint64_t current_tick_ = 0;
  std::uint64_t next_timer_id_ = 1;
  std::size_t live_timers_ = 0;

  std::unordered_map<int, IoHandler> io_;
  std::string error_;

#if defined(DNSBOOT_VERIFY)
  // Reactor guard state: the verify::thread_tag() of the thread currently
  // inside poll(), 0 when idle. Mutators compare against it; poll() uses it
  // to detect re-entry. Setup-then-run handoff (build the loop on one
  // thread, run it on another) is legal — ownership is only asserted while
  // a poll is actually in flight.
  friend class EventLoopPollScope;
  void verify_not_mid_poll(const char* op) const;
  std::atomic<std::uint64_t> poll_owner_{0};
#endif
};

}  // namespace dnsboot::net
