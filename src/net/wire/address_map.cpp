#include "net/wire/address_map.hpp"

#include <cstdio>
#include <string>

namespace dnsboot::net {

std::string RealEndpoint::to_text() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (host >> 24) & 0xff,
                (host >> 16) & 0xff, (host >> 8) & 0xff, host & 0xff, port);
  return buf;
}

std::optional<RealEndpoint> parse_endpoint(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0, port = 0;
  char trailing = 0;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u:%u%c", &a, &b, &c, &d, &port,
                  &trailing) != 5) {
    return std::nullopt;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255 || port == 0 || port > 65535) {
    return std::nullopt;
  }
  return RealEndpoint{(a << 24) | (b << 16) | (c << 8) | d,
                      static_cast<std::uint16_t>(port)};
}

bool WireAddressMap::add(const IpAddress& virtual_address) {
  if (by_virtual_.find(virtual_address) != by_virtual_.end()) return true;
  std::uint32_t port = base_.port + static_cast<std::uint32_t>(entries_.size());
  if (port > 65535) return false;
  RealEndpoint real{base_.host, static_cast<std::uint16_t>(port)};
  entries_.emplace_back(virtual_address, real);
  by_virtual_.emplace(virtual_address, real);
  by_real_.emplace(real.key(), virtual_address);
  return true;
}

std::optional<RealEndpoint> WireAddressMap::real_for(
    const IpAddress& virtual_address) const {
  auto it = by_virtual_.find(virtual_address);
  if (it == by_virtual_.end()) return std::nullopt;
  return it->second;
}

std::optional<IpAddress> WireAddressMap::virtual_for(
    const RealEndpoint& real) const {
  auto it = by_real_.find(real.key());
  if (it == by_real_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dnsboot::net
