#include "net/wire/wire_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

namespace dnsboot::net {

namespace {

sockaddr_in to_sockaddr(const RealEndpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(endpoint.host);
  addr.sin_port = htons(endpoint.port);
  return addr;
}

RealEndpoint from_sockaddr(const sockaddr_in& addr) {
  return RealEndpoint{ntohl(addr.sin_addr.s_addr), ntohs(addr.sin_port)};
}

int make_socket(int type) {
  int fd = socket(AF_INET, type | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd >= 0 && type == SOCK_DGRAM) {
    // Generous queues so a paced loopback survey never sheds datagrams to
    // buffer pressure: UDP loss would surface as retries and break the
    // wire-vs-simulated report identity the transport promises.
    int size = 1 << 20;
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &size, sizeof size);
    setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &size, sizeof size);
  }
  return fd;
}

}  // namespace

WireTransport::WireTransport(WireAddressMap map, WireTransportOptions options)
    : map_(std::move(map)), options_(options) {
  recv_buffer_.resize(65535);
}

WireTransport::~WireTransport() {
  // Tear sockets down while the loop still exists (members of this class
  // are destroyed before base/loop members declared earlier would be —
  // loop_ is declared before the containers, so unwatch explicitly first).
  for (auto& [vaddr, conn] : tcp_conns_) {
    if (conn->fd >= 0) {
      loop_.unwatch(conn->fd);
      close(conn->fd);
    }
  }
  for (auto& [vaddr, endpoint] : endpoints_) {
    if (endpoint->udp_fd >= 0) {
      loop_.unwatch(endpoint->udp_fd);
      close(endpoint->udp_fd);
    }
    if (endpoint->tcp_listen_fd >= 0) {
      loop_.unwatch(endpoint->tcp_listen_fd);
      close(endpoint->tcp_listen_fd);
    }
  }
}

void WireTransport::fail(const std::string& what) {
  if (error_.empty()) {
    error_ = what + ": " + std::strerror(errno);
  }
}

void WireTransport::bind(const IpAddress& address, DatagramHandler handler) {
  auto it = endpoints_.find(address);
  if (it != endpoints_.end()) {
    // Rebinding replaces the handler, as on the simulator.
    it->second->handler = std::move(handler);
    return;
  }
  auto endpoint = std::make_unique<Endpoint>();
  endpoint->vaddr = address;
  endpoint->handler = std::move(handler);
  if (auto real = map_.real_for(address)) {
    endpoint->real = *real;
    open_serving_sockets(endpoint.get());
  } else {
    open_client_socket(endpoint.get());
  }
  endpoints_.emplace(address, std::move(endpoint));
}

void WireTransport::open_serving_sockets(Endpoint* endpoint) {
  endpoint->udp_fd = make_socket(SOCK_DGRAM);
  if (endpoint->udp_fd < 0) return fail("socket(udp)");
  int one = 1;
  setsockopt(endpoint->udp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (options_.reuse_port) {
    setsockopt(endpoint->udp_fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one);
  }
  sockaddr_in addr = to_sockaddr(endpoint->real);
  if (::bind(endpoint->udp_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) < 0) {
    return fail("bind(udp " + endpoint->real.to_text() + ")");
  }
  watch_udp(endpoint);

  endpoint->tcp_listen_fd = make_socket(SOCK_STREAM);
  if (endpoint->tcp_listen_fd < 0) return fail("socket(tcp)");
  setsockopt(endpoint->tcp_listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
             sizeof one);
  if (options_.reuse_port) {
    setsockopt(endpoint->tcp_listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
               sizeof one);
  }
  if (::bind(endpoint->tcp_listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) < 0 ||
      listen(endpoint->tcp_listen_fd, 128) < 0) {
    return fail("listen(tcp " + endpoint->real.to_text() + ")");
  }
  watch_listener(endpoint);
}

void WireTransport::open_client_socket(Endpoint* endpoint) {
  endpoint->udp_fd = make_socket(SOCK_DGRAM);
  if (endpoint->udp_fd < 0) return fail("socket(udp client)");
  // Bind to the map's base host with an ephemeral port so replies and the
  // servers' session bookkeeping see a stable local address.
  sockaddr_in addr = to_sockaddr(RealEndpoint{map_.base().host, 0});
  if (::bind(endpoint->udp_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) < 0) {
    return fail("bind(udp client)");
  }
  socklen_t len = sizeof addr;
  getsockname(endpoint->udp_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  endpoint->real = from_sockaddr(addr);
  watch_udp(endpoint);
}

void WireTransport::watch_udp(Endpoint* endpoint) {
  loop_.watch(endpoint->udp_fd, EPOLLIN, [this, endpoint](std::uint32_t) {
    on_udp_readable(endpoint);
  });
}

void WireTransport::watch_listener(Endpoint* endpoint) {
  loop_.watch(endpoint->tcp_listen_fd, EPOLLIN,
              [this, endpoint](std::uint32_t) { on_accept_ready(endpoint); });
}

void WireTransport::unbind(const IpAddress& address) {
  auto it = endpoints_.find(address);
  if (it == endpoints_.end()) return;
  Endpoint* endpoint = it->second.get();
  // Flush queued datagrams best-effort, then drop the pending-list entry so
  // no dangling pointer survives the erase.
  flush_endpoint_udp(endpoint);
  udp_pending_.erase(
      std::remove(udp_pending_.begin(), udp_pending_.end(), endpoint),
      udp_pending_.end());
  if (endpoint->udp_fd >= 0) {
    loop_.unwatch(endpoint->udp_fd);
    close(endpoint->udp_fd);
  }
  if (endpoint->tcp_listen_fd >= 0) {
    loop_.unwatch(endpoint->tcp_listen_fd);
    close(endpoint->tcp_listen_fd);
  }
  // Drop connections owned by this endpoint.
  for (auto conn_it = tcp_conns_.begin(); conn_it != tcp_conns_.end();) {
    if (conn_it->second->local_vaddr == address) {
      loop_.unwatch(conn_it->second->fd);
      close(conn_it->second->fd);
      conn_it = tcp_conns_.erase(conn_it);
    } else {
      ++conn_it;
    }
  }
  endpoints_.erase(it);
}

bool WireTransport::is_bound(const IpAddress& address) const {
  return endpoints_.find(address) != endpoints_.end();
}

IpAddress WireTransport::session_address_for(const RealEndpoint& real) {
  auto it = udp_sessions_by_real_.find(real.key());
  if (it != udp_sessions_by_real_.end()) return it->second;
  std::uint64_t index = next_session_++;
  // RFC 6598 shared space 100.64.0.0/10 — disjoint from the synthetic
  // 10.0.0.0/8 server space and the scanner's 192.0.2.x, by construction.
  IpAddress session = IpAddress::v4(
      {100, static_cast<std::uint8_t>(64 + ((index >> 16) & 0x3f)),
       static_cast<std::uint8_t>((index >> 8) & 0xff),
       static_cast<std::uint8_t>(index & 0xff)});
  udp_sessions_by_real_.emplace(real.key(), session);
  udp_sessions_.emplace(session, real);
  return session;
}

void WireTransport::deliver(const IpAddress& source,
                            const IpAddress& destination, BytesView payload,
                            bool tcp) {
  auto it = endpoints_.find(destination);
  if (it == endpoints_.end()) return;
  ++datagrams_delivered_;
  Datagram dgram;
  dgram.source = source;
  dgram.destination = destination;
  dgram.payload.assign(payload.begin(), payload.end());
  dgram.tcp = tcp;
  it->second->handler(dgram);
}

void WireTransport::recv_udp_unbatched(int fd, const IpAddress& vaddr) {
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    ssize_t n = recvfrom(fd, recv_buffer_.data(), recv_buffer_.size(), 0,
                         reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) return;  // EAGAIN or transient error: wait for next wakeup
    RealEndpoint real = from_sockaddr(peer);
    IpAddress source;
    if (auto mapped = map_.virtual_for(real)) {
      source = *mapped;  // a serving endpoint answered us
    } else {
      source = session_address_for(real);  // unknown peer: session identity
    }
    deliver(source, vaddr,
            BytesView(recv_buffer_.data(), static_cast<std::size_t>(n)),
            /*tcp=*/false);
  }
}

void WireTransport::on_udp_readable(Endpoint* endpoint) {
  // Locals: a delivery handler may legally unbind this endpoint mid-drain.
  const int fd = endpoint->udp_fd;
  const IpAddress vaddr = endpoint->vaddr;
  const std::size_t batch = options_.udp_batch;
  if (batch <= 1 || !mmsg_recv_ok_) return recv_udp_unbatched(fd, vaddr);

  if (mmsg_buffers_.size() < batch) {
    mmsg_buffers_.resize(batch);
    for (Bytes& buffer : mmsg_buffers_) buffer.resize(65535);
  }
  std::vector<mmsghdr> msgs(batch);
  std::vector<iovec> iovs(batch);
  std::vector<sockaddr_in> peers(batch);
  while (true) {
    for (std::size_t i = 0; i < batch; ++i) {
      iovs[i].iov_base = mmsg_buffers_[i].data();
      iovs[i].iov_len = mmsg_buffers_[i].size();
      msgs[i] = mmsghdr{};
      msgs[i].msg_hdr.msg_name = &peers[i];
      msgs[i].msg_hdr.msg_namelen = sizeof peers[i];
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    int n = recvmmsg(fd, msgs.data(), static_cast<unsigned>(batch), 0,
                     nullptr);
    if (n < 0) {
      if (errno == ENOSYS || errno == EINVAL) {
        mmsg_recv_ok_ = false;  // kernel without recvmmsg: fall back for good
        return recv_udp_unbatched(fd, vaddr);
      }
      return;  // EAGAIN or transient error: wait for next wakeup
    }
    ++udp_recv_batches_;
    for (int i = 0; i < n; ++i) {
      RealEndpoint real = from_sockaddr(peers[i]);
      IpAddress source;
      if (auto mapped = map_.virtual_for(real)) {
        source = *mapped;
      } else {
        source = session_address_for(real);
      }
      deliver(source, vaddr,
              BytesView(mmsg_buffers_[i].data(), msgs[i].msg_len),
              /*tcp=*/false);
    }
    if (static_cast<std::size_t>(n) < batch) return;  // socket drained
  }
}

void WireTransport::send(const IpAddress& source,
                         const IpAddress& destination, Bytes payload,
                         bool tcp) {
  auto it = endpoints_.find(source);
  if (it == endpoints_.end()) {
    ++datagrams_unroutable_;
    return;
  }
  Endpoint* endpoint = it->second.get();
  ++datagrams_sent_;
  bytes_sent_ += payload.size();

  if (tcp) {
    auto conn_it = tcp_conns_.find(destination);
    TcpConn* conn =
        conn_it != tcp_conns_.end() ? conn_it->second.get() : nullptr;
    if (conn == nullptr) {
      auto real = map_.real_for(destination);
      if (!real) {
        ++datagrams_unroutable_;
        return;
      }
      conn = open_client_conn(source, destination, *real);
      if (conn == nullptr) return;
    }
    queue_frame(conn, payload);
    return;
  }

  RealEndpoint real;
  if (auto mapped = map_.real_for(destination)) {
    real = *mapped;
  } else if (auto session = udp_sessions_.find(destination);
             session != udp_sessions_.end()) {
    real = session->second;
  } else {
    ++datagrams_unroutable_;
    return;
  }
  if (options_.udp_batch <= 1 || !mmsg_send_ok_) {
    send_udp_now(endpoint->udp_fd, real, payload);
    return;
  }
  // Batched path: queue on the endpoint and flush with one sendmmsg when
  // the batch fills; the run loops flush every queue before each poll, so a
  // datagram is never held across a blocking wait.
  endpoint->udp_outq.emplace_back(real, std::move(payload));
  if (!endpoint->udp_queued) {
    endpoint->udp_queued = true;
    udp_pending_.push_back(endpoint);
  }
  if (endpoint->udp_outq.size() >= options_.udp_batch) {
    flush_endpoint_udp(endpoint);
  }
}

void WireTransport::send_udp_now(int fd, const RealEndpoint& real,
                                 BytesView payload) {
  sockaddr_in addr = to_sockaddr(real);
  // Non-blocking best effort: a full socket buffer drops the datagram, the
  // sender's retry logic treats it as network loss (exactly UDP semantics).
  sendto(fd, payload.data(), payload.size(), 0,
         reinterpret_cast<sockaddr*>(&addr), sizeof addr);
}

void WireTransport::flush_endpoint_udp(Endpoint* endpoint) {
  std::vector<std::pair<RealEndpoint, Bytes>>& queue = endpoint->udp_outq;
  endpoint->udp_queued = false;
  if (queue.empty()) return;
  std::size_t off = 0;
  if (mmsg_send_ok_) {
    std::vector<mmsghdr> msgs(queue.size());
    std::vector<iovec> iovs(queue.size());
    std::vector<sockaddr_in> addrs(queue.size());
    for (std::size_t i = 0; i < queue.size(); ++i) {
      addrs[i] = to_sockaddr(queue[i].first);
      iovs[i].iov_base = queue[i].second.data();
      iovs[i].iov_len = queue[i].second.size();
      msgs[i] = mmsghdr{};
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof addrs[i];
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    while (off < queue.size()) {
      int n = sendmmsg(endpoint->udp_fd, msgs.data() + off,
                       static_cast<unsigned>(queue.size() - off), 0);
      if (n < 0) {
        if (errno == ENOSYS || errno == EINVAL) {
          mmsg_send_ok_ = false;  // fall through to the sendto tail below
          break;
        }
        // Full socket buffer (or transient error): the unsent tail drops,
        // exactly the loss semantics of the unbatched sendto path.
        off = queue.size();
        break;
      }
      ++udp_send_batches_;
      off += static_cast<std::size_t>(n);
    }
  }
  for (; off < queue.size(); ++off) {
    send_udp_now(endpoint->udp_fd, queue[off].first, queue[off].second);
  }
  queue.clear();
}

void WireTransport::flush_udp_sends() {
  // flush_endpoint_udp never *adds* to udp_pending_ (sends during a flush
  // would be nested handler work, which only happens inside poll), so a
  // single sweep empties it.
  while (!udp_pending_.empty()) {
    Endpoint* endpoint = udp_pending_.back();
    udp_pending_.pop_back();
    flush_endpoint_udp(endpoint);
  }
}

WireTransport::TcpConn* WireTransport::open_client_conn(
    const IpAddress& local_vaddr, const IpAddress& peer_vaddr,
    const RealEndpoint& real) {
  int fd = make_socket(SOCK_STREAM);
  if (fd < 0) {
    fail("socket(tcp client)");
    return nullptr;
  }
  sockaddr_in addr = to_sockaddr(real);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc < 0 && errno != EINPROGRESS) {
    close(fd);
    ++datagrams_unroutable_;
    return nullptr;
  }
  auto conn = std::make_unique<TcpConn>();
  conn->fd = fd;
  conn->local_vaddr = local_vaddr;
  conn->peer_vaddr = peer_vaddr;
  conn->connecting = rc < 0;
  TcpConn* raw = conn.get();
  tcp_conns_.emplace(peer_vaddr, std::move(conn));
  ++tcp_opened_;
  loop_.watch(fd, EPOLLIN | EPOLLOUT,
              [this, raw](std::uint32_t events) { on_conn_event(raw, events); });
  return raw;
}

void WireTransport::evict_for_cap() {
  // Oldest-idle-first: the connection that has gone longest without bytes
  // is the likeliest slowloris and the cheapest to lose.
  TcpConn* oldest = nullptr;
  for (auto& [vaddr, conn] : tcp_conns_) {
    if (!conn->accepted) continue;
    if (oldest == nullptr || conn->last_activity < oldest->last_activity) {
      oldest = conn.get();
    }
  }
  if (oldest != nullptr) {
    ++tcp_evicted_cap_;
    close_conn(oldest);
  }
}

void WireTransport::sweep_idle_conns() {
  idle_sweep_timer_ = 0;
  if (options_.tcp_idle_timeout == 0) return;
  const SimTime now = loop_.now();
  // Collect-then-close: close_conn mutates tcp_conns_.
  std::vector<TcpConn*> idle;
  for (auto& [vaddr, conn] : tcp_conns_) {
    if (!conn->accepted) continue;
    if (now - conn->last_activity >= options_.tcp_idle_timeout) {
      idle.push_back(conn.get());
    }
  }
  for (TcpConn* conn : idle) {
    ++tcp_evicted_idle_;
    close_conn(conn);
  }
  arm_idle_sweep();
}

void WireTransport::arm_idle_sweep() {
  if (options_.tcp_idle_timeout == 0 || idle_sweep_timer_ != 0 ||
      accepted_conns_ == 0) {
    return;
  }
  // Sweep at a quarter of the timeout: a connection is closed at most 1.25
  // timeouts after its last byte, with four wakeups per timeout of cost.
  SimTime interval = std::max<SimTime>(1, options_.tcp_idle_timeout / 4);
  idle_sweep_timer_ = loop_.schedule(interval, [this] { sweep_idle_conns(); });
}

void WireTransport::on_accept_ready(Endpoint* endpoint) {
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    int fd = accept4(endpoint->tcp_listen_fd,
                     reinterpret_cast<sockaddr*>(&peer), &peer_len,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    if (options_.max_tcp_conns > 0 &&
        accepted_conns_ >= options_.max_tcp_conns) {
      evict_for_cap();
    }
    // Every accepted stream is its own session peer, even when several come
    // from one real address: allocate per-connection identities so two
    // concurrent connections from one client never share reply routing.
    std::uint64_t index = next_session_++;
    IpAddress session = IpAddress::v4(
        {100, static_cast<std::uint8_t>(64 + ((index >> 16) & 0x3f)),
         static_cast<std::uint8_t>((index >> 8) & 0xff),
         static_cast<std::uint8_t>(index & 0xff)});
    auto conn = std::make_unique<TcpConn>();
    conn->fd = fd;
    conn->local_vaddr = endpoint->vaddr;
    conn->peer_vaddr = session;
    conn->accepted = true;
    conn->last_activity = loop_.now();
    conn->reassembler = TcpFrameReassembler(options_.tcp_max_buffered);
    TcpConn* raw = conn.get();
    tcp_conns_.emplace(session, std::move(conn));
    ++tcp_accepted_;
    ++accepted_conns_;
    arm_idle_sweep();
    loop_.watch(fd, EPOLLIN, [this, raw](std::uint32_t events) {
      on_conn_event(raw, events);
    });
  }
}

void WireTransport::queue_frame(TcpConn* conn, BytesView payload) {
  if (conn->broken) return;  // dropped like network loss; timeouts recover
  if (!append_tcp_frame(payload, &conn->outbuf)) {
    // Larger than the 16-bit frame limit: undeliverable over DNS TCP.
    ++oversized_tcp_;
    return;
  }
  if (!conn->connecting) flush_conn(conn);
  update_conn_interest(conn);
}

void WireTransport::flush_conn(TcpConn* conn) {
  while (conn->out_off < conn->outbuf.size()) {
    ssize_t n = write(conn->fd, conn->outbuf.data() + conn->out_off,
                      conn->outbuf.size() - conn->out_off);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      // Mark broken instead of destroying: flush_conn can run nested inside
      // feed() on this very connection. The epoll EPOLLERR/EPOLLHUP wakeup
      // (or the caller's broken check) performs the actual close.
      conn->broken = true;
      conn->outbuf.clear();
      conn->out_off = 0;
      return;
    }
    conn->out_off += static_cast<std::size_t>(n);
  }
  conn->outbuf.clear();
  conn->out_off = 0;
}

void WireTransport::update_conn_interest(TcpConn* conn) {
  std::uint32_t events = EPOLLIN;
  if (conn->connecting || conn->out_off < conn->outbuf.size()) {
    events |= EPOLLOUT;
  }
  loop_.watch(conn->fd, events, [this, conn](std::uint32_t ready) {
    on_conn_event(conn, ready);
  });
}

void WireTransport::on_conn_event(TcpConn* conn, std::uint32_t events) {
  if (conn->broken || (events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_conn(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (conn->connecting) {
      int err = 0;
      socklen_t len = sizeof err;
      getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        close_conn(conn);
        return;
      }
      conn->connecting = false;
    }
    conn->last_activity = loop_.now();
    flush_conn(conn);
    if (conn->broken) {
      close_conn(conn);
      return;
    }
    update_conn_interest(conn);
  }
  if ((events & EPOLLIN) != 0) {
    while (true) {
      ssize_t n = read(conn->fd, recv_buffer_.data(), recv_buffer_.size());
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(conn);
        return;
      }
      if (n == 0) {
        close_conn(conn);
        return;
      }
      conn->last_activity = loop_.now();
      IpAddress source = conn->peer_vaddr;
      IpAddress destination = conn->local_vaddr;
      bool ok = conn->reassembler.feed(
          BytesView(recv_buffer_.data(), static_cast<std::size_t>(n)),
          [this, &source, &destination](BytesView frame) {
            deliver(source, destination, frame, /*tcp=*/true);
          });
      // The delivery handler can legally unbind/close this connection.
      auto self = tcp_conns_.find(source);
      if (self == tcp_conns_.end()) return;
      if (!ok || conn->broken) {
        // A framing violation sheds exactly this connection — the worker
        // and its other connections keep serving.
        if (!ok) ++malformed_shed_;
        close_conn(conn);
        return;
      }
    }
  }
}

void WireTransport::close_conn(TcpConn* conn) {
  loop_.unwatch(conn->fd);
  close(conn->fd);
  if (conn->accepted && accepted_conns_ > 0) {
    --accepted_conns_;
    // The sweep only exists to watch accepted connections; letting it
    // linger would keep run() from ever reporting idle on this transport.
    if (accepted_conns_ == 0 && idle_sweep_timer_ != 0) {
      loop_.cancel(idle_sweep_timer_);
      idle_sweep_timer_ = 0;
    }
  }
  tcp_conns_.erase(conn->peer_vaddr);  // destroys *conn
}

std::size_t WireTransport::pending_tcp_writes() const {
  std::size_t pending = 0;
  for (const auto& [vaddr, conn] : tcp_conns_) {
    pending += conn->outbuf.size() - conn->out_off;
  }
  return pending;
}

std::size_t WireTransport::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && error().empty()) {
    // Queued UDP sends leave with this iteration — the flush empties every
    // queue by construction, so the idle check below never sees stuck
    // datagrams.
    flush_udp_sends();
    // The idle sweep is a background timer: it exists to reap dead-weight
    // connections, not to represent pending work, so it must not keep run()
    // from reporting idle once the workload's own timers have drained.
    const std::size_t background = idle_sweep_timer_ != 0 ? 1 : 0;
    if (loop_.live_timers() <= background && pending_tcp_writes() == 0) break;
    processed += loop_.poll(options_.max_poll_wait);
  }
  return processed;
}

void WireTransport::run_forever() {
  // Ownership handoff seam: dnsboot-serve builds each transport on a
  // builder thread and serves it on a worker thread; the std::thread
  // constructor provides the happens-before edge. Release any single-writer
  // claims made during setup so the DNSBOOT_VERIFY checker tags the serving
  // thread as the counters' writer from here on (no-op otherwise).
  metrics_.verify_reset_writers();
  // audit-allow: A004 standalone stop flag; the eventfd wakeup is the sync
  while (!stop_.load(std::memory_order_relaxed) && error().empty()) {
    loop_.poll(options_.max_poll_wait);
    // Responses queued by handlers during this poll batch go out in one
    // sendmmsg per endpoint before the next blocking wait.
    flush_udp_sends();
  }
}

void WireTransport::stop() {
  // audit-allow: A004 standalone stop flag; the eventfd wakeup is the sync
  stop_.store(true, std::memory_order_relaxed);
  loop_.wakeup();
}

}  // namespace dnsboot::net
