// DNS-over-TCP stream framing (RFC 1035 §4.2.2): every message is prefixed
// by a two-byte big-endian length. The reassembler turns an arbitrary
// sequence of stream reads — partial frames, pipelined back-to-back
// messages, one byte at a time — back into complete message payloads.
//
// Used by both sides of every TCP connection in the wire transport, and
// fuzzed standalone (fuzz/fuzz_tcp_framing.cpp).
#pragma once

#include <cstddef>
#include <functional>

#include "base/bytes.hpp"

namespace dnsboot::net {

// Append the 2-byte length prefix + payload to `out`. Returns false (and
// appends nothing) when the payload exceeds the 16-bit frame limit.
bool append_tcp_frame(BytesView payload, Bytes* out);

class TcpFrameReassembler {
 public:
  using FrameHandler = std::function<void(BytesView)>;

  // `max_buffered` bounds memory held for incomplete data: a peer cannot
  // balloon the buffer by pipelining faster than frames are consumed,
  // because completed frames are handed out inside feed() — only one
  // partial frame (≤ 2 + 65535 bytes) ever needs to wait. The cap exists
  // for callers that lower it (tests) and as a hard stop against bugs.
  explicit TcpFrameReassembler(std::size_t max_buffered = 2 + 65535)
      : max_buffered_(max_buffered) {}

  // Consume a chunk of stream bytes, invoking `on_frame` once per completed
  // frame payload (possibly zero length — DNS decode rejects it upstream).
  // Returns false once the connection should be torn down: the residual
  // partial frame outgrew `max_buffered`. A failed reassembler stays
  // failed; further feeds are no-ops.
  bool feed(BytesView data, const FrameHandler& on_frame);

  // Bytes held for the current incomplete frame.
  std::size_t buffered() const { return buffer_.size() - consumed_; }
  bool failed() const { return failed_; }
  std::uint64_t frames_emitted() const { return frames_emitted_; }

 private:
  Bytes buffer_;
  std::size_t consumed_ = 0;
  std::size_t max_buffered_;
  bool failed_ = false;
  std::uint64_t frames_emitted_ = 0;
};

}  // namespace dnsboot::net
