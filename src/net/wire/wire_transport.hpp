// WireTransport — the Transport contract over real kernel sockets.
//
// Non-blocking UDP datagram sockets and TCP streams (2-byte length-prefix
// framing, RFC 1035 §4.2.2) multiplexed on one epoll EventLoop. Endpoints
// above (QueryEngine, AuthServer, Scanner) run unmodified: they bind
// virtual addresses, send wire-format payloads, and schedule timers exactly
// as they do on SimNetwork.
//
// Address model (see address_map.hpp): binding a virtual address that is in
// the WireAddressMap opens *serving* sockets on its mapped real endpoint
// (UDP + TCP listener, optionally SO_REUSEPORT so N worker transports
// share the load); binding an unmapped virtual address opens a *client*
// UDP socket on an ephemeral port. Real peers without a static mapping are
// given transient session addresses so replies stay plain IpAddress sends.
//
// Threading: a WireTransport is single-threaded like SimNetwork. The only
// cross-thread-safe entry point is stop(), which wakes run_forever().
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/transport.hpp"
#include "net/wire/address_map.hpp"
#include "net/wire/event_loop.hpp"
#include "net/wire/frame.hpp"
#include "obs/stats.hpp"

namespace dnsboot::net {

struct WireTransportOptions {
  // SO_REUSEPORT on serving sockets: N worker threads each run their own
  // transport bound to the same real endpoints; the kernel spreads flows.
  bool reuse_port = false;
  // Upper bound for a single blocking poll inside run()/run_forever().
  SimTime max_poll_wait = 50 * kMillisecond;
  // Accepted-TCP-connection cap per transport. At the cap, accepting a new
  // connection first evicts the oldest-idle accepted connection — a
  // slowloris herd cannot pin the table while live clients knock.
  std::size_t max_tcp_conns = 64;
  // Idle timeout for accepted TCP connections (slowloris defense): a
  // connection with no read/write activity for this long is closed by the
  // periodic sweep. 0 disables the sweep.
  SimTime tcp_idle_timeout = 10 * kSecond;
  // Reassembly-buffer cap for accepted TCP connections. The default admits
  // any legal DNS frame (2-byte length prefix + 65535 bytes); a serving
  // tier that never answers near the frame limit can set it lower so a
  // client streaming an over-claimed frame is shed early.
  std::size_t tcp_max_buffered = 2 + 65535;
  // UDP syscall batching (DESIGN.md §14): drain up to this many datagrams
  // per recvmmsg call, and queue outbound datagrams per endpoint, flushing
  // with one sendmmsg when the batch fills or before the next poll. 0 or 1
  // disables batching; when the kernel rejects the mmsg calls (ENOSYS /
  // EINVAL) the transport falls back to recvfrom/sendto permanently, so the
  // option is always safe to leave on.
  std::size_t udp_batch = 16;
};

class WireTransport : public Transport {
 public:
  explicit WireTransport(WireAddressMap map, WireTransportOptions options = {});
  ~WireTransport() override;
  WireTransport(const WireTransport&) = delete;
  WireTransport& operator=(const WireTransport&) = delete;

  SimTime now() const override { return loop_.now(); }
  std::uint64_t schedule(SimTime delay, TimerHandler fn) override {
    return loop_.schedule(delay, std::move(fn));
  }
  void cancel(std::uint64_t timer_id) override { loop_.cancel(timer_id); }

  void bind(const IpAddress& address, DatagramHandler handler) override;
  void unbind(const IpAddress& address) override;
  bool is_bound(const IpAddress& address) const override;

  // Port fields on Datagram are not modelled here (the kernel owns real
  // ports); the base-class forwarding overload is exactly right.
  using Transport::send;
  void send(const IpAddress& source, const IpAddress& destination,
            Bytes payload, bool tcp = false) override;

  // Drive until idle: no live timers and no queued TCP writes. Endpoint
  // workloads hold a timeout timer per outstanding query, so this returns
  // when the workload above has finished (same contract as SimNetwork).
  std::size_t run(std::size_t max_events = SIZE_MAX) override;

  // Serve until stop(). Used by dnsboot-serve workers; stop() is safe from
  // another thread or a signal handler.
  void run_forever();
  void stop();

  std::uint64_t datagrams_sent() const override { return datagrams_sent_; }
  std::uint64_t datagrams_delivered() const override {
    return datagrams_delivered_;
  }
  std::uint64_t bytes_sent() const override { return bytes_sent_; }
  std::uint64_t datagrams_unroutable() const { return datagrams_unroutable_; }
  std::uint64_t tcp_connections_opened() const { return tcp_opened_; }
  std::uint64_t tcp_connections_accepted() const { return tcp_accepted_; }
  std::uint64_t oversized_tcp_dropped() const { return oversized_tcp_; }
  std::uint64_t tcp_evicted_idle() const { return tcp_evicted_idle_; }
  std::uint64_t tcp_evicted_cap() const { return tcp_evicted_cap_; }
  std::uint64_t malformed_shed() const { return malformed_shed_; }
  // Currently-open accepted (server-side) TCP connections.
  std::size_t accepted_tcp_conns() const { return accepted_conns_; }

  // Every counter above, by metric name (dnsboot_wire_*). Counters are
  // written only by the transport's own thread; a scrape thread may read
  // concurrently (dnsboot-serve's /metrics does).
  const obs::MetricsRegistry* metrics_registry() const override {
    return &metrics_;
  }

  const WireAddressMap& address_map() const { return map_; }
  // First fatal socket/loop error; empty when healthy. Callers check this
  // after binding serving endpoints (ports may be taken).
  const std::string& error() const {
    return error_.empty() ? loop_.error() : error_;
  }

 private:
  struct Endpoint {
    IpAddress vaddr;
    DatagramHandler handler;
    int udp_fd = -1;
    int tcp_listen_fd = -1;  // serving endpoints only
    RealEndpoint real;       // bound real address
    // Outbound UDP datagrams queued for one sendmmsg flush. Queued at most
    // one poll iteration: send() flushes at udp_batch, the run loops flush
    // before every poll, and a flush always empties the queue (unsendable
    // tails drop with plain UDP-loss semantics).
    std::vector<std::pair<RealEndpoint, Bytes>> udp_outq;
    bool udp_queued = false;  // true while on udp_pending_
  };
  struct TcpConn {
    int fd = -1;
    IpAddress local_vaddr;  // endpoint this connection belongs to
    IpAddress peer_vaddr;   // static (client-opened) or session (accepted)
    Bytes outbuf;
    std::size_t out_off = 0;
    TcpFrameReassembler reassembler;
    bool connecting = false;
    // A fatal write error inside a nested send (while feed() is walking this
    // connection's buffer) must not destroy the object mid-iteration; the
    // flag defers teardown to the owning on_conn_event frame.
    bool broken = false;
    // Server-side (accepted) connections are subject to the cap and the
    // idle sweep; client-opened connections are the transport's own.
    bool accepted = false;
    SimTime last_activity = 0;
  };

  void open_serving_sockets(Endpoint* endpoint);
  void open_client_socket(Endpoint* endpoint);
  void watch_udp(Endpoint* endpoint);
  void watch_listener(Endpoint* endpoint);
  void on_udp_readable(Endpoint* endpoint);
  void recv_udp_unbatched(int fd, const IpAddress& vaddr);
  void send_udp_now(int fd, const RealEndpoint& real, BytesView payload);
  // sendmmsg flush of one endpoint's queue / of every queued endpoint.
  void flush_endpoint_udp(Endpoint* endpoint);
  void flush_udp_sends();
  void on_accept_ready(Endpoint* endpoint);
  void on_conn_event(TcpConn* conn, std::uint32_t events);
  void queue_frame(TcpConn* conn, BytesView payload);
  void flush_conn(TcpConn* conn);
  void update_conn_interest(TcpConn* conn);
  void close_conn(TcpConn* conn);
  TcpConn* open_client_conn(const IpAddress& local_vaddr,
                            const IpAddress& peer_vaddr,
                            const RealEndpoint& real);
  IpAddress session_address_for(const RealEndpoint& real);
  void deliver(const IpAddress& source, const IpAddress& destination,
               BytesView payload, bool tcp);
  void fail(const std::string& what);
  std::size_t pending_tcp_writes() const;
  // Slowloris defenses: evict the oldest-idle accepted connection (cap
  // pressure), and the periodic idle sweep behind it.
  void evict_for_cap();
  void sweep_idle_conns();
  // (Re)arm the sweep timer. It exists only while accepted connections do:
  // run() idles on "no live timers", and a standing sweep timer on a client
  // transport would keep run() spinning forever.
  void arm_idle_sweep();

  // Threading contract (enforced under DNSBOOT_VERIFY): everything below is
  // owned by the thread that calls run()/run_forever()/poll_once(). A
  // transport may be *built* on one thread and *run* on another — that
  // handoff is the run_forever() entry, which re-tags the metrics counters
  // (MetricsRegistry::verify_reset_writers) and is where loop ownership is
  // first asserted. stop_ is the one cross-thread flag; the eventfd wakeup
  // inside EventLoop provides the ordering.
  WireAddressMap map_;
  WireTransportOptions options_;
  EventLoop loop_;
  std::atomic<bool> stop_{false};

  std::unordered_map<IpAddress, std::unique_ptr<Endpoint>, IpAddressHash>
      endpoints_;
  // Live TCP connections keyed by peer virtual address (static for client
  // connections, session for accepted ones) — exactly the key send() has.
  std::unordered_map<IpAddress, std::unique_ptr<TcpConn>, IpAddressHash>
      tcp_conns_;
  // Transient UDP peers: session vaddr -> real endpoint (reply routing) and
  // real endpoint -> session vaddr (dedupe inbound).
  std::unordered_map<IpAddress, RealEndpoint, IpAddressHash> udp_sessions_;
  std::unordered_map<std::uint64_t, IpAddress> udp_sessions_by_real_;
  std::uint64_t next_session_ = 0;
  std::size_t accepted_conns_ = 0;
  std::uint64_t idle_sweep_timer_ = 0;  // 0 when not armed

  Bytes recv_buffer_;
  // Per-message receive buffers for recvmmsg, udp_batch × 65535, allocated
  // on the first batched read. Endpoints with queued outbound datagrams
  // (ordered only for bookkeeping — flush order does not affect delivery).
  std::vector<Bytes> mmsg_buffers_;
  std::vector<Endpoint*> udp_pending_;
  // Sticky runtime fallbacks: flipped off after the kernel rejects the
  // batched syscall (ENOSYS/EINVAL), never retried.
  bool mmsg_recv_ok_ = true;
  bool mmsg_send_ok_ = true;
  std::string error_;

  // Registry before its views (members initialize in declaration order).
  obs::MetricsRegistry metrics_;
  obs::CounterRef datagrams_sent_{
      metrics_.counter("dnsboot_wire_datagrams_sent")};
  obs::CounterRef datagrams_delivered_{
      metrics_.counter("dnsboot_wire_datagrams_delivered")};
  obs::CounterRef bytes_sent_{metrics_.counter("dnsboot_wire_bytes_sent")};
  obs::CounterRef datagrams_unroutable_{
      metrics_.counter("dnsboot_wire_datagrams_unroutable")};
  obs::CounterRef tcp_opened_{metrics_.counter("dnsboot_wire_tcp_opened")};
  obs::CounterRef tcp_accepted_{
      metrics_.counter("dnsboot_wire_tcp_accepted")};
  obs::CounterRef oversized_tcp_{
      metrics_.counter("dnsboot_wire_oversized_tcp_dropped")};
  obs::CounterRef tcp_evicted_idle_{
      metrics_.counter("dnsboot_wire_tcp_evicted_idle")};
  obs::CounterRef tcp_evicted_cap_{
      metrics_.counter("dnsboot_wire_tcp_evicted_cap")};
  obs::CounterRef malformed_shed_{
      metrics_.counter("dnsboot_wire_malformed_shed")};
  // mmsg batching effectiveness: one tick per recvmmsg/sendmmsg syscall
  // that moved at least one datagram (smoke scripts assert these are a
  // small fraction of the datagram counters when batching is on).
  obs::CounterRef udp_recv_batches_{
      metrics_.counter("dnsboot_wire_udp_recv_batches")};
  obs::CounterRef udp_send_batches_{
      metrics_.counter("dnsboot_wire_udp_send_batches")};
};

}  // namespace dnsboot::net
