#include "net/wire/frame.hpp"

namespace dnsboot::net {

bool append_tcp_frame(BytesView payload, Bytes* out) {
  if (payload.size() > 0xffff) return false;
  out->push_back(static_cast<std::uint8_t>(payload.size() >> 8));
  out->push_back(static_cast<std::uint8_t>(payload.size() & 0xff));
  out->insert(out->end(), payload.begin(), payload.end());
  return true;
}

bool TcpFrameReassembler::feed(BytesView data, const FrameHandler& on_frame) {
  if (failed_) return false;
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  while (true) {
    std::size_t available = buffer_.size() - consumed_;
    if (available < 2) break;
    std::size_t length = (static_cast<std::size_t>(buffer_[consumed_]) << 8) |
                         buffer_[consumed_ + 1];
    if (available < 2 + length) break;
    on_frame(BytesView(buffer_.data() + consumed_ + 2, length));
    ++frames_emitted_;
    consumed_ += 2 + length;
  }
  // Compact once the consumed prefix dominates, so the buffer never holds
  // more than one partial frame plus the chunk that completed the last one.
  if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > 0xffff)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  if (buffer_.size() - consumed_ > max_buffered_) {
    failed_ = true;
    return false;
  }
  return true;
}

}  // namespace dnsboot::net
