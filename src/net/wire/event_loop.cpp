#include "net/wire/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#if defined(DNSBOOT_VERIFY)
#include "base/verify.hpp"
#endif

namespace dnsboot::net {

#if defined(DNSBOOT_VERIFY)
// RAII poll ownership: claims poll_owner_ for the duration of one poll()
// pass, failing on re-entry (same thread) or concurrent polling (another
// thread). Releases only if this frame made the claim, so a returning
// failure handler (tests) leaves the outer frame's claim intact.
class EventLoopPollScope {
 public:
  explicit EventLoopPollScope(EventLoop& loop) : loop_(loop) {
    const std::uint64_t me = verify::thread_tag();
    std::uint64_t expected = 0;
    // audit-allow: A004 CAS claim; verifier state needs no ordering
    claimed_ = loop_.poll_owner_.compare_exchange_strong(
        expected, me, std::memory_order_relaxed);
    if (!claimed_) {
      verify::fail(expected == me ? "reactor-reentrancy"
                                  : "loop-concurrent-poll",
                   expected == me
                       ? "poll() re-entered from inside a dispatched handler"
                       : "poll() entered while another thread is polling "
                         "this loop");
    }
  }
  ~EventLoopPollScope() {
    // audit-allow: A004 releasing the verifier claim needs no ordering
    if (claimed_) loop_.poll_owner_.store(0, std::memory_order_relaxed);
  }
  EventLoopPollScope(const EventLoopPollScope&) = delete;
  EventLoopPollScope& operator=(const EventLoopPollScope&) = delete;

 private:
  EventLoop& loop_;
  bool claimed_ = false;
};

void EventLoop::verify_not_mid_poll(const char* op) const {
  const std::uint64_t owner = poll_owner_.load(std::memory_order_relaxed);
  if (owner != 0 && owner != verify::thread_tag()) {
    verify::fail("loop-cross-thread",
                 std::string(op) +
                     " called from another thread while a poll is in "
                     "flight (only wakeup() is cross-thread-safe)");
  }
}
#endif

namespace {

SimTime monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<SimTime>(ts.tv_sec) * 1'000'000 +
         static_cast<SimTime>(ts.tv_nsec) / 1'000;
}

}  // namespace

EventLoop::EventLoop() {
  epoch_us_ = monotonic_us();
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    error_ = std::string("epoll_create1: ") + std::strerror(errno);
    return;
  }
  wakeup_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) {
    error_ = std::string("eventfd: ") + std::strerror(errno);
    return;
  }
  watch(wakeup_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t drain = 0;
    while (read(wakeup_fd_, &drain, sizeof drain) == sizeof drain) {
    }
  });
}

EventLoop::~EventLoop() {
  if (wakeup_fd_ >= 0) close(wakeup_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

SimTime EventLoop::now() const { return monotonic_us() - epoch_us_; }

std::uint64_t EventLoop::schedule(SimTime delay, TimerHandler fn) {
#if defined(DNSBOOT_VERIFY)
  verify_not_mid_poll("schedule()");
#endif
  std::uint64_t id = next_timer_id_++;
  TimerEntry entry{id, std::max(tick_of(now() + delay), current_tick_ + 1)};
  timers_.emplace(id, std::move(fn));
  ++live_timers_;
  place(entry);
  return id;
}

void EventLoop::cancel(std::uint64_t timer_id) {
#if defined(DNSBOOT_VERIFY)
  verify_not_mid_poll("cancel()");
#endif
  // Lazy cancellation: drop the handler now, let the wheel entry drain when
  // its slot comes around (same bounded-bookkeeping contract as SimNetwork).
  if (timers_.erase(timer_id) > 0) --live_timers_;
}

void EventLoop::place(TimerEntry entry) {
  std::uint64_t delta = entry.expiry_tick - current_tick_;
  if (delta >= (1ull << (kWheelBits * kLevels))) {
    // Past the wheel horizon: park instead of wrapping into the top level,
    // where the entry would be cascaded (and re-placed) once per top-level
    // wrap until its final lap. advance() re-admits it when in range.
    overflow_.emplace(entry.expiry_tick, entry.id);
    return;
  }
  for (int level = 0; level < kLevels; ++level) {
    if (delta < (1ull << (kWheelBits * (level + 1))) ||
        level == kLevels - 1) {
      std::size_t slot =
          (entry.expiry_tick >> (kWheelBits * level)) & (kWheelSlots - 1);
      wheel_[level][slot].push_back(entry);
      return;
    }
  }
}

std::size_t EventLoop::advance(std::uint64_t target_tick) {
  std::size_t fired = 0;
  // Re-admit parked timers whose expiry is now within the wheel horizon.
  // The horizon (~51 days) dwarfs any poll interval, so checking once per
  // advance is always early enough.
  while (!overflow_.empty()) {
    const auto it = overflow_.begin();
    const std::uint64_t expiry = it->first;
    if (expiry > current_tick_ &&
        expiry - current_tick_ >= (1ull << (kWheelBits * kLevels))) {
      break;
    }
    const std::uint64_t id = it->second;
    overflow_.erase(it);
    if (timers_.find(id) == timers_.end()) continue;  // cancelled while parked
    // Clamp overdue expiries forward so the level-0 guard fires them on the
    // next tick instead of computing a wrapped delta.
    place(TimerEntry{id, expiry > current_tick_ ? expiry : current_tick_ + 1});
  }
  std::vector<TimerEntry> pending;
  while (current_tick_ < target_tick) {
    ++current_tick_;
    // Cascade higher levels whenever this level's index wrapped to 0.
    for (int level = 1; level < kLevels; ++level) {
      if ((current_tick_ & ((1ull << (kWheelBits * level)) - 1)) != 0) break;
      std::size_t slot =
          (current_tick_ >> (kWheelBits * level)) & (kWheelSlots - 1);
      pending.swap(wheel_[level][slot]);
      for (TimerEntry& entry : pending) {
        if (timers_.find(entry.id) == timers_.end()) continue;  // cancelled
        place(entry);
      }
      pending.clear();
    }
    std::size_t slot = current_tick_ & (kWheelSlots - 1);
    if (wheel_[0][slot].empty()) continue;
    pending.swap(wheel_[0][slot]);
    for (TimerEntry& entry : pending) {
      auto it = timers_.find(entry.id);
      if (it == timers_.end()) continue;  // cancelled
      if (entry.expiry_tick > current_tick_) {
        // A future round of this slot; put it back.
        wheel_[0][slot].push_back(entry);
        continue;
      }
      TimerHandler fn = std::move(it->second);
      timers_.erase(it);
      --live_timers_;
      fn();
      ++fired;
    }
    pending.clear();
  }
  return fired;
}

SimTime EventLoop::next_timer_delay() const {
  if (live_timers_ == 0) return kSimTimeForever;
  // Scan the level-0 window for the earliest live entry; if the next expiry
  // lives higher up, wait only until the next cascade boundary — poll()
  // re-evaluates after every advance, so progress is guaranteed.
  for (std::uint64_t tick = current_tick_ + 1;
       tick <= current_tick_ + kWheelSlots; ++tick) {
    for (const TimerEntry& entry : wheel_[0][tick & (kWheelSlots - 1)]) {
      if (entry.expiry_tick != tick) continue;
      if (timers_.find(entry.id) == timers_.end()) continue;
      SimTime expiry_us = tick << kTickShift;
      SimTime now_us = now();
      return expiry_us > now_us ? expiry_us - now_us : 0;
    }
  }
  std::uint64_t boundary = (current_tick_ | (kWheelSlots - 1)) + 1;
  SimTime boundary_us = boundary << kTickShift;
  SimTime now_us = now();
  return boundary_us > now_us ? boundary_us - now_us : 0;
}

std::size_t EventLoop::poll(SimTime max_wait) {
#if defined(DNSBOOT_VERIFY)
  EventLoopPollScope poll_scope(*this);
#endif
  if (epoll_fd_ < 0) return 0;
  SimTime wait = std::min(max_wait, next_timer_delay());
  int timeout_ms;
  if (wait == kSimTimeForever) {
    timeout_ms = -1;
  } else {
    // Round up so we never spin a whole tick busy-waiting on a near timer.
    timeout_ms = static_cast<int>(
        std::min<SimTime>((wait + 999) / 1000, 60 * 1000));
  }

  epoll_event events[64];
  int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  std::size_t dispatched = 0;
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    auto it = io_.find(fd);
    if (it == io_.end()) continue;  // unwatched by an earlier handler
    // Copy: the handler may watch()/unwatch() and invalidate the iterator.
    IoHandler handler = it->second;
    handler(events[i].events);
    ++dispatched;
  }
  dispatched += advance(tick_of(now()));
  return dispatched;
}

void EventLoop::watch(int fd, std::uint32_t events, IoHandler handler) {
#if defined(DNSBOOT_VERIFY)
  verify_not_mid_poll("watch()");
#endif
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  auto it = io_.find(fd);
  if (it == io_.end()) {
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      if (error_.empty()) {
        error_ = std::string("epoll_ctl add: ") + std::strerror(errno);
      }
      return;
    }
    io_.emplace(fd, std::move(handler));
  } else {
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0 && error_.empty()) {
      error_ = std::string("epoll_ctl mod: ") + std::strerror(errno);
    }
    it->second = std::move(handler);
  }
}

void EventLoop::unwatch(int fd) {
#if defined(DNSBOOT_VERIFY)
  verify_not_mid_poll("unwatch()");
#endif
  if (io_.erase(fd) > 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

void EventLoop::wakeup() {
  std::uint64_t one = 1;
  // Best-effort: a full eventfd counter already guarantees a wakeup.
  [[maybe_unused]] ssize_t rc = write(wakeup_fd_, &one, sizeof one);
}

}  // namespace dnsboot::net
