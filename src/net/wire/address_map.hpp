// WireAddressMap — the bridge between the simulation's address space and
// real sockets.
//
// The ecosystem builder hands every nameserver a synthetic address
// (10.x.y.z / fd00::…). Over the wire those endpoints become loopback
// sockets: the map assigns each virtual address a real 127.0.0.1 port,
// sequentially from a base port, in registration order. Both sides of a
// wire run (dnsboot-serve and dnsboot-survey --wire) build the same
// ecosystem from the same seed and register addresses in the same
// deterministic order, so they derive identical maps with no port exchange
// protocol — the seed *is* the shared configuration.
//
// Unknown real peers (a scanner's ephemeral client socket, an accepted TCP
// connection) get transient "session" virtual addresses from the RFC 6598
// CGNAT range 100.64.0.0/10, so server code keeps addressing replies by
// IpAddress exactly as it does on the simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"

namespace dnsboot::net {

// A real IPv4 UDP/TCP endpoint (host byte order).
struct RealEndpoint {
  std::uint32_t host = 0;
  std::uint16_t port = 0;

  bool operator==(const RealEndpoint& other) const {
    return host == other.host && port == other.port;
  }
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(host) << 16) | port;
  }
  std::string to_text() const;
};

// Parse "127.0.0.1:5300". Returns nullopt on malformed input.
std::optional<RealEndpoint> parse_endpoint(const std::string& text);

class WireAddressMap {
 public:
  WireAddressMap() = default;
  explicit WireAddressMap(RealEndpoint base) : base_(base) {}

  // Register a virtual address; it gets the next sequential port. Repeat
  // registrations are idempotent. Returns false when the port space above
  // the base is exhausted (the world is too large for one host:port range).
  bool add(const IpAddress& virtual_address);

  std::optional<RealEndpoint> real_for(const IpAddress& virtual_address) const;
  std::optional<IpAddress> virtual_for(const RealEndpoint& real) const;

  std::size_t size() const { return entries_.size(); }
  RealEndpoint base() const { return base_; }
  // Registration-ordered (virtual, real) pairs.
  const std::vector<std::pair<IpAddress, RealEndpoint>>& entries() const {
    return entries_;
  }

 private:
  RealEndpoint base_;
  std::vector<std::pair<IpAddress, RealEndpoint>> entries_;
  std::unordered_map<IpAddress, RealEndpoint, IpAddressHash> by_virtual_;
  std::unordered_map<std::uint64_t, IpAddress> by_real_;
};

}  // namespace dnsboot::net
