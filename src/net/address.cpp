#include "net/address.hpp"

#include "dns/rdata.hpp"

namespace dnsboot::net {

IpAddress IpAddress::v4(std::array<std::uint8_t, 4> octets) {
  IpAddress a;
  a.is_v6_ = false;
  std::copy(octets.begin(), octets.end(), a.bytes_.begin());
  return a;
}

IpAddress IpAddress::v6(std::array<std::uint8_t, 16> octets) {
  IpAddress a;
  a.is_v6_ = true;
  a.bytes_ = octets;
  return a;
}

IpAddress IpAddress::synthetic_v4(std::uint32_t index) {
  // 10.0.0.0/8 gives ~16.7M distinct simulated hosts.
  return v4({10, static_cast<std::uint8_t>(index >> 16),
             static_cast<std::uint8_t>(index >> 8),
             static_cast<std::uint8_t>(index)});
}

IpAddress IpAddress::synthetic_v6(std::uint64_t index) {
  std::array<std::uint8_t, 16> b{};
  b[0] = 0xfd;
  for (int i = 0; i < 8; ++i) {
    b[15 - i] = static_cast<std::uint8_t>(index >> (8 * i));
  }
  return v6(b);
}

Result<IpAddress> IpAddress::from_text(const std::string& text) {
  if (text.find(':') != std::string::npos) {
    DNSBOOT_TRY(octets, dns::ipv6_from_text(text));
    return v6(octets);
  }
  DNSBOOT_TRY(octets, dns::ipv4_from_text(text));
  return v4(octets);
}

std::string IpAddress::to_text() const {
  if (is_v6_) return dns::ipv6_to_text(bytes_);
  return dns::ipv4_to_text({bytes_[0], bytes_[1], bytes_[2], bytes_[3]});
}

}  // namespace dnsboot::net
