// Simulated network addresses. An IpAddress is either IPv4 or IPv6; the
// simulator treats them as opaque endpoint identities (there is no routing —
// delivery is by exact address, with anycast pools layered on top).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "base/result.hpp"

namespace dnsboot::net {

class IpAddress {
 public:
  IpAddress() = default;

  static IpAddress v4(std::array<std::uint8_t, 4> octets);
  static IpAddress v6(std::array<std::uint8_t, 16> octets);
  // Deterministic synthetic addresses for the ecosystem generator: maps an
  // index into 10.x.y.z (v4) or fd00::/8 space (v6).
  static IpAddress synthetic_v4(std::uint32_t index);
  static IpAddress synthetic_v6(std::uint64_t index);

  static Result<IpAddress> from_text(const std::string& text);

  bool is_v6() const { return is_v6_; }
  const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }
  std::string to_text() const;

  auto operator<=>(const IpAddress&) const = default;

 private:
  // IPv4 stored in the first 4 bytes.
  std::array<std::uint8_t, 16> bytes_{};
  bool is_v6_ = false;
};

// FNV-1a over the address bytes + family, for the unordered routing and
// pacing tables on the datagram hot path.
struct IpAddressHash {
  std::size_t operator()(const IpAddress& address) const noexcept {
    std::uint64_t h = 14695981039346656037ull;
    for (std::uint8_t b : address.bytes()) {
      h ^= b;
      h *= 1099511628211ull;
    }
    h ^= address.is_v6() ? 0x76u : 0x34u;
    h *= 1099511628211ull;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace dnsboot::net
