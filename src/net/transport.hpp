// Transport — the network contract the DNS endpoints (query engine,
// scanner, authoritative servers) are written against.
//
// Two implementations exist (DESIGN.md §10):
//   * SimNetwork   — the deterministic discrete-event simulator; time is
//                    simulated and free, faults are scripted.
//   * WireTransport — real non-blocking UDP/TCP sockets on an epoll event
//                    loop; time is the monotonic clock.
// Both carry the same RFC 1035 wire bytes, so everything above this line is
// oblivious to whether a datagram crossed a heap or a kernel.
#pragma once

#include <cstdint>
#include <functional>

#include "base/bytes.hpp"
#include "net/address.hpp"

namespace dnsboot::obs {
class MetricsRegistry;
}  // namespace dnsboot::obs

namespace dnsboot::net {

// Time in microseconds. On the simulator this is simulated time since the
// run started; on the wire it is monotonic-clock time since the transport
// was created. Endpoints only ever compute with differences and delays, so
// the epoch never matters.
using SimTime = std::uint64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * 1000;
// Sentinel for "never ends" in fault schedules.
inline constexpr SimTime kSimTimeForever = UINT64_MAX;

struct Datagram {
  IpAddress source;
  IpAddress destination;
  Bytes payload;
  // Transport marker: TCP carries arbitrarily large payloads (no server-side
  // truncation); UDP is subject to the receiver's advertised limit. Both
  // transports deliver the two the same way — the flag only informs
  // endpoints (TC-bit fallback, AXFR-over-TCP-only).
  bool tcp = false;
  // UDP ports, modelled only where the transport says models_ports(). 0 means
  // "not modelled": the wire transport leaves these 0 because the kernel
  // already enforces port routing, and endpoints skip port checks for 0.
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  // Ground-truth marker set by the simulator's attack layer on crafted
  // traffic. Endpoints MUST NOT consult it when deciding whether to accept a
  // datagram (that would be cheating); it exists so accounting can prove a
  // forgery that slipped past every check was in fact accepted.
  bool injected = false;
};

class Transport {
 public:
  using DatagramHandler = std::function<void(const Datagram&)>;
  using TimerHandler = std::function<void()>;

  virtual ~Transport() = default;

  virtual SimTime now() const = 0;

  // Run `fn` at now() + delay. Returns a timer id usable with cancel();
  // ids are never 0, so 0 is a safe "no timer" sentinel for callers.
  virtual std::uint64_t schedule(SimTime delay, TimerHandler fn) = 0;
  virtual void cancel(std::uint64_t timer_id) = 0;

  // Attach a handler to an address. Binding an already-bound address
  // replaces the handler (used for fail-over in tests).
  virtual void bind(const IpAddress& address, DatagramHandler handler) = 0;
  virtual void unbind(const IpAddress& address) = 0;
  virtual bool is_bound(const IpAddress& address) const = 0;

  // Queue a datagram for delivery. Lost datagrams are silently dropped (the
  // caller sees a timeout, as on a real network). `tcp` requests stream
  // semantics: the wire transport really does open a TCP connection and
  // frame the payload; the simulator just marks the delivery.
  virtual void send(const IpAddress& source, const IpAddress& destination,
                    Bytes payload, bool tcp = false) = 0;

  // Full-datagram send for endpoints that stamp ports. The default forwards
  // to the legacy overload, discarding port fields — exactly right for
  // transports that don't model ports.
  virtual void send(Datagram dgram) {
    send(dgram.source, dgram.destination, std::move(dgram.payload), dgram.tcp);
  }

  // Whether Datagram port fields survive this transport. When false,
  // endpoints skip source-port randomization and port checks (the kernel
  // does both for the wire transport).
  virtual bool models_ports() const { return false; }

  // Drive the transport until it is idle — no scheduled timer remains and
  // no in-flight work is pending — or `max_events` events fire. Returns the
  // number of events processed. Endpoint completion is timer-based (every
  // outstanding query holds a timeout timer), so "no timers" means the
  // workload above has finished on either implementation.
  virtual std::size_t run(std::size_t max_events = SIZE_MAX) = 0;

  // Traffic counters (the survey reports these).
  virtual std::uint64_t datagrams_sent() const = 0;
  virtual std::uint64_t datagrams_delivered() const = 0;
  virtual std::uint64_t bytes_sent() const = 0;

  // The transport's metrics registry (dnsboot_net_* / dnsboot_wire_*
  // counters), merged into the survey's registry by run_survey. nullptr for
  // transports that don't keep one.
  virtual const obs::MetricsRegistry* metrics_registry() const {
    return nullptr;
  }
};

}  // namespace dnsboot::net
