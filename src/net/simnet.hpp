// SimNetwork — a discrete-event network simulator carrying UDP-style
// datagrams between simulated endpoints.
//
// This is the substitution for the live Internet (see DESIGN.md §1): the
// scanner and the authoritative servers exchange real DNS wire-format
// messages over it, while latency, jitter, loss and anycast behaviour are
// modelled here. Everything is deterministic given the seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "base/bytes.hpp"
#include "base/rng.hpp"
#include "net/address.hpp"

namespace dnsboot::net {

// Simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * 1000;

struct Datagram {
  IpAddress source;
  IpAddress destination;
  Bytes payload;
  // Transport marker: TCP carries arbitrarily large payloads (no server-side
  // truncation); UDP is subject to the receiver's advertised limit. The
  // simulator delivers both the same way — the flag only informs endpoints.
  bool tcp = false;
};

// Per-path link characteristics.
struct LinkModel {
  SimTime base_latency = 10 * kMillisecond;  // one-way
  SimTime jitter = 2 * kMillisecond;         // uniform [0, jitter)
  double loss_rate = 0.0;                    // per-datagram drop probability
};

class SimNetwork {
 public:
  using DatagramHandler = std::function<void(const Datagram&)>;
  using TimerHandler = std::function<void()>;

  explicit SimNetwork(std::uint64_t seed);

  SimTime now() const { return now_; }

  // Run `fn` at now() + delay. Returns a timer id usable with cancel().
  std::uint64_t schedule(SimTime delay, TimerHandler fn);
  void cancel(std::uint64_t timer_id);

  // Attach a handler to an address. Binding an already-bound address
  // replaces the handler (used for fail-over in tests).
  void bind(const IpAddress& address, DatagramHandler handler);
  void unbind(const IpAddress& address);
  bool is_bound(const IpAddress& address) const;

  // Queue a datagram for delivery after the path's modelled latency. Lost
  // datagrams are silently dropped (the caller sees a timeout, as on a real
  // network).
  void send(const IpAddress& source, const IpAddress& destination,
            Bytes payload, bool tcp = false);

  void set_default_link(const LinkModel& model) { default_link_ = model; }
  // Override the link model for datagrams *to* a given destination.
  void set_link_to(const IpAddress& destination, const LinkModel& model);

  // Process events until the queue is empty or `max_events` fire.
  // Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);
  // Process events with time <= deadline.
  std::size_t run_until(SimTime deadline);

  // Statistics (for the scanner feasibility bench, paper App. D).
  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t datagrams_delivered() const { return datagrams_delivered_; }
  std::uint64_t datagrams_dropped() const { return datagrams_dropped_; }
  std::uint64_t datagrams_unroutable() const { return datagrams_unroutable_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t sequence;  // FIFO tie-break for equal timestamps
    std::uint64_t timer_id;  // 0 for datagram deliveries
    TimerHandler action;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  const LinkModel& link_for(const IpAddress& destination) const;
  void push_event(SimTime at, std::uint64_t timer_id, TimerHandler action);

  SimTime now_ = 0;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t next_timer_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::map<std::uint64_t, bool> cancelled_;  // timer_id -> cancelled
  std::map<IpAddress, DatagramHandler> handlers_;
  std::map<IpAddress, LinkModel> link_overrides_;
  LinkModel default_link_;
  Rng rng_;

  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t datagrams_delivered_ = 0;
  std::uint64_t datagrams_dropped_ = 0;
  std::uint64_t datagrams_unroutable_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace dnsboot::net
