// SimNetwork — a discrete-event network simulator carrying UDP-style
// datagrams between simulated endpoints.
//
// This is the substitution for the live Internet (see DESIGN.md §1): the
// scanner and the authoritative servers exchange real DNS wire-format
// messages over it, while latency, jitter, loss and anycast behaviour are
// modelled here. Everything is deterministic given the seed.
//
// Beyond the per-link LinkModel, the simulator is a scriptable
// fault-injection harness: direction-keyed FaultProfiles add time-windowed
// blackholes, periodic link flaps, bursty loss, duplication, reordering and
// payload corruption — the fault classes a real scan meets (paper §3, §4.4).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/bytes.hpp"
#include "base/rng.hpp"
#include "net/address.hpp"
#include "net/transport.hpp"
#include "obs/stats.hpp"

namespace dnsboot::net {

// Per-path link characteristics.
struct LinkModel {
  SimTime base_latency = 10 * kMillisecond;  // one-way
  SimTime jitter = 2 * kMillisecond;         // uniform [0, jitter)
  double loss_rate = 0.0;                    // per-datagram drop probability
};

// Half-open interval of simulated time.
struct TimeWindow {
  SimTime start = 0;
  SimTime end = kSimTimeForever;

  bool contains(SimTime t) const { return t >= start && t < end; }
  bool is_forever() const { return start == 0 && end == kSimTimeForever; }
};

// A scriptable fault schedule for one direction of one link. All probability
// draws come from the network's seeded RNG, so a chaos run is reproducible.
// Drop classes are evaluated in order: blackhole, flap, burst, uniform loss;
// surviving datagrams may then be corrupted, reordered, or duplicated.
struct FaultProfile {
  // Independent per-datagram loss, on top of the LinkModel's rate.
  double loss_rate = 0.0;

  // Total loss inside any of these windows (route withdrawal / dead host).
  std::vector<TimeWindow> blackholes;

  // Periodic link flap: the link is down for the first `flap_down` of every
  // `flap_period` (shifted by `flap_phase`). Disabled when period is 0.
  SimTime flap_period = 0;
  SimTime flap_down = 0;
  SimTime flap_phase = 0;

  // Bursty loss (congestion episodes): each surviving datagram enters a
  // burst with probability `burst_enter`; for the next `burst_duration` of
  // simulated time datagrams drop with probability `burst_loss`.
  double burst_enter = 0.0;
  SimTime burst_duration = 0;
  double burst_loss = 1.0;

  // Non-drop faults on delivered datagrams.
  double duplicate_rate = 0.0;  // deliver a second, later copy
  double reorder_rate = 0.0;    // hold the datagram back by reorder_delay
  SimTime reorder_delay = 50 * kMillisecond;
  double corrupt_rate = 0.0;    // flip one payload bit

  // True when a blackhole window covers all of simulated time: no datagram
  // in this direction can ever arrive (the lint L106 predicate).
  bool permanently_dead() const {
    for (const auto& window : blackholes) {
      if (window.is_forever()) return true;
    }
    return false;
  }
};

// Per-fault-class drop/mutation counters (chaos benches assert on these).
// Since PR 5 this is a registry-backed view (obs/stats.hpp): the fields
// read like the old plain-uint64 struct, but the values live in the
// network's MetricsRegistry as dnsboot_net_fault_* counters and merge via
// MetricsRegistry::merge instead of a hand-written operator+=.
using FaultStats = obs::FaultStats;
using AttackStats = obs::AttackStats;

// One endpoint's attacker script (the ss2DNS threat model): whenever a UDP
// query toward the attacked address is observed on the wire, the attacker
// races the authentic answer with crafted traffic addressed back to the
// querier. Every knob defaults to off; a default AttackProfile is a no-op.
//
// The attacker's position decides what it knows:
//   * off-path (default): it sees that a query happened (a victim it is
//     targeting emitted traffic) but not the ID or source port — spoofed
//     candidates sweep guesses, which is the birthday attack the engine's
//     forgery-abort defense exists for.
//   * on-path (spoof_known_id / spoof_known_port): it read the packet, so
//     forged answers carry the true ID (and true port) — the case only the
//     DNSSEC validation chain can catch, which is why accepted-forgery
//     accounting exists at all.
struct AttackProfile {
  // Off-path spoof sweep: this many forged NXDOMAIN answers per observed
  // query, each with an independently guessed ID (and guessed source port
  // in the engine's ephemeral range), timed to beat the authentic answer.
  int spoof_candidates = 0;
  // On-path knowledge escalation for the spoofed answers.
  bool spoof_known_id = false;
  bool spoof_known_port = false;
  // Wrong-ID flood: junk answers carrying the right question but random IDs
  // across the whole 16-bit space (cache-poisoning chaff).
  int flood_responses = 0;
  // Wrong-tuple injection: the true ID and port, but a wrong source address
  // — what the engine's tuple check exists to reject.
  int wrong_source_responses = 0;
  // Truncation game: probability of injecting a forged TC=1 empty answer,
  // hoping to shove the victim onto a TCP path the attacker can stall.
  double tc_rate = 0.0;
  // Garbage: undecodable junk and oversized replies per observed query.
  int malformed_responses = 0;
  int oversized_responses = 0;

  bool any() const {
    return spoof_candidates > 0 || flood_responses > 0 ||
           wrong_source_responses > 0 || tc_rate > 0 ||
           malformed_responses > 0 || oversized_responses > 0;
  }
};

class SimNetwork : public Transport {
 public:
  explicit SimNetwork(std::uint64_t seed);

  SimTime now() const override { return now_; }

  // Run `fn` at now() + delay. Returns a timer id usable with cancel().
  std::uint64_t schedule(SimTime delay, TimerHandler fn) override;
  void cancel(std::uint64_t timer_id) override;

  // Outstanding (scheduled, neither fired nor cancelled) timers. The
  // bookkeeping must stay bounded by the number of live timers — long chaos
  // runs schedule millions of timers over their lifetime.
  std::size_t timer_bookkeeping_size() const { return live_timers_.size(); }

  // Attach a handler to an address. Binding an already-bound address
  // replaces the handler (used for fail-over in tests).
  void bind(const IpAddress& address, DatagramHandler handler) override;
  void unbind(const IpAddress& address) override;
  bool is_bound(const IpAddress& address) const override;

  // Queue a datagram for delivery after the path's modelled latency. Lost
  // datagrams are silently dropped (the caller sees a timeout, as on a real
  // network).
  void send(const IpAddress& source, const IpAddress& destination,
            Bytes payload, bool tcp = false) override;
  void send(Datagram dgram) override;
  // The simulator carries Datagram port fields end-to-end, so endpoints can
  // randomize and check source ports on it.
  bool models_ports() const override { return true; }

  void set_default_link(const LinkModel& model) { default_link_ = model; }
  // Override the link model for datagrams *to* a given destination.
  void set_link_to(const IpAddress& destination, const LinkModel& model);

  // Fault schedules are direction-keyed, which is what makes asymmetric
  // loss expressible: a `to` rule affects datagrams addressed to the
  // endpoint (queries), a `from` rule affects datagrams it originates
  // (responses). Both rules apply when both match.
  void set_faults_to(const IpAddress& destination, const FaultProfile& profile);
  void set_faults_from(const IpAddress& source, const FaultProfile& profile);
  void clear_faults();
  // The installed to-direction rule for an endpoint, or nullptr.
  const FaultProfile* faults_to(const IpAddress& destination) const;

  // Station an attacker watching traffic toward `target`. The attacker has
  // its own RNG (callers fork it per endpoint so plans are order-stable) and
  // its crafted datagrams bypass the fault rules and the network RNG
  // entirely: the legitimate event stream — timing, drops, corruption — is
  // bit-for-bit what it would be without the attacker. That isolation is
  // what makes the clean-vs-adversarial report-identity guarantee testable.
  void set_attack_on(const IpAddress& target, const AttackProfile& profile,
                     Rng rng);
  void clear_attacks();
  const AttackStats& attack_stats() const { return attack_stats_; }

  // Process events until the queue is empty or `max_events` fire.
  // Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX) override;
  // Process events with time <= deadline.
  std::size_t run_until(SimTime deadline);

  // Statistics (for the scanner feasibility bench, paper App. D).
  std::uint64_t datagrams_sent() const override { return datagrams_sent_; }
  std::uint64_t datagrams_delivered() const override {
    return datagrams_delivered_;
  }
  std::uint64_t datagrams_dropped() const { return datagrams_dropped_; }
  std::uint64_t datagrams_unroutable() const { return datagrams_unroutable_; }
  std::uint64_t bytes_sent() const override { return bytes_sent_; }
  // Lifetime total of events fired (throughput benches report events/sec).
  std::uint64_t events_processed() const { return events_processed_; }
  const FaultStats& fault_stats() const { return fault_stats_; }

  // Every SimNetwork counter above, by metric name (dnsboot_net_*).
  const obs::MetricsRegistry* metrics_registry() const override {
    return &metrics_;
  }

 private:
  // Move-only: events carry either a timer closure or a Datagram payload.
  // Datagram deliveries skip the std::function entirely — the run loop does
  // the handler lookup itself, so queueing a delivery allocates nothing
  // beyond the payload it already owns.
  struct Event {
    SimTime at = 0;
    std::uint64_t sequence = 0;  // FIFO tie-break for equal timestamps
    std::uint64_t timer_id = 0;  // 0 for datagram deliveries
    bool is_delivery = false;
    Datagram dgram;      // valid when is_delivery
    TimerHandler action; // valid otherwise

    Event() = default;
    Event(Event&&) = default;
    Event& operator=(Event&&) = default;
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;
  };
  // What the heap actually sifts: a trivially-copyable stub pointing at the
  // payload's slot. Heap swaps move 24 bytes instead of a full Event (whose
  // std::function move is an indirect manager call per swap).
  struct EventRef {
    SimTime at;
    std::uint64_t sequence;
    std::uint32_t slot;
  };
  struct EventOrder {
    bool operator()(const EventRef& a, const EventRef& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };
  // A fault rule plus its mutable burst state.
  struct FaultRule {
    FaultProfile profile;
    SimTime burst_until = 0;  // end of the current burst episode, if any
  };
  // An attacker stationed at one endpoint, with its private RNG.
  struct AttackRule {
    AttackProfile profile;
    Rng rng;
  };

  const LinkModel& link_for(const IpAddress& destination) const;
  void push_event(Event event);
  // Remove and return the earliest event (the (at, sequence) order is total,
  // so the heap pop is deterministic).
  Event pop_event();
  // Fire one drained event; returns false for a cancelled timer (which does
  // not count as processed).
  bool fire_event(Event& event);
  // Evaluate one fault rule against a datagram about to be queued. Returns
  // false when the datagram is dropped; otherwise accumulates extra latency
  // and the mutation flags.
  bool apply_fault_rule(FaultRule& rule, SimTime* extra_latency,
                        bool* duplicate, bool* corrupt);
  void deliver(Datagram dgram, SimTime latency);
  // Attack hook: if `query` is a UDP DNS query toward an attacked endpoint,
  // craft and queue the attacker's racing traffic. Uses only the rule's own
  // RNG and deliver() — never rng_ or the fault rules.
  void maybe_inject_attack(const Datagram& query);

  SimTime now_ = 0;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t next_timer_id_ = 1;
  // Binary min-heap on (at, sequence). The (at, sequence) order is total, so
  // pop order — and therefore the simulation — is independent of slot
  // numbering. Payloads live in slots_ and are reused via a free list.
  std::vector<EventRef> events_;
  std::vector<Event> slots_;
  std::vector<std::uint32_t> free_slots_;
  // Live-timer set: ids are inserted on schedule() and erased on cancel()
  // or when the event drains, so the bookkeeping never outgrows the number
  // of outstanding timers.
  std::unordered_set<std::uint64_t> live_timers_;
  std::unordered_map<IpAddress, DatagramHandler, IpAddressHash> handlers_;
  std::unordered_map<IpAddress, LinkModel, IpAddressHash> link_overrides_;
  std::unordered_map<IpAddress, FaultRule, IpAddressHash> faults_to_;
  std::unordered_map<IpAddress, FaultRule, IpAddressHash> faults_from_;
  std::unordered_map<IpAddress, AttackRule, IpAddressHash> attacks_;
  LinkModel default_link_;
  Rng rng_;

  // Declared before the counter views below: the views hold pointers into
  // this registry, and members initialize in declaration order.
  obs::MetricsRegistry metrics_;
  obs::CounterRef datagrams_sent_{metrics_.counter("dnsboot_net_datagrams_sent")};
  obs::CounterRef datagrams_delivered_{
      metrics_.counter("dnsboot_net_datagrams_delivered")};
  obs::CounterRef datagrams_dropped_{
      metrics_.counter("dnsboot_net_datagrams_dropped")};
  obs::CounterRef datagrams_unroutable_{
      metrics_.counter("dnsboot_net_datagrams_unroutable")};
  obs::CounterRef bytes_sent_{metrics_.counter("dnsboot_net_bytes_sent")};
  obs::CounterRef events_processed_{metrics_.counter("dnsboot_net_events")};
  FaultStats fault_stats_{metrics_};
  AttackStats attack_stats_{metrics_};
};

}  // namespace dnsboot::net
