#include "net/simnet.hpp"

#include <algorithm>

namespace dnsboot::net {

SimNetwork::SimNetwork(std::uint64_t seed) : rng_(seed) {
  events_.reserve(1024);
  slots_.reserve(1024);
}

void SimNetwork::push_event(Event event) {
  EventRef ref{event.at, event.sequence, 0};
  if (free_slots_.empty()) {
    ref.slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(event));
  } else {
    ref.slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[ref.slot] = std::move(event);
  }
  events_.push_back(ref);
  std::push_heap(events_.begin(), events_.end(), EventOrder{});
}

SimNetwork::Event SimNetwork::pop_event() {
  std::pop_heap(events_.begin(), events_.end(), EventOrder{});
  EventRef ref = events_.back();
  events_.pop_back();
  Event event = std::move(slots_[ref.slot]);
  free_slots_.push_back(ref.slot);
  return event;
}

bool SimNetwork::fire_event(Event& event) {
  // A timer event fires only if its id is still live; erasing on drain
  // keeps the bookkeeping bounded (it once grew monotonically).
  if (event.timer_id != 0 && live_timers_.erase(event.timer_id) == 0) {
    return false;
  }
  if (event.is_delivery) {
    auto it = handlers_.find(event.dgram.destination);
    if (it == handlers_.end()) {
      ++datagrams_unroutable_;
    } else {
      ++datagrams_delivered_;
      it->second(event.dgram);
    }
  } else {
    event.action();
  }
  return true;
}

std::uint64_t SimNetwork::schedule(SimTime delay, TimerHandler fn) {
  std::uint64_t id = next_timer_id_++;
  live_timers_.insert(id);
  Event event;
  event.at = now_ + delay;
  event.sequence = next_sequence_++;
  event.timer_id = id;
  event.action = std::move(fn);
  push_event(std::move(event));
  return id;
}

void SimNetwork::cancel(std::uint64_t timer_id) {
  live_timers_.erase(timer_id);
}

void SimNetwork::bind(const IpAddress& address, DatagramHandler handler) {
  handlers_[address] = std::move(handler);
}

void SimNetwork::unbind(const IpAddress& address) { handlers_.erase(address); }

bool SimNetwork::is_bound(const IpAddress& address) const {
  return handlers_.count(address) > 0;
}

const LinkModel& SimNetwork::link_for(const IpAddress& destination) const {
  auto it = link_overrides_.find(destination);
  return it == link_overrides_.end() ? default_link_ : it->second;
}

void SimNetwork::set_link_to(const IpAddress& destination,
                             const LinkModel& model) {
  link_overrides_[destination] = model;
}

void SimNetwork::set_faults_to(const IpAddress& destination,
                               const FaultProfile& profile) {
  faults_to_[destination] = FaultRule{profile, 0};
}

void SimNetwork::set_faults_from(const IpAddress& source,
                                 const FaultProfile& profile) {
  faults_from_[source] = FaultRule{profile, 0};
}

void SimNetwork::clear_faults() {
  faults_to_.clear();
  faults_from_.clear();
}

const FaultProfile* SimNetwork::faults_to(const IpAddress& destination) const {
  auto it = faults_to_.find(destination);
  return it == faults_to_.end() ? nullptr : &it->second.profile;
}

bool SimNetwork::apply_fault_rule(FaultRule& rule, SimTime* extra_latency,
                                  bool* duplicate, bool* corrupt) {
  const FaultProfile& p = rule.profile;
  // Drop classes, most to least absolute.
  for (const auto& window : p.blackholes) {
    if (window.contains(now_)) {
      ++fault_stats_.blackholed;
      return false;
    }
  }
  if (p.flap_period > 0 &&
      (now_ + p.flap_phase) % p.flap_period < p.flap_down) {
    ++fault_stats_.flap_dropped;
    return false;
  }
  bool in_burst = now_ < rule.burst_until;
  if (!in_burst && p.burst_enter > 0 && rng_.chance(p.burst_enter)) {
    rule.burst_until = now_ + p.burst_duration;
    in_burst = true;
  }
  if (in_burst && rng_.chance(p.burst_loss)) {
    ++fault_stats_.burst_dropped;
    return false;
  }
  if (p.loss_rate > 0 && rng_.chance(p.loss_rate)) {
    ++fault_stats_.fault_lost;
    return false;
  }
  // Mutations on the surviving datagram.
  if (p.reorder_rate > 0 && rng_.chance(p.reorder_rate)) {
    *extra_latency += p.reorder_delay;
    ++fault_stats_.reordered;
  }
  if (p.duplicate_rate > 0 && rng_.chance(p.duplicate_rate)) *duplicate = true;
  if (p.corrupt_rate > 0 && rng_.chance(p.corrupt_rate)) *corrupt = true;
  return true;
}

void SimNetwork::deliver(Datagram dgram, SimTime latency) {
  Event event;
  event.at = now_ + latency;
  event.sequence = next_sequence_++;
  event.is_delivery = true;
  event.dgram = std::move(dgram);
  push_event(std::move(event));
}

void SimNetwork::send(const IpAddress& source, const IpAddress& destination,
                      Bytes payload, bool tcp) {
  ++datagrams_sent_;
  bytes_sent_ += payload.size();
  const LinkModel& link = link_for(destination);
  if (rng_.chance(link.loss_rate)) {
    ++datagrams_dropped_;
    return;
  }

  SimTime extra_latency = 0;
  bool duplicate = false;
  bool corrupt = false;
  for (auto* rules : {&faults_to_, &faults_from_}) {
    const IpAddress& key = rules == &faults_to_ ? destination : source;
    auto it = rules->find(key);
    if (it == rules->end()) continue;
    if (!apply_fault_rule(it->second, &extra_latency, &duplicate, &corrupt)) {
      ++datagrams_dropped_;
      return;
    }
  }
  if (corrupt && !payload.empty()) {
    // One random bit-flip: enough to break the DNS header checksum-free
    // parse or a signature, as real corruption does.
    std::size_t byte = rng_.next_below(payload.size());
    payload[byte] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
    ++fault_stats_.corrupted;
  }

  SimTime latency = link.base_latency;
  if (link.jitter > 0) latency += rng_.next_below(link.jitter);
  // TCP pays an extra round trip for the handshake.
  if (tcp) latency += link.base_latency;
  latency += extra_latency;

  Datagram dgram{source, destination, std::move(payload), tcp};
  if (duplicate) {
    // The copy takes its own (longer) path; it arrives strictly after the
    // original so handlers see a classic stale duplicate.
    SimTime dup_latency = latency + 1 * kMillisecond;
    if (link.jitter > 0) dup_latency += rng_.next_below(link.jitter);
    deliver(dgram, dup_latency);
    ++fault_stats_.duplicated;
  }
  deliver(std::move(dgram), latency);
}

std::size_t SimNetwork::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!events_.empty() && processed < max_events) {
    Event event = pop_event();
    now_ = event.at;
    if (fire_event(event)) ++processed;
  }
  events_processed_ += processed;
  return processed;
}

std::size_t SimNetwork::run_until(SimTime deadline) {
  std::size_t processed = 0;
  while (!events_.empty() && events_.front().at <= deadline) {
    Event event = pop_event();
    now_ = event.at;
    if (fire_event(event)) ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  events_processed_ += processed;
  return processed;
}

}  // namespace dnsboot::net
