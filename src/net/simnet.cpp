#include "net/simnet.hpp"

namespace dnsboot::net {

SimNetwork::SimNetwork(std::uint64_t seed) : rng_(seed) {}

void SimNetwork::push_event(SimTime at, std::uint64_t timer_id,
                            TimerHandler action) {
  events_.push(Event{at, next_sequence_++, timer_id, std::move(action)});
}

std::uint64_t SimNetwork::schedule(SimTime delay, TimerHandler fn) {
  std::uint64_t id = next_timer_id_++;
  cancelled_[id] = false;
  push_event(now_ + delay, id, std::move(fn));
  return id;
}

void SimNetwork::cancel(std::uint64_t timer_id) {
  auto it = cancelled_.find(timer_id);
  if (it != cancelled_.end()) it->second = true;
}

void SimNetwork::bind(const IpAddress& address, DatagramHandler handler) {
  handlers_[address] = std::move(handler);
}

void SimNetwork::unbind(const IpAddress& address) { handlers_.erase(address); }

bool SimNetwork::is_bound(const IpAddress& address) const {
  return handlers_.count(address) > 0;
}

const LinkModel& SimNetwork::link_for(const IpAddress& destination) const {
  auto it = link_overrides_.find(destination);
  return it == link_overrides_.end() ? default_link_ : it->second;
}

void SimNetwork::set_link_to(const IpAddress& destination,
                             const LinkModel& model) {
  link_overrides_[destination] = model;
}

void SimNetwork::send(const IpAddress& source, const IpAddress& destination,
                      Bytes payload, bool tcp) {
  ++datagrams_sent_;
  bytes_sent_ += payload.size();
  const LinkModel& link = link_for(destination);
  if (rng_.chance(link.loss_rate)) {
    ++datagrams_dropped_;
    return;
  }
  SimTime latency = link.base_latency;
  if (link.jitter > 0) latency += rng_.next_below(link.jitter);
  // TCP pays an extra round trip for the handshake.
  if (tcp) latency += link.base_latency;
  Datagram dgram{source, destination, std::move(payload), tcp};
  push_event(now_ + latency, 0, [this, dgram = std::move(dgram)]() {
    auto it = handlers_.find(dgram.destination);
    if (it == handlers_.end()) {
      ++datagrams_unroutable_;
      return;
    }
    ++datagrams_delivered_;
    it->second(dgram);
  });
}

std::size_t SimNetwork::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!events_.empty() && processed < max_events) {
    Event event = events_.top();
    events_.pop();
    now_ = event.at;
    if (event.timer_id != 0) {
      auto it = cancelled_.find(event.timer_id);
      bool skip = (it != cancelled_.end() && it->second);
      if (it != cancelled_.end()) cancelled_.erase(it);
      if (skip) continue;
    }
    event.action();
    ++processed;
  }
  return processed;
}

std::size_t SimNetwork::run_until(SimTime deadline) {
  std::size_t processed = 0;
  while (!events_.empty() && events_.top().at <= deadline) {
    Event event = events_.top();
    events_.pop();
    now_ = event.at;
    if (event.timer_id != 0) {
      auto it = cancelled_.find(event.timer_id);
      bool skip = (it != cancelled_.end() && it->second);
      if (it != cancelled_.end()) cancelled_.erase(it);
      if (skip) continue;
    }
    event.action();
    ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace dnsboot::net
