#include "net/simnet.hpp"

#include <algorithm>

#include "dns/message.hpp"

namespace dnsboot::net {

SimNetwork::SimNetwork(std::uint64_t seed) : rng_(seed) {
  events_.reserve(1024);
  slots_.reserve(1024);
}

void SimNetwork::push_event(Event event) {
  EventRef ref{event.at, event.sequence, 0};
  if (free_slots_.empty()) {
    ref.slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(event));
  } else {
    ref.slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[ref.slot] = std::move(event);
  }
  events_.push_back(ref);
  std::push_heap(events_.begin(), events_.end(), EventOrder{});
}

SimNetwork::Event SimNetwork::pop_event() {
  std::pop_heap(events_.begin(), events_.end(), EventOrder{});
  EventRef ref = events_.back();
  events_.pop_back();
  Event event = std::move(slots_[ref.slot]);
  free_slots_.push_back(ref.slot);
  return event;
}

bool SimNetwork::fire_event(Event& event) {
  // A timer event fires only if its id is still live; erasing on drain
  // keeps the bookkeeping bounded (it once grew monotonically).
  if (event.timer_id != 0 && live_timers_.erase(event.timer_id) == 0) {
    return false;
  }
  if (event.is_delivery) {
    auto it = handlers_.find(event.dgram.destination);
    if (it == handlers_.end()) {
      ++datagrams_unroutable_;
    } else {
      ++datagrams_delivered_;
      it->second(event.dgram);
    }
  } else {
    event.action();
  }
  return true;
}

std::uint64_t SimNetwork::schedule(SimTime delay, TimerHandler fn) {
  std::uint64_t id = next_timer_id_++;
  live_timers_.insert(id);
  Event event;
  event.at = now_ + delay;
  event.sequence = next_sequence_++;
  event.timer_id = id;
  event.action = std::move(fn);
  push_event(std::move(event));
  return id;
}

void SimNetwork::cancel(std::uint64_t timer_id) {
  live_timers_.erase(timer_id);
}

void SimNetwork::bind(const IpAddress& address, DatagramHandler handler) {
  handlers_[address] = std::move(handler);
}

void SimNetwork::unbind(const IpAddress& address) { handlers_.erase(address); }

bool SimNetwork::is_bound(const IpAddress& address) const {
  return handlers_.count(address) > 0;
}

const LinkModel& SimNetwork::link_for(const IpAddress& destination) const {
  auto it = link_overrides_.find(destination);
  return it == link_overrides_.end() ? default_link_ : it->second;
}

void SimNetwork::set_link_to(const IpAddress& destination,
                             const LinkModel& model) {
  link_overrides_[destination] = model;
}

void SimNetwork::set_faults_to(const IpAddress& destination,
                               const FaultProfile& profile) {
  faults_to_[destination] = FaultRule{profile, 0};
}

void SimNetwork::set_faults_from(const IpAddress& source,
                                 const FaultProfile& profile) {
  faults_from_[source] = FaultRule{profile, 0};
}

void SimNetwork::clear_faults() {
  faults_to_.clear();
  faults_from_.clear();
}

const FaultProfile* SimNetwork::faults_to(const IpAddress& destination) const {
  auto it = faults_to_.find(destination);
  return it == faults_to_.end() ? nullptr : &it->second.profile;
}

void SimNetwork::set_attack_on(const IpAddress& target,
                               const AttackProfile& profile, Rng rng) {
  if (!profile.any()) {
    attacks_.erase(target);
    return;
  }
  attacks_.insert_or_assign(target, AttackRule{profile, std::move(rng)});
}

void SimNetwork::clear_attacks() { attacks_.clear(); }

void SimNetwork::maybe_inject_attack(const Datagram& query) {
  if (attacks_.empty() || query.tcp || query.injected) return;
  auto it = attacks_.find(query.destination);
  if (it == attacks_.end()) return;
  AttackRule& rule = it->second;
  const AttackProfile& prof = rule.profile;

  // The attacker only reacts to DNS queries; responses (and junk) on the
  // same path are of no use to it.
  auto message = dns::Message::decode(query.payload);
  if (!message.ok() || message->header.qr || message->questions.size() != 1) {
    return;
  }
  ++attack_stats_.queries_observed;

  // All crafted traffic is timed to race — and usually beat — the authentic
  // answer: the attacker sits nearer the victim than the server, so its
  // packets take about half of one one-way link latency, while the real
  // answer needs a full round trip plus service time.
  const LinkModel& link = link_for(query.source);
  auto racing_latency = [&]() -> SimTime {
    SimTime base = link.base_latency / 2;
    SimTime jitter = link.jitter > 0 ? rule.rng.next_below(link.jitter) : 0;
    return std::max<SimTime>(1, base + jitter);
  };
  // Fire one crafted datagram at the victim, spoofing `from` as its source.
  auto inject = [&](dns::Message forged, const IpAddress& from,
                    std::uint16_t to_port) {
    Datagram dgram;
    dgram.source = from;
    dgram.destination = query.source;
    dgram.payload = forged.encode();
    dgram.source_port = query.destination_port;  // looks like the server
    dgram.destination_port = to_port;
    dgram.injected = true;
    deliver(std::move(dgram), racing_latency());
  };
  // A forged answer must echo the question to get past the engine's
  // question check — copying it is free for on- and off-path alike (the
  // question is what the off-path attacker is targeting in the first place).
  auto forged_answer = [&](std::uint16_t id) {
    dns::Message forged = dns::Message::make_response(*message);
    forged.header.id = id;
    forged.header.aa = true;
    forged.header.rcode = dns::Rcode::kNxDomain;
    return forged;
  };
  auto guess_id = [&]() -> std::uint16_t {
    if (prof.spoof_known_id) return message->header.id;
    return static_cast<std::uint16_t>(rule.rng.next_below(0x10000));
  };
  // The engine draws ephemeral ports from 49152..65535; a realistic
  // attacker knows the range, so the sweep guesses inside it.
  auto guess_port = [&]() -> std::uint16_t {
    if (prof.spoof_known_port || query.source_port == 0) {
      return query.source_port;
    }
    return static_cast<std::uint16_t>(49152 + rule.rng.next_below(16384));
  };

  for (int i = 0; i < prof.spoof_candidates; ++i) {
    inject(forged_answer(guess_id()), query.destination, guess_port());
    ++attack_stats_.spoofs_injected;
  }
  for (int i = 0; i < prof.flood_responses; ++i) {
    // Chaff across the whole ID space. The port is guessed like any other
    // off-path packet: an attacker who can read the victim's ephemeral port
    // is on-path, and models that via spoof_known_port instead. (Granting
    // the true port here would turn every flood into a 1/65536 ID lottery
    // that no resolver-side defense can win at volume.)
    inject(forged_answer(
               static_cast<std::uint16_t>(rule.rng.next_below(0x10000))),
           query.destination, guess_port());
    ++attack_stats_.floods_injected;
  }
  for (int i = 0; i < prof.wrong_source_responses; ++i) {
    // The true ID and port from a wrong address: only the tuple check
    // stands between this and acceptance.
    IpAddress wrong_source = IpAddress::v4(
        {198, 18, static_cast<std::uint8_t>(rule.rng.next_below(256)),
         static_cast<std::uint8_t>(rule.rng.next_below(256))});
    inject(forged_answer(message->header.id), wrong_source,
           query.source_port);
    ++attack_stats_.wrong_tuple_injected;
  }
  if (prof.tc_rate > 0 && rule.rng.chance(prof.tc_rate)) {
    dns::Message forged = forged_answer(guess_id());
    forged.header.rcode = dns::Rcode::kNoError;
    forged.header.tc = true;
    inject(std::move(forged), query.destination, guess_port());
    ++attack_stats_.tc_injected;
  }
  for (int i = 0; i < prof.malformed_responses; ++i) {
    // Undecodable junk: a truncated header's worth of random bytes.
    Datagram dgram;
    dgram.source = query.destination;
    dgram.destination = query.source;
    dgram.payload = rule.rng.bytes(1 + rule.rng.next_below(11));
    dgram.source_port = query.destination_port;
    dgram.destination_port = query.source_port;
    dgram.injected = true;
    deliver(std::move(dgram), racing_latency());
    ++attack_stats_.malformed_injected;
  }
  for (int i = 0; i < prof.oversized_responses; ++i) {
    // A response far past any advertised UDP budget; the first bytes look
    // like a plausible header so lazy parsers bite.
    Datagram dgram;
    dgram.source = query.destination;
    dgram.destination = query.source;
    dgram.payload = forged_answer(guess_id()).encode();
    dgram.payload.resize(9000, 0xa5);
    dgram.source_port = query.destination_port;
    dgram.destination_port = guess_port();
    dgram.injected = true;
    deliver(std::move(dgram), racing_latency());
    ++attack_stats_.oversized_injected;
  }
}

bool SimNetwork::apply_fault_rule(FaultRule& rule, SimTime* extra_latency,
                                  bool* duplicate, bool* corrupt) {
  const FaultProfile& p = rule.profile;
  // Drop classes, most to least absolute.
  for (const auto& window : p.blackholes) {
    if (window.contains(now_)) {
      ++fault_stats_.blackholed;
      return false;
    }
  }
  if (p.flap_period > 0 &&
      (now_ + p.flap_phase) % p.flap_period < p.flap_down) {
    ++fault_stats_.flap_dropped;
    return false;
  }
  bool in_burst = now_ < rule.burst_until;
  if (!in_burst && p.burst_enter > 0 && rng_.chance(p.burst_enter)) {
    rule.burst_until = now_ + p.burst_duration;
    in_burst = true;
  }
  if (in_burst && rng_.chance(p.burst_loss)) {
    ++fault_stats_.burst_dropped;
    return false;
  }
  if (p.loss_rate > 0 && rng_.chance(p.loss_rate)) {
    ++fault_stats_.fault_lost;
    return false;
  }
  // Mutations on the surviving datagram.
  if (p.reorder_rate > 0 && rng_.chance(p.reorder_rate)) {
    *extra_latency += p.reorder_delay;
    ++fault_stats_.reordered;
  }
  if (p.duplicate_rate > 0 && rng_.chance(p.duplicate_rate)) *duplicate = true;
  if (p.corrupt_rate > 0 && rng_.chance(p.corrupt_rate)) *corrupt = true;
  return true;
}

void SimNetwork::deliver(Datagram dgram, SimTime latency) {
  Event event;
  event.at = now_ + latency;
  event.sequence = next_sequence_++;
  event.is_delivery = true;
  event.dgram = std::move(dgram);
  push_event(std::move(event));
}

void SimNetwork::send(const IpAddress& source, const IpAddress& destination,
                      Bytes payload, bool tcp) {
  Datagram dgram;
  dgram.source = source;
  dgram.destination = destination;
  dgram.payload = std::move(payload);
  dgram.tcp = tcp;
  send(std::move(dgram));
}

void SimNetwork::send(Datagram dgram) {
  ++datagrams_sent_;
  bytes_sent_ += dgram.payload.size();
  // A stationed attacker observes the query as it leaves — even if a fault
  // rule later eats it (the tap is at the victim's edge, before the lossy
  // middle). The hook draws only the attacker's own RNG, so the legitimate
  // draw sequence below is unchanged whether or not an attack is scripted.
  maybe_inject_attack(dgram);
  const LinkModel& link = link_for(dgram.destination);
  if (rng_.chance(link.loss_rate)) {
    ++datagrams_dropped_;
    return;
  }

  SimTime extra_latency = 0;
  bool duplicate = false;
  bool corrupt = false;
  for (auto* rules : {&faults_to_, &faults_from_}) {
    const IpAddress& key =
        rules == &faults_to_ ? dgram.destination : dgram.source;
    auto it = rules->find(key);
    if (it == rules->end()) continue;
    if (!apply_fault_rule(it->second, &extra_latency, &duplicate, &corrupt)) {
      ++datagrams_dropped_;
      return;
    }
  }
  if (corrupt && !dgram.payload.empty()) {
    // One random bit-flip: enough to break the DNS header checksum-free
    // parse or a signature, as real corruption does.
    std::size_t byte = rng_.next_below(dgram.payload.size());
    dgram.payload[byte] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
    ++fault_stats_.corrupted;
  }

  SimTime latency = link.base_latency;
  if (link.jitter > 0) latency += rng_.next_below(link.jitter);
  // TCP pays an extra round trip for the handshake.
  if (dgram.tcp) latency += link.base_latency;
  latency += extra_latency;

  if (duplicate) {
    // The copy takes its own (longer) path; it arrives strictly after the
    // original so handlers see a classic stale duplicate.
    SimTime dup_latency = latency + 1 * kMillisecond;
    if (link.jitter > 0) dup_latency += rng_.next_below(link.jitter);
    deliver(dgram, dup_latency);
    ++fault_stats_.duplicated;
  }
  deliver(std::move(dgram), latency);
}

std::size_t SimNetwork::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!events_.empty() && processed < max_events) {
    Event event = pop_event();
    now_ = event.at;
    if (fire_event(event)) ++processed;
  }
  events_processed_ += processed;
  return processed;
}

std::size_t SimNetwork::run_until(SimTime deadline) {
  std::size_t processed = 0;
  while (!events_.empty() && events_.front().at <= deadline) {
    Event event = pop_event();
    now_ = event.at;
    if (fire_event(event)) ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  events_processed_ += processed;
  return processed;
}

}  // namespace dnsboot::net
