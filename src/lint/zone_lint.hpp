// Single-zone static analysis: checks a Zone's DNSSEC/CDS state without any
// network traffic (rules L001–L010 plus the key-lifecycle rules L107–L110).
// The caller supplies the validation time and, when known, the DS set the
// parent publishes for this zone.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/rdata.hpp"
#include "dns/zone.hpp"
#include "lint/findings.hpp"

namespace dnsboot::lint {

struct ZoneLintOptions {
  // Validation time (absolute simulated seconds) for RRSIG temporal checks.
  std::uint32_t now = 0;
  // DS RDATAs the parent zone delegates with. Only meaningful when
  // `have_parent` is set; an empty set then means "no DS" (island/unsigned).
  std::vector<dns::DsRdata> parent_ds;
  bool have_parent = false;
  // RFC 9276 §3.1: validating resolvers may treat zones above this NSEC3
  // iteration count as insecure.
  std::uint16_t nsec3_iteration_limit = 100;
  // Cryptographically verify every RRSIG (L006). Costs one Ed25519
  // verification per signed RRset; disable for very large sweeps.
  bool verify_signatures = true;
};

// Append findings for `zone` to `report`.
void lint_zone(const dns::Zone& zone, const ZoneLintOptions& options,
               LintReport& report);

// Convenience: lint one standalone zone.
LintReport lint_zone(const dns::Zone& zone, const ZoneLintOptions& options);

}  // namespace dnsboot::lint
