#include "lint/rule.hpp"

#include <cassert>

namespace dnsboot::lint {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> rules = {
      {RuleId::kCdsUnsignedZone, "L001", "cds-unsigned-zone", Severity::kError,
       "CDS/CDNSKEY must be signed with the zone's own keys; an unsigned zone "
       "cannot publish an acceptable set (RFC 7344 §4.1, paper §4.2)"},
      {RuleId::kCdsDnskeyMismatch, "L002", "cds-dnskey-mismatch",
       Severity::kError,
       "no CDS digest commits to any apex DNSKEY, so accepting it would "
       "break the chain of trust (RFC 7344 §5, paper §4.2)"},
      {RuleId::kCdsCdnskeyPair, "L003", "cds-cdnskey-pair", Severity::kError,
       "CDS and CDNSKEY sets must describe the same keys, and the delete "
       "sentinel must stand alone (RFC 7344 §3, RFC 8078 §4)"},
      {RuleId::kRrsigTemporal, "L004", "rrsig-temporal", Severity::kError,
       "every covering RRSIG is expired or not yet incepted at validation "
       "time (RFC 4035 §5.3; the paper's Invalid class)"},
      {RuleId::kRrsigSignerName, "L005", "rrsig-signer-name", Severity::kError,
       "the RRSIG signer name must be the apex of the zone containing the "
       "RRset (RFC 4035 §5.3.1)"},
      {RuleId::kRrsigInvalid, "L006", "rrsig-invalid", Severity::kError,
       "a temporally valid RRSIG fails cryptographic verification against "
       "the apex DNSKEY set (paper §4.2: invalid RRSIGs over CDS)"},
      {RuleId::kNsec3Iterations, "L007", "nsec3-iterations",
       Severity::kWarning,
       "NSEC3 iteration counts above the bound cause resolvers to treat the "
       "zone as insecure or unreachable (RFC 9276 §3.1)"},
      {RuleId::kDsOrphan, "L008", "ds-orphan", Severity::kError,
       "the parent's DS matches no apex DNSKEY, so validation is bogus "
       "(RFC 4035 §5; orphan DS after a botched rollover)"},
      {RuleId::kDsUnsignedChild, "L009", "ds-unsigned-child", Severity::kError,
       "the parent publishes a DS but the child serves no DNSKEY: the zone "
       "is bogus for every validating resolver (paper §4.1 Invalid)"},
      {RuleId::kCdsNonApex, "L010", "cds-non-apex", Severity::kWarning,
       "CDS/CDNSKEY are apex-only records; outside a _signal tree a non-apex "
       "set is ignored by parents (RFC 7344 §4.1, RFC 9615 §2)"},
      {RuleId::kDelegationDrift, "L100", "delegation-drift",
       Severity::kWarning,
       "the delegation NS set at the parent differs from the child apex NS "
       "set (RFC 7477 motivation; breaks every-NS signal coverage)"},
      {RuleId::kCdsCrossServer, "L101", "cds-cross-server", Severity::kError,
       "authoritative servers disagree on the CDS/CDNSKEY set, so the parent "
       "cannot act on it (RFC 7344 §6.1 consistency; paper §4.2)"},
      {RuleId::kSignalIncomplete, "L102", "signal-incomplete",
       Severity::kError,
       "RFC 9615 requires the _dsboot signaling tree under every delegated "
       "NS; a missing tree makes the zone non-bootstrappable (paper §4.4)"},
      {RuleId::kSignalZoneCut, "L103", "signal-zone-cut", Severity::kError,
       "the signaling name crosses a zone cut out of the signaling zone, so "
       "the signal cannot validate (RFC 9615 §4.1; the paper's desc.io typo)"},
      {RuleId::kSignalUnbootstrappable, "L104", "signal-unbootstrappable",
       Severity::kError,
       "signal RRs advertise bootstrapping for a zone that is unsigned or "
       "fails validation in-zone (paper §4.4, Table 3 invalid rows)"},
      {RuleId::kSignalInconsistent, "L105", "signal-inconsistent",
       Severity::kError,
       "_dsboot trees disagree across nameservers (or with the in-zone CDS), "
       "so registries see conflicting signals (RFC 9615 §4.2, paper §4.4)"},
      {RuleId::kChaosUnobservable, "L106", "chaos-unobservable",
       Severity::kError,
       "the fault profile permanently blackholes every endpoint serving the "
       "zone, so no scan can ever observe it (chaos worlds must stay "
       "measurable: every failure should be attributable, not structural)"},
      {RuleId::kDsPrematureKey, "L107", "ds-premature-key", Severity::kError,
       "the parent DS commits to a key the child announces via CDS but has "
       "not yet published: the DS was swapped before Ipub elapsed "
       "(RFC 7583 §3.3.2; a botched double-DS rollover)"},
      {RuleId::kRrsigRetiredKey, "L108", "rrsig-retired-key",
       Severity::kError,
       "a temporally valid RRSIG names a key tag/algorithm absent from the "
       "DNSKEY RRset: the signing key was retired before its signatures were "
       "replaced (RFC 7583 §3.2.2 Iret; the stale-RRSIG failure)"},
      {RuleId::kCdsUnpublishedKey, "L109", "cds-unpublished-key",
       Severity::kWarning,
       "part of the CDS set commits to keys missing from the DNSKEY RRset; "
       "a parent acting on the full set would install a DS that cannot "
       "validate (RFC 7344 §4.1 continuity, RFC 7583 §3.3)"},
      {RuleId::kAlgorithmRollOrder, "L110", "algorithm-roll-order",
       Severity::kWarning,
       "a DNSKEY algorithm signs nothing in the zone (or a DS algorithm has "
       "no DNSKEY): algorithm rollovers must publish signatures before keys "
       "and keys before DS (RFC 6781 §4.1.4, RFC 4035 §2.2)"},
  };
  return rules;
}

const RuleInfo& rule_info(RuleId id) {
  for (const RuleInfo& rule : all_rules()) {
    if (rule.id == id) return rule;
  }
  assert(false && "unregistered RuleId");
  return all_rules().front();
}

const RuleInfo* find_rule(std::string_view code_or_name) {
  for (const RuleInfo& rule : all_rules()) {
    if (rule.code == code_or_name || rule.name == code_or_name) return &rule;
  }
  return nullptr;
}

}  // namespace dnsboot::lint
