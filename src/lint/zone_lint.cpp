#include "lint/zone_lint.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "dnssec/validator.hpp"

namespace dnsboot::lint {
namespace {

template <typename T>
std::vector<T> rdatas_of(const dns::Zone& zone, const dns::Name& owner,
                         dns::RRType type) {
  std::vector<T> out;
  const dns::RRset* set = zone.find_rrset(owner, type);
  if (set == nullptr) return out;
  for (const dns::Rdata& rdata : set->rdatas) {
    if (const T* typed = std::get_if<T>(&rdata)) out.push_back(*typed);
  }
  return out;
}

std::vector<dns::RrsigRdata> signatures_of(const dns::Zone& zone,
                                           const dns::Name& owner,
                                           dns::RRType type) {
  std::vector<dns::RrsigRdata> out;
  for (const dns::ResourceRecord& rr : zone.signatures_covering(owner, type)) {
    if (const auto* sig = std::get_if<dns::RrsigRdata>(&rr.rdata)) {
      out.push_back(*sig);
    }
  }
  return out;
}

// RFC 9615 signaling names (_dsboot.<zone>._signal.<ns>) legitimately carry
// CDS/CDNSKEY away from the apex.
bool in_signal_tree(const dns::Name& name) {
  for (std::string_view label : name.labels()) {
    if (label == "_signal") return true;
  }
  return false;
}

void check_child_sync_sets(const dns::Zone& zone,
                           const std::vector<dns::DnskeyRdata>& keys,
                           LintReport& report) {
  const dns::Name& apex = zone.origin();
  auto cds = rdatas_of<dns::DsRdata>(zone, apex, dns::RRType::kCDS);
  auto cdnskey = rdatas_of<dns::DnskeyRdata>(zone, apex, dns::RRType::kCDNSKEY);
  if (cds.empty() && cdnskey.empty()) return;

  // L001: CDS/CDNSKEY in a zone without a DNSKEY RRset. The records cannot
  // carry a valid RRSIG, so no parent may ever accept them.
  if (keys.empty()) {
    report.add(RuleId::kCdsUnsignedZone, apex, apex,
               "CDS/CDNSKEY published but the zone has no DNSKEY RRset");
    return;  // the pair/mismatch rules presuppose a signed zone
  }

  const auto cds_sentinels = static_cast<std::size_t>(std::count_if(
      cds.begin(), cds.end(),
      [](const dns::DsRdata& d) { return d.is_delete_sentinel(); }));
  const auto cdnskey_sentinels = static_cast<std::size_t>(std::count_if(
      cdnskey.begin(), cdnskey.end(),
      [](const dns::DnskeyRdata& k) { return k.is_delete_sentinel(); }));

  // RFC 8078 §4: the delete sentinel must be the only record in its set.
  if (cds_sentinels > 0 && cds_sentinels < cds.size()) {
    report.add(RuleId::kCdsCdnskeyPair, apex, apex,
               "CDS delete sentinel mixed with regular CDS records");
  }
  if (cdnskey_sentinels > 0 && cdnskey_sentinels < cdnskey.size()) {
    report.add(RuleId::kCdsCdnskeyPair, apex, apex,
               "CDNSKEY delete sentinel mixed with regular CDNSKEY records");
  }

  // L002: some non-sentinel CDS must commit to an apex DNSKEY, otherwise the
  // parent would install a DS that can never validate. L109: a *partial*
  // match — the current key plus a successor that is not yet in the DNSKEY
  // RRset — is the CDS-ahead-of-publication rollover ordering violation.
  const bool all_sentinel = cds_sentinels == cds.size();
  if (!cds.empty() && !all_sentinel) {
    bool any_match = false;
    std::vector<const dns::DsRdata*> unmatched;
    for (const dns::DsRdata& d : cds) {
      if (d.is_delete_sentinel()) continue;
      const bool matched = std::any_of(
          keys.begin(), keys.end(), [&](const dns::DnskeyRdata& key) {
            return dnssec::ds_matches_dnskey(apex, d, key);
          });
      if (matched) {
        any_match = true;
      } else {
        unmatched.push_back(&d);
      }
    }
    if (!any_match) {
      report.add(RuleId::kCdsDnskeyMismatch, apex, apex,
                 "no CDS record matches any apex DNSKEY");
    } else {
      for (const dns::DsRdata* d : unmatched) {
        report.add(RuleId::kCdsUnpublishedKey, apex, apex,
                   "CDS key tag " + std::to_string(d->key_tag) +
                       " commits to a key absent from the DNSKEY RRset");
      }
    }
  }

  // L003: when both sets are present they must describe the same keys
  // (RFC 7344 §4: "MUST be consistent").
  if (!cds.empty() && !cdnskey.empty()) {
    if ((cds_sentinels > 0) != (cdnskey_sentinels > 0)) {
      report.add(RuleId::kCdsCdnskeyPair, apex, apex,
                 "delete sentinel present in one of CDS/CDNSKEY but not both");
      return;
    }
    for (const dns::DsRdata& d : cds) {
      if (d.is_delete_sentinel()) continue;
      bool matched = std::any_of(
          cdnskey.begin(), cdnskey.end(), [&](const dns::DnskeyRdata& k) {
            return dnssec::ds_matches_dnskey(apex, d, k);
          });
      if (!matched) {
        report.add(RuleId::kCdsCdnskeyPair, apex, apex,
                   "CDS key tag " + std::to_string(d.key_tag) +
                       " matches no published CDNSKEY");
        return;
      }
    }
    for (const dns::DnskeyRdata& k : cdnskey) {
      if (k.is_delete_sentinel()) continue;
      bool matched =
          std::any_of(cds.begin(), cds.end(), [&](const dns::DsRdata& d) {
            return !d.is_delete_sentinel() &&
                   dnssec::ds_matches_dnskey(apex, d, k);
          });
      if (!matched) {
        report.add(RuleId::kCdsCdnskeyPair, apex, apex,
                   "CDNSKEY key tag " + std::to_string(k.key_tag()) +
                       " is committed by no CDS record");
        return;
      }
    }
  }
}

void check_signatures(const dns::Zone& zone,
                      const std::vector<dns::DnskeyRdata>& keys,
                      const ZoneLintOptions& options, LintReport& report) {
  const dns::Name& apex = zone.origin();
  for (const dns::RRset& rrset : zone.all_rrsets()) {
    auto sigs = signatures_of(zone, rrset.name, rrset.type);
    if (sigs.empty()) continue;  // unsigned data / glue / delegation NS

    // L005: every covering RRSIG must name this zone's apex as signer.
    std::vector<dns::RrsigRdata> apex_signed;
    for (const dns::RrsigRdata& sig : sigs) {
      if (sig.signer_name == apex) {
        apex_signed.push_back(sig);
      } else {
        report.add(RuleId::kRrsigSignerName, apex, rrset.name,
                   "RRSIG over " + dns::to_string(rrset.type) +
                       " names signer " + sig.signer_name.to_text());
      }
    }
    if (apex_signed.empty()) continue;

    // L004: the RRset is only validatable if some signature's window covers
    // `now` (RFC 4035 §5.3.1 clauses 9–10).
    std::vector<dns::RrsigRdata> current;
    for (const dns::RrsigRdata& sig : apex_signed) {
      if (sig.inception <= options.now && options.now <= sig.expiration) {
        current.push_back(sig);
      }
    }
    if (current.empty()) {
      const dns::RrsigRdata& sig = apex_signed.front();
      report.add(RuleId::kRrsigTemporal, apex, rrset.name,
                 "all RRSIGs over " + dns::to_string(rrset.type) +
                     " outside validity (expiration " +
                     std::to_string(sig.expiration) + ", now " +
                     std::to_string(options.now) + ")");
      continue;
    }

    // L108: some current signature must name a published key. When every
    // tag/algorithm points outside the DNSKEY RRset, the signer was retired
    // (or never published) while its signatures linger — report the rollover
    // ordering violation, not the generic verification failure below.
    if (!keys.empty()) {
      bool signer_published = false;
      for (const dns::RrsigRdata& sig : current) {
        for (const dns::DnskeyRdata& key : keys) {
          if (key.algorithm == sig.algorithm && key.key_tag() == sig.key_tag) {
            signer_published = true;
            break;
          }
        }
        if (signer_published) break;
      }
      if (!signer_published) {
        report.add(RuleId::kRrsigRetiredKey, apex, rrset.name,
                   "RRSIG over " + dns::to_string(rrset.type) +
                       " by key tag " +
                       std::to_string(current.front().key_tag) +
                       " matches no published DNSKEY (retired key)");
        continue;
      }
    }

    // L006: temporally valid signatures must verify against the key set.
    if (options.verify_signatures && !keys.empty()) {
      dnssec::RrsetValidation validation =
          dnssec::verify_rrset(rrset, current, keys, apex, options.now);
      if (!validation.valid) {
        report.add(RuleId::kRrsigInvalid, apex, rrset.name,
                   "RRSIG over " + dns::to_string(rrset.type) +
                       " fails verification: " + validation.reason);
      }
    }
  }
}

void check_nsec3(const dns::Zone& zone, const ZoneLintOptions& options,
                 LintReport& report) {
  const dns::Name& apex = zone.origin();
  auto flag = [&](const dns::Name& owner, std::uint16_t iterations) {
    if (iterations <= options.nsec3_iteration_limit) return;
    report.add(RuleId::kNsec3Iterations, apex, owner,
               std::to_string(iterations) + " NSEC3 iterations exceed bound " +
                   std::to_string(options.nsec3_iteration_limit));
  };
  for (const auto& param :
       rdatas_of<dns::Nsec3ParamRdata>(zone, apex, dns::RRType::kNSEC3PARAM)) {
    flag(apex, param.iterations);
  }
  for (const dns::RRset& rrset : zone.all_rrsets()) {
    if (rrset.type != dns::RRType::kNSEC3) continue;
    for (const dns::Rdata& rdata : rrset.rdatas) {
      if (const auto* nsec3 = std::get_if<dns::Nsec3Rdata>(&rdata)) {
        flag(rrset.name, nsec3->iterations);
      }
    }
  }
}

void check_parent_ds(const dns::Zone& zone,
                     const std::vector<dns::DnskeyRdata>& keys,
                     const ZoneLintOptions& options, LintReport& report) {
  if (!options.have_parent || options.parent_ds.empty()) return;
  const dns::Name& apex = zone.origin();
  // L009: a DS without any child DNSKEY makes the zone bogus outright.
  if (keys.empty()) {
    report.add(RuleId::kDsUnsignedChild, apex, apex,
               "parent publishes " + std::to_string(options.parent_ds.size()) +
                   " DS record(s) but the zone serves no DNSKEY");
    return;
  }
  // L008: some DS must commit to an apex key for the chain to close. L107
  // refines the orphan case: a non-matching DS the child itself announces
  // via CDS/CDNSKEY means the registry swapped the DS before the successor
  // DNSKEY was published (Ipub not honored) — a diagnosable botched
  // rollover, not an arbitrary stale DS.
  const auto cds = rdatas_of<dns::DsRdata>(zone, apex, dns::RRType::kCDS);
  const auto cdnskey =
      rdatas_of<dns::DnskeyRdata>(zone, apex, dns::RRType::kCDNSKEY);
  bool any_match = false;
  for (const dns::DsRdata& ds : options.parent_ds) {
    const bool matched = std::any_of(
        keys.begin(), keys.end(), [&](const dns::DnskeyRdata& key) {
          return dnssec::ds_matches_dnskey(apex, ds, key);
        });
    if (matched) {
      any_match = true;
      continue;
    }
    const bool announced =
        std::any_of(cds.begin(), cds.end(),
                    [&](const dns::DsRdata& c) {
                      return !c.is_delete_sentinel() &&
                             c.key_tag == ds.key_tag &&
                             c.algorithm == ds.algorithm &&
                             c.digest_type == ds.digest_type &&
                             c.digest == ds.digest;
                    }) ||
        std::any_of(cdnskey.begin(), cdnskey.end(),
                    [&](const dns::DnskeyRdata& k) {
                      return !k.is_delete_sentinel() &&
                             dnssec::ds_matches_dnskey(apex, ds, k);
                    });
    if (announced) {
      report.add(RuleId::kDsPrematureKey, apex, apex,
                 "parent DS key tag " + std::to_string(ds.key_tag) +
                     " is announced via CDS but absent from the DNSKEY RRset");
    }
  }
  if (!any_match) {
    report.add(RuleId::kDsOrphan, apex, apex,
               "no parent DS matches any apex DNSKEY (orphan DS)");
  }
}

// L110: RFC 4035 §2.2 expects every DNSKEY algorithm to sign the zone, and
// RFC 6781 §4.1.4 orders an algorithm rollover "signatures, then keys, then
// DS". A published algorithm with no valid signature anywhere — or a DS
// algorithm with no DNSKEY behind it — is a rollover executed out of order.
void check_algorithm_roll_order(const dns::Zone& zone,
                                const std::vector<dns::DnskeyRdata>& keys,
                                const ZoneLintOptions& options,
                                LintReport& report) {
  if (keys.empty()) return;
  const dns::Name& apex = zone.origin();
  std::set<std::uint8_t> key_algorithms;
  for (const dns::DnskeyRdata& key : keys) {
    if (!key.is_delete_sentinel()) key_algorithms.insert(key.algorithm);
  }
  std::set<std::uint8_t> signing_algorithms;
  for (const dns::RRset& rrset : zone.all_rrsets()) {
    for (const dns::RrsigRdata& sig :
         signatures_of(zone, rrset.name, rrset.type)) {
      if (sig.signer_name != apex) continue;
      if (sig.inception <= options.now && options.now <= sig.expiration) {
        signing_algorithms.insert(sig.algorithm);
      }
    }
  }
  // No current signature at all: the zone is unsigned-with-keys or fully
  // expired — L004's domain, not an ordering question.
  if (signing_algorithms.empty()) return;
  for (std::uint8_t algorithm : key_algorithms) {
    if (signing_algorithms.count(algorithm) == 0) {
      report.add(RuleId::kAlgorithmRollOrder, apex, apex,
                 "DNSKEY algorithm " + std::to_string(algorithm) +
                     " signs no RRset in the zone");
    }
  }
  if (options.have_parent) {
    for (const dns::DsRdata& ds : options.parent_ds) {
      if (key_algorithms.count(ds.algorithm) == 0) {
        report.add(RuleId::kAlgorithmRollOrder, apex, apex,
                   "parent DS algorithm " + std::to_string(ds.algorithm) +
                       " has no matching DNSKEY algorithm");
      }
    }
  }
}

void check_non_apex_child_sync(const dns::Zone& zone, LintReport& report) {
  const dns::Name& apex = zone.origin();
  for (const dns::RRset& rrset : zone.all_rrsets()) {
    if (rrset.type != dns::RRType::kCDS && rrset.type != dns::RRType::kCDNSKEY) {
      continue;
    }
    if (rrset.name == apex || in_signal_tree(rrset.name)) continue;
    report.add(RuleId::kCdsNonApex, apex, rrset.name,
               dns::to_string(rrset.type) +
                   " outside the apex and outside any _signal tree");
  }
}

}  // namespace

void lint_zone(const dns::Zone& zone, const ZoneLintOptions& options,
               LintReport& report) {
  report.note_zone_checked();
  auto keys = rdatas_of<dns::DnskeyRdata>(zone, zone.origin(),
                                          dns::RRType::kDNSKEY);
  check_child_sync_sets(zone, keys, report);
  check_signatures(zone, keys, options, report);
  check_nsec3(zone, options, report);
  check_parent_ds(zone, keys, options, report);
  check_algorithm_roll_order(zone, keys, options, report);
  check_non_apex_child_sync(zone, report);
}

LintReport lint_zone(const dns::Zone& zone, const ZoneLintOptions& options) {
  LintReport report;
  lint_zone(zone, options, report);
  return report;
}

}  // namespace dnsboot::lint
