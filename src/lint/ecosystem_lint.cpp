#include "lint/ecosystem_lint.hpp"

#include <algorithm>
#include <set>

#include "dnssec/validator.hpp"

namespace dnsboot::lint {
namespace {

// Parent context for one zone: the nearest enclosing zone in the view and
// the DS set it delegates with.
struct ParentContext {
  const dns::Zone* parent = nullptr;
  std::vector<dns::DsRdata> ds;
};

ParentContext parent_of(const EcosystemView& view, const dns::Name& origin) {
  ParentContext context;
  if (origin.is_root()) return context;
  for (dns::Name cursor = origin.parent();; cursor = cursor.parent()) {
    auto it = view.zones.find(cursor.canonical_text());
    if (it != view.zones.end() && !it->second.empty()) {
      context.parent = it->second.front().zone.get();
      break;
    }
    if (cursor.is_root()) break;
  }
  if (context.parent != nullptr) {
    if (const dns::RRset* ds_set =
            context.parent->find_rrset(origin, dns::RRType::kDS)) {
      for (const dns::Rdata& rdata : ds_set->rdatas) {
        if (const auto* ds = std::get_if<dns::DsRdata>(&rdata)) {
          context.ds.push_back(*ds);
        }
      }
    }
  }
  return context;
}

std::string join_servers(const ZoneVersion& version) {
  std::string out;
  for (const std::string& server : version.servers) {
    if (!out.empty()) out += ",";
    out += server;
  }
  return out;
}

// --- RFC 9615 signaling-tree resolution -------------------------------------

enum class TreeStatus { kFound, kMissing, kCut };

struct TreeResult {
  TreeStatus status = TreeStatus::kMissing;
  const dns::RRset* cds = nullptr;      // when kFound (may be null: CDNSKEY only)
  const dns::RRset* cdnskey = nullptr;  // when kFound
  dns::Name cut_owner;                  // when kCut
};

// Statically resolve the signaling records for one (zone, ns) pair. The
// view's longest-suffix zone stands in for the authoritative server that
// would answer the query; a Delegation result means the name sits behind a
// zone cut whose child no zone in the view serves (the desc.io pathology).
TreeResult resolve_signal_tree(const EcosystemView& view,
                               const dns::Name& signal_name) {
  TreeResult result;
  const dns::Zone* zone = view.find_zone(signal_name);
  if (zone == nullptr) return result;

  auto cds = zone->lookup(signal_name, dns::RRType::kCDS);
  switch (cds.kind) {
    case dns::Zone::LookupResult::Kind::kAnswer:
      result.status = TreeStatus::kFound;
      result.cds = cds.rrset;
      break;
    case dns::Zone::LookupResult::Kind::kDelegation:
      result.status = TreeStatus::kCut;
      result.cut_owner = cds.cut_owner;
      return result;
    default:
      break;
  }
  auto cdnskey = zone->lookup(signal_name, dns::RRType::kCDNSKEY);
  if (cdnskey.kind == dns::Zone::LookupResult::Kind::kAnswer) {
    result.status = TreeStatus::kFound;
    result.cdnskey = cdnskey.rrset;
  }
  return result;
}

Result<dns::Name> signal_name_for(const dns::Name& zone_origin,
                                  const dns::Name& ns) {
  std::vector<std::string> labels;
  labels.push_back("_dsboot");
  for (std::string_view label : zone_origin.labels()) labels.emplace_back(label);
  labels.push_back("_signal");
  for (std::string_view label : ns.labels()) labels.emplace_back(label);
  return dns::Name::from_labels(std::move(labels));
}

bool rrsets_agree(const dns::RRset* a, const dns::RRset* b) {
  if ((a == nullptr) != (b == nullptr)) return false;
  if (a == nullptr) return true;
  return a->same_rdatas(*b);
}

void lint_signal_trees(const EcosystemView& view, const dns::Zone& zone,
                       const std::set<std::string>& invalid_zones,
                       LintReport& report) {
  const dns::Name& origin = zone.origin();
  const dns::RRset* apex_ns = zone.apex_ns();
  if (apex_ns == nullptr) return;

  struct PerNs {
    dns::Name ns;
    dns::Name signal_name;
    TreeResult tree;
  };
  std::vector<PerNs> trees;
  for (const dns::Rdata& rdata : apex_ns->rdatas) {
    const auto* ns = std::get_if<dns::NsRdata>(&rdata);
    if (ns == nullptr) continue;
    auto name = signal_name_for(origin, ns->nsdname);
    if (!name.ok()) continue;  // over-long names cannot carry a signal
    PerNs entry;
    entry.ns = ns->nsdname;
    entry.signal_name = std::move(name).take();
    entry.tree = resolve_signal_tree(view, entry.signal_name);
    trees.push_back(std::move(entry));
  }

  const bool any_found = std::any_of(
      trees.begin(), trees.end(),
      [](const PerNs& t) { return t.tree.status == TreeStatus::kFound; });
  if (!any_found) return;  // the zone does not participate in bootstrapping

  // The zone signals: RFC 9615 §4.2 requires a complete, consistent tree
  // under every delegated NS.
  for (const PerNs& entry : trees) {
    switch (entry.tree.status) {
      case TreeStatus::kMissing:
        report.add(RuleId::kSignalIncomplete, origin, entry.signal_name,
                   "no signaling records under NS " + entry.ns.to_text());
        break;
      case TreeStatus::kCut:
        report.add(RuleId::kSignalZoneCut, origin, entry.signal_name,
                   "signaling name crosses the zone cut at " +
                       entry.tree.cut_owner.to_text() + " (NS " +
                       entry.ns.to_text() + ")");
        break;
      case TreeStatus::kFound:
        break;
    }
  }

  // Consistency: every found tree must agree with the in-zone CDS set when
  // one exists, and with each other regardless.
  const dns::RRset* reference_cds = zone.find_rrset(origin, dns::RRType::kCDS);
  std::string reference_label = "the in-zone CDS set";
  if (reference_cds == nullptr) {
    for (const PerNs& entry : trees) {
      if (entry.tree.status == TreeStatus::kFound) {
        reference_cds = entry.tree.cds;
        reference_label = "the tree under NS " + entry.ns.to_text();
        break;
      }
    }
  }
  for (const PerNs& entry : trees) {
    if (entry.tree.status != TreeStatus::kFound) continue;
    if (!rrsets_agree(entry.tree.cds, reference_cds)) {
      report.add(RuleId::kSignalInconsistent, origin, entry.signal_name,
                 "signaling CDS under NS " + entry.ns.to_text() +
                     " disagrees with " + reference_label);
    }
  }

  // L104: signal RRs advertise bootstrapping, but the zone itself cannot be
  // bootstrapped (unsigned or fails in-zone validation).
  if (zone.find_rrset(origin, dns::RRType::kDNSKEY) == nullptr) {
    report.add(RuleId::kSignalUnbootstrappable, origin, origin,
               "signal RRs published for a zone without a DNSKEY RRset");
  } else if (invalid_zones.count(origin.canonical_text()) > 0) {
    report.add(RuleId::kSignalUnbootstrappable, origin, origin,
               "signal RRs published for a zone that fails DNSSEC validation");
  }
}

}  // namespace

void EcosystemView::add(std::shared_ptr<const dns::Zone> zone,
                        const std::string& server) {
  if (zone == nullptr) return;
  std::vector<ZoneVersion>& versions = zones[zone->origin().canonical_text()];
  for (ZoneVersion& version : versions) {
    if (version.zone.get() == zone.get()) {
      version.servers.push_back(server);
      return;
    }
  }
  versions.push_back({std::move(zone), {server}});
}

const dns::Zone* EcosystemView::find_zone(const dns::Name& name) const {
  for (dns::Name cursor = name;; cursor = cursor.parent()) {
    auto it = zones.find(cursor.canonical_text());
    if (it != zones.end() && !it->second.empty()) {
      return it->second.front().zone.get();
    }
    if (cursor.is_root()) return nullptr;
  }
}

EcosystemView collect_view(
    const std::vector<std::shared_ptr<server::AuthServer>>& servers,
    std::uint32_t now) {
  EcosystemView view;
  view.now = now;
  for (const auto& server : servers) {
    if (server == nullptr) continue;
    for (const auto& [origin, zone] : server->zones()) {
      view.add(zone, server->config().id);
    }
  }
  return view;
}

LintReport lint_ecosystem(const EcosystemView& view,
                          const EcosystemLintOptions& options) {
  LintReport report;

  // ---- single-zone rules, with parent DS context from the view ----
  for (const auto& [origin_text, versions] : view.zones) {
    if (versions.empty()) continue;
    const dns::Name& origin = versions.front().zone->origin();
    ParentContext parent = parent_of(view, origin);
    ZoneLintOptions zone_options = options.zone;
    zone_options.now = view.now;
    zone_options.have_parent = parent.parent != nullptr;
    zone_options.parent_ds = std::move(parent.ds);
    for (const ZoneVersion& version : versions) {
      lint_zone(*version.zone, zone_options, report);
    }
  }

  // Zones whose in-zone DNSSEC state is broken — input for L104.
  std::set<std::string> invalid_zones;
  for (const Finding& finding : report.findings()) {
    switch (finding.rule) {
      case RuleId::kRrsigTemporal:
      case RuleId::kRrsigSignerName:
      case RuleId::kRrsigInvalid:
      case RuleId::kDsOrphan:
      case RuleId::kDsUnsignedChild:
        invalid_zones.insert(finding.zone.canonical_text());
        break;
      default:
        break;
    }
  }

  // ---- cross-zone rules ----
  for (const auto& [origin_text, versions] : view.zones) {
    if (versions.empty()) continue;
    const dns::Zone& zone = *versions.front().zone;
    const dns::Name& origin = zone.origin();

    // L101: every server must publish the same CDS/CDNSKEY sets, or the
    // parent-side poll sees conflicting requests (RFC 7344 §6.1).
    for (std::size_t i = 1; i < versions.size(); ++i) {
      const dns::Zone& other = *versions[i].zone;
      for (dns::RRType type : {dns::RRType::kCDS, dns::RRType::kCDNSKEY}) {
        const dns::RRset* a = zone.find_rrset(origin, type);
        const dns::RRset* b = other.find_rrset(origin, type);
        if (!rrsets_agree(a, b)) {
          report.add(RuleId::kCdsCrossServer, origin, origin,
                     dns::to_string(type) + " differs between servers [" +
                         join_servers(versions.front()) + "] and [" +
                         join_servers(versions[i]) + "]");
          break;  // one finding per divergent version pair
        }
      }
    }

    // L100: the delegation NS set at the parent must match the child apex
    // (drift is what CSYNC migrations announce, and it breaks the RFC 9615
    // every-NS requirement).
    ParentContext parent = parent_of(view, origin);
    if (parent.parent != nullptr) {
      const dns::RRset* delegation =
          parent.parent->find_rrset(origin, dns::RRType::kNS);
      const dns::RRset* apex_ns = zone.apex_ns();
      if (delegation != nullptr && apex_ns != nullptr &&
          !delegation->same_rdatas(*apex_ns)) {
        std::string detail = "delegation NS set in " +
                             parent.parent->origin().to_text() +
                             " differs from the child apex NS set";
        if (zone.find_rrset(origin, dns::RRType::kCSYNC) != nullptr) {
          detail += " (child publishes CSYNC requesting synchronization)";
        }
        report.add(RuleId::kDelegationDrift, origin, origin, detail);
      }
    }

    // L102–L105: RFC 9615 signaling-tree placement and coherence.
    lint_signal_trees(view, zone, invalid_zones, report);
  }

  return report;
}

}  // namespace dnsboot::lint
