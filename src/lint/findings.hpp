// Findings — the linter's output vocabulary. A Finding pins one rule
// violation to a zone (and the specific owner name inside it); a LintReport
// aggregates findings plus the coverage counters reporters and tests need.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dns/name.hpp"
#include "lint/rule.hpp"

namespace dnsboot::lint {

struct Finding {
  RuleId rule = RuleId::kCdsUnsignedZone;
  dns::Name zone;      // apex of the zone the finding is about
  dns::Name owner;     // offending owner name (== zone apex when apex-level)
  std::string detail;  // free-form context ("CDS key tag 4711 matches no key")
  std::string server;  // server id for per-server findings; empty otherwise

  Severity severity() const { return rule_info(rule).severity; }
};

class LintReport {
 public:
  void add(RuleId rule, const dns::Name& zone, const dns::Name& owner,
           std::string detail, std::string server = {}) {
    findings_.push_back(
        {rule, zone, owner, std::move(detail), std::move(server)});
  }

  const std::vector<Finding>& findings() const { return findings_; }
  bool empty() const { return findings_.empty(); }
  std::size_t size() const { return findings_.size(); }

  // True when no finding reaches `at_least` (default: any finding at all).
  bool clean(Severity at_least = Severity::kInfo) const {
    for (const Finding& f : findings_) {
      if (f.severity() >= at_least) return false;
    }
    return true;
  }

  std::size_t count(RuleId rule) const {
    std::size_t n = 0;
    for (const Finding& f : findings_) n += (f.rule == rule) ? 1 : 0;
    return n;
  }

  // Distinct zones (canonical text) flagged by `rule` — the unit the
  // generator cross-check compares against injected ground truth.
  std::set<std::string> zones_with(RuleId rule) const {
    std::set<std::string> zones;
    for (const Finding& f : findings_) {
      if (f.rule == rule) zones.insert(f.zone.canonical_text());
    }
    return zones;
  }

  std::map<RuleId, std::size_t> counts_by_rule() const {
    std::map<RuleId, std::size_t> counts;
    for (const Finding& f : findings_) ++counts[f.rule];
    return counts;
  }

  void merge(LintReport other) {
    findings_.insert(findings_.end(),
                     std::make_move_iterator(other.findings_.begin()),
                     std::make_move_iterator(other.findings_.end()));
    zones_checked_ += other.zones_checked_;
  }

  std::size_t zones_checked() const { return zones_checked_; }
  void note_zone_checked() { ++zones_checked_; }

 private:
  std::vector<Finding> findings_;
  std::size_t zones_checked_ = 0;
};

}  // namespace dnsboot::lint
