// Chaos-profile static analysis (rule L106): given the link fault map a
// chaos plan installed, find zones that are *structurally* unobservable —
// every address of every server publishing them sits behind a permanent
// blackhole. A chaos world should make scanning hard, not impossible: a
// permanently dark zone turns every downstream "degraded" metric into noise.
//
// Takes net-level types (address -> FaultProfile) rather than an ecosystem
// ChaosPlan so the lint library does not depend on the generator.
#pragma once

#include <map>

#include "lint/findings.hpp"
#include "net/simnet.hpp"
#include "server/auth_server.hpp"

namespace dnsboot::lint {

LintReport lint_chaos(
    const std::vector<std::shared_ptr<server::AuthServer>>& servers,
    const std::map<net::IpAddress, net::FaultProfile>& links);

}  // namespace dnsboot::lint
