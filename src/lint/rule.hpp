// Rule registry and severity model for dnsboot_lint, the static zone-state
// analyzer. Every check the linter performs is a registered rule with a
// stable code (L0xx = single-zone, L1xx = cross-zone/ecosystem), a
// kebab-case name, a default severity, and a one-line rationale.
//
// The registry is the contract between three independent witnesses of the
// same ground truth: the ecosystem generator (which *injects*
// misconfigurations), the linter (which must *statically* find them), and
// the scanner/analysis pipeline (which must *measure* them). Tests assert
// the three agree.
#pragma once

#include <string_view>
#include <vector>

namespace dnsboot::lint {

enum class Severity {
  kInfo,     // noteworthy but not a misconfiguration
  kWarning,  // deviates from best practice; bootstrap may still work
  kError,    // provably broken state (chain cannot validate / RFC violation)
};

std::string_view to_string(Severity severity);

enum class RuleId {
  // --- single-zone rules (zone_lint.cpp) ---
  kCdsUnsignedZone,       // L001: CDS/CDNSKEY published but no apex DNSKEY
  kCdsDnskeyMismatch,     // L002: no CDS commits to any apex DNSKEY
  kCdsCdnskeyPair,        // L003: CDS and CDNSKEY sets are not coherent
  kRrsigTemporal,         // L004: every covering RRSIG expired / premature
  kRrsigSignerName,       // L005: RRSIG signer name is not the zone apex
  kRrsigInvalid,          // L006: signature fails cryptographic verification
  kNsec3Iterations,       // L007: NSEC3 iteration count above the bound
  kDsOrphan,              // L008: parent DS matches no apex DNSKEY
  kDsUnsignedChild,       // L009: parent publishes DS but the child is unsigned
  kCdsNonApex,            // L010: CDS/CDNSKEY outside apex or a _signal tree
  kDsPrematureKey,        // L107: DS references a CDS-announced, unpublished key
  kRrsigRetiredKey,       // L108: RRSIG by a key absent from the DNSKEY RRset
  kCdsUnpublishedKey,     // L109: CDS partially commits to unpublished keys
  kAlgorithmRollOrder,    // L110: algorithm rollover ordering violation
  // --- ecosystem rules (ecosystem_lint.cpp) ---
  kDelegationDrift,       // L100: parent NS set != child apex NS set
  kCdsCrossServer,        // L101: nameservers serve differing CDS/CDNSKEY
  kSignalIncomplete,      // L102: _dsboot tree missing for one or more NSes
  kSignalZoneCut,         // L103: signaling name crosses a foreign zone cut
  kSignalUnbootstrappable,// L104: signal RRs for an unsigned/invalid zone
  kSignalInconsistent,    // L105: _dsboot trees disagree across NSes
  kChaosUnobservable,     // L106: fault profile blackholes a zone forever
};

struct RuleInfo {
  RuleId id;
  std::string_view code;      // "L001"
  std::string_view name;      // "cds-unsigned-zone"
  Severity severity;
  std::string_view rationale; // one line, cites the defining RFC/paper section
};

// Every registered rule, in code order.
const std::vector<RuleInfo>& all_rules();

// Metadata for one rule (the registry is total over RuleId).
const RuleInfo& rule_info(RuleId id);

// Lookup by code ("L001") or name ("cds-unsigned-zone"); nullptr if unknown.
const RuleInfo* find_rule(std::string_view code_or_name);

}  // namespace dnsboot::lint
