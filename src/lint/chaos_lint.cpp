#include "lint/chaos_lint.hpp"

#include <set>

namespace dnsboot::lint {

LintReport lint_chaos(
    const std::vector<std::shared_ptr<server::AuthServer>>& servers,
    const std::map<net::IpAddress, net::FaultProfile>& links) {
  // Union of serving addresses per zone origin, across all servers (pools
  // and secondaries both count: one live address keeps the zone observable).
  std::map<std::string, std::set<net::IpAddress>> zone_addresses;
  std::map<std::string, dns::Name> zone_names;
  for (const auto& server : servers) {
    if (server == nullptr) continue;
    for (const auto& [origin, zone] : server->zones()) {
      auto& addresses = zone_addresses[origin];
      for (const auto& address : server->addresses()) {
        addresses.insert(address);
      }
      zone_names.emplace(origin, zone->origin());
    }
  }

  LintReport report;
  for (const auto& [origin, addresses] : zone_addresses) {
    report.note_zone_checked();
    if (addresses.empty()) continue;  // no endpoints at all: a build problem
    std::size_t dead = 0;
    for (const auto& address : addresses) {
      auto fault = links.find(address);
      if (fault != links.end() && fault->second.permanently_dead()) ++dead;
    }
    if (dead == addresses.size()) {
      const dns::Name& zone = zone_names.at(origin);
      report.add(RuleId::kChaosUnobservable, zone, zone,
                 "all " + std::to_string(dead) +
                     " serving addresses are permanently blackholed");
    }
  }
  return report;
}

}  // namespace dnsboot::lint
