// Generator ↔ linter cross-validation. The ecosystem builder records which
// misconfiguration it injected into every zone (ZoneTruth); this header maps
// each truth class to the lint rule(s) that must flag it and scores a lint
// report against that ground truth. Used by `dnsboot_lint --self-check` and
// the lint test suite — the contract that generator, linter, and scanner
// witness the same reality.
//
// Header-only on purpose: dnsboot_lint itself must not link the ecosystem
// generator (the linter runs on arbitrary zones); only callers that already
// hold an Ecosystem pay the dependency.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "ecosystem/builder.hpp"
#include "lint/findings.hpp"

namespace dnsboot::lint {

struct CrossCheckClass {
  std::string name;           // truth-class label ("cds-no-matching-dnskey")
  std::vector<RuleId> rules;  // any of these flagging the zone counts as caught
  std::set<std::string> injected;  // canonical zone names carrying the flag
  std::set<std::string> missed;    // injected but not flagged
  std::size_t caught() const { return injected.size() - missed.size(); }
};

struct CrossCheckResult {
  std::vector<CrossCheckClass> classes;

  bool all_caught() const {
    for (const CrossCheckClass& c : classes) {
      if (!c.missed.empty()) return false;
    }
    return true;
  }
};

inline CrossCheckResult cross_check(const ecosystem::Ecosystem& eco,
                                    const LintReport& report) {
  using ecosystem::ZoneState;
  using ecosystem::ZoneTruth;

  struct ClassSpec {
    const char* name;
    std::vector<RuleId> rules;
    bool (*matches)(const ZoneTruth&);
  };
  // Every misconfiguration class the builder can inject (paper §4.2/§4.4),
  // with the rule(s) obligated to catch it. "invalid-dnssec" accepts either
  // L004 (expired signatures) or L009 (errant DS over an unsigned child) —
  // the builder materializes the Invalid state both ways.
  static const std::vector<ClassSpec> specs = {
      {"unsigned-with-cds",
       {RuleId::kCdsUnsignedZone},
       [](const ZoneTruth& t) {
         return t.cds && t.state == ZoneState::kUnsigned;
       }},
      {"cds-no-matching-dnskey",
       {RuleId::kCdsDnskeyMismatch},
       [](const ZoneTruth& t) { return t.cds_no_match; }},
      {"cds-bad-rrsig",
       {RuleId::kRrsigInvalid},
       [](const ZoneTruth& t) { return t.cds_bad_rrsig; }},
      {"invalid-dnssec",
       {RuleId::kRrsigTemporal, RuleId::kDsUnsignedChild},
       [](const ZoneTruth& t) { return t.state == ZoneState::kInvalid; }},
      {"cds-inconsistent",
       {RuleId::kCdsCrossServer},
       [](const ZoneTruth& t) { return t.cds_inconsistent; }},
      {"signal-missing-one-ns",
       {RuleId::kSignalIncomplete},
       [](const ZoneTruth& t) { return t.signal_missing_one_ns; }},
      {"signal-stale-one-ns",
       {RuleId::kSignalInconsistent},
       [](const ZoneTruth& t) { return t.signal_stale_one_ns; }},
      {"signal-zone-cut",
       {RuleId::kSignalZoneCut},
       [](const ZoneTruth& t) { return t.signal_zone_cut; }},
      {"signal-on-broken-zone",
       {RuleId::kSignalUnbootstrappable},
       [](const ZoneTruth& t) {
         return t.signal && (t.state == ZoneState::kUnsigned ||
                             t.state == ZoneState::kInvalid);
       }},
      {"csync-migration",
       {RuleId::kDelegationDrift},
       [](const ZoneTruth& t) { return t.csync; }},
      // Botched key-lifecycle snapshots (RFC 7583 ordering violations).
      // Premature-DS zones also trip L008 (the DS is an orphan) and L002
      // (the successor CDS matches no key) — the class is satisfied by the
      // refined rule alone.
      {"roll-premature-ds",
       {RuleId::kDsPrematureKey},
       [](const ZoneTruth& t) {
         return t.rollover == kasp::RolloverScenario::kPrematureDs;
       }},
      {"roll-stale-rrsig",
       {RuleId::kRrsigRetiredKey},
       [](const ZoneTruth& t) {
         return t.rollover == kasp::RolloverScenario::kStaleRrsig;
       }},
      {"roll-cds-unpublished",
       {RuleId::kCdsUnpublishedKey},
       [](const ZoneTruth& t) {
         return t.rollover == kasp::RolloverScenario::kCdsUnpublishedKey;
       }},
      {"roll-algorithm-broken",
       {RuleId::kAlgorithmRollOrder},
       [](const ZoneTruth& t) {
         return t.rollover == kasp::RolloverScenario::kAlgorithmBroken;
       }},
  };

  CrossCheckResult result;
  for (const ClassSpec& spec : specs) {
    CrossCheckClass cls;
    cls.name = spec.name;
    cls.rules = spec.rules;
    for (const auto& [zone, truth] : eco.truth) {
      if (spec.matches(truth)) cls.injected.insert(zone);
    }
    std::set<std::string> flagged;
    for (RuleId rule : spec.rules) {
      for (const std::string& zone : report.zones_with(rule)) {
        flagged.insert(zone);
      }
    }
    for (const std::string& zone : cls.injected) {
      if (flagged.count(zone) == 0) cls.missed.insert(zone);
    }
    result.classes.push_back(std::move(cls));
  }
  return result;
}

// A misconfiguration-free world for the negative half of the self-check: the
// linter must come back empty on it. Custom operators are required — the
// paper profiles always contain Invalid zones, and the builder assigns the
// signal-on-broken and CSYNC quotas outside the `inject_pathologies` guard,
// so `inject_pathologies = false` alone does not produce a clean world.
inline ecosystem::EcosystemConfig clean_world_config(std::uint64_t seed = 7) {
  ecosystem::OperatorProfile signal_op;
  signal_op.name = "CleanSignal";
  signal_op.ns_domains = {"cleansignal.net", "cleansignal.org"};
  signal_op.tld = "net";
  signal_op.customer_tld = "ch";
  signal_op.domains = 24;
  signal_op.secured = 8;
  signal_op.islands = 8;  // remainder (8) stays unsigned
  signal_op.cds_domains = 8;
  signal_op.island_cds_fraction = 1.0;
  signal_op.island_cds_delete_fraction = 0.25;
  signal_op.publishes_signal = true;
  signal_op.signal_includes_delete = true;

  ecosystem::OperatorProfile plain_op;
  plain_op.name = "CleanPlain";
  plain_op.ns_domains = {"cleanplain.com"};
  plain_op.customer_tld = "com";
  plain_op.domains = 10;
  plain_op.secured = 2;
  plain_op.cds_domains = 2;

  ecosystem::EcosystemConfig config;
  config.seed = seed;
  config.scale = 1.0;
  config.inject_pathologies = false;
  config.operators = {signal_op, plain_op};
  return config;
}

// A world of key-lifecycle snapshots for the rollover half of the
// self-check: every RFC 7583 scenario class injected, nothing else. The
// mid-rollover scenarios (pre-published ZSK, double-DS KSK) are *correct*
// operator behavior and must lint clean; the four botched ones must each be
// caught by its L107–L110 rule. Rollover quotas live on the OperatorProfile
// (scaled outside the inject_pathologies guard, like CSYNC), so a custom
// profile is enough.
inline ecosystem::EcosystemConfig rollover_world_config(std::uint64_t seed = 11) {
  ecosystem::OperatorProfile op;
  op.name = "RollLab";
  op.ns_domains = {"rolllab.net", "rolllab.org"};
  op.tld = "net";
  op.customer_tld = "org";
  op.domains = 48;
  op.secured = 40;
  op.cds_domains = 8;
  op.roll_mid_zsk = 4;
  op.roll_mid_ksk = 4;
  op.roll_premature_ds = 4;
  op.roll_stale_rrsig = 4;
  op.roll_cds_unpublished = 4;
  op.roll_algorithm_broken = 4;

  ecosystem::EcosystemConfig config;
  config.seed = seed;
  config.scale = 1.0;
  config.inject_pathologies = false;
  config.operators = {op};
  return config;
}

}  // namespace dnsboot::lint
