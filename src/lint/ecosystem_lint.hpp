// Ecosystem-level static analysis (rules L100–L105): checks that span zone
// boundaries — delegation consistency, cross-server CDS agreement, and
// RFC 9615 _dsboot signaling-tree placement — evaluated over a static view
// of every zone every authoritative server publishes, without simulating a
// single query.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lint/findings.hpp"
#include "lint/zone_lint.hpp"
#include "server/auth_server.hpp"

namespace dnsboot::lint {

// One distinct version of a zone's contents plus the servers publishing it.
// A healthy zone has exactly one version; divergent copies (the paper's
// §4.2 cross-NS inconsistencies) appear as additional versions.
struct ZoneVersion {
  std::shared_ptr<const dns::Zone> zone;
  std::vector<std::string> servers;
};

struct EcosystemView {
  // Canonical origin text -> distinct versions, first-seen order.
  std::map<std::string, std::vector<ZoneVersion>> zones;
  std::uint32_t now = 0;

  // Register one (zone, server) pair; same Zone object twice merges.
  void add(std::shared_ptr<const dns::Zone> zone, const std::string& server);

  // The zone whose origin is the longest suffix of `name` (first version),
  // or nullptr when no zone in the view contains the name.
  const dns::Zone* find_zone(const dns::Name& name) const;
};

// Collect the view from a server set (e.g. ecosystem::Ecosystem::servers).
EcosystemView collect_view(
    const std::vector<std::shared_ptr<server::AuthServer>>& servers,
    std::uint32_t now);

struct EcosystemLintOptions {
  // Per-zone options; `now`, `parent_ds` and `have_parent` are filled in
  // from the view for every zone.
  ZoneLintOptions zone;
};

// Run the single-zone rules over every zone version (with parent DS context
// resolved from the view) plus the cross-zone rules.
LintReport lint_ecosystem(const EcosystemView& view,
                          const EcosystemLintOptions& options = {});

}  // namespace dnsboot::lint
