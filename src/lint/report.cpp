#include "lint/report.hpp"

namespace dnsboot::lint {
namespace {

void append_escaped(std::string& out, const std::string& value) {
  out += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string report_to_text(const LintReport& report) {
  std::string out;
  for (const Finding& finding : report.findings()) {
    const RuleInfo& rule = rule_info(finding.rule);
    out += to_string(rule.severity);
    out += ' ';
    out += rule.code;
    out += ' ';
    out += rule.name;
    out += " zone ";
    out += finding.zone.to_text();
    if (finding.owner != finding.zone) {
      out += " at ";
      out += finding.owner.to_text();
    }
    if (!finding.server.empty()) {
      out += " [";
      out += finding.server;
      out += ']';
    }
    out += ": ";
    out += finding.detail;
    out += '\n';
  }

  out += "checked " + std::to_string(report.zones_checked()) + " zone(s), " +
         std::to_string(report.size()) + " finding(s)";
  const auto counts = report.counts_by_rule();
  if (!counts.empty()) {
    out += " (";
    bool first = true;
    for (const auto& [rule, count] : counts) {
      if (!first) out += ", ";
      first = false;
      const RuleInfo& info = rule_info(rule);
      out += info.code;
      out += ' ';
      out.append(info.name);
      out += ": " + std::to_string(count);
    }
    out += ')';
  }
  out += '\n';
  return out;
}

std::string report_to_json(const LintReport& report) {
  std::string out = "{\"zones_checked\":";
  out += std::to_string(report.zones_checked());
  out += ",\"findings\":[";
  bool first = true;
  for (const Finding& finding : report.findings()) {
    if (!first) out += ',';
    first = false;
    const RuleInfo& rule = rule_info(finding.rule);
    out += "{\"rule\":";
    append_escaped(out, std::string(rule.code));
    out += ",\"name\":";
    append_escaped(out, std::string(rule.name));
    out += ",\"severity\":";
    append_escaped(out, std::string(to_string(rule.severity)));
    out += ",\"zone\":";
    append_escaped(out, finding.zone.to_text());
    out += ",\"owner\":";
    append_escaped(out, finding.owner.to_text());
    if (!finding.server.empty()) {
      out += ",\"server\":";
      append_escaped(out, finding.server);
    }
    out += ",\"detail\":";
    append_escaped(out, finding.detail);
    out += '}';
  }
  out += "],\"summary\":{";
  first = true;
  for (const auto& [rule, count] : report.counts_by_rule()) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, std::string(rule_info(rule).code));
    out += ':';
    out += std::to_string(count);
  }
  out += "}}";
  return out;
}

}  // namespace dnsboot::lint
