// Text and JSON renderers for lint reports — the CLI's output layer.
#pragma once

#include <string>

#include "lint/findings.hpp"

namespace dnsboot::lint {

// Human-readable report: one line per finding
// ("error L001 cds-unsigned-zone zone example.com.: <detail>") followed by a
// per-rule summary block.
std::string report_to_text(const LintReport& report);

// Machine-readable report: {"zones_checked":N,"findings":[...],"summary":{...}}.
std::string report_to_json(const LintReport& report);

}  // namespace dnsboot::lint
