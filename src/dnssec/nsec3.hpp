// NSEC3 (RFC 5155): hashed authenticated denial of existence. dnsboot signs
// zones with either NSEC or NSEC3 (SigningPolicy.denial); validators verify
// both.
#pragma once

#include "dns/zone.hpp"

namespace dnsboot::dnssec {

struct Nsec3Params {
  std::uint16_t iterations = 0;  // RFC 9276 best practice: 0 extra iterations
  Bytes salt;                    // RFC 9276: empty salt recommended
};

// The RFC 5155 §5 hash: IH(0) = H(owner | salt); IH(k) = H(IH(k-1) | salt),
// with H = SHA-1 and the owner in canonical (lowercase) wire form.
Bytes nsec3_hash(const dns::Name& owner, const Nsec3Params& params);

// The NSEC3 owner name for `name` in `zone`: base32hex(hash).<zone apex>.
dns::Name nsec3_owner(const dns::Name& name, const dns::Name& apex,
                      const Nsec3Params& params);

// Build the NSEC3 chain (plus NSEC3PARAM at the apex) over the zone's
// authoritative names. Called by sign_zone; exposed for tests.
Status build_nsec3_chain(dns::Zone& zone, const Nsec3Params& params,
                         std::uint32_t ttl);

// --- denial proofs -------------------------------------------------------------

// Does this NSEC3 record (owner = hashed label + apex) match `name`'s hash?
bool nsec3_matches(const dns::ResourceRecord& nsec3, const dns::Name& apex,
                   const dns::Name& name);

// Does it cover `name`'s hash (strictly between owner hash and next hash)?
bool nsec3_covers(const dns::ResourceRecord& nsec3, const dns::Name& apex,
                  const dns::Name& name);

// NODATA: an NSEC3 matching `name` without `type` in its bitmap.
bool nsec3_proves_nodata(const std::vector<dns::ResourceRecord>& nsec3s,
                         const dns::Name& apex, const dns::Name& name,
                         dns::RRType type);

// NXDOMAIN: a matching NSEC3 for the closest encloser plus a covering NSEC3
// for the next-closer name (no wildcards in the simulated ecosystem).
bool nsec3_proves_nxdomain(const std::vector<dns::ResourceRecord>& nsec3s,
                           const dns::Name& apex, const dns::Name& name);

}  // namespace dnsboot::dnssec
