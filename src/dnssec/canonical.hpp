// RFC 4034 canonical form: the exact byte string covered by an RRSIG
// (§3.1.8.1), shared by the signer and the validator.
#pragma once

#include "dns/rdata.hpp"
#include "dns/record.hpp"

namespace dnsboot::dnssec {

// Build the signature input: RRSIG RDATA with the Signature field omitted,
// followed by each RR of the set in canonical form (owner lowercased,
// original TTL from the RRSIG, RDATA in canonical order).
Bytes signature_input(const dns::RRset& rrset, const dns::RrsigRdata& rrsig);

// DS digest input: canonical owner name || DNSKEY RDATA (RFC 4034 §5.1.4).
Bytes ds_digest_input(const dns::Name& owner, const dns::DnskeyRdata& dnskey);

}  // namespace dnsboot::dnssec
