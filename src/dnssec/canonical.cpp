#include "dnssec/canonical.hpp"

#include <algorithm>

namespace dnsboot::dnssec {

Bytes signature_input(const dns::RRset& rrset, const dns::RrsigRdata& rrsig) {
  ByteWriter w;
  // RRSIG RDATA sans signature (RFC 4034 §3.1.8.1 item 2).
  w.u16(static_cast<std::uint16_t>(rrsig.type_covered));
  w.u8(rrsig.algorithm);
  w.u8(rrsig.labels);
  w.u32(rrsig.original_ttl);
  w.u32(rrsig.expiration);
  w.u32(rrsig.inception);
  w.u16(rrsig.key_tag);
  rrsig.signer_name.encode_canonical(w);

  // Owner wire form, shared by every RR in the set.
  ByteWriter owner_writer;
  rrset.name.encode_canonical(owner_writer);
  const Bytes owner = owner_writer.take();

  // Each RR: owner | type | class | original TTL | RDLENGTH | canonical RDATA,
  // with the RRs sorted by canonical RDATA (RFC 4034 §6.3).
  std::vector<Bytes> rdatas;
  rdatas.reserve(rrset.rdatas.size());
  for (const auto& rd : rrset.rdatas) {
    rdatas.push_back(dns::canonical_rdata_bytes(rd));
  }
  std::sort(rdatas.begin(), rdatas.end());

  for (const auto& rdata : rdatas) {
    w.raw(owner);
    w.u16(static_cast<std::uint16_t>(rrset.type));
    w.u16(static_cast<std::uint16_t>(rrset.klass));
    w.u32(rrsig.original_ttl);
    w.u16(static_cast<std::uint16_t>(rdata.size()));
    w.raw(rdata);
  }
  return w.take();
}

Bytes ds_digest_input(const dns::Name& owner, const dns::DnskeyRdata& dnskey) {
  ByteWriter w;
  owner.encode_canonical(w);
  dns::encode_rdata(dns::Rdata{dnskey}, w, /*canonical=*/true);
  return w.take();
}

}  // namespace dnsboot::dnssec
