#include "dnssec/nsec3.hpp"

#include <algorithm>
#include <map>

#include "base/encoding.hpp"
#include "crypto/sha1.hpp"
#include "dnssec/signer.hpp"

namespace dnsboot::dnssec {
namespace {

// Extract the Nsec3Params an NSEC3 record was generated with.
Nsec3Params params_of(const dns::Nsec3Rdata& rdata) {
  return Nsec3Params{rdata.iterations, rdata.salt};
}

// Hash of the first label of an NSEC3 owner name (base32hex-decoded).
Result<Bytes> owner_hash_of(const dns::ResourceRecord& nsec3,
                            const dns::Name& apex) {
  if (!nsec3.name.is_strictly_under(apex) || nsec3.name.labels().empty()) {
    return Error{"nsec3.bad_owner", nsec3.name.to_text()};
  }
  return base32hex_decode(nsec3.name.labels()[0]);
}

}  // namespace

Bytes nsec3_hash(const dns::Name& owner, const Nsec3Params& params) {
  ByteWriter w;
  owner.encode_canonical(w);
  Bytes input = w.take();
  input.insert(input.end(), params.salt.begin(), params.salt.end());
  auto digest = crypto::Sha1::digest(input);
  Bytes hash(digest.begin(), digest.end());
  for (std::uint16_t i = 0; i < params.iterations; ++i) {
    Bytes round = hash;
    round.insert(round.end(), params.salt.begin(), params.salt.end());
    auto d = crypto::Sha1::digest(round);
    hash.assign(d.begin(), d.end());
  }
  return hash;
}

dns::Name nsec3_owner(const dns::Name& name, const dns::Name& apex,
                      const Nsec3Params& params) {
  std::string label = base32hex_encode(nsec3_hash(name, params));
  auto owner = apex.prepend(label);
  // base32hex of a SHA-1 hash is 32 chars; cannot exceed label limits under
  // any apex that itself fits in a name.
  return std::move(owner).take();
}

Status build_nsec3_chain(dns::Zone& zone, const Nsec3Params& params,
                         std::uint32_t ttl) {
  // NSEC3PARAM at the apex (RFC 5155 §4).
  dns::ResourceRecord param_rr;
  param_rr.name = zone.origin();
  param_rr.type = dns::RRType::kNSEC3PARAM;
  param_rr.ttl = ttl;
  param_rr.rdata = dns::Nsec3ParamRdata{1, 0, params.iterations, params.salt};
  DNSBOOT_CHECK(zone.add(param_rr));

  // Hash every authoritative name; sort by hash to link the chain.
  struct Entry {
    Bytes hash;
    dns::Name owner;
    dns::TypeBitmap types;
  };
  std::vector<Entry> entries;
  for (const auto& name : zone.names()) {
    if (!is_authoritative_name(zone, name)) continue;
    if (name.labels().size() > zone.origin().labels().size() &&
        zone.find_rrset(name, dns::RRType::kNSEC3) != nullptr) {
      continue;  // never hash NSEC3 owners themselves
    }
    Entry entry;
    entry.hash = nsec3_hash(name, params);
    entry.owner = name;
    for (const auto* set : zone.rrsets_at(name)) {
      if (set->type == dns::RRType::kNSEC3) continue;
      entry.types.add(set->type);
    }
    if (!zone.is_delegation_point(name)) {
      entry.types.add(dns::RRType::kRRSIG);
    }
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.hash < b.hash; });

  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& entry = entries[i];
    const Entry& next = entries[(i + 1) % entries.size()];
    dns::ResourceRecord rr;
    rr.name = zone.origin()
                  .prepend(base32hex_encode(entry.hash))
                  .take();
    rr.type = dns::RRType::kNSEC3;
    rr.ttl = ttl;
    dns::Nsec3Rdata rdata;
    rdata.hash_algorithm = 1;
    rdata.flags = 0;
    rdata.iterations = params.iterations;
    rdata.salt = params.salt;
    rdata.next_hashed_owner = next.hash;
    rdata.types = entry.types;
    rr.rdata = std::move(rdata);
    DNSBOOT_CHECK(zone.add(rr));
  }
  return Status::ok_status();
}

bool nsec3_matches(const dns::ResourceRecord& nsec3, const dns::Name& apex,
                   const dns::Name& name) {
  const auto* rdata = std::get_if<dns::Nsec3Rdata>(&nsec3.rdata);
  if (rdata == nullptr) return false;
  auto owner_hash = owner_hash_of(nsec3, apex);
  if (!owner_hash.ok()) return false;
  return owner_hash.value() == nsec3_hash(name, params_of(*rdata));
}

bool nsec3_covers(const dns::ResourceRecord& nsec3, const dns::Name& apex,
                  const dns::Name& name) {
  const auto* rdata = std::get_if<dns::Nsec3Rdata>(&nsec3.rdata);
  if (rdata == nullptr) return false;
  auto owner_hash_result = owner_hash_of(nsec3, apex);
  if (!owner_hash_result.ok()) return false;
  const Bytes& owner_hash = owner_hash_result.value();
  const Bytes& next_hash = rdata->next_hashed_owner;
  Bytes target = nsec3_hash(name, params_of(*rdata));
  if (owner_hash < next_hash) {
    return owner_hash < target && target < next_hash;
  }
  // Wrap-around at the end of the hash ring.
  return target > owner_hash || target < next_hash;
}

bool nsec3_proves_nodata(const std::vector<dns::ResourceRecord>& nsec3s,
                         const dns::Name& apex, const dns::Name& name,
                         dns::RRType type) {
  for (const auto& rr : nsec3s) {
    if (rr.type != dns::RRType::kNSEC3) continue;
    if (!nsec3_matches(rr, apex, name)) continue;
    const auto& rdata = std::get<dns::Nsec3Rdata>(rr.rdata);
    if (!rdata.types.contains(type) &&
        !rdata.types.contains(dns::RRType::kCNAME)) {
      return true;
    }
  }
  return false;
}

bool nsec3_proves_nxdomain(const std::vector<dns::ResourceRecord>& nsec3s,
                           const dns::Name& apex, const dns::Name& name) {
  // Find the closest encloser with a *matching* NSEC3, then require a
  // covering NSEC3 for the next-closer name (RFC 5155 §8.4).
  dns::Name closest = name.parent();
  dns::Name next_closer = name;
  while (closest.label_count() >= apex.label_count()) {
    bool matched = false;
    for (const auto& rr : nsec3s) {
      if (rr.type == dns::RRType::kNSEC3 && nsec3_matches(rr, apex, closest)) {
        matched = true;
        break;
      }
    }
    if (matched) {
      for (const auto& rr : nsec3s) {
        if (rr.type == dns::RRType::kNSEC3 &&
            nsec3_covers(rr, apex, next_closer)) {
          return true;
        }
      }
      return false;
    }
    if (closest.is_root()) break;
    next_closer = closest;
    closest = closest.parent();
  }
  return false;
}

}  // namespace dnsboot::dnssec
