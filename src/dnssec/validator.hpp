// DNSSEC validation: RRSIG verification, DS↔DNSKEY chaining, NSEC denial
// proofs, and the per-zone status classification used throughout the paper's
// §4 (Unsigned / Secure / Bogus / Secure island).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dns/record.hpp"

namespace dnsboot::dnssec {

// An RRset together with its covering RRSIGs, as observed by the scanner.
struct SignedRRset {
  dns::RRset rrset;
  std::vector<dns::RrsigRdata> signatures;
};

struct RrsetValidation {
  bool valid = false;
  std::string reason;  // diagnostic, e.g. "rrsig.expired"

  static RrsetValidation ok() { return {true, {}}; }
  static RrsetValidation fail(std::string why) { return {false, std::move(why)}; }
};

// Verify one RRSIG over one RRset with one DNSKEY (RFC 4035 §5.3).
RrsetValidation verify_signature(const dns::RRset& rrset,
                                 const dns::RrsigRdata& rrsig,
                                 const dns::DnskeyRdata& dnskey,
                                 const dns::Name& zone_apex,
                                 std::uint32_t now);

// Verify an RRset against a key set: valid iff at least one (RRSIG, DNSKEY)
// pair validates. Returns the most informative failure reason otherwise.
RrsetValidation verify_rrset(const dns::RRset& rrset,
                             const std::vector<dns::RrsigRdata>& rrsigs,
                             const std::vector<dns::DnskeyRdata>& keys,
                             const dns::Name& zone_apex, std::uint32_t now);

// Does this DS RDATA commit to this DNSKEY at `owner`?
bool ds_matches_dnskey(const dns::Name& owner, const dns::DsRdata& ds,
                       const dns::DnskeyRdata& dnskey);

// Validate an apex DNSKEY RRset against the delegating DS set: some DS must
// match a SEP key in the set, and that key must sign the DNSKEY RRset.
RrsetValidation validate_dnskey_rrset(const dns::Name& apex,
                                      const SignedRRset& dnskey_rrset,
                                      const std::vector<dns::DsRdata>& ds_set,
                                      std::uint32_t now);

// --- NSEC denial proofs (RFC 4035 §5.4) -------------------------------------

// Does `nsec` (owned by `owner`) cover `name` (owner < name < next, with
// apex wrap-around)?
bool nsec_covers(const dns::Name& owner, const dns::NsecRdata& nsec,
                 const dns::Name& name);

// Do the given NSEC records prove NODATA for (name, type)?
bool nsec_proves_nodata(const std::vector<dns::ResourceRecord>& nsecs,
                        const dns::Name& name, dns::RRType type);

// Do they prove NXDOMAIN for `name`?
bool nsec_proves_nxdomain(const std::vector<dns::ResourceRecord>& nsecs,
                          const dns::Name& name);

// --- Whole-zone classification ------------------------------------------------

// The four states the paper's §4.1 reports.
enum class ZoneDnssecStatus {
  kUnsigned,      // no DNSKEY, no DS
  kSecure,        // valid chain parent → DS → DNSKEY → data
  kBogus,         // fails validation (invalid/expired sigs, orphan DS, ...)
  kSecureIsland,  // validly signed but no DS at the (secure) parent
};

std::string to_string(ZoneDnssecStatus status);

struct ZoneObservationForValidation {
  dns::Name apex;
  bool parent_secure = true;  // the TLDs in scope are signed (paper §3)
  std::vector<dns::DsRdata> parent_ds;
  std::optional<SignedRRset> dnskey;  // apex DNSKEY RRset, if any
  // Representative authoritative data (the scanner collects SOA); all must
  // validate for the zone to count as validly signed.
  std::vector<SignedRRset> data;
  std::uint32_t now = 0;
};

struct ZoneClassification {
  ZoneDnssecStatus status = ZoneDnssecStatus::kUnsigned;
  std::string reason;
};

ZoneClassification classify_zone(const ZoneObservationForValidation& obs);

}  // namespace dnsboot::dnssec
