#include "dnssec/validator.hpp"

#include "crypto/keys.hpp"
#include "dnssec/canonical.hpp"
#include "dnssec/signer.hpp"

namespace dnsboot::dnssec {

RrsetValidation verify_signature(const dns::RRset& rrset,
                                 const dns::RrsigRdata& rrsig,
                                 const dns::DnskeyRdata& dnskey,
                                 const dns::Name& zone_apex,
                                 std::uint32_t now) {
  if (rrsig.type_covered != rrset.type) {
    return RrsetValidation::fail("rrsig.wrong_type_covered");
  }
  if (rrsig.signer_name != zone_apex) {
    return RrsetValidation::fail("rrsig.wrong_signer");
  }
  if (!rrset.name.is_under(zone_apex)) {
    return RrsetValidation::fail("rrsig.owner_outside_zone");
  }
  if (rrsig.labels != rrset.name.label_count()) {
    // No wildcard support in the simulated ecosystem; a mismatch is an error.
    return RrsetValidation::fail("rrsig.label_count_mismatch");
  }
  if (now < rrsig.inception) {
    return RrsetValidation::fail("rrsig.not_yet_valid");
  }
  if (now > rrsig.expiration) {
    return RrsetValidation::fail("rrsig.expired");
  }
  if (!dnskey.is_zone_key() || dnskey.protocol != 3) {
    return RrsetValidation::fail("dnskey.not_zone_key");
  }
  if (dnskey.algorithm != rrsig.algorithm) {
    return RrsetValidation::fail("rrsig.algorithm_mismatch");
  }
  if (dnskey.key_tag() != rrsig.key_tag) {
    return RrsetValidation::fail("rrsig.key_tag_mismatch");
  }
  if (dnskey.algorithm !=
      static_cast<std::uint8_t>(crypto::DnssecAlgorithm::kEd25519)) {
    return RrsetValidation::fail("rrsig.unsupported_algorithm");
  }
  Bytes input = signature_input(rrset, rrsig);
  if (!crypto::KeyPair::verify_with(dnskey.public_key, input,
                                    rrsig.signature)) {
    return RrsetValidation::fail("rrsig.bad_signature");
  }
  return RrsetValidation::ok();
}

RrsetValidation verify_rrset(const dns::RRset& rrset,
                             const std::vector<dns::RrsigRdata>& rrsigs,
                             const std::vector<dns::DnskeyRdata>& keys,
                             const dns::Name& zone_apex, std::uint32_t now) {
  if (rrsigs.empty()) return RrsetValidation::fail("rrsig.missing");
  if (keys.empty()) return RrsetValidation::fail("dnskey.missing");
  RrsetValidation last = RrsetValidation::fail("rrsig.no_matching_key");
  for (const auto& rrsig : rrsigs) {
    for (const auto& key : keys) {
      RrsetValidation v = verify_signature(rrset, rrsig, key, zone_apex, now);
      if (v.valid) return v;
      last = v;
    }
  }
  return last;
}

bool ds_matches_dnskey(const dns::Name& owner, const dns::DsRdata& ds,
                       const dns::DnskeyRdata& dnskey) {
  if (ds.key_tag != dnskey.key_tag()) return false;
  if (ds.algorithm != dnskey.algorithm) return false;
  auto expected = make_ds(owner, dnskey, ds.digest_type);
  if (!expected.ok()) return false;  // unsupported digest type
  return expected->digest == ds.digest;
}

RrsetValidation validate_dnskey_rrset(const dns::Name& apex,
                                      const SignedRRset& dnskey_rrset,
                                      const std::vector<dns::DsRdata>& ds_set,
                                      std::uint32_t now) {
  if (dnskey_rrset.rrset.rdatas.empty()) {
    return RrsetValidation::fail("dnskey.missing");
  }
  if (ds_set.empty()) return RrsetValidation::fail("ds.missing");

  // Find a DS that commits to a key in the set, then require that key to
  // sign the DNSKEY RRset (RFC 4035 §5.2).
  RrsetValidation last = RrsetValidation::fail("ds.no_matching_dnskey");
  for (const auto& ds : ds_set) {
    for (const auto& rd : dnskey_rrset.rrset.rdatas) {
      const auto* key = std::get_if<dns::DnskeyRdata>(&rd);
      if (key == nullptr) continue;
      if (!ds_matches_dnskey(apex, ds, *key)) continue;
      RrsetValidation v = verify_rrset(dnskey_rrset.rrset,
                                       dnskey_rrset.signatures, {*key}, apex,
                                       now);
      if (v.valid) return v;
      last = v;
    }
  }
  return last;
}

bool nsec_covers(const dns::Name& owner, const dns::NsecRdata& nsec,
                 const dns::Name& name) {
  const dns::Name& next = nsec.next_domain;
  if (owner < next) {
    return owner < name && name < next;
  }
  // Chain wrap-around: owner is the canonically last name.
  return owner < name || name < next;
}

bool nsec_proves_nodata(const std::vector<dns::ResourceRecord>& nsecs,
                        const dns::Name& name, dns::RRType type) {
  for (const auto& rr : nsecs) {
    if (rr.type != dns::RRType::kNSEC || rr.name != name) continue;
    const auto& nsec = std::get<dns::NsecRdata>(rr.rdata);
    if (!nsec.types.contains(type) &&
        !nsec.types.contains(dns::RRType::kCNAME)) {
      return true;
    }
  }
  return false;
}

bool nsec_proves_nxdomain(const std::vector<dns::ResourceRecord>& nsecs,
                          const dns::Name& name) {
  // Need one NSEC covering the name itself. (A full resolver also checks a
  // covering NSEC for the wildcard *.closest-encloser; the simulated
  // ecosystem has no wildcards, so the single cover suffices.)
  for (const auto& rr : nsecs) {
    if (rr.type != dns::RRType::kNSEC) continue;
    const auto& nsec = std::get<dns::NsecRdata>(rr.rdata);
    if (nsec_covers(rr.name, nsec, name)) return true;
  }
  return false;
}

std::string to_string(ZoneDnssecStatus status) {
  switch (status) {
    case ZoneDnssecStatus::kUnsigned: return "unsigned";
    case ZoneDnssecStatus::kSecure: return "secure";
    case ZoneDnssecStatus::kBogus: return "bogus";
    case ZoneDnssecStatus::kSecureIsland: return "secure-island";
  }
  return "?";
}

ZoneClassification classify_zone(const ZoneObservationForValidation& obs) {
  const bool has_dnskey =
      obs.dnskey.has_value() && !obs.dnskey->rrset.rdatas.empty();
  const bool has_ds = !obs.parent_ds.empty();

  if (!has_dnskey) {
    if (has_ds) {
      // Errant DS with no keys below: validating resolvers see Bogus
      // (the Table 1 "Invalid" column for no-DNSSEC operators).
      return {ZoneDnssecStatus::kBogus, "ds.orphaned_no_dnskey"};
    }
    return {ZoneDnssecStatus::kUnsigned, ""};
  }

  // Zone is signed in some form. Self-validate the data with the DNSKEYs.
  std::vector<dns::DnskeyRdata> keys;
  for (const auto& rd : obs.dnskey->rrset.rdatas) {
    if (const auto* key = std::get_if<dns::DnskeyRdata>(&rd)) {
      keys.push_back(*key);
    }
  }
  RrsetValidation self = verify_rrset(obs.dnskey->rrset,
                                      obs.dnskey->signatures, keys, obs.apex,
                                      obs.now);
  if (!self.valid) {
    return {ZoneDnssecStatus::kBogus, "dnskey." + self.reason};
  }
  for (const auto& signed_set : obs.data) {
    RrsetValidation v = verify_rrset(signed_set.rrset, signed_set.signatures,
                                     keys, obs.apex, obs.now);
    if (!v.valid) {
      return {ZoneDnssecStatus::kBogus, "data." + v.reason};
    }
  }

  if (!has_ds) {
    // Validly signed, no DS above: the paper's secure island. Resolvers
    // treat it as insecure (RFC 4035 §5.2), so it is not Bogus.
    return {ZoneDnssecStatus::kSecureIsland, ""};
  }
  if (!obs.parent_secure) {
    // Cannot build a chain through an insecure parent; out of scope for the
    // paper (all studied TLDs are signed) but handled for completeness.
    return {ZoneDnssecStatus::kSecureIsland, "parent.insecure"};
  }
  RrsetValidation chained =
      validate_dnskey_rrset(obs.apex, *obs.dnskey, obs.parent_ds, obs.now);
  if (!chained.valid) {
    return {ZoneDnssecStatus::kBogus, "chain." + chained.reason};
  }
  return {ZoneDnssecStatus::kSecure, ""};
}

}  // namespace dnsboot::dnssec
