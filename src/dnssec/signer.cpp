#include "dnssec/signer.hpp"

#include <algorithm>

#include "crypto/sha2.hpp"
#include "dnssec/canonical.hpp"
#include "dnssec/nsec3.hpp"

namespace dnsboot::dnssec {

ZoneKeys ZoneKeys::generate(Rng& rng) {
  ZoneKeys keys{crypto::KeyPair::generate(rng, crypto::kKskFlags),
                crypto::KeyPair::generate(rng, crypto::kZskFlags),
                {},
                {},
                {},
                {}};
  return keys;
}

dns::DnskeyRdata make_dnskey(const crypto::KeyPair& key) {
  dns::DnskeyRdata rd;
  rd.flags = key.flags();
  rd.protocol = 3;
  rd.algorithm = static_cast<std::uint8_t>(key.algorithm());
  rd.public_key = key.public_key();
  return rd;
}

Result<dns::DsRdata> make_ds(const dns::Name& owner,
                             const dns::DnskeyRdata& dnskey,
                             std::uint8_t digest_type) {
  Bytes input = ds_digest_input(owner, dnskey);
  dns::DsRdata ds;
  ds.key_tag = dnskey.key_tag();
  ds.algorithm = dnskey.algorithm;
  ds.digest_type = digest_type;
  switch (digest_type) {
    case 2: {
      auto digest = crypto::Sha256::digest(input);
      ds.digest.assign(digest.begin(), digest.end());
      break;
    }
    case 4: {
      auto digest = crypto::Sha384::digest(input);
      ds.digest.assign(digest.begin(), digest.end());
      break;
    }
    default:
      return Error{"dnssec.unsupported_digest",
                   "DS digest type " + std::to_string(digest_type)};
  }
  return ds;
}

Result<ChildSyncRecords> make_child_sync_records(const dns::Name& owner,
                                                 const crypto::KeyPair& ksk) {
  ChildSyncRecords out;
  dns::DnskeyRdata dnskey = make_dnskey(ksk);
  DNSBOOT_TRY(sha256, make_ds(owner, dnskey, 2));
  DNSBOOT_TRY(sha384, make_ds(owner, dnskey, 4));
  out.cds.push_back(std::move(sha256));
  out.cds.push_back(std::move(sha384));
  out.cdnskey.push_back(std::move(dnskey));
  return out;
}

dns::DsRdata cds_delete_sentinel() {
  return dns::DsRdata{0, 0, 0, Bytes{0}};
}

dns::DnskeyRdata cdnskey_delete_sentinel() {
  return dns::DnskeyRdata{0, 3, 0, Bytes{0}};
}

dns::ResourceRecord sign_rrset(const dns::RRset& rrset,
                               const crypto::KeyPair& key,
                               const dns::Name& signer,
                               const SigningPolicy& policy) {
  dns::RrsigRdata rrsig;
  rrsig.type_covered = rrset.type;
  rrsig.algorithm = static_cast<std::uint8_t>(key.algorithm());
  rrsig.labels = static_cast<std::uint8_t>(rrset.name.label_count());
  rrsig.original_ttl = rrset.ttl;
  rrsig.inception = policy.inception;
  rrsig.expiration = policy.expiration;
  rrsig.key_tag = make_dnskey(key).key_tag();
  rrsig.signer_name = signer;

  Bytes input = signature_input(rrset, rrsig);
  auto sig = key.sign(input);
  rrsig.signature.assign(sig.begin(), sig.end());

  dns::ResourceRecord rr;
  rr.name = rrset.name;
  rr.type = dns::RRType::kRRSIG;
  rr.klass = rrset.klass;
  rr.ttl = rrset.ttl;
  rr.rdata = std::move(rrsig);
  return rr;
}

bool is_authoritative_name(const dns::Zone& zone, const dns::Name& name) {
  // A name is occluded if a delegation point lies strictly between the apex
  // and the name (exclusive of the name itself: the cut owner's NS/DS live in
  // the parent zone, and the cut owner IS served — as a referral).
  dns::Name walk = name.parent();
  while (walk.label_count() > zone.origin().label_count()) {
    if (zone.is_delegation_point(walk)) return false;
    walk = walk.parent();
  }
  return true;
}

Status sign_zone(dns::Zone& zone, const ZoneKeys& keys,
                 const SigningPolicy& policy) {
  zone.strip_dnssec();
  zone.remove_rrset(zone.origin(), dns::RRType::kDNSKEY);

  // 1. DNSKEY RRset at the apex.
  dns::RRset dnskey_set;
  dnskey_set.name = zone.origin();
  dnskey_set.type = dns::RRType::kDNSKEY;
  dnskey_set.ttl = policy.dnskey_ttl;
  dnskey_set.rdatas.push_back(dns::Rdata{make_dnskey(keys.ksk)});
  dnskey_set.rdatas.push_back(dns::Rdata{make_dnskey(keys.zsk)});
  for (const auto& extra : keys.extra_ksks) {
    dnskey_set.rdatas.push_back(dns::Rdata{make_dnskey(extra)});
  }
  for (const auto& extra : keys.extra_zsks) {
    dnskey_set.rdatas.push_back(dns::Rdata{make_dnskey(extra)});
  }
  for (const auto& extra : keys.co_zsks) {
    dnskey_set.rdatas.push_back(dns::Rdata{make_dnskey(extra)});
  }
  for (const auto& extra : keys.extra_dnskeys) {
    dnskey_set.rdatas.push_back(dns::Rdata{extra});
  }
  DNSBOOT_CHECK(zone.add_rrset(dnskey_set));

  // 2. Denial chain: NSEC (canonically ordered, circular) or NSEC3.
  if (policy.generate_nsec && policy.denial == DenialMode::kNsec3) {
    DNSBOOT_CHECK(build_nsec3_chain(
        zone, Nsec3Params{policy.nsec3_iterations, policy.nsec3_salt},
        policy.nsec_ttl));
  }
  std::vector<dns::Name> chain_names;
  if (policy.generate_nsec && policy.denial == DenialMode::kNsec) {
    for (const auto& name : zone.names()) {
      if (is_authoritative_name(zone, name)) chain_names.push_back(name);
    }
  }
  for (std::size_t i = 0; i < chain_names.size(); ++i) {
    const dns::Name& owner = chain_names[i];
    const dns::Name& next = chain_names[(i + 1) % chain_names.size()];
    dns::TypeBitmap bitmap;
    for (const auto* set : zone.rrsets_at(owner)) bitmap.add(set->type);
    bitmap.add(dns::RRType::kNSEC);
    // Delegation points carry no RRSIG for their NS set; everything
    // authoritative is signed, so authoritative nodes get RRSIG in the map.
    if (!zone.is_delegation_point(owner)) bitmap.add(dns::RRType::kRRSIG);
    dns::ResourceRecord nsec;
    nsec.name = owner;
    nsec.type = dns::RRType::kNSEC;
    nsec.ttl = policy.nsec_ttl;
    nsec.rdata = dns::NsecRdata{next, std::move(bitmap)};
    DNSBOOT_CHECK(zone.add(nsec));
  }

  // 3. Sign every authoritative RRset. The DNSKEY RRset is signed by the KSK
  // (that is what the parent DS chains to); all else by the ZSK.
  for (const auto& set : zone.all_rrsets()) {
    if (!is_authoritative_name(zone, set.name)) continue;  // glue
    if (zone.is_delegation_point(set.name)) {
      // Parent-side data at a cut: NS is not signed; DS *is* signed.
      if (set.type != dns::RRType::kDS && set.type != dns::RRType::kNSEC) {
        continue;
      }
    }
    const crypto::KeyPair& key =
        (set.type == dns::RRType::kDNSKEY) ? keys.ksk : keys.zsk;
    DNSBOOT_CHECK(zone.add(sign_rrset(set, key, zone.origin(), policy)));
    if (set.type == dns::RRType::kDNSKEY) {
      // Rollover: every published KSK signs the DNSKEY RRset, so a DS
      // pointing at either old or new key validates the chain.
      for (const auto& extra : keys.extra_ksks) {
        DNSBOOT_CHECK(
            zone.add(sign_rrset(set, extra, zone.origin(), policy)));
      }
    } else {
      // Double-signature ZSK/algorithm rollover: the co-signing key adds a
      // second RRSIG over every data RRset the active ZSK signs.
      for (const auto& extra : keys.co_zsks) {
        DNSBOOT_CHECK(
            zone.add(sign_rrset(set, extra, zone.origin(), policy)));
      }
    }
  }
  return Status::ok_status();
}

}  // namespace dnsboot::dnssec
