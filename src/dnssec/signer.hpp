// Zone signing: DNSKEY/CDS/CDNSKEY construction, RRset signatures, NSEC
// chains, and whole-zone signing (the "DNS operator" side of the paper).
#pragma once

#include <optional>
#include <vector>

#include "crypto/keys.hpp"
#include "dns/zone.hpp"

namespace dnsboot::dnssec {

// Key material for one zone: a key-signing key (signs the DNSKEY RRset, is
// referenced by the DS in the parent) and a zone-signing key (signs the data).
struct ZoneKeys {
  crypto::KeyPair ksk;
  crypto::KeyPair zsk;
  // Additional KSKs kept in the DNSKEY RRset during a rollover (RFC 6781
  // double-signature scheme): the old key stays published and keeps signing
  // the DNSKEY RRset until the parent's DS has moved to the new key.
  std::vector<crypto::KeyPair> extra_ksks;
  // ZSKs published but not signing: the pre-publish phase of an RFC 6781
  // §4.1.1.1 ZSK rollover (the successor waits out Ipub before it may sign),
  // and the retire phase (the predecessor stays published until old RRSIGs
  // have left caches).
  std::vector<crypto::KeyPair> extra_zsks;
  // ZSKs that co-sign every ZSK-signed RRset (double-signature rollover, and
  // the algorithm-roll requirement of RFC 4035 §2.2 that each algorithm in
  // the DNSKEY RRset signs the zone).
  std::vector<crypto::KeyPair> co_zsks;
  // Raw DNSKEY rdatas published without any signing capability. Models key
  // material this build cannot sign with (e.g. a foreign-algorithm DNSKEY
  // during a botched algorithm rollover).
  std::vector<dns::DnskeyRdata> extra_dnskeys;

  static ZoneKeys generate(Rng& rng);
};

enum class DenialMode {
  kNsec,   // RFC 4034 NSEC chain
  kNsec3,  // RFC 5155 hashed chain + NSEC3PARAM
};

struct SigningPolicy {
  std::uint32_t inception = 0;          // absolute simulated seconds
  std::uint32_t expiration = 30 * 86400;
  std::uint32_t dnskey_ttl = 3600;
  std::uint32_t nsec_ttl = 300;
  // Generate the denial chain. Registry-scale zones (a TLD with 10^5
  // delegations) can skip it: the scan pipeline never requests denial proofs
  // from parents, and the chain would dominate signing cost.
  bool generate_nsec = true;
  DenialMode denial = DenialMode::kNsec;
  // NSEC3 parameters (RFC 9276 recommends 0 iterations, empty salt).
  std::uint16_t nsec3_iterations = 0;
  Bytes nsec3_salt;
};

// Build the DNSKEY RDATA for a key.
dns::DnskeyRdata make_dnskey(const crypto::KeyPair& key);

// Build a DS RDATA referencing `dnskey` at `owner`. Supported digest types:
// 2 (SHA-256) and 4 (SHA-384).
Result<dns::DsRdata> make_ds(const dns::Name& owner,
                             const dns::DnskeyRdata& dnskey,
                             std::uint8_t digest_type);

// CDS/CDNSKEY sets a compliant operator publishes for its KSK: CDS SHA-256 +
// CDS SHA-384 + CDNSKEY (the deSEC publication pattern described in §4.4).
struct ChildSyncRecords {
  std::vector<dns::DsRdata> cds;         // one per digest type
  std::vector<dns::DnskeyRdata> cdnskey; // the KSK itself
};
Result<ChildSyncRecords> make_child_sync_records(const dns::Name& owner,
                                                 const crypto::KeyPair& ksk);

// The RFC 8078 §4 delete sentinels.
dns::DsRdata cds_delete_sentinel();
dns::DnskeyRdata cdnskey_delete_sentinel();

// Sign one RRset with `key`, returning the RRSIG record.
dns::ResourceRecord sign_rrset(const dns::RRset& rrset,
                               const crypto::KeyPair& key,
                               const dns::Name& signer,
                               const SigningPolicy& policy);

// Sign a whole zone in place: installs the DNSKEY RRset, builds the NSEC
// chain, and signs every authoritative RRset (delegation NS sets and glue are
// left unsigned, per RFC 4035 §2.2). Idempotent: strips existing DNSSEC
// records first.
Status sign_zone(dns::Zone& zone, const ZoneKeys& keys,
                 const SigningPolicy& policy);

// Names that are authoritative in `zone` (not glue/occluded below a cut).
bool is_authoritative_name(const dns::Zone& zone, const dns::Name& name);

}  // namespace dnsboot::dnssec
