// Per-zone EWMA reliability/volatility statistics over the bitcoin-seeder
// window ladder (2h / 8h / 1d / 1w).
//
// Each window is an exponentially-weighted average with half-life equal to
// the window length: on every probe the old average decays by
// 2^(-age/window) and the new sample contributes the complementary weight.
// `reliability` averages probe success, `volatility` averages "this probe
// observed a change" (phase transition or digest change), and `weight` is
// the total decayed sample mass — a confidence measure that separates "no
// data" from "reliably zero".
//
// The scheduler reads these to pick a cadence: volatile zones stay on the
// fast tier, long-stable zones decay toward the weekly tier, and zones that
// stop answering back off instead of burning probes.
//
// All state is plain doubles updated deterministically from simulated time,
// and serialization (snapshot files) uses C hex-float formatting so a
// round-trip is bit-exact.
#pragma once

#include <cmath>
#include <cstdint>

namespace dnsboot::longitudinal {

inline constexpr int kEwmaWindows = 4;
inline constexpr double kEwmaWindowSeconds[kEwmaWindows] = {
    2.0 * 3600, 8.0 * 3600, 24.0 * 3600, 7.0 * 24 * 3600};

struct EwmaWindow {
  double reliability = 0.0;
  double volatility = 0.0;
  double weight = 0.0;

  void update(double age_seconds, double window_seconds, bool good,
              bool changed) {
    if (age_seconds < 0) age_seconds = 0;
    const double f = std::exp2(-age_seconds / window_seconds);
    const double in = 1.0 - f;
    reliability = reliability * f + (good ? in : 0.0);
    volatility = volatility * f + (changed ? in : 0.0);
    weight = weight * f + in;
  }

  bool operator==(const EwmaWindow&) const = default;
};

struct ZoneEwma {
  EwmaWindow windows[kEwmaWindows];

  // `age_seconds` is the time since the previous probe of this zone.
  void update(double age_seconds, bool good, bool changed) {
    for (int i = 0; i < kEwmaWindows; ++i) {
      windows[i].update(age_seconds, kEwmaWindowSeconds[i], good, changed);
    }
  }

  // Normalized estimates (0 when the window has no sample mass yet).
  double reliability(int window) const {
    const EwmaWindow& w = windows[window];
    return w.weight > 0 ? w.reliability / w.weight : 0.0;
  }
  double volatility(int window) const {
    const EwmaWindow& w = windows[window];
    return w.weight > 0 ? w.volatility / w.weight : 0.0;
  }
  double weight(int window) const { return windows[window].weight; }

  bool operator==(const ZoneEwma&) const = default;
};

}  // namespace dnsboot::longitudinal
