// Crash-safe persistence for the longitudinal monitor: an append-only
// transition journal plus compacted snapshots (DESIGN.md §15).
//
// Journal format (text, one record per line, tab-separated):
//
//   dnsboot-journal v2\t<world_tag>
//   T\t<seq>\t<at>\t<zone>\t<from>\t<to>\t<cds>\t<ds>\t<op>\t<crc>
//
// <world_tag> fingerprints the world the journal belongs to (seed, scale,
// chaos...) so a restart with different flags is refused instead of silently
// mixing histories. Digest fields are delta-compressed: "=" means unchanged
// since the zone's previous record, "-" means the RRset is absent, anything
// else is the new digest. <crc> is FNV-1a over the line's preceding bytes.
//
// Durability contract: append() writes the full line and flushes it to the
// kernel before returning — a record is "acknowledged" exactly when append()
// returns, and a SIGKILL at any instant leaves the file as a valid prefix of
// records plus at most one torn tail line. recover() validates record by
// record and truncates the torn tail in place.
//
// Snapshots are the compact alternative to replaying a long journal: a
// versioned header carrying the journal high-water sequence, the serialized
// HistoryStore (hex-float EWMA state, bit-exact round-trip), and a trailing
// checksum line. Snapshot writes go through a temp file + rename so a crash
// never leaves a half-written snapshot under the live name.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "longitudinal/history.hpp"

namespace dnsboot::longitudinal {

class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Open `path` for appending, writing the header if the file is new or
  // empty. An existing journal must carry the same world_tag.
  static Result<Journal> open(const std::string& path,
                              const std::string& world_tag);

  // Encode, append, flush. When this returns OK the record is acknowledged:
  // it survives SIGKILL of this process.
  Status append(const Transition& transition);

  std::uint64_t appended() const { return appended_; }
  const std::string& path() const { return path_; }
  bool is_open() const { return file_ != nullptr; }
  void close();

  struct Recovered {
    bool existed = false;
    std::string world_tag;
    // Verbatim record lines (no trailing newline) in append order — the
    // replay-dedup comparison key — plus their decoded form.
    std::vector<std::string> lines;
    std::vector<Transition> transitions;
    std::uint64_t truncated_bytes = 0;  // torn tail dropped, 0 if clean
  };

  // Validate an existing journal and truncate any torn tail in place.
  // A missing file is not an error (existed == false).
  static Result<Recovered> recover(const std::string& path);

  // Record codec, exposed for tests and the replay-dedup path. decode()
  // leaves a delta-compressed ("=") digest empty with the matching
  // *_changed flag false.
  static std::string encode(const Transition& transition);
  static Result<Transition> decode(std::string_view line);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t appended_ = 0;
};

// ---- Snapshots -----------------------------------------------------------

struct SnapshotMeta {
  std::string world_tag;
  std::uint64_t seq = 0;  // journal records with seq <= this are folded in
  net::SimTime at = 0;    // simulated time of the snapshot
};

// In-memory codec (byte-identical round-trip; the compaction test asserts
// encode(decode(encode(x))) == encode(x)).
std::string encode_snapshot(const SnapshotMeta& meta,
                            const HistoryStore& store);
Result<SnapshotMeta> decode_snapshot(const std::string& text,
                                     HistoryStore* store);

// Atomic file forms: write to `<path>.tmp`, flush, rename over `path`.
Status write_snapshot_file(const std::string& path, const SnapshotMeta& meta,
                           const HistoryStore& store);
Result<SnapshotMeta> read_snapshot_file(const std::string& path,
                                        HistoryStore* store);

}  // namespace dnsboot::longitudinal
