#include "longitudinal/monitor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace dnsboot::longitudinal {

namespace {

std::string format_tag_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

}  // namespace

Monitor::Monitor(net::Transport& network, ecosystem::Ecosystem& eco,
                 MonitorOptions options, WorldMotion* motion)
    : network_(network),
      eco_(eco),
      options_(std::move(options)),
      motion_(motion),
      rng_(options_.seed),
      engine_(network, net::IpAddress::v4({192, 0, 2, 251}), {}),
      resolver_(engine_, eco_.hints),
      operators_(std::map<std::string, std::string>(eco_.ns_domain_to_operator)),
      scheduler_(options_.cadence, options_.seed) {
  // The world tag binds a journal to the run that produced it: same seed,
  // same population, same horizon/stability knobs — anything else and the
  // re-simulated transition stream could not match the recovered bytes.
  std::uint64_t population = 0xcbf29ce484222325ull;
  for (const auto& zone : eco_.scan_targets) {
    population ^= fnv1a(zone.canonical_text());
    population *= 0x100000001b3ull;
  }
  char pop_hex[24];
  std::snprintf(pop_hex, sizeof pop_hex, "%016" PRIx64, population);
  world_tag_ = "seed=" + format_tag_u64(options_.seed) +
               " zones=" + format_tag_u64(eco_.scan_targets.size()) +
               " pop=" + pop_hex +
               " horizon=" + format_tag_u64(options_.horizon) +
               " stable=" + format_tag_u64(options_.stable_probes);
  if (motion_ != nullptr) {
    // The motion determines the transition stream, so it is part of the
    // world identity: a journal recorded under one motion must refuse to
    // replay under another.
    world_tag_ += " motion=" + std::string(motion_->motion_name());
  }

  metrics_.set_help("dnsboot_monitor_probes_total",
                    "zone probes folded into the history store");
  metrics_.set_help("dnsboot_monitor_batches_total",
                    "re-probe batches scanned");
  metrics_.set_help("dnsboot_monitor_journal_appended_total",
                    "transitions appended (acknowledged) to the journal");
  metrics_.set_help("dnsboot_monitor_journal_replayed_total",
                    "regenerated transitions verified against the recovered "
                    "journal instead of re-appended");
  // Pre-create everything the run-time paths touch (registry contract:
  // name-map mutation is constructor-only; a live scrape thread may snapshot
  // while the atomics update).
  (void)metrics_.counter("dnsboot_monitor_probes_total");
  (void)metrics_.counter("dnsboot_monitor_batches_total");
  (void)metrics_.counter("dnsboot_monitor_journal_appended_total");
  (void)metrics_.counter("dnsboot_monitor_journal_replayed_total");
  (void)metrics_.counter("dnsboot_monitor_journal_mismatch_total");
  (void)metrics_.counter("dnsboot_monitor_journal_write_errors_total");
  (void)metrics_.counter("dnsboot_monitor_snapshots_total");
  (void)metrics_.gauge("dnsboot_monitor_zones_tracked");
  (void)metrics_.gauge("dnsboot_monitor_zones_retired");
  (void)metrics_.gauge("dnsboot_monitor_history_arena_bytes");
  for (int i = 0; i < kZonePhaseCount; ++i) {
    (void)metrics_.gauge("dnsboot_monitor_phase_" +
                         to_string(static_cast<ZonePhase>(i)));
  }
}

Status Monitor::start() {
  if (!options_.state_dir.empty()) {
    const std::string journal_path = options_.state_dir + "/journal.log";
    auto recovered = Journal::recover(journal_path);
    if (!recovered.ok()) return recovered.error();
    if (recovered->existed && recovered->world_tag != world_tag_) {
      return Error{"monitor.world_tag",
                   "journal belongs to a different world: '" +
                       recovered->world_tag + "' vs '" + world_tag_ + "'"};
    }
    recovered_lines_ = std::move(recovered->lines);
    auto journal = Journal::open(journal_path, world_tag_);
    if (!journal.ok()) return journal.error();
    journal_.emplace(std::move(journal).take());
  }

  if (motion_ != nullptr) arm_world_motion(network_, *motion_);

  for (const auto& zone : eco_.scan_targets) {
    schedule_zone(zone,
                  scheduler_.initial_offset(zone, options_.initial_spread) + 1);
  }
  metrics_.gauge("dnsboot_monitor_zones_tracked")
      .set(static_cast<double>(eco_.scan_targets.size()));
  arm_snapshot_timer();
  return Status::ok_status();
}

void Monitor::schedule_zone(const dns::Name& zone, net::SimTime delay) {
  if (network_.now() + delay >= options_.horizon) {
    ++zones_retired_;
    metrics_.gauge("dnsboot_monitor_zones_retired")
        .set(static_cast<double>(zones_retired_));
    return;
  }
  network_.schedule(delay, [this, zone]() { zone_due(zone); });
}

void Monitor::zone_due(const dns::Name& zone) {
  pending_.push_back(zone);
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  network_.schedule(options_.batch_window, [this]() { flush_batch(); });
}

void Monitor::flush_batch() {
  flush_scheduled_ = false;
  if (pending_.empty()) return;

  auto batch = std::make_shared<Batch>();
  batch->seq = ++batch_seq_;
  batch->zones = std::move(pending_);
  pending_.clear();
  std::sort(batch->zones.begin(), batch->zones.end());
  batch->zones.erase(std::unique(batch->zones.begin(), batch->zones.end()),
                     batch->zones.end());

  scanner::ScannerOptions scan_options = options_.scanner;
  scan_options.seed =
      rng_.fork("batch:" + format_tag_u64(batch->seq)).next_u64();
  scan_options.infrastructure = have_infra_ ? &infra_ : nullptr;
  batch->scanner = std::make_unique<scanner::Scanner>(network_, engine_,
                                                      resolver_, scan_options);
  batch->observations.reserve(batch->zones.size());
  active_batches_.emplace(batch->seq, batch);

  const std::uint64_t seq = batch->seq;
  const std::size_t expected = batch->zones.size();
  batch->scanner->scan(batch->zones, [this, seq,
                                      expected](scanner::ZoneObservation obs) {
    auto it = active_batches_.find(seq);
    if (it == active_batches_.end()) return;
    it->second->observations.push_back(std::move(obs));
    if (it->second->observations.size() == expected) {
      // Defer: the Scanner is still on the stack inside this delivery
      // callback; destroying it here would free its queues under it.
      network_.schedule(0, [this, seq]() { finish_batch(seq); });
    }
  });
}

void Monitor::finish_batch(std::uint64_t seq) {
  auto it = active_batches_.find(seq);
  if (it == active_batches_.end()) return;
  std::shared_ptr<Batch> batch = std::move(it->second);
  active_batches_.erase(it);

  // Adopt the batch's infrastructure (superset of ours: newly seen TLDs
  // were captured on demand) for the next batch's hand-off.
  infra_ = batch->scanner->infrastructure();
  have_infra_ = true;
  batch->scanner.reset();
  if (!trust_.has_value() || infra_.tlds.size() != trust_tld_count_) {
    trust_.emplace(infra_, eco_.hints.trust_anchor, eco_.now);
    trust_tld_count_ = infra_.tlds.size();
  }

  // Observations complete in network-timing order; canonical zone order
  // makes the fold (and therefore seq assignment) deterministic.
  std::sort(batch->observations.begin(), batch->observations.end(),
            [](const scanner::ZoneObservation& a,
               const scanner::ZoneObservation& b) { return a.zone < b.zone; });

  for (const auto& obs : batch->observations) {
    fold_observation(obs, *trust_);
  }

  ++batches_run_;
  metrics_.counter("dnsboot_monitor_batches_total").add(1);
  refresh_gauges();
}

void Monitor::fold_observation(const scanner::ZoneObservation& obs,
                               const analysis::TrustContext& trust) {
  analysis::ZoneReport report = analysis::analyze_zone(obs, trust, operators_);
  const ProbeFinding finding = reduce_report(report, obs);
  HistoryStore::ProbeOutcome outcome = history_.record_probe(
      obs.zone, network_.now(), finding, options_.stable_probes);
  ++probes_completed_;
  metrics_.counter("dnsboot_monitor_probes_total").add(1);
  if (outcome.transition.has_value()) handle_transition(*outcome.transition);

  const ZoneHistory* history = history_.find(obs.zone);
  if (history != nullptr) {
    schedule_zone(obs.zone, scheduler_.next_interval(obs.zone, *history));
  }
}

void Monitor::handle_transition(const Transition& transition) {
  if (transition.seq <= recovered_lines_.size()) {
    // Replayed region: the re-simulated transition must reproduce the
    // recovered journal byte-for-byte; a mismatch means the world diverged
    // (wrong seed/flags) and is surfaced, never silently re-appended.
    if (Journal::encode(transition) == recovered_lines_[transition.seq - 1]) {
      ++journal_replayed_;
      metrics_.counter("dnsboot_monitor_journal_replayed_total").add(1);
    } else {
      ++journal_mismatches_;
      metrics_.counter("dnsboot_monitor_journal_mismatch_total").add(1);
    }
  } else if (journal_.has_value()) {
    if (journal_->append(transition).ok()) {
      ++journal_appended_;
      metrics_.counter("dnsboot_monitor_journal_appended_total").add(1);
    } else {
      metrics_.counter("dnsboot_monitor_journal_write_errors_total").add(1);
    }
  }
  reporter_.on_transition(transition);
}

void Monitor::arm_snapshot_timer() {
  if (options_.snapshot_every == 0 || options_.state_dir.empty()) return;
  if (network_.now() + options_.snapshot_every >= options_.horizon) return;
  network_.schedule(options_.snapshot_every, [this]() {
    (void)write_snapshot();
    arm_snapshot_timer();
  });
}

std::string Monitor::snapshot_path() const {
  return options_.state_dir.empty() ? std::string{}
                                    : options_.state_dir + "/snapshot.dnsboot";
}

Status Monitor::write_snapshot() {
  if (options_.state_dir.empty()) {
    return Error{"monitor.snapshot", "no state directory configured"};
  }
  SnapshotMeta meta;
  meta.world_tag = world_tag_;
  meta.seq = history_.next_seq() - 1;
  meta.at = network_.now();
  DNSBOOT_CHECK(write_snapshot_file(snapshot_path(), meta, history_));
  ++snapshots_written_;
  metrics_.counter("dnsboot_monitor_snapshots_total").add(1);
  return Status::ok_status();
}

void Monitor::refresh_gauges() {
  const auto counts = history_.phase_counts();
  for (int i = 0; i < kZonePhaseCount; ++i) {
    metrics_
        .gauge("dnsboot_monitor_phase_" + to_string(static_cast<ZonePhase>(i)))
        .set(static_cast<double>(counts[i]));
  }
  metrics_.gauge("dnsboot_monitor_history_arena_bytes")
      .set(static_cast<double>(history_.arena_bytes()));
}

}  // namespace dnsboot::longitudinal
