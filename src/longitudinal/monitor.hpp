// Monitor — the continuous longitudinal measurement service.
//
// Where dnsboot-survey scans a population once, the monitor keeps re-probing
// it: each zone gets its own cadence from ReprobeScheduler (hot while a
// bootstrap transition is in flight, decaying toward the weekly tier once
// quiet), due zones are coalesced into batches, each batch runs the regular
// Scanner + analyze_zone pipeline, and every probe folds into the
// HistoryStore. Changes become journal Transitions which feed the
// AdoptionReporter (incremental adoption curve / latency reports) and the
// dnsboot_monitor_* metrics family.
//
// Crash safety: an acknowledged transition is one Journal::append returned
// for. On restart the monitor re-simulates the identical world from sim time
// zero (the lifecycle schedule and probe jitter are pure functions of the
// seed); regenerated transitions whose seq falls inside the recovered
// journal are verified byte-for-byte against it and not re-appended, later
// ones are appended as usual. A killed-and-restarted run therefore converges
// to the same journal bytes and the same reports as an uninterrupted one —
// scripts/monitor_smoke.sh diffs exactly that.
//
// DNSSEC validation time is pinned to the world's build time (eco.now):
// simulated days measure probe cadence and transition latency, not RRSIG
// aging — otherwise every builder-signed zone would expire mid-window and
// drown the signal.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/trust.hpp"
#include "analysis/zone_report.hpp"
#include "ecosystem/builder.hpp"
#include "longitudinal/journal.hpp"
#include "longitudinal/report.hpp"
#include "longitudinal/scheduler.hpp"
#include "longitudinal/world_motion.hpp"
#include "scanner/scanner.hpp"

namespace dnsboot::longitudinal {

struct MonitorOptions {
  std::uint64_t seed = 1;
  // Absolute sim-time horizon: no probe is scheduled at or beyond it, so
  // run() terminates once the last pre-horizon work drains.
  net::SimTime horizon = net::SimTime{30} * 86400 * net::kSecond;
  // Due zones are coalesced for this long before a batch scan starts.
  net::SimTime batch_window = net::SimTime{30} * net::kSecond;
  // First probes are spread uniformly over this window.
  net::SimTime initial_spread = net::SimTime{3600} * net::kSecond;
  // Consecutive unchanged bootstrapped probes before kMaintained.
  std::uint32_t stable_probes = 3;
  // Snapshot cadence (0 = disabled; requires state_dir).
  net::SimTime snapshot_every = 0;
  // Journal/snapshot directory ("" = in-memory only, nothing persisted).
  std::string state_dir;

  CadenceOptions cadence;
  scanner::ScannerOptions scanner;  // per-batch seed is derived, not this one
};

class Monitor {
 public:
  // `motion` is the generator of world mutations the monitor observes
  // (LifecycleDriver, kasp::PolicyClock, ...). The monitor arms it in
  // start() and mixes its name into the world tag; nullptr = a static world.
  // The motion must outlive the monitor.
  Monitor(net::Transport& network, ecosystem::Ecosystem& eco,
          MonitorOptions options, WorldMotion* motion = nullptr);

  // Recover + open the journal, arm the world motion, seed the initial probe
  // schedule, arm the snapshot timer. Call once, then run().
  Status start();

  // Drive the network until every scheduled probe before the horizon has
  // completed (sim mode: returns when the event queue drains).
  void run() { network_.run(); }

  const HistoryStore& history() const { return history_; }
  const AdoptionReporter& reporter() const { return reporter_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const std::string& world_tag() const { return world_tag_; }

  std::uint64_t probes_completed() const { return probes_completed_; }
  std::uint64_t batches_run() const { return batches_run_; }
  std::uint64_t journal_replayed() const { return journal_replayed_; }
  std::uint64_t journal_appended() const { return journal_appended_; }
  std::uint64_t journal_mismatches() const { return journal_mismatches_; }
  std::uint64_t snapshots_written() const { return snapshots_written_; }

  // Write a compacted snapshot now (also used by the periodic timer).
  Status write_snapshot();
  std::string snapshot_path() const;

 private:
  struct Batch {
    std::uint64_t seq = 0;
    std::vector<dns::Name> zones;
    std::unique_ptr<scanner::Scanner> scanner;
    std::vector<scanner::ZoneObservation> observations;
  };

  void schedule_zone(const dns::Name& zone, net::SimTime delay);
  void zone_due(const dns::Name& zone);
  void flush_batch();
  void finish_batch(std::uint64_t seq);
  void fold_observation(const scanner::ZoneObservation& obs,
                        const analysis::TrustContext& trust);
  void handle_transition(const Transition& transition);
  void arm_snapshot_timer();
  void refresh_gauges();

  net::Transport& network_;
  ecosystem::Ecosystem& eco_;
  MonitorOptions options_;
  WorldMotion* motion_;
  Rng rng_;
  std::string world_tag_;

  resolver::QueryEngine engine_;
  resolver::DelegationResolver resolver_;
  analysis::OperatorIdentifier operators_;

  obs::MetricsRegistry metrics_;
  HistoryStore history_;
  AdoptionReporter reporter_{&metrics_};
  ReprobeScheduler scheduler_;

  std::optional<Journal> journal_;
  std::vector<std::string> recovered_lines_;  // seq i+1 -> verbatim line

  // Batch coalescing state. pending_ is sorted+deduped at flush time.
  std::vector<dns::Name> pending_;
  bool flush_scheduled_ = false;
  std::uint64_t batch_seq_ = 0;
  std::map<std::uint64_t, std::shared_ptr<Batch>> active_batches_;

  // Infrastructure hand-off across batches (satellite: Scanner adopts this
  // instead of re-capturing root/TLD state every batch).
  scanner::InfrastructureSnapshot infra_;
  bool have_infra_ = false;
  // Cached trust context: rebuilding it re-validates every TLD chain
  // (crypto), so it is only redone when the snapshot actually grows.
  std::optional<analysis::TrustContext> trust_;
  std::size_t trust_tld_count_ = 0;

  std::uint64_t probes_completed_ = 0;
  std::uint64_t batches_run_ = 0;
  std::uint64_t journal_replayed_ = 0;
  std::uint64_t journal_appended_ = 0;
  std::uint64_t journal_mismatches_ = 0;
  std::uint64_t snapshots_written_ = 0;
  std::uint64_t zones_retired_ = 0;
};

}  // namespace dnsboot::longitudinal
