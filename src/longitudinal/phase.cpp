#include "longitudinal/phase.hpp"

#include <algorithm>
#include <cstdio>

#include "base/encoding.hpp"
#include "base/rng.hpp"

namespace dnsboot::longitudinal {

std::string to_string(ZonePhase phase) {
  switch (phase) {
    case ZonePhase::kUnknown:
      return "unknown";
    case ZonePhase::kInsecure:
      return "insecure";
    case ZonePhase::kCdsPublished:
      return "cds_published";
    case ZonePhase::kDsBootstrapped:
      return "ds_bootstrapped";
    case ZonePhase::kMaintained:
      return "maintained";
    case ZonePhase::kBrokenRollover:
      return "broken_rollover";
    case ZonePhase::kUnsignedDeleted:
      return "unsigned_deleted";
  }
  return "unknown";
}

std::optional<ZonePhase> phase_from_string(const std::string& text) {
  for (int i = 0; i < kZonePhaseCount; ++i) {
    ZonePhase phase = static_cast<ZonePhase>(i);
    if (to_string(phase) == text) return phase;
  }
  return std::nullopt;
}

std::string ds_set_digest(const std::vector<dns::DsRdata>& set) {
  if (set.empty()) return "";
  std::vector<std::string> parts;
  parts.reserve(set.size());
  for (const dns::DsRdata& ds : set) {
    parts.push_back(std::to_string(ds.key_tag) + "/" +
                    std::to_string(ds.algorithm) + "/" +
                    std::to_string(ds.digest_type) + "/" +
                    hex_encode(ds.digest));
  }
  std::sort(parts.begin(), parts.end());
  std::string joined;
  for (const std::string& part : parts) {
    joined += part;
    joined += ';';
  }
  char out[17];
  std::snprintf(out, sizeof out, "%016llx",
                static_cast<unsigned long long>(fnv1a(joined)));
  return std::string(out, 16);
}

std::string dnskey_set_digest(const std::vector<dns::DnskeyRdata>& set) {
  if (set.empty()) return "";
  std::vector<std::string> parts;
  parts.reserve(set.size());
  for (const dns::DnskeyRdata& key : set) {
    parts.push_back(std::to_string(key.flags) + "/" +
                    std::to_string(key.protocol) + "/" +
                    std::to_string(key.algorithm) + "/" +
                    hex_encode(key.public_key));
  }
  std::sort(parts.begin(), parts.end());
  std::string joined;
  for (const std::string& part : parts) {
    joined += part;
    joined += ';';
  }
  char out[17];
  std::snprintf(out, sizeof out, "%016llx",
                static_cast<unsigned long long>(fnv1a(joined)));
  return std::string(out, 16);
}

std::optional<analysis::KeyLifecycleState> key_state_from_string(
    const std::string& text) {
  for (auto state : {analysis::KeyLifecycleState::kStable,
                     analysis::KeyLifecycleState::kMidRollover,
                     analysis::KeyLifecycleState::kBrokenRollover}) {
    if (analysis::to_string(state) == text) return state;
  }
  return std::nullopt;
}

namespace {

// Extract the DS rdatas from a (possibly mixed) signed RRset.
std::vector<dns::DsRdata> ds_rdatas(const dnssec::SignedRRset& signed_set) {
  std::vector<dns::DsRdata> out;
  for (const dns::Rdata& rdata : signed_set.rrset.rdatas) {
    if (const auto* ds = std::get_if<dns::DsRdata>(&rdata)) out.push_back(*ds);
  }
  return out;
}

}  // namespace

ProbeFinding reduce_report(const analysis::ZoneReport& report,
                           const scanner::ZoneObservation& observation) {
  ProbeFinding finding;
  finding.reachable = report.resolved;
  if (!finding.reachable) return finding;

  std::vector<dns::DsRdata> parent_ds = ds_rdatas(observation.parent_ds);
  finding.ds_present = !parent_ds.empty();
  finding.ds_digest = ds_set_digest(parent_ds);
  finding.dnssec = report.dnssec;
  finding.cds_present = report.cds.present;
  finding.cds_delete = report.cds.delete_request;
  finding.cds_digest = ds_set_digest(report.cds.cds);
  // Representative DNSKEY answer, preferring a signed one (same rule the
  // analysis uses: a rogue unsigned answer must not shadow the real set).
  {
    const scanner::RRsetProbe* best = nullptr;
    for (const auto* probe : observation.probes_of(dns::RRType::kDNSKEY)) {
      if (probe->outcome != scanner::RRsetProbe::Outcome::kAnswer) continue;
      if (!probe->rrset.signatures.empty()) {
        best = probe;
        break;
      }
      if (best == nullptr) best = probe;
    }
    if (best != nullptr) {
      finding.dnskey_digest =
          dnskey_set_digest(analysis::dnskeys_of(best->rrset.rrset));
    }
  }
  finding.key_state = report.key_state;
  finding.operator_name = report.operator_name;
  return finding;
}

ZonePhase next_phase(ZonePhase previous, const ProbeFinding& finding,
                     std::uint32_t stable_run, std::uint32_t stable_probes) {
  if (!finding.reachable) return previous;

  if (finding.ds_present) {
    if (finding.dnssec == dnssec::ZoneDnssecStatus::kSecure) {
      if (previous == ZonePhase::kMaintained) return ZonePhase::kMaintained;
      if (previous == ZonePhase::kDsBootstrapped &&
          stable_run + 1 >= stable_probes) {
        return ZonePhase::kMaintained;
      }
      return ZonePhase::kDsBootstrapped;
    }
    // A DS that no longer matches the child chain (stale after a key change,
    // or a DS pointing at an unsigned/bogus zone) breaks validation for
    // every validating resolver — the failure mode bootstrapping automation
    // is supposed to prevent.
    return ZonePhase::kBrokenRollover;
  }

  // No DS at the parent.
  if (finding.dnssec == dnssec::ZoneDnssecStatus::kSecureIsland &&
      finding.cds_present && !finding.cds_delete) {
    return ZonePhase::kCdsPublished;
  }
  switch (previous) {
    case ZonePhase::kDsBootstrapped:
    case ZonePhase::kMaintained:
    case ZonePhase::kBrokenRollover:
    case ZonePhase::kUnsignedDeleted:
      // The zone had a DS and the parent no longer serves one: withdrawn
      // (RFC 8078 delete sentinel or registry action). Absorbing until the
      // zone publishes CDS again.
      return ZonePhase::kUnsignedDeleted;
    default:
      return ZonePhase::kInsecure;
  }
}

}  // namespace dnsboot::longitudinal
