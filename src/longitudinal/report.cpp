#include "longitudinal/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace dnsboot::longitudinal {

namespace {

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void append_json_escaped(std::string* out, std::string_view text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

}  // namespace

void LatencyHistogram::observe(double hours) {
  int bucket = kBuckets - 1;
  for (int i = 0; i < kBuckets - 1; ++i) {
    if (hours <= kBucketHours[i]) {
      bucket = i;
      break;
    }
  }
  buckets[bucket] += 1;
  count += 1;
  sum_hours += hours;
}

AdoptionReporter::AdoptionReporter(obs::MetricsRegistry* registry)
    : registry_(registry) {
  if (registry_ != nullptr) {
    registry_->set_help("dnsboot_monitor_transitions_total",
                        "journaled zone state transitions by kind");
    registry_->set_help("dnsboot_monitor_bootstrap_hours",
                        "cds_published->ds_bootstrapped latency (hours)");
    // Metric creation is single-threaded constructor work (the registry's
    // concurrency contract: a scrape thread may snapshot while the owner
    // updates, but never while the name maps mutate) — so every label
    // combination on_transition can touch is created here.
    for (int from = 0; from < kZonePhaseCount; ++from) {
      for (int to = 0; to < kZonePhaseCount; ++to) {
        const std::string kind = to_string(static_cast<ZonePhase>(from)) +
                                 "->" + to_string(static_cast<ZonePhase>(to));
        (void)registry_->counter("dnsboot_monitor_transitions_total", "kind",
                                 kind);
      }
    }
    for (int i = 0; i < kZonePhaseCount; ++i) {
      (void)registry_->gauge("dnsboot_monitor_zones_" +
                             to_string(static_cast<ZonePhase>(i)));
    }
    (void)registry_->histogram("dnsboot_monitor_bootstrap_hours");
  }
}

void AdoptionReporter::on_transition(const Transition& t) {
  ++transitions_;
  kinds_[t.kind()] += 1;

  if (t.from != t.to) {
    if (t.from != ZonePhase::kUnknown) {
      counts_[static_cast<int>(t.from)] -= 1;
    }
    counts_[static_cast<int>(t.to)] += 1;
    if (!curve_.empty() && curve_.back().at == t.at) {
      curve_.back().counts = counts_;
    } else {
      curve_.push_back(AdoptionPoint{t.at, counts_});
    }

    if (t.to == ZonePhase::kCdsPublished) {
      pending_cds_.emplace(t.zone, t.at);  // keeps the earliest anchor
    } else if (t.to == ZonePhase::kDsBootstrapped) {
      auto it = pending_cds_.find(t.zone);
      if (it != pending_cds_.end()) {
        const double hours =
            static_cast<double>(t.at - it->second) / (3600.0 * 1e6);
        pending_cds_.erase(it);
        operator_latency_[t.operator_name].observe(hours);
        bootstrap_hours_.push_back(hours);
        if (registry_ != nullptr) {
          registry_->histogram("dnsboot_monitor_bootstrap_hours")
              .observe(static_cast<std::uint64_t>(hours * 3600.0));
        }
      }
    }
  }

  if (registry_ != nullptr) {
    registry_->counter("dnsboot_monitor_transitions_total", "kind", t.kind())
        .add(1);
    for (int i = 0; i < kZonePhaseCount; ++i) {
      registry_
          ->gauge("dnsboot_monitor_zones_" +
                  to_string(static_cast<ZonePhase>(i)))
          .set(static_cast<double>(counts_[i]));
    }
  }
}

std::string AdoptionReporter::to_json() const {
  std::string out = "{\n  \"adoption_curve\": [\n";
  char buf[64];
  for (std::size_t i = 0; i < curve_.size(); ++i) {
    const AdoptionPoint& p = curve_[i];
    std::snprintf(buf, sizeof buf, "    {\"at_usec\": %" PRIu64, p.at);
    out += buf;
    for (int j = 0; j < kZonePhaseCount; ++j) {
      out += ", \"" + to_string(static_cast<ZonePhase>(j)) + "\": " +
             std::to_string(p.counts[j]);
    }
    out += i + 1 < curve_.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"transitions\": {\n";
  std::size_t k = 0;
  for (const auto& [kind, count] : kinds_) {
    out += "    \"";
    append_json_escaped(&out, kind);
    out += "\": " + std::to_string(count);
    out += ++k < kinds_.size() ? ",\n" : "\n";
  }
  out += "  },\n  \"operator_latency_hours\": {\n";
  k = 0;
  for (const auto& [op, hist] : operator_latency_) {
    out += "    \"";
    append_json_escaped(&out, op.empty() ? "(unknown)" : op);
    out += "\": {\"count\": " + std::to_string(hist.count) +
           ", \"mean\": " +
           format_double(hist.count > 0
                             ? hist.sum_hours / static_cast<double>(hist.count)
                             : 0) +
           ", \"buckets\": [";
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(hist.buckets[b]);
    }
    out += "]}";
    out += ++k < operator_latency_.size() ? ",\n" : "\n";
  }
  std::vector<double> sorted = bootstrap_hours_;
  std::sort(sorted.begin(), sorted.end());
  out += "  },\n  \"time_to_bootstrapped_hours\": {\"count\": " +
         std::to_string(sorted.size()) +
         ", \"p50\": " + format_double(percentile(sorted, 0.50)) +
         ", \"p90\": " + format_double(percentile(sorted, 0.90)) +
         ", \"p99\": " + format_double(percentile(sorted, 0.99)) +
         ", \"max\": " + format_double(sorted.empty() ? 0 : sorted.back()) +
         "}\n}\n";
  return out;
}

std::string AdoptionReporter::to_csv() const {
  std::string out = "at_usec";
  for (int j = 0; j < kZonePhaseCount; ++j) {
    out += "," + to_string(static_cast<ZonePhase>(j));
  }
  out += "\n";
  char buf[32];
  for (const AdoptionPoint& p : curve_) {
    std::snprintf(buf, sizeof buf, "%" PRIu64, p.at);
    out += buf;
    for (int j = 0; j < kZonePhaseCount; ++j) {
      out += "," + std::to_string(p.counts[j]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace dnsboot::longitudinal
