// WorldMotion — the seam between the longitudinal monitor and whatever puts
// the observed world in motion.
//
// PR 9's monitor was hard-wired to LifecycleDriver's coarse random draws;
// the KASP policy clock (src/kasp/) is a second, policy-driven generator of
// zone mutations. Both implement this interface and the monitor programs
// against it, so the crash-recovery determinism contract (DESIGN.md §15) is
// stated once: a motion is a pure function of (seed, population) that can be
// rebuilt from scratch and replayed identically after a restart.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/transport.hpp"

namespace dnsboot::longitudinal {

class WorldMotion {
 public:
  virtual ~WorldMotion() = default;

  // Short token mixed into the monitor's world tag ("legacy", "kasp"): a
  // state directory journaled under one motion must never replay under
  // another.
  virtual std::string_view motion_name() const = 0;

  // Total number of scripted zone mutations in the plan.
  virtual std::size_t planned_steps() const = 0;

  // Distinct simulated times at which at least one mutation fires, sorted
  // ascending. arm_world_motion() schedules one callback per entry.
  virtual std::vector<net::SimTime> step_times() const = 0;

  // Apply every not-yet-applied mutation with fire time <= now, in
  // (fire time, plan order). Cumulative and idempotent between step times:
  // firing late applies everything due, firing twice applies nothing new.
  virtual void advance(net::SimTime now) = 0;

  virtual std::uint64_t applied() const = 0;
  virtual std::uint64_t failed() const = 0;
};

// Schedule motion.advance() on the network at every step time. Step times
// already in the past collapse onto the next tick, which is safe because
// advance() is cumulative.
void arm_world_motion(net::Transport& network, WorldMotion& motion);

}  // namespace dnsboot::longitudinal
