// LifecycleDriver — the scripted "world motion" a longitudinal monitor
// exists to observe.
//
// The ecosystem builder produces a static population; this driver gives a
// seeded subset of the clean unsigned zones a bootstrap lifecycle over the
// monitored window: sign + publish CDS, registry installs the DS some hours
// later, and a fraction of the bootstrapped zones later either botch a key
// rollover (re-sign under a fresh KSK while the parent DS still points at
// the old one — the chain goes bogus) or tear DNSSEC down via the RFC 8078
// delete sentinel (registry removes the DS; the zone is unsigned again).
//
// Every decision and timestamp is drawn from Rng::fork("lifecycle:<zone>"),
// so the schedule depends only on (seed, zone) — a restarted monitor rebuilds
// the world and replays the identical motion, which the crash-recovery
// determinism gate requires. Zone edits use the live server zone objects
// (the key_rollover example's idiom) and DS edits go through the registry
// module's CdsProcessor, i.e. the same write path the registries use.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "ecosystem/builder.hpp"
#include "longitudinal/world_motion.hpp"
#include "registry/cds_processor.hpp"

namespace dnsboot::longitudinal {

struct LifecycleOptions {
  std::uint64_t seed = 1;
  net::SimTime start = net::SimTime{3600} * net::kSecond;
  net::SimTime horizon = net::SimTime{30} * 86400 * net::kSecond;
  // Fraction of eligible (clean, unsigned, registry-covered) zones that
  // bootstrap during the window.
  double participate_fraction = 0.7;
  // Of the participants: later break a rollover / request deletion.
  double break_fraction = 0.2;
  double delete_fraction = 0.15;
  // CDS publication -> registry DS install latency (plus up to the same
  // amount of per-zone spread).
  net::SimTime ds_latency = net::SimTime{6} * 3600 * net::kSecond;
};

struct LifecycleEvent {
  enum class Kind : std::uint8_t {
    kPublishCds,     // sign the zone, publish CDS/CDNSKEY (secure island)
    kInstallDs,      // registry installs the matching DS
    kBreakRollover,  // re-sign under a fresh KSK; parent DS goes stale
    kPublishDelete,  // replace CDS/CDNSKEY with the delete sentinel
    kRemoveDs,       // registry acts on the sentinel: DS withdrawn
  };
  net::SimTime at = 0;
  Kind kind = Kind::kPublishCds;
  dns::Name zone;
};

std::string to_string(LifecycleEvent::Kind kind);

class LifecycleDriver : public WorldMotion {
 public:
  LifecycleDriver(net::SimNetwork& network, resolver::QueryEngine& engine,
                  resolver::DelegationResolver& resolver,
                  ecosystem::Ecosystem& eco, LifecycleOptions options);

  // The full scripted schedule, in deterministic construction order.
  const std::vector<LifecycleEvent>& events() const { return events_; }

  // WorldMotion: the monitor arms and drives the schedule through this
  // interface (arm_world_motion replaces the old arm()).
  std::string_view motion_name() const override { return "legacy"; }
  std::size_t planned_steps() const override { return events_.size(); }
  std::vector<net::SimTime> step_times() const override;
  void advance(net::SimTime now) override;

  std::uint64_t applied() const override { return applied_; }
  std::uint64_t failed() const override { return failed_; }

 private:
  void apply(const LifecycleEvent& event);
  std::shared_ptr<dns::Zone> mutable_zone(const dns::Name& zone);
  Result<registry::CdsProcessor*> processor_for(const dns::Name& tld);
  void publish_child_sync(dns::Zone& zone, const dns::Name& zone_name,
                          const crypto::KeyPair& ksk);

  net::SimNetwork& network_;
  resolver::QueryEngine& engine_;
  resolver::DelegationResolver& resolver_;
  ecosystem::Ecosystem& eco_;
  LifecycleOptions options_;
  Rng rng_;
  dnssec::SigningPolicy policy_;

  std::vector<LifecycleEvent> events_;
  // events_ indices stable-sorted by fire time: the order advance() applies
  // them in (ties keep construction order, matching the old per-event
  // scheduling).
  std::vector<std::size_t> fire_order_;
  std::size_t next_fire_ = 0;
  // canonical zone text -> owning server (first server wins; built once).
  std::map<std::string, std::shared_ptr<server::AuthServer>> zone_server_;
  // canonical zone text -> current key generation / keys.
  std::map<std::string, dnssec::ZoneKeys> keys_;
  std::map<std::string, std::uint32_t> generation_;
  std::map<std::string, std::unique_ptr<registry::CdsProcessor>> processors_;
  std::uint64_t applied_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace dnsboot::longitudinal
