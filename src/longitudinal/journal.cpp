#include "longitudinal/journal.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdlib>
#include <cstring>

#include "base/rng.hpp"

namespace dnsboot::longitudinal {

namespace {

// v2: transition records carry dnskey digest + key_state (12 fields), and
// snapshot history lines grew the matching columns. v1 files fail the header
// check instead of being silently mis-decoded as torn tails.
constexpr std::string_view kJournalMagic = "dnsboot-journal v2";
constexpr std::string_view kSnapshotMagic = "dnsboot-snapshot v2";

std::string crc_of(std::string_view data) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a(std::string(data))));
  return std::string(buf, 16);
}

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  *out = std::strtoull(buf.c_str(), &end, 10);
  return end == buf.c_str() + buf.size();
}

// Digest field encoding: "=" unchanged, "-" absent, else the digest.
void encode_digest(std::string* out, bool changed, const std::string& digest) {
  if (!changed) {
    *out += '=';
  } else if (digest.empty()) {
    *out += '-';
  } else {
    *out += digest;
  }
}

bool decode_digest(std::string_view field, bool* changed,
                   std::string* digest) {
  if (field.empty()) return false;
  if (field == "=") {
    *changed = false;
    digest->clear();
  } else if (field == "-") {
    *changed = true;
    digest->clear();
  } else {
    *changed = true;
    *digest = std::string(field);
  }
  return true;
}

Result<std::string> read_whole_file(const std::string& path, bool* existed) {
  *existed = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::string();
  *existed = true;
  std::string text;
  char buf[64 * 1024];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Error{"journal.read", path};
  return text;
}

}  // namespace

Journal::~Journal() { close(); }

Journal::Journal(Journal&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      appended_(other.appended_) {
  other.file_ = nullptr;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    file_ = other.file_;
    path_ = std::move(other.path_);
    appended_ = other.appended_;
    other.file_ = nullptr;
  }
  return *this;
}

void Journal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<Journal> Journal::open(const std::string& path,
                              const std::string& world_tag) {
  if (world_tag.find('\t') != std::string::npos ||
      world_tag.find('\n') != std::string::npos) {
    return Error{"journal.world_tag", "tag must not contain tab/newline"};
  }
  bool existed = false;
  DNSBOOT_TRY(text, read_whole_file(path, &existed));
  const bool empty = text.empty();
  if (!empty) {
    std::size_t eol = text.find('\n');
    std::string header = text.substr(0, eol == std::string::npos ? 0 : eol);
    std::string expected = std::string(kJournalMagic) + "\t" + world_tag;
    if (header != expected) {
      return Error{"journal.header",
                   "existing journal belongs to a different world: " + header};
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Error{"journal.open", path + ": " + std::strerror(errno)};
  }
  Journal journal;
  journal.file_ = f;
  journal.path_ = path;
  if (empty) {
    std::string header = std::string(kJournalMagic) + "\t" + world_tag + "\n";
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
        std::fflush(f) != 0) {
      return Error{"journal.write", path + ": " + std::strerror(errno)};
    }
  }
  return journal;
}

std::string Journal::encode(const Transition& t) {
  std::string line = "T\t";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%" PRIu64 "\t%" PRIu64 "\t", t.seq, t.at);
  line += buf;
  line += t.zone.to_text();
  line += '\t';
  line += to_string(t.from);
  line += '\t';
  line += to_string(t.to);
  line += '\t';
  encode_digest(&line, t.cds_changed, t.cds_digest);
  line += '\t';
  encode_digest(&line, t.ds_changed, t.ds_digest);
  line += '\t';
  encode_digest(&line, t.dnskey_changed, t.dnskey_digest);
  line += '\t';
  line += analysis::to_string(t.key_state);
  line += '\t';
  line += t.operator_name.empty() ? "-" : t.operator_name;
  line += '\t';
  line += crc_of(line);
  return line;
}

Result<Transition> Journal::decode(std::string_view line) {
  std::vector<std::string_view> f = split_tabs(line);
  if (f.size() != 12 || f[0] != "T") {
    return Error{"journal.record", "malformed record"};
  }
  // The crc covers everything up to and including the tab before it.
  std::size_t payload = line.size() - f[11].size();
  if (crc_of(line.substr(0, payload)) != f[11]) {
    return Error{"journal.crc", "checksum mismatch"};
  }
  Transition t;
  if (!parse_u64(f[1], &t.seq) || !parse_u64(f[2], &t.at)) {
    return Error{"journal.record", "bad seq/time"};
  }
  auto zone = dns::Name::from_text(std::string(f[3]));
  if (!zone.ok()) return Error{"journal.record", "bad zone name"};
  t.zone = std::move(zone).take();
  std::optional<ZonePhase> from = phase_from_string(std::string(f[4]));
  std::optional<ZonePhase> to = phase_from_string(std::string(f[5]));
  if (!from.has_value() || !to.has_value()) {
    return Error{"journal.record", "bad phase"};
  }
  t.from = *from;
  t.to = *to;
  if (!decode_digest(f[6], &t.cds_changed, &t.cds_digest) ||
      !decode_digest(f[7], &t.ds_changed, &t.ds_digest) ||
      !decode_digest(f[8], &t.dnskey_changed, &t.dnskey_digest)) {
    return Error{"journal.record", "bad digest field"};
  }
  std::optional<analysis::KeyLifecycleState> key_state =
      key_state_from_string(std::string(f[9]));
  if (!key_state.has_value()) {
    return Error{"journal.record", "bad key_state"};
  }
  t.key_state = *key_state;
  t.operator_name = f[10] == "-" ? std::string() : std::string(f[10]);
  return t;
}

Status Journal::append(const Transition& transition) {
  if (file_ == nullptr) return Error{"journal.closed", path_};
  std::string line = encode(transition);
  line += '\n';
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    return Error{"journal.write", path_ + ": " + std::strerror(errno)};
  }
  ++appended_;
  return Status::ok_status();
}

Result<Journal::Recovered> Journal::recover(const std::string& path) {
  Recovered out;
  DNSBOOT_TRY(text, read_whole_file(path, &out.existed));
  if (!out.existed || text.empty()) return out;

  std::size_t header_end = text.find('\n');
  if (header_end == std::string::npos) {
    // Torn header: the process died inside the very first write. Treat the
    // whole file as tail.
    out.truncated_bytes = text.size();
    if (truncate(path.c_str(), 0) != 0) {
      return Error{"journal.truncate", path + ": " + std::strerror(errno)};
    }
    out.existed = false;
    return out;
  }
  std::string_view header(text.data(), header_end);
  std::vector<std::string_view> hf = split_tabs(header);
  if (hf.size() != 2 || hf[0] != kJournalMagic) {
    return Error{"journal.header", "unrecognized journal header"};
  }
  out.world_tag = std::string(hf[1]);

  std::size_t pos = header_end + 1;
  std::size_t valid_end = pos;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) break;  // torn tail: no newline
    std::string_view line(text.data() + pos, eol - pos);
    Result<Transition> decoded = decode(line);
    if (!decoded.ok()) break;  // torn or corrupt tail line
    out.lines.emplace_back(line);
    out.transitions.push_back(std::move(decoded).take());
    pos = eol + 1;
    valid_end = pos;
  }
  if (valid_end < text.size()) {
    out.truncated_bytes = text.size() - valid_end;
    if (truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
      return Error{"journal.truncate", path + ": " + std::strerror(errno)};
    }
  }
  return out;
}

// ---- Snapshots -----------------------------------------------------------

std::string encode_snapshot(const SnapshotMeta& meta,
                            const HistoryStore& store) {
  std::string out(kSnapshotMagic);
  char buf[64];
  out += '\t';
  out += meta.world_tag;
  std::snprintf(buf, sizeof buf, "\t%" PRIu64 "\t%" PRIu64 "\n", meta.seq,
                meta.at);
  out += buf;
  out += store.serialize();
  out += "end\t";
  out += crc_of(out);
  out += '\n';
  return out;
}

Result<SnapshotMeta> decode_snapshot(const std::string& text,
                                     HistoryStore* store) {
  std::size_t header_end = text.find('\n');
  if (header_end == std::string::npos) {
    return Error{"snapshot.header", "missing header line"};
  }
  std::vector<std::string_view> hf =
      split_tabs(std::string_view(text.data(), header_end));
  if (hf.size() != 4 || hf[0] != kSnapshotMagic) {
    return Error{"snapshot.header", "unrecognized snapshot header"};
  }
  SnapshotMeta meta;
  meta.world_tag = std::string(hf[1]);
  if (!parse_u64(hf[2], &meta.seq) || !parse_u64(hf[3], &meta.at)) {
    return Error{"snapshot.header", "bad seq/time"};
  }
  // The last line is "end\t<crc>\n" over every preceding byte.
  if (text.size() < 2 || text.back() != '\n') {
    return Error{"snapshot.truncated", "missing end line"};
  }
  std::size_t end_line = text.rfind('\n', text.size() - 2);
  end_line = end_line == std::string::npos ? 0 : end_line + 1;
  std::string_view tail(text.data() + end_line,
                        text.size() - end_line - 1);
  std::vector<std::string_view> tf = split_tabs(tail);
  if (tf.size() != 2 || tf[0] != "end") {
    return Error{"snapshot.truncated", "missing end line"};
  }
  if (crc_of(std::string_view(text.data(), end_line + 4)) != tf[1]) {
    return Error{"snapshot.crc", "checksum mismatch"};
  }
  std::string body =
      text.substr(header_end + 1, end_line - header_end - 1);
  if (store != nullptr) {
    DNSBOOT_CHECK(store->restore(body));
    store->set_next_seq(meta.seq + 1);
  }
  return meta;
}

Status write_snapshot_file(const std::string& path, const SnapshotMeta& meta,
                           const HistoryStore& store) {
  std::string text = encode_snapshot(meta, store);
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Error{"snapshot.open", tmp + ": " + std::strerror(errno)};
  }
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) return Error{"snapshot.write", tmp + ": " + std::strerror(errno)};
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Error{"snapshot.rename", path + ": " + std::strerror(errno)};
  }
  return Status::ok_status();
}

Result<SnapshotMeta> read_snapshot_file(const std::string& path,
                                        HistoryStore* store) {
  bool existed = false;
  DNSBOOT_TRY(text, read_whole_file(path, &existed));
  if (!existed) return Error{"snapshot.missing", path};
  return decode_snapshot(text, store);
}

}  // namespace dnsboot::longitudinal
