// ReprobeScheduler — the cadence policy of the longitudinal monitor
// (bitcoin-seeder style: revisit interesting hosts fast, decay stable ones).
//
// The interval for a zone is a pure, deterministic function of its
// ZoneHistory plus a seeded per-(zone, probe#) jitter:
//
//   hot   (1h)  — zones mid-transition: CDS published but DS pending, or a
//                 broken rollover someone will presumably fix
//   warm  (4h)  — zones whose 1-day volatility window still shows recent
//                 change (a transition happened lately)
//   base  (8h)  — the default steady-state cadence
//   decay       — each consecutive no-change probe doubles the interval
//                 (capped), so long-stable zones drift to the weekly tier
//   backoff     — zones whose 8h reliability collapsed probe at most daily;
//                 dead delegations must not burn the probe budget
//
// Jitter (±10% by default) is drawn from Rng::fork("probe:<zone>:<n>"), so
// it depends only on (seed, zone, probe count) — a restarted run recomputes
// the identical schedule, which the crash-recovery determinism gate relies
// on.
#pragma once

#include <cstdint>

#include "base/rng.hpp"
#include "longitudinal/history.hpp"

namespace dnsboot::longitudinal {

struct CadenceOptions {
  net::SimTime min_interval = net::SimTime{30} * 60 * net::kSecond;
  net::SimTime hot_interval = net::SimTime{1} * 3600 * net::kSecond;
  net::SimTime warm_interval = net::SimTime{4} * 3600 * net::kSecond;
  net::SimTime base_interval = net::SimTime{8} * 3600 * net::kSecond;
  net::SimTime max_interval = net::SimTime{7} * 86400 * net::kSecond;
  // Zones below this 8h-window reliability (with enough sample mass) back
  // off to at most one probe per `unreliable_floor`.
  double unreliable_threshold = 0.3;
  net::SimTime unreliable_floor = net::SimTime{86400} * net::kSecond;
  // 1d-window volatility above this keeps a zone on the warm tier.
  double volatile_threshold = 0.1;
  // Consecutive no-change probes double the interval, up to this many
  // doublings (8h << 6 caps above the weekly tier, which then clamps).
  std::uint32_t decay_doublings = 6;
  double jitter = 0.1;  // ± fraction of the chosen interval
};

class ReprobeScheduler {
 public:
  ReprobeScheduler(CadenceOptions options, std::uint64_t seed)
      : options_(options), rng_(seed) {}

  // Interval from a zone's just-updated history to its next probe.
  net::SimTime next_interval(const dns::Name& zone,
                             const ZoneHistory& history) const;

  // Offset of a zone's first probe, spreading the initial sweep over
  // [0, spread) so the monitor does not thundering-herd its own scanner.
  net::SimTime initial_offset(const dns::Name& zone,
                              net::SimTime spread) const;

  const CadenceOptions& options() const { return options_; }

 private:
  net::SimTime jittered(const dns::Name& zone, std::uint64_t salt,
                        net::SimTime interval) const;

  CadenceOptions options_;
  Rng rng_;
};

}  // namespace dnsboot::longitudinal
