// ZonePhase — the longitudinal state machine over scanner observations.
//
// The paper's survey is a snapshot; RFC 9615 adoption is a process. Each
// monitored zone walks a small lifecycle graph as successive probes observe
// it:
//
//   unknown ──► insecure ──► cds_published ──► ds_bootstrapped ──► maintained
//                  ▲               │                  │    ▲           │
//                  │               ▼                  ▼    │           ▼
//                  └───── unsigned_deleted ◄──── broken_rollover ──────┘
//
// A probe reduces the full analysis::ZoneReport (plus the raw observation's
// parent-DS view) to a ProbeFinding, and next_phase() is a pure transition
// function over (previous phase, finding). "maintained" is history-derived:
// a zone that stays validly bootstrapped for `stable_probes` consecutive
// probes graduates; any later breakage or DS withdrawal demotes it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/zone_report.hpp"

namespace dnsboot::longitudinal {

enum class ZonePhase : std::uint8_t {
  kUnknown = 0,      // never successfully observed
  kInsecure,         // no DS, not a bootstrappable island
  kCdsPublished,     // secure island publishing a non-delete CDS; DS pending
  kDsBootstrapped,   // DS present and the chain validates
  kMaintained,       // bootstrapped and stable for >= stable_probes probes
  kBrokenRollover,   // DS present but the chain no longer validates
  kUnsignedDeleted,  // DS withdrawn after having been bootstrapped
};

inline constexpr int kZonePhaseCount = 7;

std::string to_string(ZonePhase phase);
std::optional<ZonePhase> phase_from_string(const std::string& text);

// One probe's observation, reduced to exactly the fields the state machine
// and the delta-compressed history need.
struct ProbeFinding {
  bool reachable = false;
  bool ds_present = false;  // the parent served a DS RRset
  dnssec::ZoneDnssecStatus dnssec = dnssec::ZoneDnssecStatus::kUnsigned;
  bool cds_present = false;
  bool cds_delete = false;
  std::string cds_digest;  // digest of the in-zone CDS set ("" when absent)
  std::string ds_digest;   // digest of the parent DS set ("" when absent)
  // Digest of the apex DNSKEY set ("" when absent): a clean pre-publication
  // ZSK roll changes no DS and no phase, but it does change this — the only
  // signal the journal gets that a rollover happened at all.
  std::string dnskey_digest;
  analysis::KeyLifecycleState key_state = analysis::KeyLifecycleState::kStable;
  std::string operator_name;
};

// Reduce an analyzed report (and the raw observation it came from — the
// report does not retain the parent DS rdatas) to a ProbeFinding.
ProbeFinding reduce_report(const analysis::ZoneReport& report,
                           const scanner::ZoneObservation& observation);

// The pure transition function. `stable_run` is the number of consecutive
// prior probes that saw the zone validly bootstrapped with unchanged
// digests; crossing `stable_probes` turns kDsBootstrapped into kMaintained.
ZonePhase next_phase(ZonePhase previous, const ProbeFinding& finding,
                     std::uint32_t stable_run, std::uint32_t stable_probes);

// Order-independent digest of a DS/CDS rdata set (FNV-1a over the sorted
// presentation forms, 16 hex chars). Change detection, not cryptography.
std::string ds_set_digest(const std::vector<dns::DsRdata>& set);

// Same idea over a DNSKEY set (flags/protocol/algorithm/key bytes).
std::string dnskey_set_digest(const std::vector<dns::DnskeyRdata>& set);

// Round-trip helper for the journal's key_state field.
std::optional<analysis::KeyLifecycleState> key_state_from_string(
    const std::string& text);

}  // namespace dnsboot::longitudinal
