#include "longitudinal/lifecycle.hpp"

#include <algorithm>

#include "dnssec/signer.hpp"

namespace dnsboot::longitudinal {

std::string to_string(LifecycleEvent::Kind kind) {
  switch (kind) {
    case LifecycleEvent::Kind::kPublishCds:
      return "publish_cds";
    case LifecycleEvent::Kind::kInstallDs:
      return "install_ds";
    case LifecycleEvent::Kind::kBreakRollover:
      return "break_rollover";
    case LifecycleEvent::Kind::kPublishDelete:
      return "publish_delete";
    case LifecycleEvent::Kind::kRemoveDs:
      return "remove_ds";
  }
  return "unknown";
}

LifecycleDriver::LifecycleDriver(net::SimNetwork& network,
                                 resolver::QueryEngine& engine,
                                 resolver::DelegationResolver& resolver,
                                 ecosystem::Ecosystem& eco,
                                 LifecycleOptions options)
    : network_(network),
      engine_(engine),
      resolver_(resolver),
      eco_(eco),
      options_(options),
      rng_(options.seed) {
  policy_.inception = eco_.now - 3600;
  policy_.expiration = eco_.now + 90 * 86400;

  // Zone -> server map, once: eco.servers is in deterministic build order
  // and each server's zones() is an ordered map.
  for (const auto& server : eco_.servers) {
    for (const auto& [origin, zone] : server->zones()) {
      zone_server_.emplace(origin, server);
    }
  }

  // Script the schedule. eco.truth is ordered by canonical zone text and
  // every draw comes from a per-zone fork, so the plan is a pure function of
  // (seed, population) — independent of anything the monitor does.
  const net::SimTime start = options_.start;
  if (options_.horizon <= start + 2 * options_.ds_latency) return;
  const net::SimTime pub_span = (options_.horizon - start) * 2 / 5;
  for (const auto& [canonical, truth] : eco_.truth) {
    if (truth.state != ecosystem::ZoneState::kUnsigned || truth.cds ||
        truth.signal || truth.legacy_servers) {
      continue;
    }
    auto zone_name = dns::Name::from_text(canonical);
    if (!zone_name.ok()) continue;
    const dns::Name zone = std::move(zone_name).take();
    const std::string tld_text = zone.parent().canonical_text();
    if (eco_.registries.find(tld_text) == eco_.registries.end()) continue;
    if (zone_server_.find(canonical) == zone_server_.end()) continue;

    Rng zone_rng = rng_.fork("lifecycle:" + canonical);
    if (!zone_rng.chance(options_.participate_fraction)) continue;

    const net::SimTime t_pub =
        start + (pub_span > 0 ? zone_rng.next_below(pub_span) : 0);
    const net::SimTime t_ds = t_pub + options_.ds_latency +
                              zone_rng.next_below(options_.ds_latency + 1);
    events_.push_back({t_pub, LifecycleEvent::Kind::kPublishCds, zone});
    events_.push_back({t_ds, LifecycleEvent::Kind::kInstallDs, zone});

    const double post = zone_rng.next_double();
    if (t_ds + 2 * options_.ds_latency >= options_.horizon) continue;
    const net::SimTime remaining =
        options_.horizon - t_ds - 2 * options_.ds_latency;
    const net::SimTime t_post =
        t_ds + options_.ds_latency + zone_rng.next_below(remaining + 1);
    if (post < options_.break_fraction) {
      events_.push_back({t_post, LifecycleEvent::Kind::kBreakRollover, zone});
    } else if (post < options_.break_fraction + options_.delete_fraction) {
      events_.push_back({t_post, LifecycleEvent::Kind::kPublishDelete, zone});
      events_.push_back({t_post + options_.ds_latency,
                         LifecycleEvent::Kind::kRemoveDs, zone});
    }
  }

  fire_order_.resize(events_.size());
  for (std::size_t i = 0; i < fire_order_.size(); ++i) fire_order_[i] = i;
  std::stable_sort(fire_order_.begin(), fire_order_.end(),
                   [this](std::size_t a, std::size_t b) {
                     return events_[a].at < events_[b].at;
                   });
}

std::vector<net::SimTime> LifecycleDriver::step_times() const {
  std::vector<net::SimTime> times;
  times.reserve(fire_order_.size());
  for (std::size_t index : fire_order_) {
    if (times.empty() || times.back() != events_[index].at) {
      times.push_back(events_[index].at);
    }
  }
  return times;
}

void LifecycleDriver::advance(net::SimTime now) {
  while (next_fire_ < fire_order_.size() &&
         events_[fire_order_[next_fire_]].at <= now) {
    apply(events_[fire_order_[next_fire_]]);
    ++next_fire_;
  }
}

std::shared_ptr<dns::Zone> LifecycleDriver::mutable_zone(
    const dns::Name& zone) {
  auto it = zone_server_.find(zone.canonical_text());
  if (it == zone_server_.end()) return nullptr;
  auto zone_const = it->second->zone_for(zone);
  if (zone_const == nullptr) return nullptr;
  return std::const_pointer_cast<dns::Zone>(
      std::shared_ptr<const dns::Zone>(zone_const));
}

Result<registry::CdsProcessor*> LifecycleDriver::processor_for(
    const dns::Name& tld) {
  const std::string& text = tld.canonical_text();
  auto it = processors_.find(text);
  if (it != processors_.end()) return it->second.get();
  auto handle = eco_.registries.find(text);
  if (handle == eco_.registries.end()) {
    return Error{"lifecycle.registry", "no registry handle for " + text};
  }
  registry::RegistryConfig config;
  config.tld = tld;
  config.now = eco_.now;
  auto processor = std::make_unique<registry::CdsProcessor>(
      network_, engine_, resolver_, handle->second, config);
  registry::CdsProcessor* raw = processor.get();
  processors_.emplace(text, std::move(processor));
  return raw;
}

void LifecycleDriver::publish_child_sync(dns::Zone& zone,
                                         const dns::Name& zone_name,
                                         const crypto::KeyPair& ksk) {
  zone.remove_rrset(zone_name, dns::RRType::kCDS);
  zone.remove_rrset(zone_name, dns::RRType::kCDNSKEY);
  auto sync = dnssec::make_child_sync_records(zone_name, ksk);
  if (!sync.ok()) return;
  for (const auto& cds : sync->cds) {
    (void)zone.add(dns::ResourceRecord{zone_name, dns::RRType::kCDS,
                                       dns::RRClass::kIN, 300,
                                       dns::Rdata{cds}});
  }
  for (const auto& key : sync->cdnskey) {
    (void)zone.add(dns::ResourceRecord{zone_name, dns::RRType::kCDNSKEY,
                                       dns::RRClass::kIN, 300,
                                       dns::Rdata{key}});
  }
}

void LifecycleDriver::apply(const LifecycleEvent& event) {
  const std::string& canonical = event.zone.canonical_text();
  std::shared_ptr<dns::Zone> zone = mutable_zone(event.zone);
  if (zone == nullptr) {
    ++failed_;
    return;
  }

  auto current_keys = [&]() -> dnssec::ZoneKeys& {
    auto it = keys_.find(canonical);
    if (it == keys_.end()) {
      Rng kr = rng_.fork("keys:" + canonical + ":0");
      it = keys_.emplace(canonical, dnssec::ZoneKeys::generate(kr)).first;
    }
    return it->second;
  };

  switch (event.kind) {
    case LifecycleEvent::Kind::kPublishCds: {
      dnssec::ZoneKeys& keys = current_keys();
      publish_child_sync(*zone, event.zone, keys.ksk);
      if (!dnssec::sign_zone(*zone, keys, policy_).ok()) ++failed_;
      break;
    }
    case LifecycleEvent::Kind::kInstallDs: {
      dnssec::ZoneKeys& keys = current_keys();
      auto ds = dnssec::make_ds(event.zone, dnssec::make_dnskey(keys.ksk), 2);
      auto processor = processor_for(event.zone.parent());
      if (!ds.ok() || !processor.ok()) {
        ++failed_;
        break;
      }
      if (!(*processor)->install_ds(event.zone, {*ds}).ok()) ++failed_;
      break;
    }
    case LifecycleEvent::Kind::kBreakRollover: {
      // The abrupt roll from the key_rollover example: fresh KSK signs and
      // is announced via CDS, but the parent DS still names the old key.
      const std::uint32_t generation = ++generation_[canonical];
      Rng kr = rng_.fork("keys:" + canonical + ":" +
                         std::to_string(generation));
      dnssec::ZoneKeys fresh = dnssec::ZoneKeys::generate(kr);
      publish_child_sync(*zone, event.zone, fresh.ksk);
      if (!dnssec::sign_zone(*zone, fresh, policy_).ok()) ++failed_;
      keys_.insert_or_assign(canonical, std::move(fresh));
      break;
    }
    case LifecycleEvent::Kind::kPublishDelete: {
      dnssec::ZoneKeys& keys = current_keys();
      zone->remove_rrset(event.zone, dns::RRType::kCDS);
      zone->remove_rrset(event.zone, dns::RRType::kCDNSKEY);
      (void)zone->add(dns::ResourceRecord{
          event.zone, dns::RRType::kCDS, dns::RRClass::kIN, 300,
          dns::Rdata{dnssec::cds_delete_sentinel()}});
      (void)zone->add(dns::ResourceRecord{
          event.zone, dns::RRType::kCDNSKEY, dns::RRClass::kIN, 300,
          dns::Rdata{dnssec::cdnskey_delete_sentinel()}});
      if (!dnssec::sign_zone(*zone, keys, policy_).ok()) ++failed_;
      break;
    }
    case LifecycleEvent::Kind::kRemoveDs: {
      auto processor = processor_for(event.zone.parent());
      if (!processor.ok() || !(*processor)->remove_ds(event.zone).ok()) {
        ++failed_;
        break;
      }
      break;
    }
  }
  ++applied_;
}

}  // namespace dnsboot::longitudinal
