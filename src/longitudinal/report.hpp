// AdoptionReporter — incremental time-series reports folded from journal
// transitions, never recomputed from scratch.
//
// Every Transition updates: the adoption curve (per-phase zone counts over
// simulated time), the transition-kind counters, the per-operator
// cds_published→ds_bootstrapped latency histogram, and the global
// time-to-bootstrapped latency list (percentiles at report time). The fold
// is a pure function of the transition sequence, so a recovered run that
// regenerates the same journal produces byte-identical JSON/CSV — the
// crash-recovery determinism gate diffs exactly these bytes.
//
// When constructed with a MetricsRegistry the reporter mirrors its state
// into the dnsboot_monitor_* family (transition counters labeled by kind,
// per-phase zone-count gauges, a bootstrap-latency histogram) for /metrics
// scraping.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "longitudinal/history.hpp"
#include "obs/metrics.hpp"

namespace dnsboot::longitudinal {

struct AdoptionPoint {
  net::SimTime at = 0;
  std::array<std::uint64_t, kZonePhaseCount> counts{};
};

// Fixed-bucket latency histogram (hours); small and serializable, unlike
// the registry histogram which is scrape-oriented.
struct LatencyHistogram {
  static constexpr int kBuckets = 8;
  // Upper bounds in hours; the last bucket is +inf.
  static constexpr double kBucketHours[kBuckets - 1] = {1,  2,  4, 8,
                                                        24, 72, 168};
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum_hours = 0;

  void observe(double hours);
};

class AdoptionReporter {
 public:
  // `registry` (optional, not owned) receives the dnsboot_monitor_* mirror.
  explicit AdoptionReporter(obs::MetricsRegistry* registry = nullptr);

  void on_transition(const Transition& transition);

  const std::vector<AdoptionPoint>& curve() const { return curve_; }
  const std::map<std::string, std::uint64_t>& transitions_by_kind() const {
    return kinds_;
  }
  std::uint64_t transitions() const { return transitions_; }
  std::size_t distinct_kinds() const { return kinds_.size(); }

  // Reports. Deterministic bytes for a given transition sequence.
  std::string to_json() const;
  std::string to_csv() const;

 private:
  obs::MetricsRegistry* registry_ = nullptr;

  std::array<std::uint64_t, kZonePhaseCount> counts_{};
  std::vector<AdoptionPoint> curve_;
  std::map<std::string, std::uint64_t> kinds_;
  std::uint64_t transitions_ = 0;

  // cds_published anchors awaiting a ds_bootstrapped completion.
  std::map<dns::Name, net::SimTime> pending_cds_;
  std::map<std::string, LatencyHistogram> operator_latency_;
  std::vector<double> bootstrap_hours_;  // all completions, for percentiles
};

}  // namespace dnsboot::longitudinal
