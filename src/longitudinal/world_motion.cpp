#include "longitudinal/world_motion.hpp"

namespace dnsboot::longitudinal {

void arm_world_motion(net::Transport& network, WorldMotion& motion) {
  const net::SimTime now = network.now();
  for (net::SimTime at : motion.step_times()) {
    const net::SimTime delay = at > now ? at - now : 1;
    network.schedule(delay,
                     [&motion, &network]() { motion.advance(network.now()); });
  }
}

}  // namespace dnsboot::longitudinal
