#include "longitudinal/scheduler.hpp"

#include <algorithm>

namespace dnsboot::longitudinal {

net::SimTime ReprobeScheduler::jittered(const dns::Name& zone,
                                        std::uint64_t salt,
                                        net::SimTime interval) const {
  if (options_.jitter <= 0) return interval;
  Rng fork = rng_.fork("probe:" + zone.canonical_text() + ":" +
                       std::to_string(salt));
  const double u = fork.next_double() * 2.0 - 1.0;  // [-1, 1)
  const double factor = 1.0 + options_.jitter * u;
  const double scaled = static_cast<double>(interval) * factor;
  return scaled < 1.0 ? net::SimTime{1} : static_cast<net::SimTime>(scaled);
}

net::SimTime ReprobeScheduler::initial_offset(const dns::Name& zone,
                                              net::SimTime spread) const {
  if (spread == 0) return 0;
  Rng fork = rng_.fork("probe:" + zone.canonical_text() + ":0");
  return fork.next_below(spread);
}

net::SimTime ReprobeScheduler::next_interval(
    const dns::Name& zone, const ZoneHistory& history) const {
  net::SimTime interval;
  switch (history.phase) {
    case ZonePhase::kCdsPublished:
    case ZonePhase::kBrokenRollover:
      // Mid-transition: the DS should appear (or the chain be repaired)
      // soon, and transition latency is the measurement that matters.
      interval = options_.hot_interval;
      break;
    default:
      interval = options_.base_interval;
      break;
  }

  // Recent change keeps the zone warm even after the phase settles.
  if (interval > options_.warm_interval &&
      history.ewma.volatility(2) > options_.volatile_threshold) {
    interval = options_.warm_interval;
  }

  // Long-stable zones decay toward the slow tier: one doubling per
  // consecutive no-change probe, starting after the zone has proven itself
  // quiet for a couple of rounds.
  if (interval == options_.base_interval && history.quiet_run > 2) {
    const std::uint32_t doublings =
        std::min(history.quiet_run - 2, options_.decay_doublings);
    interval = options_.base_interval << doublings;
  }

  // Dead or flapping delegations back off instead of burning probes.
  if (history.ewma.weight(1) > 0.5 &&
      history.ewma.reliability(1) < options_.unreliable_threshold) {
    interval = std::max(interval, options_.unreliable_floor);
  }

  interval = std::clamp(interval, options_.min_interval,
                        options_.max_interval);
  interval = jittered(zone, history.probes, interval);
  return std::max(interval, options_.min_interval);
}

}  // namespace dnsboot::longitudinal
