// HistoryStore — the per-zone longitudinal state: current phase, EWMA
// reliability/volatility ladder, and the delta-compressed record of what
// changed when.
//
// Full observations are never retained. Each probe is reduced to a
// ProbeFinding (phase.hpp); the store keeps only the current per-zone state
// plus, when something actually changed (phase transition or RRset digest
// change), emits a compact Transition record for the journal. Digest and
// operator strings are interned into an arena (base/arena.hpp, the PR 8
// NamePool idiom) — a digest that never changes costs its bytes once, no
// matter how many probes re-observe it.
//
// Iteration order is the zone Name's canonical (RFC 4034) order via
// std::map, so serialization is deterministic; hashed containers here are
// lookup-only and never iterated.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "base/arena.hpp"
#include "base/result.hpp"
#include "longitudinal/ewma.hpp"
#include "longitudinal/phase.hpp"
#include "net/transport.hpp"

namespace dnsboot::longitudinal {

// A change worth journaling: a phase transition and/or an RRset digest
// change (from == to for digest-only changes, e.g. a clean DS rollover).
struct Transition {
  std::uint64_t seq = 0;  // journal sequence number, 1-based, dense
  net::SimTime at = 0;
  dns::Name zone;
  ZonePhase from = ZonePhase::kUnknown;
  ZonePhase to = ZonePhase::kUnknown;
  bool cds_changed = false;
  bool ds_changed = false;
  bool dnskey_changed = false;
  std::string cds_digest;  // post-transition values ("" = no such RRset)
  std::string ds_digest;
  std::string dnskey_digest;
  // Key-lifecycle state at the transition (RFC 7583 provenance): a clean
  // ZSK roll journals as maintained->maintained with dnskey_changed and
  // key_state mid-rollover; a botched one pivots the phase itself.
  analysis::KeyLifecycleState key_state = analysis::KeyLifecycleState::kStable;
  std::string operator_name;

  // "insecure->cds_published" — the label used for metrics and the
  // distinct-transition-kinds acceptance gate.
  std::string kind() const { return to_string(from) + "->" + to_string(to); }

  bool operator==(const Transition&) const = default;
};

struct ZoneHistory {
  ZonePhase phase = ZonePhase::kUnknown;
  net::SimTime phase_since = 0;
  net::SimTime first_seen = 0;       // first successful probe
  net::SimTime last_probe = 0;       // any probe, success or failure
  net::SimTime last_transition = 0;  // last journaled change
  std::uint32_t probes = 0;
  std::uint32_t failures = 0;
  std::uint32_t transitions = 0;
  std::uint32_t stable_run = 0;  // consecutive unchanged bootstrapped probes
  std::uint32_t quiet_run = 0;   // consecutive probes with no change at all
  // Adoption-latency anchors (0 = not reached yet).
  net::SimTime cds_first_seen = 0;
  net::SimTime bootstrapped_at = 0;
  // Arena-interned current digests/operator ("" = absent).
  std::string_view cds_digest;
  std::string_view ds_digest;
  std::string_view dnskey_digest;
  std::string_view operator_name;
  analysis::KeyLifecycleState key_state = analysis::KeyLifecycleState::kStable;
  ZoneEwma ewma;
};

class HistoryStore {
 public:
  struct ProbeOutcome {
    std::optional<Transition> transition;
    bool changed = false;  // transition.has_value()
  };

  // Fold one probe into the store. Unreachable probes (finding.reachable ==
  // false) only update reliability statistics; they never change phase.
  ProbeOutcome record_probe(const dns::Name& zone, net::SimTime at,
                            const ProbeFinding& finding,
                            std::uint32_t stable_probes);

  const ZoneHistory* find(const dns::Name& zone) const;
  const std::map<dns::Name, ZoneHistory>& zones() const { return zones_; }

  // Next journal sequence number to assign (1-based, dense).
  std::uint64_t next_seq() const { return next_seq_; }
  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }

  std::array<std::uint64_t, kZonePhaseCount> phase_counts() const;

  // Snapshot body: one tab-separated line per zone in canonical zone order;
  // doubles as C hex-floats so serialize(restore(serialize())) is
  // byte-identical. restore() replaces the store's contents (not next_seq_).
  std::string serialize() const;
  Status restore(const std::string& body);

  std::size_t arena_bytes() const { return arena_.bytes_used(); }

 private:
  std::string_view intern(std::string_view text);

  std::map<dns::Name, ZoneHistory> zones_;
  base::Arena arena_{4 * 1024};
  // Dedup table for interned strings; lookup-only, never iterated.
  std::unordered_map<std::string_view, std::string_view> interned_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace dnsboot::longitudinal
