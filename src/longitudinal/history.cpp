#include "longitudinal/history.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dnsboot::longitudinal {

namespace {

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  *out = std::strtoull(buf.c_str(), &end, 10);
  return end == buf.c_str() + buf.size();
}

bool parse_u32(std::string_view text, std::uint32_t* out) {
  std::uint64_t v = 0;
  if (!parse_u64(text, &v) || v > UINT32_MAX) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_double(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

void append_hexfloat(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  *out += buf;
}

std::string_view dash_if_empty(std::string_view text) {
  return text.empty() ? std::string_view("-") : text;
}

std::string_view empty_if_dash(std::string_view text) {
  return text == "-" ? std::string_view() : text;
}

}  // namespace

std::string_view HistoryStore::intern(std::string_view text) {
  if (text.empty()) return {};
  auto it = interned_.find(text);
  if (it != interned_.end()) return it->second;
  std::string_view stable = arena_.copy(text);
  interned_.emplace(stable, stable);
  return stable;
}

const ZoneHistory* HistoryStore::find(const dns::Name& zone) const {
  auto it = zones_.find(zone);
  return it == zones_.end() ? nullptr : &it->second;
}

HistoryStore::ProbeOutcome HistoryStore::record_probe(
    const dns::Name& zone, net::SimTime at, const ProbeFinding& finding,
    std::uint32_t stable_probes) {
  ZoneHistory& h = zones_[zone];
  const double age_seconds =
      h.last_probe > 0 && at > h.last_probe
          ? static_cast<double>(at - h.last_probe) / 1e6
          : 0.0;

  if (!finding.reachable) {
    ++h.probes;
    ++h.failures;
    h.ewma.update(age_seconds, /*good=*/false, /*changed=*/false);
    h.last_probe = at;
    return {};
  }

  const bool cds_changed = finding.cds_digest != h.cds_digest;
  const bool ds_changed = finding.ds_digest != h.ds_digest;
  const bool dnskey_changed = finding.dnskey_digest != h.dnskey_digest;
  const ZonePhase to =
      next_phase(h.phase, finding, h.stable_run, stable_probes);
  const bool phase_changed = to != h.phase;
  const bool changed =
      phase_changed || cds_changed || ds_changed || dnskey_changed;

  ++h.probes;
  h.ewma.update(age_seconds, /*good=*/true, changed);
  if (h.first_seen == 0) h.first_seen = at;
  h.last_probe = at;

  h.quiet_run = changed ? 0 : h.quiet_run + 1;
  const bool settled = to == ZonePhase::kDsBootstrapped ||
                       to == ZonePhase::kMaintained;
  const bool was_settled = h.phase == ZonePhase::kDsBootstrapped ||
                           h.phase == ZonePhase::kMaintained;
  if (settled && was_settled && !cds_changed && !ds_changed &&
      !dnskey_changed) {
    ++h.stable_run;
  } else if (settled) {
    h.stable_run = 0;
  } else {
    h.stable_run = 0;
  }

  ProbeOutcome outcome;
  if (changed) {
    Transition t;
    t.seq = next_seq_++;
    t.at = at;
    t.zone = zone;
    t.from = h.phase;
    t.to = to;
    t.cds_changed = cds_changed;
    t.ds_changed = ds_changed;
    t.dnskey_changed = dnskey_changed;
    t.cds_digest = finding.cds_digest;
    t.ds_digest = finding.ds_digest;
    t.dnskey_digest = finding.dnskey_digest;
    t.key_state = finding.key_state;
    t.operator_name = finding.operator_name;

    if (phase_changed) {
      h.phase = to;
      h.phase_since = at;
      if (to == ZonePhase::kCdsPublished && h.cds_first_seen == 0) {
        h.cds_first_seen = at;
      }
      if (to == ZonePhase::kDsBootstrapped && h.bootstrapped_at == 0) {
        h.bootstrapped_at = at;
      }
    }
    h.last_transition = at;
    ++h.transitions;
    h.cds_digest = intern(finding.cds_digest);
    h.ds_digest = intern(finding.ds_digest);
    h.dnskey_digest = intern(finding.dnskey_digest);
    outcome.transition = std::move(t);
    outcome.changed = true;
  }
  h.key_state = finding.key_state;
  if (!finding.operator_name.empty() &&
      h.operator_name != finding.operator_name) {
    h.operator_name = intern(finding.operator_name);
  }
  return outcome;
}

std::array<std::uint64_t, kZonePhaseCount> HistoryStore::phase_counts() const {
  std::array<std::uint64_t, kZonePhaseCount> counts{};
  for (const auto& [zone, h] : zones_) {
    counts[static_cast<int>(h.phase)] += 1;
  }
  return counts;
}

std::string HistoryStore::serialize() const {
  std::string out;
  char buf[224];
  for (const auto& [zone, h] : zones_) {
    out += zone.to_text();
    out += '\t';
    out += to_string(h.phase);
    std::snprintf(buf, sizeof buf,
                  "\t%" PRIu64 "\t%" PRIu64 "\t%" PRIu64 "\t%" PRIu64
                  "\t%u\t%u\t%u\t%u\t%u\t%" PRIu64 "\t%" PRIu64 "\t",
                  h.phase_since, h.first_seen, h.last_probe,
                  h.last_transition, h.probes, h.failures, h.transitions,
                  h.stable_run, h.quiet_run, h.cds_first_seen,
                  h.bootstrapped_at);
    out += buf;
    out += dash_if_empty(h.cds_digest);
    out += '\t';
    out += dash_if_empty(h.ds_digest);
    out += '\t';
    out += dash_if_empty(h.dnskey_digest);
    out += '\t';
    out += analysis::to_string(h.key_state);
    out += '\t';
    out += dash_if_empty(h.operator_name);
    for (int i = 0; i < kEwmaWindows; ++i) {
      const EwmaWindow& w = h.ewma.windows[i];
      out += '\t';
      append_hexfloat(&out, w.reliability);
      out += '\t';
      append_hexfloat(&out, w.volatility);
      out += '\t';
      append_hexfloat(&out, w.weight);
    }
    out += '\n';
  }
  return out;
}

Status HistoryStore::restore(const std::string& body) {
  std::map<dns::Name, ZoneHistory> zones;
  std::size_t line_start = 0;
  int line_no = 0;
  while (line_start < body.size()) {
    std::size_t line_end = body.find('\n', line_start);
    if (line_end == std::string::npos) {
      return Error{"history.truncated", "missing trailing newline"};
    }
    std::string_view line(body.data() + line_start, line_end - line_start);
    line_start = line_end + 1;
    ++line_no;
    std::vector<std::string_view> f = split_tabs(line);
    if (f.size() != 18 + 3 * kEwmaWindows) {
      return Error{"history.fields",
                   "line " + std::to_string(line_no) + ": expected " +
                       std::to_string(18 + 3 * kEwmaWindows) + " fields, got " +
                       std::to_string(f.size())};
    }
    auto name = dns::Name::from_text(std::string(f[0]));
    if (!name.ok()) {
      return Error{"history.zone", std::string(f[0])};
    }
    ZoneHistory h;
    std::optional<ZonePhase> phase = phase_from_string(std::string(f[1]));
    if (!phase.has_value()) return Error{"history.phase", std::string(f[1])};
    h.phase = *phase;
    bool ok = parse_u64(f[2], &h.phase_since) &&
              parse_u64(f[3], &h.first_seen) &&
              parse_u64(f[4], &h.last_probe) &&
              parse_u64(f[5], &h.last_transition) &&
              parse_u32(f[6], &h.probes) && parse_u32(f[7], &h.failures) &&
              parse_u32(f[8], &h.transitions) &&
              parse_u32(f[9], &h.stable_run) &&
              parse_u32(f[10], &h.quiet_run) &&
              parse_u64(f[11], &h.cds_first_seen) &&
              parse_u64(f[12], &h.bootstrapped_at);
    h.cds_digest = intern(empty_if_dash(f[13]));
    h.ds_digest = intern(empty_if_dash(f[14]));
    h.dnskey_digest = intern(empty_if_dash(f[15]));
    std::optional<analysis::KeyLifecycleState> key_state =
        key_state_from_string(std::string(f[16]));
    if (!key_state.has_value()) {
      return Error{"history.key_state", std::string(f[16])};
    }
    h.key_state = *key_state;
    h.operator_name = intern(empty_if_dash(f[17]));
    for (int i = 0; ok && i < kEwmaWindows; ++i) {
      EwmaWindow& w = h.ewma.windows[i];
      ok = parse_double(f[18 + 3 * i], &w.reliability) &&
           parse_double(f[19 + 3 * i], &w.volatility) &&
           parse_double(f[20 + 3 * i], &w.weight);
    }
    if (!ok) {
      return Error{"history.parse", "line " + std::to_string(line_no)};
    }
    zones.emplace(std::move(name).take(), h);
  }
  zones_ = std::move(zones);
  return Status::ok_status();
}

}  // namespace dnsboot::longitudinal
