// Rule registry for dnsboot-audit, the concurrency/determinism source
// auditor (DESIGN.md §12). Mirrors the shape of src/lint's registry: every
// check is a registered rule with a stable code (A0xx), a kebab-case name,
// a severity and a one-line rationale, so reporters, tests and the CI gate
// all speak the same vocabulary.
//
// The audited contract is the repo's own: survey output must be
// byte-identical at any thread count (ROADMAP north star), every shared
// mutable field names its lock (GUARDED_BY -> clang -Wthread-safety), and
// relaxed atomic *writes* are legal only in the blessed single-writer
// counter pattern (obs/metrics.hpp) or under an explicit, per-line waiver
// ("// audit-allow: A004 <reason>").
#pragma once

#include <string_view>
#include <vector>

namespace dnsboot::audit {

enum class Severity {
  kWarning,  // suspicious; build does not have to stop
  kError,    // contract violation; dnsboot-audit exits non-zero
};

std::string_view to_string(Severity severity);

enum class RuleId {
  kUnorderedSerialization,  // A001: unordered iteration in a serializer
  kBannedNondeterminism,    // A002: wall clock / PRNG / pointer-keyed order
  kRawMutexMember,          // A003: raw std::mutex member or unguarded Mutex
  kRelaxedAtomicWrite,      // A004: relaxed store/RMW outside blessed seams
  kVolatileQualifier,       // A005: volatile used as a concurrency tool
  kThreadDetach,            // A006: detached thread escapes join discipline
  kFullWorldCopy,           // A007: by-value Ecosystem/Zone copy outside
                            //       the blessed builder/plan files
};

struct RuleInfo {
  RuleId id;
  std::string_view code;       // "A001"
  std::string_view name;       // "unordered-serialization"
  Severity severity;
  std::string_view rationale;  // one line: why this breaks the contract
};

// Every registered rule, in code order.
const std::vector<RuleInfo>& all_rules();

// Metadata for one rule (the registry is total over RuleId).
const RuleInfo& rule_info(RuleId id);

// Lookup by code ("A001") or name ("unordered-serialization"); nullptr if
// unknown.
const RuleInfo* find_rule(std::string_view code_or_name);

}  // namespace dnsboot::audit
