// Built-in ground truth for dnsboot-audit --self-check: one positive (must
// fire) and one negative (must stay silent) fixture per rule, compiled into
// the binary so the check needs no filesystem. tests/audit_test.cpp walks
// the same cases.
#pragma once

#include <string>
#include <vector>

#include "audit/rules.hpp"

namespace dnsboot::audit {

struct SelfCheckCase {
  const char* name;    // "a004-relaxed-store" — doubles as the fixture path
  RuleId rule;         // the rule under test
  const char* source;  // fixture source text
  bool should_fire;    // true: rule must report >=1 finding; false: zero
};

const std::vector<SelfCheckCase>& self_check_cases();

// Run every case; prints one line per case (quiet=false) plus a PASS/FAIL
// summary. Returns true when every positive fires and every negative is
// silent — and when no fixture trips a rule it was not aimed at.
bool run_self_check(bool quiet);

}  // namespace dnsboot::audit
