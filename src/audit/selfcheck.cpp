#include "audit/selfcheck.hpp"

#include <cstdio>

#include "audit/auditor.hpp"
#include "audit/report.hpp"

namespace dnsboot::audit {

namespace {

// --- A001 ------------------------------------------------------------------
constexpr const char* kA001Fire = R"cpp(
#include <string>
#include <unordered_map>
struct Index {
  std::unordered_map<std::string, int> by_name;
  std::string to_json() const {
    std::string out;
    for (const auto& [k, v] : by_name) {
      out += k + std::to_string(v);
    }
    return out;
  }
};
)cpp";

constexpr const char* kA001Silent = R"cpp(
#include <map>
#include <string>
struct Index {
  std::map<std::string, int> by_name;
  std::string to_json() const {
    std::string out;
    for (const auto& [k, v] : by_name) {
      out += k + std::to_string(v);
    }
    return out;
  }
};
)cpp";

// --- A002 ------------------------------------------------------------------
constexpr const char* kA002Fire = R"cpp(
#include <ctime>
unsigned long seed_from_wall_clock() {
  return static_cast<unsigned long>(time(nullptr));
}
)cpp";

constexpr const char* kA002Silent = R"cpp(
#include <chrono>
#include <time.h>
long monotonic_us(const std::chrono::steady_clock::time_point& since) {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)since;
  return ts.tv_sec * 1000000 + ts.tv_nsec / 1000;
}
)cpp";

constexpr const char* kA002PointerKey = R"cpp(
#include <set>
struct Node;
struct Graph {
  std::set<const Node*> visited;
};
)cpp";

// --- A003 ------------------------------------------------------------------
constexpr const char* kA003Fire = R"cpp(
#include <mutex>
#include <vector>
class Queue {
 public:
  void push(int v);
 private:
  std::mutex mu_;
  std::vector<int> items_;
};
)cpp";

constexpr const char* kA003Silent = R"cpp(
#include <mutex>
void once_guarded_init() {
  std::mutex local_scratch;
  local_scratch.lock();
  local_scratch.unlock();
}
)cpp";

constexpr const char* kA003Unguarded = R"cpp(
#include "base/mutex.hpp"
class Queue {
 private:
  base::Mutex mu_{"Queue::mu_"};
  int depth_ = 0;
};
)cpp";

constexpr const char* kA003Guarded = R"cpp(
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
class Queue {
 private:
  base::Mutex mu_{"Queue::mu_"};
  int depth_ GUARDED_BY(mu_) = 0;
};
)cpp";

// --- A004 ------------------------------------------------------------------
constexpr const char* kA004Fire = R"cpp(
#include <atomic>
struct Counter {
  std::atomic<long> value{0};
  void bump() {
    value.store(value.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  }
};
)cpp";

constexpr const char* kA004Silent = R"cpp(
#include <atomic>
struct Counter {
  std::atomic<long> value{0};
  long read() const { return value.load(std::memory_order_relaxed); }
};
)cpp";

constexpr const char* kA004Waived = R"cpp(
#include <atomic>
struct Counter {
  std::atomic<long> value{0};
  void bump() {
    // audit-allow: A004 single-writer counter; reader tolerates lag
    value.store(value.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  }
};
)cpp";

// --- A005 ------------------------------------------------------------------
constexpr const char* kA005Fire = R"cpp(
struct Shared {
  volatile int ready = 0;
};
)cpp";

constexpr const char* kA005Silent = R"cpp(
#include <csignal>
volatile std::sig_atomic_t g_stop_requested = 0;
void on_signal(int) { g_stop_requested = 1; }
)cpp";

// --- A006 ------------------------------------------------------------------
constexpr const char* kA006Fire = R"cpp(
#include <thread>
void fire_and_forget(void (*work)()) {
  std::thread t(work);
  t.detach();
}
)cpp";

constexpr const char* kA006Silent = R"cpp(
#include <thread>
void run_and_join(void (*work)()) {
  std::thread t(work);
  t.join();
}
)cpp";

// --- A007 ------------------------------------------------------------------
constexpr const char* kA007Fire = R"cpp(
struct Ecosystem {
  int zones = 0;
};
int count_zones(Ecosystem world) {
  return world.zones;
}
)cpp";

constexpr const char* kA007Silent = R"cpp(
struct Ecosystem {
  int zones = 0;
};
Ecosystem build_world();
int count_zones(const Ecosystem& world) {
  return world.zones;
}
int total() {
  Ecosystem world = build_world();
  return count_zones(world);
}
)cpp";

constexpr const char* kA007CopyInit = R"cpp(
struct Zone {
  int records = 0;
};
int snapshot(const Zone& zone) {
  Zone copy = zone;
  return copy.records;
}
)cpp";

constexpr const char* kA007Container = R"cpp(
#include <vector>
struct Ecosystem {
  int zones = 0;
};
struct Fleet {
  std::vector<Ecosystem> worlds;
};
)cpp";

constexpr const char* kA007Waived = R"cpp(
struct Zone {
  int records = 0;
};
int snapshot(const Zone& zone) {
  // audit-allow: A007 deliberate divergent-zone copy
  Zone copy = zone;
  return copy.records;
}
)cpp";

}  // namespace

const std::vector<SelfCheckCase>& self_check_cases() {
  static const std::vector<SelfCheckCase> cases = {
      {"a001-unordered-in-serializer", RuleId::kUnorderedSerialization,
       kA001Fire, true},
      {"a001-ordered-map", RuleId::kUnorderedSerialization, kA001Silent,
       false},
      {"a002-wall-clock", RuleId::kBannedNondeterminism, kA002Fire, true},
      {"a002-monotonic-clock", RuleId::kBannedNondeterminism, kA002Silent,
       false},
      {"a002-pointer-keyed-set", RuleId::kBannedNondeterminism,
       kA002PointerKey, true},
      {"a003-raw-mutex-member", RuleId::kRawMutexMember, kA003Fire, true},
      {"a003-local-mutex", RuleId::kRawMutexMember, kA003Silent, false},
      {"a003-unguarded-base-mutex", RuleId::kRawMutexMember, kA003Unguarded,
       true},
      {"a003-guarded-base-mutex", RuleId::kRawMutexMember, kA003Guarded,
       false},
      {"a004-relaxed-store", RuleId::kRelaxedAtomicWrite, kA004Fire, true},
      {"a004-relaxed-load", RuleId::kRelaxedAtomicWrite, kA004Silent, false},
      {"a004-waived-store", RuleId::kRelaxedAtomicWrite, kA004Waived, false},
      {"a005-volatile-flag", RuleId::kVolatileQualifier, kA005Fire, true},
      {"a005-sig-atomic", RuleId::kVolatileQualifier, kA005Silent, false},
      {"a006-detach", RuleId::kThreadDetach, kA006Fire, true},
      {"a006-join", RuleId::kThreadDetach, kA006Silent, false},
      {"a007-by-value-parameter", RuleId::kFullWorldCopy, kA007Fire, true},
      {"a007-const-ref-and-prvalue", RuleId::kFullWorldCopy, kA007Silent,
       false},
      {"a007-copy-init-from-lvalue", RuleId::kFullWorldCopy, kA007CopyInit,
       true},
      {"a007-container-of-worlds", RuleId::kFullWorldCopy, kA007Container,
       true},
      {"a007-waived-copy", RuleId::kFullWorldCopy, kA007Waived, false},
  };
  return cases;
}

bool run_self_check(bool quiet) {
  bool pass = true;
  for (const SelfCheckCase& check : self_check_cases()) {
    AuditReport report = audit_source(
        std::string("selfcheck/") + check.name + ".cpp", check.source);
    bool fired = report.count(check.rule) > 0;
    // A fixture must not trip rules it was not aimed at, either.
    std::size_t stray = report.size() - report.count(check.rule);
    bool ok = fired == check.should_fire && stray == 0;
    pass = pass && ok;
    if (!quiet || !ok) {
      std::printf("  %-30s expected %-6s  got %-6s%s  %s\n", check.name,
                  check.should_fire ? "fire" : "silent",
                  fired ? "fire" : "silent",
                  stray != 0 ? " (+stray)" : "", ok ? "ok" : "FAIL");
    }
    if (!ok && !report.empty()) {
      std::fputs(report_to_text(report).c_str(), stdout);
    }
  }
  std::printf("self-check: %zu fixture(s), %s\n", self_check_cases().size(),
              pass ? "PASS" : "FAIL");
  return pass;
}

}  // namespace dnsboot::audit
