#include "audit/source.hpp"

#include <algorithm>
#include <cctype>

namespace dnsboot::audit {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Pull every "audit-allow: A001[, A002 ...]" directive out of one comment's
// text and register the codes at `line`.
void extract_waivers(const std::string& comment, std::size_t line,
                     SourceFile* out) {
  static constexpr std::string_view kMarker = "audit-allow:";
  std::size_t at = 0;
  while ((at = comment.find(kMarker, at)) != std::string::npos) {
    std::size_t i = at + kMarker.size();
    // Codes: "A" + 3 digits, separated by spaces or commas; the first
    // token that is not a code ends the list (it is the reason text).
    while (i < comment.size()) {
      while (i < comment.size() &&
             (comment[i] == ' ' || comment[i] == ',' || comment[i] == '\t')) {
        ++i;
      }
      if (i + 4 <= comment.size() && comment[i] == 'A' &&
          std::isdigit(static_cast<unsigned char>(comment[i + 1])) != 0 &&
          std::isdigit(static_cast<unsigned char>(comment[i + 2])) != 0 &&
          std::isdigit(static_cast<unsigned char>(comment[i + 3])) != 0 &&
          (i + 4 == comment.size() || !ident_char(comment[i + 4]))) {
        out->waivers[comment.substr(i, 4)].push_back(line);
        i += 4;
        continue;
      }
      break;
    }
    at += kMarker.size();
  }
}

}  // namespace

bool SourceFile::waived(std::string_view rule_code, std::size_t line) const {
  auto it = waivers.find(std::string(rule_code));
  if (it == waivers.end()) return false;
  for (std::size_t waiver_line : it->second) {
    if (line == waiver_line || line == waiver_line + 1) return true;
  }
  return false;
}

SourceFile lex_source(std::string path, std::string_view text) {
  SourceFile out;
  out.path = std::move(path);

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string line_code;
  std::string comment;           // text of the comment currently open
  std::size_t comment_line = 0;  // line the comment started on
  std::string raw_delim;         // ")delim\"" terminator of a raw string
  bool prev_continuation = false;
  std::size_t line_no = 1;

  auto flush_line = [&] {
    SourceLine line;
    line.code = line_code;
    std::size_t first = line.code.find_first_not_of(" \t");
    bool hash = first != std::string::npos && line.code[first] == '#';
    line.preprocessor = hash || prev_continuation;
    prev_continuation =
        line.preprocessor && !line.code.empty() && line.code.back() == '\\';
    out.lines.push_back(std::move(line));
    line_code.clear();
    ++line_no;
  };
  auto close_comment = [&] {
    extract_waivers(comment, comment_line, &out);
    comment.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        close_comment();
        state = State::kCode;
      }
      if (state == State::kBlockComment) comment.push_back('\n');
      // Unterminated ordinary literals do not span lines in valid C++;
      // recover rather than blanking the rest of the file.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line_no;
          line_code.append("  ");
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line = line_no;
          line_code.append("  ");
          ++i;
        } else if (c == '"') {
          // Raw string: R"delim( ... )delim" — only recognized when the
          // quote directly follows R / u8R / LR / uR / UR.
          bool raw = !line_code.empty() && line_code.back() == 'R' &&
                     (line_code.size() < 2 ||
                      !ident_char(line_code[line_code.size() - 2]) ||
                      line_code[line_code.size() - 2] == '8' ||
                      line_code[line_code.size() - 2] == 'u' ||
                      line_code[line_code.size() - 2] == 'L' ||
                      line_code[line_code.size() - 2] == 'U');
          if (raw) {
            raw_delim.clear();
            raw_delim.push_back(')');
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(' && text[j] != '\n') {
              raw_delim.push_back(text[j]);
              ++j;
            }
            raw_delim.push_back('"');
            state = State::kRawString;
            line_code.push_back(' ');
            // The delimiter chars themselves are blanked as we pass them.
          } else {
            state = State::kString;
            line_code.push_back(' ');
          }
        } else if (c == '\'') {
          // Only a char literal when not a digit separator (1'000'000) or
          // part of an identifier-adjacent position.
          if (!line_code.empty() && ident_char(line_code.back())) {
            line_code.push_back(' ');  // separator: blank, stay in code
          } else {
            state = State::kChar;
            line_code.push_back(' ');
          }
        } else {
          line_code.push_back(c);
        }
        break;
      case State::kLineComment:
        comment.push_back(c);
        line_code.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          close_comment();
          state = State::kCode;
          line_code.append("  ");
          ++i;
        } else {
          comment.push_back(c);
          line_code.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\') {
          line_code.append("  ");
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          line_code.push_back(' ');
        } else {
          line_code.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          line_code.append("  ");
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          line_code.push_back(' ');
        } else {
          line_code.push_back(' ');
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size() && i < text.size();
               ++j, ++i) {
            if (text[i] == '\n') {
              flush_line();
            } else {
              line_code.push_back(' ');
            }
          }
          --i;  // the for-loop increment advances past the last char
          state = State::kCode;
        } else {
          line_code.push_back(' ');
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    close_comment();
  }
  if (!line_code.empty()) flush_line();
  return out;
}

std::vector<Token> tokenize(const SourceFile& file) {
  std::vector<Token> tokens;
  for (std::size_t line_no = 1; line_no <= file.lines.size(); ++line_no) {
    const SourceLine& line = file.lines[line_no - 1];
    if (line.preprocessor) continue;
    const std::string& code = line.code;
    for (std::size_t i = 0; i < code.size();) {
      char c = code[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (ident_char(c)) {
        std::size_t j = i;
        while (j < code.size() && ident_char(code[j])) ++j;
        bool is_ident =
            std::isdigit(static_cast<unsigned char>(code[i])) == 0;
        tokens.push_back({code.substr(i, j - i), line_no, is_ident});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
        tokens.push_back({"::", line_no, false});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
        tokens.push_back({"->", line_no, false});
        i += 2;
        continue;
      }
      tokens.push_back({std::string(1, c), line_no, false});
      ++i;
    }
  }
  return tokens;
}

}  // namespace dnsboot::audit
