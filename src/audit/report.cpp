#include "audit/report.hpp"

namespace dnsboot::audit {
namespace {

void append_escaped(std::string& out, const std::string& value) {
  out += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string report_to_text(const AuditReport& report) {
  std::string out;
  for (const Finding& finding : report.findings()) {
    const RuleInfo& rule = rule_info(finding.rule);
    out += to_string(rule.severity);
    out += ' ';
    out += rule.code;
    out += ' ';
    out += rule.name;
    out += ' ';
    out += finding.path;
    out += ':' + std::to_string(finding.line);
    out += ": ";
    out += finding.detail;
    out += '\n';
  }

  out += "checked " + std::to_string(report.files_checked()) + " file(s), " +
         std::to_string(report.size()) + " finding(s)";
  const auto counts = report.counts_by_rule();
  if (!counts.empty()) {
    out += " (";
    bool first = true;
    for (const auto& [rule, count] : counts) {
      if (!first) out += ", ";
      first = false;
      const RuleInfo& info = rule_info(rule);
      out += info.code;
      out += ' ';
      out.append(info.name);
      out += ": " + std::to_string(count);
    }
    out += ')';
  }
  out += '\n';
  return out;
}

std::string report_to_json(const AuditReport& report) {
  std::string out = "{\"files_checked\":";
  out += std::to_string(report.files_checked());
  out += ",\"findings\":[";
  bool first = true;
  for (const Finding& finding : report.findings()) {
    if (!first) out += ',';
    first = false;
    const RuleInfo& rule = rule_info(finding.rule);
    out += "{\"rule\":";
    append_escaped(out, std::string(rule.code));
    out += ",\"name\":";
    append_escaped(out, std::string(rule.name));
    out += ",\"severity\":";
    append_escaped(out, std::string(to_string(rule.severity)));
    out += ",\"path\":";
    append_escaped(out, finding.path);
    out += ",\"line\":";
    out += std::to_string(finding.line);
    out += ",\"detail\":";
    append_escaped(out, finding.detail);
    out += '}';
  }
  out += "],\"summary\":{";
  first = true;
  for (const auto& [rule, count] : report.counts_by_rule()) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, std::string(rule_info(rule).code));
    out += ':';
    out += std::to_string(count);
  }
  out += "}}";
  return out;
}

}  // namespace dnsboot::audit
