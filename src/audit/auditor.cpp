#include "audit/auditor.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <set>
#include <string>

#include "audit/source.hpp"

namespace dnsboot::audit {

namespace {

// Identifiers that look like calls but are control flow / operators — never
// function-definition candidates for the scope tracker.
bool is_keyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",           "while",  "switch",    "catch",
      "return", "sizeof",        "alignof","new",       "delete",
      "throw",  "static_assert", "assert", "defined",   "constexpr",
      "decltype", "noexcept",    "alignas","requires"};
  return kKeywords.count(text) > 0;
}

// Wall-clock / PRNG functions banned when called unqualified or via std::
// (member calls `x.time(...)` are someone else's API and stay legal).
bool is_banned_call(const std::string& text) {
  static const std::set<std::string> kCalls = {
      "time",    "clock",   "rand",        "srand",  "random",
      "srandom", "drand48", "lrand48",     "mrand48","gettimeofday",
      "localtime", "gmtime"};
  return kCalls.count(text) > 0;
}

// Nondeterministic types banned in any position. steady_clock and
// CLOCK_MONOTONIC are the allowed time sources; every random engine is out
// (seeded determinism in this repo flows from SplitMix/Xoshiro in
// base/rng, never from std::random).
bool is_banned_type(const std::string& text) {
  static const std::set<std::string> kTypes = {
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "knuth_b",       "ranlux24",     "ranlux48",
      "system_clock",  "high_resolution_clock"};
  return kTypes.count(text) > 0;
}

bool is_std_mutex_type(const std::string& text) {
  static const std::set<std::string> kMutexes = {
      "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
      "recursive_timed_mutex"};
  return kMutexes.count(text) > 0;
}

// Does this enclosing-function name produce externally visible bytes?
bool is_serializer_name(const std::string& name) {
  static const std::array<const char*, 9> kMarkers = {
      "to_json", "to_jsonl", "to_text", "to_csv", "serialize",
      "report",  "render",   "dump",    "emit"};
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  for (const char* marker : kMarkers) {
    if (lower.find(marker) != std::string::npos) return true;
  }
  return false;
}

bool word_at(const std::string& code, std::size_t at, std::size_t len) {
  auto is_word = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  if (at > 0 && is_word(code[at - 1])) return false;
  if (at + len < code.size() && is_word(code[at + len])) return false;
  return true;
}

bool contains_word(const std::string& code, const std::string& word) {
  std::size_t at = 0;
  while ((at = code.find(word, at)) != std::string::npos) {
    if (word_at(code, at, word.size())) return true;
    at += word.size();
  }
  return false;
}

// Atomic member functions that *write*; a relaxed load is always benign.
const std::array<const char*, 9> kAtomicWriteOps = {
    "store",       "fetch_add", "fetch_sub",
    "fetch_and",   "fetch_or",  "fetch_xor",
    "exchange",    "compare_exchange_weak", "compare_exchange_strong"};

// Tracks "which function body are we inside" across a token walk. Pure
// heuristic — good enough for this codebase's style (clang-format, no
// function-try-blocks) and every miss is waivable.
class ScopeTracker {
 public:
  // Feed tokens in order; call before inspecting current_function() at i.
  void step(const std::vector<Token>& tokens, std::size_t i) {
    const Token& tok = tokens[i];
    const Token* prev = i > 0 ? &tokens[i - 1] : nullptr;
    if (tok.text == "(") {
      if (paren_depth_ == 0 && !in_init_list_) {
        candidate_ = prev != nullptr && prev->ident && !is_keyword(prev->text)
                         ? prev->text
                         : std::string();
      }
      ++paren_depth_;
    } else if (tok.text == ")") {
      if (paren_depth_ > 0 && --paren_depth_ == 0) armed_ = true;
    } else if (paren_depth_ == 0 && (tok.text == ";" || tok.text == "=")) {
      armed_ = false;
      in_init_list_ = false;
      candidate_.clear();
    } else if (paren_depth_ == 0 && tok.text == ":" && armed_) {
      in_init_list_ = true;  // constructor member-initializer list
    } else if (tok.text == "{") {
      bool brace_init = armed_ && in_init_list_ && prev != nullptr &&
                        (prev->ident || prev->text == ">");
      if (brace_init) {
        stack_.push_back(current_function());  // b_{...}: stay armed
      } else if (armed_) {
        stack_.push_back(candidate_.empty() ? current_function()
                                            : candidate_);
        armed_ = false;
        in_init_list_ = false;
        candidate_.clear();
      } else {
        // class/namespace/initializer braces inherit the enclosing state
        // (so a lambda body still counts as "inside" its function).
        stack_.push_back(current_function());
      }
    } else if (tok.text == "}") {
      if (!stack_.empty()) stack_.pop_back();
    }
  }

  // Name of the innermost function body we are inside, "" at type or
  // namespace scope.
  const std::string& current_function() const {
    static const std::string empty;
    return stack_.empty() ? empty : stack_.back();
  }

 private:
  std::vector<std::string> stack_;
  std::string candidate_;
  int paren_depth_ = 0;
  bool armed_ = false;         // just closed a parameter/argument list
  bool in_init_list_ = false;  // between ctor ')' and its body '{'
};

// Skip a template argument list starting at tokens[i] == "<"; returns the
// index one past the matching ">", and reports whether the *first* argument
// contains a raw pointer. `>` never merges with `>` in this token stream,
// so depth counting is exact.
std::size_t scan_template_args(const std::vector<Token>& tokens,
                               std::size_t i, bool* first_arg_pointer) {
  int depth = 0;
  bool in_first = true;
  *first_arg_pointer = false;
  for (; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == "," && depth == 1) {
      in_first = false;
    } else if (t == "*" && depth == 1 && in_first) {
      *first_arg_pointer = true;
    } else if (t == "(" || t == ")" || t == ";") {
      // Comparison operator, not a template list — bail out.
      return i;
    }
  }
  return i;
}

struct MutexDecl {
  std::string name;
  std::size_t line;
};

bool path_has_suffix(const std::string& path,
                     const std::vector<std::string>& suffixes) {
  for (const std::string& suffix : suffixes) {
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return true;
    }
  }
  return false;
}

}  // namespace

AuditReport audit_source(const std::string& path, std::string_view text,
                         const AuditOptions& options) {
  AuditReport report;
  report.note_file_checked();
  SourceFile file = lex_source(path, text);
  std::vector<Token> tokens = tokenize(file);

  auto add = [&](RuleId rule, std::size_t line, std::string detail) {
    if (file.waived(rule_info(rule).code, line)) return;
    report.add(rule, path, line, std::move(detail));
  };

  // ---- pass A: declaration collection --------------------------------------
  // Names declared with an unordered container type in this file (members,
  // locals or parameters — iteration order is equally unstable for all).
  std::set<std::string> unordered_names;
  // Names referenced by a GUARDED_BY()/PT_GUARDED_BY() annotation.
  std::set<std::string> guarded_by_args;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if ((t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset") &&
        tokens[i + 1].text == "<") {
      bool pointer_key = false;
      std::size_t j = scan_template_args(tokens, i + 1, &pointer_key);
      while (j < tokens.size() &&
             (tokens[j].text == "&" || tokens[j].text == "*" ||
              tokens[j].text == "const")) {
        ++j;
      }
      if (j < tokens.size() && tokens[j].ident) {
        unordered_names.insert(tokens[j].text);
      }
    } else if ((t == "GUARDED_BY" || t == "PT_GUARDED_BY") &&
               tokens[i + 1].text == "(" && i + 2 < tokens.size() &&
               tokens[i + 2].ident) {
      guarded_by_args.insert(tokens[i + 2].text);
    }
  }

  // ---- pass B: scope-aware token rules -------------------------------------
  ScopeTracker scopes;
  std::vector<MutexDecl> project_mutex_members;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    scopes.step(tokens, i);
    const Token& tok = tokens[i];
    if (!tok.ident) continue;
    const Token* prev = i > 0 ? &tokens[i - 1] : nullptr;
    const Token* next = i + 1 < tokens.size() ? &tokens[i + 1] : nullptr;

    // A002: banned nondeterminism sources.
    if (is_banned_call(tok.text) && next != nullptr && next->text == "(" &&
        (prev == nullptr || (prev->text != "." && prev->text != "->"))) {
      add(RuleId::kBannedNondeterminism, tok.line,
          "call to " + tok.text +
              "() — wall-clock/PRNG source; use the seeded rng or the "
              "monotonic clock");
    }
    if (is_banned_type(tok.text)) {
      add(RuleId::kBannedNondeterminism, tok.line,
          "use of std::" + tok.text +
              " — nondeterministic source; only seeded engines and "
              "steady_clock are allowed");
    }
    if ((tok.text == "map" || tok.text == "set" || tok.text == "multimap" ||
         tok.text == "multiset") &&
        prev != nullptr && prev->text == "::" && next != nullptr &&
        next->text == "<") {
      bool pointer_key = false;
      scan_template_args(tokens, i + 1, &pointer_key);
      if (pointer_key) {
        add(RuleId::kBannedNondeterminism, tok.line,
            "std::" + tok.text +
                " keyed by a raw pointer — iteration order is allocation "
                "order, which varies across runs");
      }
    }

    // A003: raw std::mutex member (locals inside a function are fine — they
    // cannot be annotated but also cannot be a cross-TU contract).
    if (is_std_mutex_type(tok.text) && prev != nullptr && prev->text == "::" &&
        i >= 2 && tokens[i - 2].text == "std" && next != nullptr &&
        next->ident && scopes.current_function().empty()) {
      add(RuleId::kRawMutexMember, tok.line,
          "raw std::" + tok.text + " member `" + next->text +
              "` — declare a base::Mutex and annotate the guarded fields "
              "with GUARDED_BY");
    }
    // A003 (annotated half): a base::Mutex member nobody GUARDED_BY-refers
    // to protects nothing — either dead or the annotations are missing.
    if (tok.text == "Mutex" && next != nullptr && next->ident &&
        i + 2 < tokens.size() &&
        (tokens[i + 2].text == "{" || tokens[i + 2].text == ";" ||
         tokens[i + 2].text == "=") &&
        scopes.current_function().empty()) {
      project_mutex_members.push_back({next->text, tok.line});
    }

    // A005: volatile (the sig_atomic_t signal-flag idiom is the exemption).
    if (tok.text == "volatile") {
      bool sig_atomic =
          (next != nullptr && next->text == "sig_atomic_t") ||
          (i + 3 < tokens.size() && tokens[i + 1].text == "std" &&
           tokens[i + 2].text == "::" &&
           tokens[i + 3].text == "sig_atomic_t");
      if (!sig_atomic) {
        add(RuleId::kVolatileQualifier, tok.line,
            "volatile is not a synchronization primitive — use std::atomic "
            "(volatile std::sig_atomic_t signal flags are exempt)");
      }
    }

    // A006: detached threads.
    if (tok.text == "detach" && prev != nullptr &&
        (prev->text == "." || prev->text == "->") && next != nullptr &&
        next->text == "(") {
      add(RuleId::kThreadDetach, tok.line,
          "thread detach() — detached threads race shutdown; scope and "
          "join every thread");
    }

    // A001: range-for over an unordered container inside a serializer.
    if (tok.text == "for" && next != nullptr && next->text == "(" &&
        is_serializer_name(scopes.current_function())) {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (tokens[j].text == "(") {
          ++depth;
        } else if (tokens[j].text == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (tokens[j].text == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon != 0 && close > colon) {
        std::string range_ident;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (tokens[j].ident) range_ident = tokens[j].text;
        }
        if (!range_ident.empty() && unordered_names.count(range_ident) > 0) {
          add(RuleId::kUnorderedSerialization, tok.line,
              "range-for over unordered container `" + range_ident +
                  "` inside serializer `" + scopes.current_function() +
                  "` — output bytes depend on hash order");
        }
      }
    }
  }

  for (const MutexDecl& decl : project_mutex_members) {
    if (guarded_by_args.count(decl.name) == 0) {
      add(RuleId::kRawMutexMember, decl.line,
          "base::Mutex member `" + decl.name +
              "` has no GUARDED_BY(" + decl.name +
              ") field in this file — annotate what it protects");
    }
  }

  // ---- pass C: relaxed atomic writes (line window) -------------------------
  if (!path_has_suffix(path, options.relaxed_write_allowlist)) {
    for (std::size_t line = 1; line <= file.lines.size(); ++line) {
      if (!contains_word(file.code(line), "memory_order_relaxed")) continue;
      // The call this ordering belongs to starts on this line or shortly
      // above (clang-format wraps arguments, not member accesses further).
      std::size_t anchor = 0;
      const char* op = nullptr;
      for (std::size_t back = 0; back < 3 && line > back; ++back) {
        for (const char* candidate : kAtomicWriteOps) {
          if (contains_word(file.code(line - back), candidate)) {
            anchor = line - back;
            op = candidate;
            break;
          }
        }
        if (anchor != 0) break;
      }
      if (anchor == 0) continue;  // a relaxed load — always benign
      add(RuleId::kRelaxedAtomicWrite, anchor,
          std::string("relaxed atomic write (") + op +
              ") outside the blessed single-writer counter pattern — use "
              "acq/rel ordering or add an audit-allow waiver stating the "
              "happens-before argument");
    }
  }

  // ---- pass D: by-value Ecosystem/Zone copies (A007) -----------------------
  // The streaming-shard contract (DESIGN.md §14) says whole zone
  // populations are built once per shard slice and then only referenced.
  // Outside the builder/plan layer a by-value Ecosystem or Zone is how the
  // old one-full-world-per-worker pattern looked, so flag: by-value
  // parameters, copy-initialization from an lvalue, by-value range-for
  // loop variables, and sequence containers of full values. Constructor
  // calls, prvalue returns (`Ecosystem build()`), references and pointers
  // all stay legal.
  if (!path_has_suffix(path, options.world_copy_allowlist)) {
    int depth = 0;  // () nesting: separates parameters from declarations
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& tok = tokens[i];
      if (tok.text == "(") {
        ++depth;
        continue;
      }
      if (tok.text == ")") {
        if (depth > 0) --depth;
        continue;
      }
      if (!tok.ident || (tok.text != "Ecosystem" && tok.text != "Zone")) {
        continue;
      }
      const Token* prev = i > 0 ? &tokens[i - 1] : nullptr;
      const Token* next = i + 1 < tokens.size() ? &tokens[i + 1] : nullptr;
      if (prev != nullptr && (prev->text == "." || prev->text == "->")) {
        continue;  // member access, not the type
      }
      // Sequence container of full values: one world/zone copy per element.
      if (prev != nullptr && prev->text == "<" && i >= 2) {
        const std::string& host = tokens[i - 2].text;
        if (host == "vector" || host == "deque" || host == "list" ||
            host == "array") {
          add(RuleId::kFullWorldCopy, tok.line,
              host + "<" + tok.text +
                  "> holds one full copy per element — hold shard slices, "
                  "shared_ptr or references instead");
          continue;
        }
      }
      if (next == nullptr || !next->ident) continue;  // ref/ptr/ctor/scope
      const Token* after = i + 2 < tokens.size() ? &tokens[i + 2] : nullptr;
      if (after == nullptr) continue;
      if (after->text == "(") continue;  // function decl: prvalue return
      if (depth > 0 && (after->text == "," || after->text == ")")) {
        add(RuleId::kFullWorldCopy, tok.line,
            tok.text + " passed by value (parameter `" + next->text +
                "`) — pass const& so the population is not duplicated");
        continue;
      }
      if (after->text == ":") {
        add(RuleId::kFullWorldCopy, tok.line,
            "range-for copies each " + tok.text + " into `" + next->text +
                "` — iterate by const reference");
        continue;
      }
      if (after->text == "=") {
        // Copy-init from an lvalue. A call or braced init on the RHS is a
        // prvalue (guaranteed elision) and stays legal.
        bool prvalue = false;
        for (std::size_t j = i + 3; j < tokens.size(); ++j) {
          const std::string& t = tokens[j].text;
          if (t == ";") break;
          if (t == "(" || t == "{") {
            prvalue = true;
            break;
          }
          if (t == "move") prvalue = true;  // std::move handoff
        }
        if (!prvalue) {
          add(RuleId::kFullWorldCopy, tok.line,
              tok.text + " `" + next->text +
                  "` copy-initialized from an lvalue — bind a const& or "
                  "move the value");
        }
      }
    }
  }

  return report;
}

}  // namespace dnsboot::audit
