// Text and JSON renderers for audit reports — dnsboot-audit's output layer,
// mirroring src/lint/report.hpp.
#pragma once

#include <string>

#include "audit/auditor.hpp"

namespace dnsboot::audit {

// Human-readable report: one line per finding
// ("error A003 raw-mutex-member src/foo.hpp:12: <detail>") followed by a
// per-rule summary block.
std::string report_to_text(const AuditReport& report);

// Machine-readable report:
// {"files_checked":N,"findings":[...],"summary":{...}}.
std::string report_to_json(const AuditReport& report);

}  // namespace dnsboot::audit
