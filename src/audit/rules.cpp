#include "audit/rules.hpp"

namespace dnsboot::audit {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> rules = {
      {RuleId::kUnorderedSerialization, "A001", "unordered-serialization",
       Severity::kError,
       "iterating an unordered container inside a serializer makes report "
       "bytes depend on hash order, breaking run-to-run identity"},
      {RuleId::kBannedNondeterminism, "A002", "banned-nondeterminism",
       Severity::kError,
       "wall-clock and PRNG calls (time, rand, random_device, system_clock) "
       "and pointer-keyed ordered containers vary across runs; only seeded "
       "state and monotonic clocks are allowed"},
      {RuleId::kRawMutexMember, "A003", "raw-mutex-member", Severity::kError,
       "a raw std::mutex member carries no capability annotation, so clang "
       "-Wthread-safety cannot check it; use base::Mutex and GUARDED_BY"},
      {RuleId::kRelaxedAtomicWrite, "A004", "relaxed-atomic-write",
       Severity::kError,
       "a relaxed store/RMW is sound only in the single-writer counter "
       "pattern (obs/metrics.hpp) or with a per-site audit-allow waiver"},
      {RuleId::kVolatileQualifier, "A005", "volatile-qualifier",
       Severity::kError,
       "volatile is not a synchronization primitive; std::atomic expresses "
       "the intent and is checkable (sig_atomic_t handlers exempt)"},
      {RuleId::kThreadDetach, "A006", "thread-detach", Severity::kError,
       "a detached thread outlives scoped ownership and races shutdown; "
       "every thread in this codebase is joined"},
      {RuleId::kFullWorldCopy, "A007", "full-world-copy", Severity::kError,
       "a by-value Ecosystem/Zone duplicates an entire zone population; "
       "outside the builder/plan layer pass const& (or build the shard "
       "slice in place) so the pre-streaming full-world-copy pattern "
       "cannot return"},
  };
  return rules;
}

const RuleInfo& rule_info(RuleId id) {
  for (const RuleInfo& rule : all_rules()) {
    if (rule.id == id) return rule;
  }
  return all_rules().front();  // unreachable: the registry is total
}

const RuleInfo* find_rule(std::string_view code_or_name) {
  for (const RuleInfo& rule : all_rules()) {
    if (rule.code == code_or_name || rule.name == code_or_name) return &rule;
  }
  return nullptr;
}

}  // namespace dnsboot::audit
