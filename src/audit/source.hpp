// Source model for dnsboot-audit, the project's concurrency/determinism
// source auditor (DESIGN.md §12). lex_source() runs a lightweight C++
// scanner over one translation unit's text and produces a line-oriented
// view with comments, string/char literals and raw strings blanked out, so
// the rule matchers in auditor.cpp never trip over tokens inside literals
// or prose.
//
// The scanner also extracts waivers: a comment containing
//   audit-allow: A004 <reason>
// suppresses the named rule(s) on the comment's own line and the line
// after it — close enough to attach a waiver either trailing the offending
// statement or on its own line directly above, and narrow enough that a
// waiver cannot silence a whole file.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dnsboot::audit {

struct SourceLine {
  std::string code;           // literal/comment bytes replaced with spaces
  bool preprocessor = false;  // #directive line (or its \ continuation)
};

struct SourceFile {
  std::string path;
  std::vector<SourceLine> lines;  // lines[i] is source line i + 1

  // rule code ("A004") -> 1-based lines carrying an audit-allow comment.
  std::map<std::string, std::vector<std::size_t>> waivers;

  // Is `rule_code` waived at `line` (waiver on the line or the one above)?
  bool waived(std::string_view rule_code, std::size_t line) const;

  const std::string& code(std::size_t line) const {
    static const std::string empty;
    return line >= 1 && line <= lines.size() ? lines[line - 1].code : empty;
  }
};

// One token of blanked code: an identifier (including keywords), a number,
// or punctuation ("::" and "->" kept whole, all else single-char).
struct Token {
  std::string text;
  std::size_t line = 0;  // 1-based
  bool ident = false;
};

SourceFile lex_source(std::string path, std::string_view text);

// Tokens of every non-preprocessor line, in order.
std::vector<Token> tokenize(const SourceFile& file);

}  // namespace dnsboot::audit
