// The auditor proper: run every A0xx rule over one source file (or a whole
// tree via tools/dnsboot_audit.cpp) and collect findings. Same output
// vocabulary as src/lint: Finding pins a rule to path:line, AuditReport
// aggregates findings plus coverage counters.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "audit/rules.hpp"

namespace dnsboot::audit {

struct Finding {
  RuleId rule = RuleId::kUnorderedSerialization;
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string detail;    // free-form context ("std::mutex member `mu_`")

  Severity severity() const { return rule_info(rule).severity; }
};

class AuditReport {
 public:
  void add(RuleId rule, std::string path, std::size_t line,
           std::string detail) {
    findings_.push_back({rule, std::move(path), line, std::move(detail)});
  }

  const std::vector<Finding>& findings() const { return findings_; }
  bool empty() const { return findings_.empty(); }
  std::size_t size() const { return findings_.size(); }

  // True when no finding reaches `at_least` (default: any finding at all).
  bool clean(Severity at_least = Severity::kWarning) const {
    for (const Finding& f : findings_) {
      if (f.severity() >= at_least) return false;
    }
    return true;
  }

  std::size_t count(RuleId rule) const {
    std::size_t n = 0;
    for (const Finding& f : findings_) n += (f.rule == rule) ? 1 : 0;
    return n;
  }

  std::map<RuleId, std::size_t> counts_by_rule() const {
    std::map<RuleId, std::size_t> counts;
    for (const Finding& f : findings_) ++counts[f.rule];
    return counts;
  }

  void merge(AuditReport other) {
    findings_.insert(findings_.end(),
                     std::make_move_iterator(other.findings_.begin()),
                     std::make_move_iterator(other.findings_.end()));
    files_checked_ += other.files_checked_;
  }

  std::size_t files_checked() const { return files_checked_; }
  void note_file_checked() { ++files_checked_; }

 private:
  std::vector<Finding> findings_;
  std::size_t files_checked_ = 0;
};

struct AuditOptions {
  // Files (matched by path suffix) where a relaxed atomic *write* is the
  // blessed pattern itself: the single-writer counter (obs/metrics.hpp) and
  // the verify layer that checks it — the checker cannot be written in
  // terms of itself.
  std::vector<std::string> relaxed_write_allowlist = {
      "src/obs/metrics.hpp",
      "src/base/verify.hpp",
      "src/base/verify.cpp",
  };

  // Files (matched by path suffix) allowed to hold Ecosystem/Zone values:
  // the builder/plan layer that constructs them in the first place. A007
  // flags by-value copies everywhere else so the pre-streaming
  // one-full-world-per-worker pattern cannot silently return.
  std::vector<std::string> world_copy_allowlist = {
      "src/ecosystem/builder.hpp",
      "src/ecosystem/builder.cpp",
      "src/ecosystem/plan.hpp",
      "src/ecosystem/plan.cpp",
  };
};

// Audit one file's text. `path` is used for reporting and for the
// allowlist suffix match.
AuditReport audit_source(const std::string& path, std::string_view text,
                         const AuditOptions& options = {});

}  // namespace dnsboot::audit
