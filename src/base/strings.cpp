#include "base/strings.hpp"

#include <cmath>
#include <cstdio>

namespace dnsboot {

std::string ascii_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ascii_lower(c);
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return std::string(s.substr(b, e - b));
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i == lead || (i > lead && (i - lead) % 3 == 0)) out += ' ';
    out += digits[i];
  }
  return out;
}

std::string format_percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, fraction * 100.0);
  return buf;
}

}  // namespace dnsboot
