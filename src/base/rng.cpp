#include "base/rng.hpp"

#include <cassert>
#include <cmath>

namespace dnsboot {

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // xoshiro state must not be all-zero; SplitMix64 output makes this
  // astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

void Rng::fill(std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t v = next_u64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  if (i < n) {
    std::uint64_t v = next_u64();
    while (i < n) {
      out[i++] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  fill(out.data(), n);
  return out;
}

Rng Rng::fork(const std::string& label) const {
  return Rng(seed_ ^ fnv1a(label) ^ 0xa5a5a5a5a5a5a5a5ULL);
}

ZipfSampler::ZipfSampler(double exponent, std::uint64_t n)
    : s_(exponent), n_(n) {
  assert(n >= 1);
  assert(exponent > 0.0);
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  sdiv_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfSampler::h_integral(double x) const {
  double log_x = std::log(x);
  // Integral of x^-s: handles s == 1 via the helper below.
  double t = log_x * (1.0 - s_);
  double helper = (std::abs(t) > 1e-8) ? std::expm1(t) / t : 1.0 + t / 2.0 + t * t / 6.0;
  return log_x * helper;
}

double ZipfSampler::h_integral_inverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // numerical guard
  double helper = (std::abs(t) > 1e-8) ? std::log1p(t) / t : 1.0 - t / 2.0 + t * t / 3.0;
  return std::exp(x * helper);
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  // Rejection-inversion sampling (Hörmann & Derflinger 1996).
  while (true) {
    double u = h_integral_n_ + rng.next_double() * (h_integral_x1_ - h_integral_n_);
    double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    double kd = static_cast<double>(k);
    if (kd - x <= sdiv_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace dnsboot
