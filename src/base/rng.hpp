// Deterministic random number generation for the ecosystem generator and
// failure injection. Everything in dnsboot that is "random" flows through
// these types so that a run is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dnsboot {

// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

// xoshiro256** — the workhorse generator. Fast, high quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();
  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);
  // Uniform double in [0, 1).
  double next_double();
  // Bernoulli trial.
  bool chance(double p);
  // Uniform in [lo, hi] inclusive.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);
  // Fill a byte buffer.
  void fill(std::uint8_t* out, std::size_t n);
  std::vector<std::uint8_t> bytes(std::size_t n);

  // Derive an independent child generator; stable for (seed, label).
  Rng fork(const std::string& label) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

// Zipf(s, n) sampler over ranks 1..n. DNS operator portfolio sizes and
// domain-name popularity are heavy-tailed; the generator uses this to draw
// realistic long-tail assignments (rejection-inversion, Hörmann & Derflinger).
class ZipfSampler {
 public:
  ZipfSampler(double exponent, std::uint64_t n);
  std::uint64_t sample(Rng& rng) const;

  double exponent() const { return s_; }
  std::uint64_t n() const { return n_; }

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  double s_;
  std::uint64_t n_;
  double h_integral_x1_;
  double h_integral_n_;
  double sdiv_;
};

// FNV-1a — stable string hashing for fork labels and operator bucketing.
std::uint64_t fnv1a(const std::string& s);

// Stable shard assignment of a zone by its canonical name text. Shared by
// the ecosystem's streaming shard builder (which decides which zones a shard
// world materializes) and the analysis executor (which partitions scan
// targets) — the two MUST agree or shards would scan zones they never built.
inline std::size_t shard_of_canonical(const std::string& canonical_text,
                                      std::size_t shards) {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(fnv1a(canonical_text) % shards);
}

}  // namespace dnsboot
