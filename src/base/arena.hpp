// base::Arena — a chunked bump allocator for long-lived byte storage.
//
// The scan hot path interns millions of small immutable byte strings (name
// labels, canonical order keys). Individual heap allocations for those would
// dominate the allocator and fragment memory; an arena hands out slices of
// large chunks with one pointer bump and frees everything at once when the
// arena dies. Allocations are never freed individually — by design the
// arena's contents are immutable and live as long as the arena itself, so a
// std::string_view into an arena stays valid for the arena's lifetime.
//
// Not thread-safe: callers that share an arena across threads guard it with
// their own mutex (the name pool shards do exactly this).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace dnsboot::base {

class Arena {
 public:
  // `chunk_bytes` is the default chunk size; allocations larger than a chunk
  // get a dedicated chunk of exactly their size.
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // Bump-allocate `n` bytes (uninitialized). Returned storage is stable for
  // the arena's lifetime. n == 0 may return null (a valid empty view).
  char* allocate(std::size_t n) {
    if (n > static_cast<std::size_t>(cursor_end_ - cursor_)) grow(n);
    char* out = cursor_;
    cursor_ += n;
    bytes_used_ += n;
    return out;
  }

  // Copy `bytes` into the arena and return a view of the stable copy.
  std::string_view copy(std::string_view bytes) {
    char* dst = allocate(bytes.size());
    if (!bytes.empty()) std::memcpy(dst, bytes.data(), bytes.size());
    return std::string_view(dst, bytes.size());
  }

  // Total bytes handed out to callers.
  std::size_t bytes_used() const { return bytes_used_; }
  // Total bytes reserved from the system (>= bytes_used, includes chunk
  // tails not yet handed out).
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  void grow(std::size_t n) {
    std::size_t size = n > chunk_bytes_ ? n : chunk_bytes_;
    chunks_.push_back(std::make_unique<char[]>(size));
    cursor_ = chunks_.back().get();
    cursor_end_ = cursor_ + size;
    bytes_reserved_ += size;
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  char* cursor_ = nullptr;
  char* cursor_end_ = nullptr;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace dnsboot::base
