// Result<T> — lightweight expected-style error propagation.
//
// dnsboot is exception-free on hot paths (wire parsing, validation, the scan
// loop). Parse and protocol errors are values, not exceptions; exceptions are
// reserved for programming errors (precondition violations).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace dnsboot {

// Error carries a short machine-readable code plus human-readable detail.
struct Error {
  std::string code;    // e.g. "wire.truncated", "name.too_long"
  std::string detail;  // free-form context

  std::string to_string() const {
    return detail.empty() ? code : code + ": " + detail;
  }
};

// Result<T>: either a value or an Error. Monadic helpers are intentionally
// minimal; call sites use early returns which read better in parser code.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : storage_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::variant<T, Error> storage_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error err) : err_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status{}; }

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(!ok());
    return *err_;
  }

 private:
  std::optional<Error> err_;
};

// Early-return helpers for parser code.
#define DNSBOOT_TRY(var, expr)                  \
  auto var##_result = (expr);                   \
  if (!var##_result.ok()) {                     \
    return var##_result.error();                \
  }                                             \
  auto var = std::move(var##_result).take()

#define DNSBOOT_CHECK(expr)                     \
  do {                                          \
    auto status_ = (expr);                      \
    if (!status_.ok()) return status_.error();  \
  } while (false)

}  // namespace dnsboot
