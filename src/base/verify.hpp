// Debug-build concurrency verifiers (DESIGN.md §12) — the runtime layer of
// the concurrency contract, compiled in under the DNSBOOT_VERIFY CMake
// option (ON by default outside Release builds).
//
// Three checkers share this header:
//   * lockdep — a global lock-order graph. Every base::Mutex acquisition
//     adds held→acquiring edges; an edge that closes a cycle (the classic
//     AB/BA deadlock) fails at acquisition time, on the first run that
//     merely *could* deadlock, instead of the unlucky run that does.
//   * single-writer — obs::Counter tags itself with the first thread that
//     writes it and fails on a write from any other thread, enforcing the
//     metrics registry's "one owning writer per counter" contract
//     (obs/metrics.hpp) that makes relaxed non-RMW adds sound.
//   * reactor guard — net::EventLoop fails on re-entrant poll() and on
//     cross-thread mutation while a poll is in flight (event_loop.hpp).
//
// All violations funnel through fail(), whose default handler prints the
// check and aborts. Tests install a recording handler instead
// (set_failure_handler), so violation paths are assertable without death
// tests under any sanitizer.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace dnsboot::verify {

// Small dense id for the calling thread (1-based, assigned on first use).
// Used for verifier bookkeeping and failure messages; never for ordering.
std::uint64_t thread_tag();

// Violation sink. The handler may return (tests); production code must not
// assume fail() diverges.
using FailureHandler = void (*)(const char* check, const std::string& detail);
FailureHandler set_failure_handler(FailureHandler handler);  // returns previous
void fail(const char* check, const std::string& detail);

// ---- lockdep ---------------------------------------------------------------
// Instance-addressed hooks called by base::Mutex under DNSBOOT_VERIFY.
// lock_acquiring runs *before* the blocking lock() so a would-be deadlock is
// reported instead of deadlocking the verifier's own test.
void lock_acquiring(const void* lock, const char* name);
void lock_acquired(const void* lock);
void lock_released(const void* lock);
void lock_destroyed(const void* lock);
// Number of distinct lock-order edges observed so far (test introspection).
std::size_t lock_order_edges();

// ---- single-writer ---------------------------------------------------------
// Embedded by obs::Counter under DNSBOOT_VERIFY. First write claims the
// counter for the writing thread; later writes from other threads fail.
// reset() releases the claim at a documented ownership-handoff seam (e.g.
// WireTransport::run_forever entry), where a happens-before edge exists.
class SingleWriter {
 public:
  void on_write(const void* site) {
    const std::uint64_t me = thread_tag();
    std::uint64_t seen = writer_.load(std::memory_order_relaxed);
    if (seen == 0 &&
        writer_.compare_exchange_strong(seen, me,
                                        std::memory_order_relaxed)) {
      return;
    }
    if (seen != me) report_cross_thread(site, seen, me);
  }
  void reset() { writer_.store(0, std::memory_order_relaxed); }
  std::uint64_t writer() const {
    return writer_.load(std::memory_order_relaxed);
  }

 private:
  static void report_cross_thread(const void* site, std::uint64_t owner,
                                  std::uint64_t me);
  std::atomic<std::uint64_t> writer_{0};
};

}  // namespace dnsboot::verify
