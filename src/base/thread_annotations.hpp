// Clang thread-safety annotation macros (DESIGN.md §12) — the compile-time
// layer of the concurrency contract. Under clang, `-Wthread-safety` turns
// these into a static lock-discipline checker: every GUARDED_BY member must
// only be touched with its mutex held, ACQUIRE/RELEASE functions must pair,
// and REQUIRES callers are verified at every call site. Under GCC the
// macros expand to nothing and the same contracts are enforced at runtime
// by the DNSBOOT_VERIFY verifiers (base/verify.hpp) and statically by
// dnsboot-audit rule A003.
//
// Convention: annotations reference dnsboot::base::Mutex (base/mutex.hpp),
// never raw std::mutex — libstdc++'s std::mutex carries no capability
// attribute, so clang cannot analyze it (and dnsboot-audit rejects raw
// std::mutex members outright, rule A003).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define DNSBOOT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DNSBOOT_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// A type that acts as a lock (mutexes, capability wrappers).
#ifndef CAPABILITY
#define CAPABILITY(x) DNSBOOT_THREAD_ANNOTATION(capability(x))
#endif

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor (base::MutexLock).
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY DNSBOOT_THREAD_ANNOTATION(scoped_lockable)
#endif

// Data member readable/writable only with the given capability held.
#ifndef GUARDED_BY
#define GUARDED_BY(x) DNSBOOT_THREAD_ANNOTATION(guarded_by(x))
#endif

// Pointer member whose *pointee* is protected by the capability.
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) DNSBOOT_THREAD_ANNOTATION(pt_guarded_by(x))
#endif

// Function that must be called with the capability held / not held.
#ifndef REQUIRES
#define REQUIRES(...) \
  DNSBOOT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) DNSBOOT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#endif

// Function that acquires / releases the capability (Mutex::lock/unlock).
#ifndef ACQUIRE
#define ACQUIRE(...) \
  DNSBOOT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) \
  DNSBOOT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  DNSBOOT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#endif

// Static lock-order declaration (clang checks it like lockdep does at
// runtime): this capability must be acquired after / before the named ones.
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  DNSBOOT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#endif
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  DNSBOOT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#endif

// Escape hatch for functions the analysis cannot model; every use needs a
// comment explaining why it is sound.
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  DNSBOOT_THREAD_ANNOTATION(no_thread_safety_analysis)
#endif
