// Text encodings used in DNS presentation format: hex (DS digests),
// base64 (DNSKEY public keys), and base32hex (NSEC3 owner names, RFC 4648 §7).
#pragma once

#include <string>

#include "base/bytes.hpp"
#include "base/result.hpp"

namespace dnsboot {

std::string hex_encode(BytesView data);
Result<Bytes> hex_decode(const std::string& text);

std::string base64_encode(BytesView data);
Result<Bytes> base64_decode(const std::string& text);

// Base32 with the "extended hex" alphabet and no padding, as used for NSEC3.
std::string base32hex_encode(BytesView data);
Result<Bytes> base32hex_decode(std::string_view text);

}  // namespace dnsboot
