// Bounds-checked big-endian byte readers/writers used by all wire codecs.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.hpp"

namespace dnsboot {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

// ByteReader: sequential big-endian reads over a borrowed buffer.
// All reads are bounds-checked and return Result; the reader never throws.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }
  BytesView whole_buffer() const { return data_; }

  // Reposition to an absolute offset (used to follow DNS compression
  // pointers). Fails when the offset is outside the buffer.
  Status seek(std::size_t offset);

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<Bytes> bytes(std::size_t n);
  Status skip(std::size_t n);

  // Peek at the byte at the cursor without consuming it.
  Result<std::uint8_t> peek_u8() const;

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

// ByteWriter: append-only big-endian writer over an owned buffer.
class ByteWriter {
 public:
  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  // Pre-size the buffer (hot encode paths know their rough message size).
  void reserve(std::size_t n) { buf_.reserve(n); }
  // Drop the contents but keep the capacity, for buffer reuse.
  void clear() { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void raw(BytesView bytes);
  void raw(std::string_view s);

  // Overwrite a previously written big-endian u16 at `offset` (used to
  // back-patch RDLENGTH and section counts).
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  Bytes buf_;
};

// Convenience conversions.
Bytes to_bytes(const std::string& s);
std::string to_string(BytesView b);

}  // namespace dnsboot
