// Small ASCII string helpers. DNS is ASCII-case-insensitive, so lowering is
// done with an explicit ASCII table rather than locale-dependent tolower.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dnsboot {

// Inline: called per octet on the name-comparison and canonicalization hot
// paths (an out-of-line call per character dominated survey profiles).
constexpr char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
std::string ascii_lower(std::string_view s);
constexpr bool ascii_iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Split on a single delimiter; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);
// Split on runs of whitespace; no empty fields.
std::vector<std::string> split_whitespace(std::string_view s);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string trim(std::string_view s);

// Thousands-separated integer formatting for report tables ("56 446 359",
// as typeset in the paper).
std::string format_count(std::uint64_t n);
// Fixed-precision percentage, e.g. format_percent(0.123456, 1) == "12.3".
std::string format_percent(double fraction, int decimals = 1);

}  // namespace dnsboot
