#include "base/bytes.hpp"

namespace dnsboot {

Status ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    return Error{"bytes.seek_out_of_range",
                 "seek to " + std::to_string(offset) + " in buffer of " +
                     std::to_string(data_.size())};
  }
  pos_ = offset;
  return Status::ok_status();
}

Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return Error{"wire.truncated", "u8 past end"};
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return Error{"wire.truncated", "u16 past end"};
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  if (remaining() < 4) return Error{"wire.truncated", "u32 past end"};
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<Bytes> ByteReader::bytes(std::size_t n) {
  if (remaining() < n) {
    return Error{"wire.truncated",
                 "need " + std::to_string(n) + " bytes, have " +
                     std::to_string(remaining())};
  }
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Status ByteReader::skip(std::size_t n) {
  if (remaining() < n) return Error{"wire.truncated", "skip past end"};
  pos_ += n;
  return Status::ok_status();
}

Result<std::uint8_t> ByteReader::peek_u8() const {
  if (remaining() < 1) return Error{"wire.truncated", "peek past end"};
  return data_[pos_];
}

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::raw(BytesView bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::raw(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  assert(offset + 2 <= buf_.size());
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
}

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string to_string(BytesView b) { return std::string(b.begin(), b.end()); }

}  // namespace dnsboot
