#include "base/encoding.hpp"

#include <array>

namespace dnsboot {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
constexpr char kBase32HexAlphabet[] = "0123456789abcdefghijklmnopqrstuv";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int base64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

int base32hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'v') return c - 'a' + 10;
  if (c >= 'A' && c <= 'V') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_encode(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Result<Bytes> hex_decode(const std::string& text) {
  if (text.size() % 2 != 0) {
    return Error{"encoding.hex", "odd-length hex string"};
  }
  Bytes out;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    int hi = hex_value(text[i]);
    int lo = hex_value(text[i + 1]);
    if (hi < 0 || lo < 0) {
      return Error{"encoding.hex", "invalid hex digit"};
    }
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

std::string base64_encode(BytesView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16 |
                      static_cast<std::uint32_t>(data[i + 1]) << 8 | data[i + 2];
    out.push_back(kBase64Alphabet[v >> 18]);
    out.push_back(kBase64Alphabet[(v >> 12) & 0x3f]);
    out.push_back(kBase64Alphabet[(v >> 6) & 0x3f]);
    out.push_back(kBase64Alphabet[v & 0x3f]);
    i += 3;
  }
  std::size_t rest = data.size() - i;
  if (rest == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kBase64Alphabet[v >> 18]);
    out.push_back(kBase64Alphabet[(v >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16 |
                      static_cast<std::uint32_t>(data[i + 1]) << 8;
    out.push_back(kBase64Alphabet[v >> 18]);
    out.push_back(kBase64Alphabet[(v >> 12) & 0x3f]);
    out.push_back(kBase64Alphabet[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

Result<Bytes> base64_decode(const std::string& text) {
  Bytes out;
  std::uint32_t acc = 0;
  int bits = 0;
  std::size_t pad = 0;
  for (char c : text) {
    if (c == '\n' || c == '\r' || c == ' ' || c == '\t') continue;
    if (c == '=') {
      ++pad;
      continue;
    }
    if (pad > 0) return Error{"encoding.base64", "data after padding"};
    int v = base64_value(c);
    if (v < 0) return Error{"encoding.base64", "invalid base64 character"};
    acc = acc << 6 | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  if (pad > 2) return Error{"encoding.base64", "too much padding"};
  return out;
}

std::string base32hex_encode(BytesView data) {
  std::string out;
  std::uint32_t acc = 0;
  int bits = 0;
  for (std::uint8_t b : data) {
    acc = acc << 8 | b;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(kBase32HexAlphabet[(acc >> bits) & 0x1f]);
    }
  }
  if (bits > 0) {
    out.push_back(kBase32HexAlphabet[(acc << (5 - bits)) & 0x1f]);
  }
  return out;
}

Result<Bytes> base32hex_decode(std::string_view text) {
  Bytes out;
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    int v = base32hex_value(c);
    if (v < 0) return Error{"encoding.base32hex", "invalid base32hex character"};
    acc = acc << 5 | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  return out;
}

}  // namespace dnsboot
