// base::Mutex / base::MutexLock — the project's annotated mutex
// (DESIGN.md §12). A thin std::mutex wrapper that carries the clang
// capability attributes (so `-Wthread-safety` can check GUARDED_BY /
// REQUIRES contracts — libstdc++'s raw std::mutex carries none) and, under
// DNSBOOT_VERIFY, feeds every acquisition into the lockdep lock-order graph
// (base/verify.hpp).
//
// House rule, enforced by dnsboot-audit A003: classes hold base::Mutex
// members, never raw std::mutex, and every member the mutex protects is
// annotated GUARDED_BY(that mutex).
#pragma once

#include <mutex>

#include "base/thread_annotations.hpp"
#if defined(DNSBOOT_VERIFY)
#include "base/verify.hpp"
#endif

namespace dnsboot::base {

class CAPABILITY("mutex") Mutex {
 public:
  // `name` labels lockdep reports; use the owning class ("Tracer::mutex_").
  explicit Mutex(const char* name = "mutex") : name_(name) {}
  ~Mutex() {
#if defined(DNSBOOT_VERIFY)
    verify::lock_destroyed(this);
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if defined(DNSBOOT_VERIFY)
    verify::lock_acquiring(this, name_);
#endif
    mu_.lock();
#if defined(DNSBOOT_VERIFY)
    verify::lock_acquired(this);
#endif
  }

  void unlock() RELEASE() {
#if defined(DNSBOOT_VERIFY)
    verify::lock_released(this);
#endif
    mu_.unlock();
  }

  const char* name() const { return name_; }

 private:
  std::mutex mu_;  // audit-allow: A003 the one blessed raw mutex: base::Mutex wraps it
  const char* name_;
};

// RAII holder, the only way call sites take a base::Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace dnsboot::base
