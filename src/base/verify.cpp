#include "base/verify.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "base/thread_annotations.hpp"

namespace dnsboot::verify {

namespace {

std::atomic<std::uint64_t> g_next_thread_tag{1};
thread_local std::uint64_t t_thread_tag = 0;

void default_failure_handler(const char* check, const std::string& detail) {
  std::fprintf(stderr, "dnsboot verify: %s: %s\n", check, detail.c_str());
  std::abort();
}

std::atomic<FailureHandler> g_handler{&default_failure_handler};

// The lock-order graph. Nodes are live base::Mutex instances (by address),
// edges are "held while acquiring" pairs. The registry's own mutex is a raw
// std::mutex on purpose: instrumenting it with base::Mutex would recurse
// into these very hooks.
struct LockDep {
  std::mutex mu;  // audit-allow: A003 the lockdep registry cannot instrument itself
  std::unordered_map<const void*, std::string> names;          // guarded by mu
  // audit-allow: A002 verifier-internal edge set, never serialized
  std::unordered_map<const void*, std::set<const void*>> after;  // guarded by mu
  std::size_t edges = 0;                                       // guarded by mu
};

LockDep& lockdep() {
  static LockDep* graph = new LockDep;  // leaked: outlives static dtor order
  return *graph;
}

// Locks this thread currently holds, oldest first.
thread_local std::vector<const void*> t_held;

// Is `to` reachable from `from` in the current edge set? (Called with
// LockDep::mu held; the graph is small — DFS is plenty.)
bool reachable(const LockDep& graph, const void* from, const void* to) {
  if (from == to) return true;
  std::vector<const void*> stack{from};
  // audit-allow: A002 DFS visited set; cycle existence is order-independent
  std::set<const void*> seen;
  while (!stack.empty()) {
    const void* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    auto it = graph.after.find(node);
    if (it == graph.after.end()) continue;
    for (const void* next : it->second) {
      if (next == to) return true;
      stack.push_back(next);
    }
  }
  return false;
}

std::string lock_label(const LockDep& graph, const void* lock) {
  auto it = graph.names.find(lock);
  std::string label = it != graph.names.end() ? it->second : "mutex";
  char address[32];
  std::snprintf(address, sizeof(address), "@%p", lock);
  return label + address;
}

}  // namespace

std::uint64_t thread_tag() {
  if (t_thread_tag == 0) {
    t_thread_tag = g_next_thread_tag.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_tag;
}

FailureHandler set_failure_handler(FailureHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler
                                               : &default_failure_handler);
}

void fail(const char* check, const std::string& detail) {
  g_handler.load()(check, detail);
}

void lock_acquiring(const void* lock, const char* name) {
  LockDep& graph = lockdep();
  std::lock_guard<std::mutex> guard(graph.mu);
  graph.names[lock] = name;
  for (const void* held : t_held) {
    if (held == lock) {
      fail("lockdep-recursive",
           "re-acquiring " + lock_label(graph, lock) +
               " already held by this thread");
      return;
    }
    // About to add edge held -> lock. A path lock ->* held means the
    // reverse order has been observed before: a potential deadlock.
    if (reachable(graph, lock, held)) {
      fail("lockdep-cycle",
           "acquiring " + lock_label(graph, lock) + " while holding " +
               lock_label(graph, held) +
               " inverts a previously observed lock order");
      return;  // do not record the inverted edge; keep the graph acyclic
    }
    if (graph.after[held].insert(lock).second) ++graph.edges;
  }
}

void lock_acquired(const void* lock) { t_held.push_back(lock); }

void lock_released(const void* lock) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == lock) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void lock_destroyed(const void* lock) {
  LockDep& graph = lockdep();
  std::lock_guard<std::mutex> guard(graph.mu);
  graph.names.erase(lock);
  auto it = graph.after.find(lock);
  if (it != graph.after.end()) {
    graph.edges -= it->second.size();
    graph.after.erase(it);
  }
  for (auto& [from, to] : graph.after) {
    (void)from;
    graph.edges -= to.erase(lock);
  }
}

std::size_t lock_order_edges() {
  LockDep& graph = lockdep();
  std::lock_guard<std::mutex> guard(graph.mu);
  return graph.edges;
}

void SingleWriter::report_cross_thread(const void* site, std::uint64_t owner,
                                       std::uint64_t me) {
  char detail[128];
  std::snprintf(detail, sizeof(detail),
                "counter %p first written by thread %llu, now written by "
                "thread %llu without an ownership handoff",
                site, static_cast<unsigned long long>(owner),
                static_cast<unsigned long long>(me));
  fail("counter-single-writer", detail);
}

}  // namespace dnsboot::verify
