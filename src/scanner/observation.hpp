// Scan observation model — everything the scanner records about a zone, kept
// deliberately raw (the paper stored whole DNS messages; we store decoded
// RRsets with their signatures) so that all interpretation happens offline in
// the analysis library.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dnssec/validator.hpp"
#include "resolver/resolver.hpp"

namespace dnsboot::scanner {

// Why a probe failed — structured provenance, so the analysis can separate
// "operator misconfigured" (permanent rcodes like FORMERR) from "scan could
// not observe" (transient faults a later pass may recover from).
enum class ProbeFailure {
  kNone,            // usable answer (includes NOERROR-empty and NXDOMAIN)
  kTimeout,         // every attempt timed out
  kFormErr,
  kServFail,
  kRefused,
  kNotImp,
  kTruncationLoop,  // TCP fallback answer was still truncated
  kCircuitOpen,     // engine failed fast: server circuit breaker open
  kServfailCached,  // answered from the RFC 9520 negative cache
  kOverload,        // engine out of query ids
  kOther,
};

std::string to_string(ProbeFailure failure);

// Failures a later scan pass may plausibly recover from. SERVFAIL/REFUSED
// count as transient because the fault model produces them from flapping and
// rate-limited servers; persistent ones simply fail again on the retry.
bool is_transient(ProbeFailure failure);

// Same question for a zone/signal resolution-failure string: true for
// scan-side failures (engine errors, unreachable delegations), false for
// permanent findings (NXDOMAIN, undelegated, over-long signaling names).
bool is_transient_failure(const std::string& failure);

// Result of one (endpoint, qname, qtype) probe.
struct RRsetProbe {
  dns::Name ns;               // NS hostname the endpoint belongs to
  net::IpAddress endpoint;    // address queried
  dns::Name qname;
  dns::RRType qtype = dns::RRType::kA;

  enum class Outcome {
    kAnswer,    // NOERROR with records of qtype at qname
    kNoData,    // NOERROR, empty answer
    kNxDomain,
    kError,     // FORMERR/SERVFAIL/REFUSED/NOTIMP (see rcode)
    kTimeout,
  };
  Outcome outcome = Outcome::kTimeout;
  dns::Rcode rcode = dns::Rcode::kNoError;
  ProbeFailure failure = ProbeFailure::kNone;
  // The engine's anti-spoofing defenses flagged this endpoint as under
  // active attack when the probe completed (forgery abort or repeated
  // wrong-port rejections). The answer itself was still authenticated by
  // the usual ID/port/tuple checks — this is provenance, not a verdict.
  bool under_attack = false;
  dnssec::SignedRRset rrset;  // filled for kAnswer
};

std::string to_string(RRsetProbe::Outcome outcome);

// Observation of one RFC 9615 signaling name for one (zone, NS) pair:
// _dsboot.<child>._signal.<ns>.
struct SignalObservation {
  dns::Name ns;           // the child-zone NS this signal belongs to
  dns::Name signal_name;  // full signaling name
  dns::Name signaling_zone;  // apex of the zone serving the signaling name

  bool resolved = false;  // signaling zone delegation found + NS resolved
  std::string failure;

  // The signaling zone's chain material.
  dnssec::SignedRRset parent_ds;      // DS for signaling zone at its parent
  dns::Name parent;                   // parent of the signaling zone (a TLD)
  std::vector<RRsetProbe> dnskey_probes;  // apex DNSKEY (one endpoint)

  // CDS/CDNSKEY at the signaling name, one probe per signaling-zone endpoint.
  std::vector<RRsetProbe> cds_probes;
  std::vector<RRsetProbe> cdnskey_probes;

  // Zone-cut detection (RFC 9615 §4.1: the signaling name must not cross an
  // additional cut). Names between the apex and the signaling name that
  // answered an NS query authoritatively.
  std::vector<dns::Name> apparent_cuts;
  bool cut_check_performed = false;
};

// Everything observed about one scanned zone.
struct ZoneObservation {
  dns::Name zone;
  dns::Name tld;

  bool resolved = false;
  std::string failure;  // when !resolved

  // Scan-side quality of this observation. Degraded zones are emitted and
  // analyzed anyway; the failure provenance on each probe says what is
  // missing and why.
  enum class Completeness {
    kComplete,  // every probe produced a usable answer
    kDegraded,  // resolved, but some probes failed
    kFailed,    // delegation could not be resolved at all
  };
  Completeness completeness = Completeness::kFailed;
  int scan_attempt = 1;                // which pass produced this (1-based)
  std::size_t failed_probes = 0;       // probes with failure != kNone
  std::size_t transient_failures = 0;  // subset a requeue may recover
  std::size_t probes_under_attack = 0; // probes flagged under_attack

  // Parent-side view (TLD referral).
  std::vector<dns::Name> parent_ns;
  dnssec::SignedRRset parent_ds;

  // Endpoints actually queried (after pool sampling), plus the full set size
  // before sampling — input for the pool-sampling ablation (App. D).
  std::vector<resolver::NsEndpoint> endpoints;
  std::size_t endpoints_before_sampling = 0;
  bool pool_sampled = false;

  // Per-endpoint probes for SOA / NS / DNSKEY / CDS / CDNSKEY.
  std::vector<RRsetProbe> probes;

  // Signal-zone observations, one per distinct NS name.
  std::vector<SignalObservation> signals;

  // Convenience accessors used by the analysis.
  std::vector<const RRsetProbe*> probes_of(dns::RRType qtype) const;
};

std::string to_string(ZoneObservation::Completeness completeness);

// Snapshot of the shared infrastructure the chains hang from; captured once
// per scan so validation is reproducible offline.
struct InfrastructureSnapshot {
  dnssec::SignedRRset root_dnskey;
  struct TldInfo {
    dnssec::SignedRRset ds;      // (tld, DS) served by the root
    dnssec::SignedRRset dnskey;  // (tld, DNSKEY) served by the TLD
  };
  std::map<std::string, TldInfo> tlds;  // key: canonical TLD text
};

}  // namespace dnsboot::scanner
