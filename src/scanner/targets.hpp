// Target acquisition — the paper's §3 domain-list inputs:
//   (ii)  gTLD zone files from CZDS        -> generator-provided lists
//   (iii) ccTLD zone files via AXFR        -> TargetAcquirer::axfr_targets
//   (v)   CT-log-derived ccTLD samples     -> ctlog_sample (43-80 % coverage,
//                                             §3.1 limitations)
#pragma once

#include <functional>

#include "resolver/resolver.hpp"

namespace dnsboot::scanner {

struct TargetAcquisition {
  dns::Name tld;
  std::vector<dns::Name> names;  // registrable domains discovered
  bool complete = false;         // a full zone transfer succeeded
  std::string failure;
  std::size_t transfer_messages = 0;
  std::size_t transfer_records = 0;
};

class TargetAcquirer {
 public:
  using Callback = std::function<void(TargetAcquisition)>;

  TargetAcquirer(net::Transport& network, net::IpAddress local_address,
                 resolver::DelegationResolver& resolver);
  ~TargetAcquirer();

  // Transfer the TLD zone via AXFR (resolving the TLD's servers first) and
  // extract the delegated registrable domains. Registries that do not allow
  // AXFR yield failure="refused" — the paper could not transfer .com either.
  void axfr_targets(const dns::Name& tld, Callback callback);

  // A Certificate-Transparency-derived sample: the paper could not transfer
  // some large ccTLDs and fell back to CT-log names covering 43-80 % of each
  // zone (§3.1). Deterministic per (seed, name).
  static std::vector<dns::Name> ctlog_sample(
      const std::vector<dns::Name>& full_zone, double coverage,
      std::uint64_t seed);

 private:
  struct Transfer;

  void start_transfer(const dns::Name& tld, net::IpAddress server,
                      Callback callback);
  void handle_datagram(const net::Datagram& dgram);
  void finalize(std::uint16_t id);

  net::Transport& network_;
  net::IpAddress local_address_;
  resolver::DelegationResolver& resolver_;
  std::uint16_t next_id_ = 1;
  std::map<std::uint16_t, std::shared_ptr<Transfer>> transfers_;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace dnsboot::scanner
