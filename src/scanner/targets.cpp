#include "scanner/targets.hpp"

#include <set>

#include "base/rng.hpp"

namespace dnsboot::scanner {

struct TargetAcquirer::Transfer {
  dns::Name tld;
  Callback callback;
  std::set<std::string> seen;           // canonical child names
  std::vector<dns::Name> names;
  std::size_t soa_count = 0;
  std::size_t messages = 0;
  std::size_t records = 0;
  std::uint64_t settle_timer = 0;
  std::uint64_t deadline_timer = 0;
  bool done = false;
  bool failure_on_finalize = false;
};

TargetAcquirer::TargetAcquirer(net::Transport& network,
                               net::IpAddress local_address,
                               resolver::DelegationResolver& resolver)
    : network_(network),
      local_address_(local_address),
      resolver_(resolver) {
  network_.bind(local_address_,
                [this](const net::Datagram& dgram) { handle_datagram(dgram); });
}

TargetAcquirer::~TargetAcquirer() { network_.unbind(local_address_); }

void TargetAcquirer::axfr_targets(const dns::Name& tld, Callback callback) {
  std::weak_ptr<int> alive = alive_;
  resolver_.resolve_zone(
      tld, [this, alive, tld, callback = std::move(callback)](
               Result<resolver::Delegation> result) mutable {
        if (alive.expired()) return;
        if (!result.ok() || result->endpoints.empty()) {
          TargetAcquisition out;
          out.tld = tld;
          out.failure = result.ok() ? "no reachable nameserver"
                                    : result.error().to_string();
          callback(std::move(out));
          return;
        }
        start_transfer(tld, result->endpoints[0].address,
                       std::move(callback));
      });
}

void TargetAcquirer::start_transfer(const dns::Name& tld,
                                    net::IpAddress server,
                                    Callback callback) {
  std::uint16_t id = next_id_++;
  auto transfer = std::make_shared<Transfer>();
  transfer->tld = tld;
  transfer->callback = std::move(callback);
  transfers_[id] = transfer;

  dns::Message query = dns::Message::make_query(id, tld, dns::RRType::kAXFR,
                                                /*dnssec_ok=*/false);
  // Zone transfers run over TCP (RFC 5936 §4.2).
  network_.send(local_address_, server, query.encode(), /*tcp=*/true);

  // Overall deadline: a transfer that never completes must still call back.
  std::weak_ptr<int> alive = alive_;
  transfer->deadline_timer =
      network_.schedule(30 * net::kSecond, [this, alive, id] {
        if (alive.expired()) return;
        auto it = transfers_.find(id);
        if (it == transfers_.end() || it->second->done) return;
        it->second->failure_on_finalize = it->second->soa_count < 2;
        finalize(id);
      });
}

void TargetAcquirer::handle_datagram(const net::Datagram& dgram) {
  auto message = dns::Message::decode(dgram.payload);
  if (!message.ok()) return;
  auto it = transfers_.find(message->header.id);
  if (it == transfers_.end() || it->second->done) return;
  Transfer& transfer = *it->second;
  const std::uint16_t id = message->header.id;

  if (message->header.rcode != dns::Rcode::kNoError) {
    transfer.failure_on_finalize = true;
    finalize(id);
    return;
  }
  ++transfer.messages;
  for (const auto& rr : message->answers) {
    ++transfer.records;
    if (rr.type == dns::RRType::kSOA && rr.name == transfer.tld) {
      ++transfer.soa_count;
      continue;
    }
    // Registrable domains are the NS owners exactly one label below the TLD.
    if (rr.type == dns::RRType::kNS &&
        rr.name.label_count() == transfer.tld.label_count() + 1 &&
        rr.name.is_strictly_under(transfer.tld)) {
      if (transfer.seen.insert(rr.name.canonical_text()).second) {
        transfer.names.push_back(rr.name);
      }
    }
  }
  // The closing SOA marks the end of the stream — but the simulated network
  // can reorder datagrams, so wait a short settle window for stragglers.
  if (transfer.soa_count >= 2 && transfer.settle_timer == 0) {
    std::weak_ptr<int> alive = alive_;
    transfer.settle_timer =
        network_.schedule(200 * net::kMillisecond, [this, alive, id] {
          if (alive.expired()) return;
          finalize(id);
        });
  }
}

void TargetAcquirer::finalize(std::uint16_t id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end() || it->second->done) return;
  std::shared_ptr<Transfer> transfer = it->second;
  transfer->done = true;
  network_.cancel(transfer->deadline_timer);
  transfers_.erase(it);

  TargetAcquisition out;
  out.tld = transfer->tld;
  out.names = std::move(transfer->names);
  out.transfer_messages = transfer->messages;
  out.transfer_records = transfer->records;
  out.complete = transfer->soa_count >= 2 && !transfer->failure_on_finalize;
  if (!out.complete) {
    out.failure = transfer->messages == 0
                      ? "refused"
                      : "transfer incomplete";
    out.names.clear();
  }
  transfer->callback(std::move(out));
}

std::vector<dns::Name> TargetAcquirer::ctlog_sample(
    const std::vector<dns::Name>& full_zone, double coverage,
    std::uint64_t seed) {
  std::vector<dns::Name> out;
  out.reserve(static_cast<std::size_t>(
      static_cast<double>(full_zone.size()) * coverage));
  for (const auto& name : full_zone) {
    // Deterministic per (name, seed): the same domains appear in CT logs on
    // every "observation" — it is the unlucky tail that never shows up
    // (§3.1). SplitMix diffuses the seed into all output bits.
    std::uint64_t h = SplitMix64(fnv1a(name.canonical_text()) ^ seed).next();
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < coverage) out.push_back(name);
  }
  return out;
}

}  // namespace dnsboot::scanner
