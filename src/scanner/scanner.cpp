#include "scanner/scanner.hpp"

#include <algorithm>
#include <set>

namespace dnsboot::scanner {

std::string to_string(RRsetProbe::Outcome outcome) {
  switch (outcome) {
    case RRsetProbe::Outcome::kAnswer: return "answer";
    case RRsetProbe::Outcome::kNoData: return "nodata";
    case RRsetProbe::Outcome::kNxDomain: return "nxdomain";
    case RRsetProbe::Outcome::kError: return "error";
    case RRsetProbe::Outcome::kTimeout: return "timeout";
  }
  return "?";
}

std::string to_string(ProbeFailure failure) {
  switch (failure) {
    case ProbeFailure::kNone: return "none";
    case ProbeFailure::kTimeout: return "timeout";
    case ProbeFailure::kFormErr: return "formerr";
    case ProbeFailure::kServFail: return "servfail";
    case ProbeFailure::kRefused: return "refused";
    case ProbeFailure::kNotImp: return "notimp";
    case ProbeFailure::kTruncationLoop: return "truncation-loop";
    case ProbeFailure::kCircuitOpen: return "circuit-open";
    case ProbeFailure::kServfailCached: return "servfail-cached";
    case ProbeFailure::kOverload: return "overload";
    case ProbeFailure::kOther: return "other";
  }
  return "?";
}

bool is_transient(ProbeFailure failure) {
  switch (failure) {
    case ProbeFailure::kTimeout:
    case ProbeFailure::kServFail:
    case ProbeFailure::kRefused:
    case ProbeFailure::kTruncationLoop:
    case ProbeFailure::kCircuitOpen:
    case ProbeFailure::kServfailCached:
    case ProbeFailure::kOverload:
      return true;
    case ProbeFailure::kNone:
    case ProbeFailure::kFormErr:
    case ProbeFailure::kNotImp:
    case ProbeFailure::kOther:
      return false;
  }
  return false;
}

std::string to_string(ZoneObservation::Completeness completeness) {
  switch (completeness) {
    case ZoneObservation::Completeness::kComplete: return "complete";
    case ZoneObservation::Completeness::kDegraded: return "degraded";
    case ZoneObservation::Completeness::kFailed: return "failed";
  }
  return "?";
}

// Resolution-failure strings that a rescan may plausibly recover from:
// engine-level errors and delegation dead-ends that chaos faults produce.
// Permanent findings (NXDOMAIN, undelegated, names exceeding the 255-octet
// limit) are not retried.
bool is_transient_failure(const std::string& failure) {
  return failure.rfind("query.", 0) == 0 ||
         failure.rfind("resolve.unreachable", 0) == 0 ||
         failure.rfind("resolve.glueless_dead_end", 0) == 0 ||
         failure == "no nameserver address resolvable" ||
         failure == "no signaling-zone nameserver resolvable";
}

namespace {

int completeness_rank(ZoneObservation::Completeness completeness) {
  switch (completeness) {
    case ZoneObservation::Completeness::kComplete: return 2;
    case ZoneObservation::Completeness::kDegraded: return 1;
    case ZoneObservation::Completeness::kFailed: return 0;
  }
  return 0;
}

// Strict ordering: is `a` a better observation of the same zone than `b`?
bool better_observation(const ZoneObservation& a, const ZoneObservation& b) {
  int rank_a = completeness_rank(a.completeness);
  int rank_b = completeness_rank(b.completeness);
  if (rank_a != rank_b) return rank_a > rank_b;
  return a.failed_probes < b.failed_probes;
}

}  // namespace

std::vector<const RRsetProbe*> ZoneObservation::probes_of(
    dns::RRType qtype) const {
  std::vector<const RRsetProbe*> out;
  for (const auto& probe : probes) {
    if (probe.qtype == qtype) out.push_back(&probe);
  }
  return out;
}

Result<dns::Name> signaling_name(const dns::Name& child, const dns::Name& ns) {
  std::vector<std::string> labels;
  labels.reserve(child.label_count() + ns.label_count() + 2);
  labels.push_back("_dsboot");
  for (std::string_view l : child.labels()) labels.emplace_back(l);
  labels.push_back("_signal");
  for (std::string_view l : ns.labels()) labels.emplace_back(l);
  return dns::Name::from_labels(std::move(labels));
}

dns::Name registrable_domain_of(const dns::Name& host) {
  if (host.label_count() <= 2) return host;
  return host.suffix(2);
}

// --- task types -----------------------------------------------------------------

struct Scanner::SignalTask {
  SignalObservation obs;
  std::size_t outstanding = 0;
};

struct Scanner::ZoneTask : std::enable_shared_from_this<Scanner::ZoneTask> {
  ZoneObservation obs;
  std::size_t outstanding = 0;
  std::size_t signals_outstanding = 0;
  net::SimTime started_at = 0;
  bool traced = false;  // sampled for a "zone" trace span
};

// --- scanner --------------------------------------------------------------------

Scanner::Scanner(net::Transport& network, resolver::QueryEngine& engine,
                 resolver::DelegationResolver& resolver,
                 ScannerOptions options)
    : network_(network),
      engine_(engine),
      resolver_(resolver),
      options_(options),
      rng_(options.seed) {
  if (options_.infrastructure != nullptr) {
    infra_ = *options_.infrastructure;
    root_capture_started_ = true;
    for (const auto& [key, info] : infra_.tlds) {
      tld_capture_started_.emplace(key, true);
    }
  }
}

void Scanner::scan(std::vector<dns::Name> zones, ZoneCallback on_zone) {
  on_zone_ = std::move(on_zone);
  for (auto& zone : zones) queue_.emplace_back(std::move(zone), 1);
  capture_root_dnskey();
  start_next_zones();
}

void Scanner::run() { network_.run(); }

void Scanner::start_next_zones() {
  while (active_zones_ < options_.max_concurrent_zones && !queue_.empty()) {
    auto [zone, attempt] = std::move(queue_.front());
    queue_.pop_front();
    ++active_zones_;
    start_zone(zone, attempt);
  }
}

void Scanner::capture_root_dnskey() {
  if (root_capture_started_) return;
  root_capture_started_ = true;
  if (resolver_.hints().servers.empty()) return;
  dns::Name root = dns::Name::root();
  std::weak_ptr<int> alive = alive_;
  engine_.query(resolver_.hints().servers[0], root, dns::RRType::kDNSKEY,
                [this, alive, root](Result<dns::Message> response) {
                  if (alive.expired() || !response.ok()) return;
                  RRsetProbe probe = make_probe_result(
                      root, resolver_.hints().servers[0], root,
                      dns::RRType::kDNSKEY, response);
                  infra_.root_dnskey = probe.rrset;
                });
}

void Scanner::capture_tld(const dns::Name& tld) {
  const std::string& key = tld.canonical_text();
  if (!tld_capture_started_.emplace(key, true).second) return;
  std::weak_ptr<int> alive = alive_;
  resolver_.resolve_zone(
      tld, [this, alive, tld, key](Result<resolver::Delegation> result) {
        if (alive.expired()) return;
        if (!result.ok() || result->endpoints.empty()) return;
        infra_.tlds[key].ds = result->ds;
        net::IpAddress server = result->endpoints[0].address;
        engine_.query(server, tld, dns::RRType::kDNSKEY,
                      [this, alive, tld, key,
                       server](Result<dns::Message> response) {
                        if (alive.expired() || !response.ok()) return;
                        RRsetProbe probe =
                            make_probe_result(tld, server, tld,
                                              dns::RRType::kDNSKEY, response);
                        infra_.tlds[key].dnskey = probe.rrset;
                      });
      });
}

RRsetProbe Scanner::make_probe_result(const dns::Name& ns,
                                      const net::IpAddress& endpoint,
                                      const dns::Name& qname,
                                      dns::RRType qtype,
                                      const Result<dns::Message>& response) {
  RRsetProbe probe;
  probe.ns = ns;
  probe.endpoint = endpoint;
  probe.qname = qname;
  probe.qtype = qtype;
  // Thread the engine's under-attack verdict for this endpoint into the
  // probe's provenance (it ends up in ScanQuality as `under_attack`).
  probe.under_attack = engine_.under_attack(endpoint);
  if (!response.ok()) {
    // Engine-level failure: record the structured provenance so the
    // analysis can tell "scan could not observe" from operator behavior.
    const std::string& code = response.error().code;
    if (code == "query.circuit_open") {
      probe.outcome = RRsetProbe::Outcome::kError;
      probe.failure = ProbeFailure::kCircuitOpen;
    } else if (code == "query.servfail_cached") {
      probe.outcome = RRsetProbe::Outcome::kError;
      probe.rcode = dns::Rcode::kServFail;
      probe.failure = ProbeFailure::kServfailCached;
    } else if (code == "query.truncation_loop") {
      probe.outcome = RRsetProbe::Outcome::kError;
      probe.failure = ProbeFailure::kTruncationLoop;
    } else if (code == "query.overload") {
      probe.outcome = RRsetProbe::Outcome::kError;
      probe.failure = ProbeFailure::kOverload;
    } else {
      probe.outcome = RRsetProbe::Outcome::kTimeout;
      probe.failure = ProbeFailure::kTimeout;
    }
    return probe;
  }
  const dns::Message& message = response.value();
  probe.rcode = message.header.rcode;
  switch (message.header.rcode) {
    case dns::Rcode::kNoError: {
      auto answers = message.answers_of(qname, qtype);
      if (answers.empty()) {
        probe.outcome = RRsetProbe::Outcome::kNoData;
        break;
      }
      probe.outcome = RRsetProbe::Outcome::kAnswer;
      probe.rrset.rrset.name = qname;
      probe.rrset.rrset.type = qtype;
      probe.rrset.rrset.klass = answers[0].klass;
      probe.rrset.rrset.ttl = answers[0].ttl;
      for (const auto& rr : answers) {
        probe.rrset.rrset.rdatas.push_back(rr.rdata);
      }
      for (const auto& rr : message.answers) {
        if (rr.type == dns::RRType::kRRSIG && rr.name == qname) {
          const auto& sig = std::get<dns::RrsigRdata>(rr.rdata);
          if (sig.type_covered == qtype) probe.rrset.signatures.push_back(sig);
        }
      }
      break;
    }
    case dns::Rcode::kNxDomain:
      probe.outcome = RRsetProbe::Outcome::kNxDomain;
      break;
    default:
      probe.outcome = RRsetProbe::Outcome::kError;
      switch (message.header.rcode) {
        case dns::Rcode::kFormErr:
          probe.failure = ProbeFailure::kFormErr;
          break;
        case dns::Rcode::kServFail:
          probe.failure = ProbeFailure::kServFail;
          break;
        case dns::Rcode::kRefused:
          probe.failure = ProbeFailure::kRefused;
          break;
        case dns::Rcode::kNotImp:
          probe.failure = ProbeFailure::kNotImp;
          break;
        default:
          probe.failure = ProbeFailure::kOther;
          break;
      }
      break;
  }
  return probe;
}

void Scanner::apply_pool_sampling(ZoneObservation& obs) {
  obs.endpoints_before_sampling = obs.endpoints.size();
  if (!options_.enable_pool_sampling) return;
  if (obs.endpoints.size() < options_.pool_threshold) return;
  Rng zone_rng = rng_.fork(obs.zone.canonical_text());
  if (zone_rng.chance(options_.pool_full_scan_fraction)) {
    ++stats_.pool_zones_full;
    return;
  }
  ++stats_.pool_zones_sampled;
  obs.pool_sampled = true;
  // Keep one IPv4 and one IPv6 endpoint (paper §3).
  std::vector<resolver::NsEndpoint> sampled;
  for (const auto& endpoint : obs.endpoints) {
    if (!endpoint.address.is_v6()) {
      sampled.push_back(endpoint);
      break;
    }
  }
  for (const auto& endpoint : obs.endpoints) {
    if (endpoint.address.is_v6()) {
      sampled.push_back(endpoint);
      break;
    }
  }
  if (!sampled.empty()) obs.endpoints = std::move(sampled);
}

void Scanner::start_zone(const dns::Name& zone, int attempt) {
  auto task = std::make_shared<ZoneTask>();
  task->obs.zone = zone;
  task->obs.scan_attempt = attempt;
  task->obs.tld = zone.parent();
  task->started_at = network_.now();
  task->traced = options_.tracer != nullptr && options_.tracer->sample();
  capture_tld(task->obs.tld);

  std::weak_ptr<int> alive = alive_;
  resolver_.resolve_zone(
      zone, [this, alive, task](Result<resolver::Delegation> result) {
        if (alive.expired()) return;
        if (!result.ok()) {
          task->obs.resolved = false;
          task->obs.failure = result.error().to_string();
          zone_finished(task);
          return;
        }
        resolver::Delegation delegation = std::move(result).take();
        task->obs.resolved = !delegation.endpoints.empty();
        if (!task->obs.resolved) {
          task->obs.failure = "no nameserver address resolvable";
        }
        task->obs.parent_ns = std::move(delegation.ns_names);
        task->obs.parent_ds = std::move(delegation.ds);
        task->obs.endpoints = std::move(delegation.endpoints);
        apply_pool_sampling(task->obs);
        if (!task->obs.resolved) {
          zone_finished(task);
          return;
        }
        probe_endpoints(task);
      });
}

void Scanner::probe_endpoints(std::shared_ptr<ZoneTask> task) {
  std::vector<dns::RRType> probe_types = {
      dns::RRType::kSOA, dns::RRType::kNS, dns::RRType::kDNSKEY,
      dns::RRType::kCDS, dns::RRType::kCDNSKEY};
  if (options_.scan_csync) probe_types.push_back(dns::RRType::kCSYNC);
  task->outstanding = task->obs.endpoints.size() * probe_types.size();
  const dns::Name zone = task->obs.zone;
  std::weak_ptr<int> alive = alive_;
  for (const auto& endpoint : task->obs.endpoints) {
    for (dns::RRType qtype : probe_types) {
      engine_.query(endpoint.address, zone, qtype,
                    [this, alive, task, endpoint, zone,
                     qtype](Result<dns::Message> response) {
                      if (alive.expired()) return;
                      task->obs.probes.push_back(make_probe_result(
                          endpoint.ns, endpoint.address, zone, qtype,
                          response));
                      if (--task->outstanding == 0) {
                        start_signal_probes(task);
                      }
                    });
    }
  }
}

void Scanner::start_signal_probes(std::shared_ptr<ZoneTask> task) {
  if (!options_.scan_signal_zones) {
    zone_finished(task);
    return;
  }
  // Distinct NS names: union of the parent NS set and every child-apex NS
  // answer (the Cloudflare NS-mismatch cases of §4.4 make these differ).
  std::set<std::string> seen;
  std::vector<dns::Name> ns_names;
  auto add = [&](const dns::Name& ns) {
    if (seen.insert(ns.canonical_text()).second) ns_names.push_back(ns);
  };
  for (const auto& ns : task->obs.parent_ns) add(ns);
  for (const auto* probe : task->obs.probes_of(dns::RRType::kNS)) {
    if (probe->outcome != RRsetProbe::Outcome::kAnswer) continue;
    for (const auto& rd : probe->rrset.rrset.rdatas) {
      add(std::get<dns::NsRdata>(rd).nsdname);
    }
  }
  if (ns_names.empty()) {
    zone_finished(task);
    return;
  }
  task->signals_outstanding = ns_names.size();
  for (const auto& ns : ns_names) {
    auto signal = std::make_shared<SignalTask>();
    signal->obs.ns = ns;
    auto name = signaling_name(task->obs.zone, ns);
    if (!name.ok()) {
      signal->obs.failure = name.error().to_string();
      task->obs.signals.push_back(std::move(signal->obs));
      if (--task->signals_outstanding == 0) zone_finished(task);
      continue;
    }
    signal->obs.signal_name = std::move(name).take();
    ++stats_.signal_probes;
    run_signal_task(task, signal);
  }
}

void Scanner::run_signal_task(std::shared_ptr<ZoneTask> task,
                              std::shared_ptr<SignalTask> signal) {
  const dns::Name operator_zone = registrable_domain_of(signal->obs.ns);
  signal->obs.signaling_zone = operator_zone;
  capture_tld(operator_zone.parent());

  // Cached operator-zone delegation (shared across all zones on the operator).
  // The key is the Name's interned canonical text — no re-stringify.
  const std::string& key = operator_zone.canonical_text();
  auto finish_with_delegation =
      [this, task, signal](const Result<resolver::Delegation>& result) {
        if (!result.ok() || result->endpoints.empty()) {
          signal->obs.resolved = false;
          signal->obs.failure =
              result.ok() ? "no signaling-zone nameserver resolvable"
                          : result.error().to_string();
          task->obs.signals.push_back(std::move(signal->obs));
          if (--task->signals_outstanding == 0) zone_finished(task);
          return;
        }
        const resolver::Delegation& delegation = result.value();
        signal->obs.resolved = true;
        signal->obs.parent = delegation.parent;
        signal->obs.parent_ds = delegation.ds;

        // Sample endpoints like the main scan (pools answer identically).
        std::vector<resolver::NsEndpoint> endpoints = delegation.endpoints;
        if (options_.enable_pool_sampling &&
            endpoints.size() >= options_.pool_threshold) {
          std::vector<resolver::NsEndpoint> sampled;
          std::set<std::string> names_seen;
          for (const auto& endpoint : endpoints) {
            if (names_seen.insert(endpoint.ns.canonical_text()).second) {
              sampled.push_back(endpoint);
            }
          }
          endpoints = std::move(sampled);
        }

        const dns::Name signal_name = signal->obs.signal_name;
        const dns::Name apex = signal->obs.signaling_zone;
        std::weak_ptr<int> alive = alive_;
        // DNSKEY once + (CDS, CDNSKEY) per endpoint.
        signal->outstanding = 1 + endpoints.size() * 2;

        // The zone-cut probe runs for AB candidates: zones that published
        // in-zone CDS (the registry short-circuit of App. D) or whose
        // signaling tree carries data.
        bool zone_has_cds = false;
        for (const auto* probe : task->obs.probes_of(dns::RRType::kCDS)) {
          if (probe->outcome == RRsetProbe::Outcome::kAnswer) {
            zone_has_cds = true;
            break;
          }
        }
        auto on_probe_done = [this, task, signal, endpoints, apex, signal_name,
                              zone_has_cds] {
          if (--signal->outstanding > 0) return;
          bool has_signal_data = false;
          for (const auto& probe : signal->obs.cds_probes) {
            if (probe.outcome == RRsetProbe::Outcome::kAnswer) {
              has_signal_data = true;
              break;
            }
          }
          if (!options_.probe_signal_zone_cuts ||
              (!has_signal_data && !zone_has_cds) || endpoints.empty()) {
            task->obs.signals.push_back(std::move(signal->obs));
            if (--task->signals_outstanding == 0) zone_finished(task);
            return;
          }
          signal->obs.cut_check_performed = true;
          // Intermediate names, strictly between apex and signal name.
          std::vector<dns::Name> intermediates;
          dns::Name walk = signal_name.parent();
          while (walk.label_count() > apex.label_count()) {
            intermediates.push_back(walk);
            walk = walk.parent();
          }
          if (intermediates.empty()) {
            task->obs.signals.push_back(std::move(signal->obs));
            if (--task->signals_outstanding == 0) zone_finished(task);
            return;
          }
          signal->outstanding = intermediates.size();
          const net::IpAddress probe_endpoint = endpoints[0].address;
          std::weak_ptr<int> cut_alive = alive_;
          for (const auto& name : intermediates) {
            engine_.query(
                probe_endpoint, name, dns::RRType::kNS,
                [this, cut_alive, task, signal,
                 name](Result<dns::Message> response) {
                  if (cut_alive.expired()) return;
                  if (response.ok() &&
                      response->header.rcode == dns::Rcode::kNoError &&
                      !response->answers_of(name, dns::RRType::kNS).empty()) {
                    signal->obs.apparent_cuts.push_back(name);
                  }
                  if (--signal->outstanding == 0) {
                    task->obs.signals.push_back(std::move(signal->obs));
                    if (--task->signals_outstanding == 0) zone_finished(task);
                  }
                });
          }
        };

        engine_.query(endpoints[0].address, apex, dns::RRType::kDNSKEY,
                      [this, alive, signal, endpoints, apex,
                       on_probe_done](Result<dns::Message> response) {
                        if (alive.expired()) return;
                        signal->obs.dnskey_probes.push_back(make_probe_result(
                            endpoints[0].ns, endpoints[0].address, apex,
                            dns::RRType::kDNSKEY, response));
                        on_probe_done();
                      });
        for (const auto& endpoint : endpoints) {
          engine_.query(endpoint.address, signal_name, dns::RRType::kCDS,
                        [this, alive, signal, endpoint, signal_name,
                         on_probe_done](Result<dns::Message> response) {
                          if (alive.expired()) return;
                          signal->obs.cds_probes.push_back(make_probe_result(
                              endpoint.ns, endpoint.address, signal_name,
                              dns::RRType::kCDS, response));
                          on_probe_done();
                        });
          engine_.query(endpoint.address, signal_name, dns::RRType::kCDNSKEY,
                        [this, alive, signal, endpoint, signal_name,
                         on_probe_done](Result<dns::Message> response) {
                          if (alive.expired()) return;
                          signal->obs.cdnskey_probes.push_back(
                              make_probe_result(endpoint.ns, endpoint.address,
                                                signal_name,
                                                dns::RRType::kCDNSKEY,
                                                response));
                          on_probe_done();
                        });
        }
      };

  auto cached = operator_delegations_.find(key);
  if (cached != operator_delegations_.end()) {
    finish_with_delegation(*cached->second);
    return;
  }
  auto waiting = operator_waiters_.find(key);
  if (waiting != operator_waiters_.end()) {
    waiting->second.push_back(finish_with_delegation);
    return;
  }
  operator_waiters_[key].push_back(finish_with_delegation);
  std::weak_ptr<int> alive = alive_;
  resolver_.resolve_zone(
      operator_zone,
      [this, alive, key](Result<resolver::Delegation> result) {
        if (alive.expired()) return;
        auto stored =
            std::make_shared<Result<resolver::Delegation>>(std::move(result));
        operator_delegations_[key] = stored;
        auto waiters = std::move(operator_waiters_[key]);
        operator_waiters_.erase(key);
        for (auto& waiter : waiters) waiter(*stored);
      });
}

void Scanner::finalize_completeness(ZoneObservation& obs) const {
  obs.failed_probes = 0;
  obs.transient_failures = 0;
  obs.probes_under_attack = 0;
  auto count = [&obs](const RRsetProbe& probe) {
    if (probe.under_attack) ++obs.probes_under_attack;
    if (probe.failure == ProbeFailure::kNone) return;
    ++obs.failed_probes;
    if (is_transient(probe.failure)) ++obs.transient_failures;
  };
  for (const auto& probe : obs.probes) count(probe);
  for (const auto& signal : obs.signals) {
    if (signal.resolved) {
      for (const auto& probe : signal.dnskey_probes) count(probe);
      for (const auto& probe : signal.cds_probes) count(probe);
      for (const auto& probe : signal.cdnskey_probes) count(probe);
    } else if (is_transient_failure(signal.failure)) {
      // Scan-side signaling-zone resolution failure; a rescan retries the
      // delegation. Permanent reasons (e.g. the signaling name exceeding
      // the 255-octet limit) are findings, not scan failures.
      ++obs.failed_probes;
      ++obs.transient_failures;
    }
  }
  if (!obs.resolved) {
    obs.completeness = ZoneObservation::Completeness::kFailed;
  } else if (obs.failed_probes == 0) {
    obs.completeness = ZoneObservation::Completeness::kComplete;
  } else {
    obs.completeness = ZoneObservation::Completeness::kDegraded;
  }
}

void Scanner::deliver_zone(ZoneObservation obs) {
  auto best = pending_best_.find(obs.zone.canonical_text());
  if (best != pending_best_.end()) {
    if (better_observation(obs, best->second)) {
      // The rescan strictly improved on the stashed observation.
      ++stats_.zones_recovered;
    } else {
      obs = std::move(best->second);
    }
    pending_best_.erase(best);
  }
  switch (obs.completeness) {
    case ZoneObservation::Completeness::kComplete:
      ++stats_.zones_complete;
      break;
    case ZoneObservation::Completeness::kDegraded:
      ++stats_.zones_degraded;
      break;
    case ZoneObservation::Completeness::kFailed:
      ++stats_.zones_failed;
      break;
  }
  if (on_zone_) on_zone_(std::move(obs));
}

namespace {

// Probes complete in transport order: deterministic under the simulator, but
// raced by the kernel over real sockets (DESIGN.md §10). Analysis picks
// representatives positionally (first answering probe wins), so an
// observation must present its probes in a canonical order for a wire scan
// to classify identically to a simulated one. Sort by (qtype, endpoint, ns);
// the stable sort keeps retransmit duplicates, if any, in arrival order.
void canonicalize_probe_order(ZoneObservation& obs) {
  auto probe_less = [](const RRsetProbe& a, const RRsetProbe& b) {
    if (a.qtype != b.qtype) return a.qtype < b.qtype;
    if (a.endpoint != b.endpoint) return a.endpoint < b.endpoint;
    return a.ns.canonical_text() < b.ns.canonical_text();
  };
  std::stable_sort(obs.probes.begin(), obs.probes.end(), probe_less);
  for (auto& signal : obs.signals) {
    std::stable_sort(signal.dnskey_probes.begin(), signal.dnskey_probes.end(),
                     probe_less);
    std::stable_sort(signal.cds_probes.begin(), signal.cds_probes.end(),
                     probe_less);
    std::stable_sort(signal.cdnskey_probes.begin(),
                     signal.cdnskey_probes.end(), probe_less);
    // Cut probes were issued longest-name-first; restore that order.
    std::stable_sort(signal.apparent_cuts.begin(), signal.apparent_cuts.end(),
                     [](const dns::Name& a, const dns::Name& b) {
                       if (a.label_count() != b.label_count()) {
                         return a.label_count() > b.label_count();
                       }
                       return a.canonical_text() < b.canonical_text();
                     });
  }
  // Signal tasks also finish in transport order.
  std::stable_sort(obs.signals.begin(), obs.signals.end(),
                   [](const SignalObservation& a, const SignalObservation& b) {
                     return a.ns.canonical_text() < b.ns.canonical_text();
                   });
}

}  // namespace

void Scanner::zone_finished(std::shared_ptr<ZoneTask> task) {
  ++stats_.zones_scanned;
  canonicalize_probe_order(task->obs);
  finalize_completeness(task->obs);
  zone_histogram_.observe(network_.now() >= task->started_at
                              ? network_.now() - task->started_at
                              : 0);
  if (task->traced) {
    obs::TraceSpan span;
    span.kind = "zone";
    span.name = task->obs.zone.to_text();
    span.start_usec = task->started_at;
    span.end_usec = network_.now();
    span.attempts = static_cast<std::uint64_t>(task->obs.scan_attempt);
    switch (task->obs.completeness) {
      case ZoneObservation::Completeness::kComplete:
        span.status = "complete";
        break;
      case ZoneObservation::Completeness::kDegraded:
        span.status = "degraded";
        break;
      case ZoneObservation::Completeness::kFailed:
        span.status = "failed";
        break;
    }
    if (!task->obs.failure.empty()) span.detail = task->obs.failure;
    options_.tracer->record(std::move(span));
  }
  ZoneObservation obs = std::move(task->obs);
  const bool transient = obs.resolved
                             ? obs.transient_failures > 0
                             : is_transient_failure(obs.failure);
  if (obs.completeness != ZoneObservation::Completeness::kComplete &&
      transient && obs.scan_attempt < options_.max_scan_attempts) {
    // Hold the observation back and rescan the zone after the main queue
    // drains; the better of the two observations is delivered then. The
    // observation moves (never copies) into the keep-better stash.
    dns::Name zone = obs.zone;
    const int next_attempt = obs.scan_attempt + 1;
    std::string key = obs.zone.canonical_text();
    auto best = pending_best_.find(key);
    if (best == pending_best_.end()) {
      pending_best_.emplace(std::move(key), std::move(obs));
    } else if (better_observation(obs, best->second)) {
      best->second = std::move(obs);
    }
    requeue_.emplace_back(std::move(zone), next_attempt);
    ++stats_.zones_requeued;
  } else {
    deliver_zone(std::move(obs));
  }
  --active_zones_;
  if (active_zones_ == 0 && queue_.empty() && !requeue_.empty()) {
    std::swap(queue_, requeue_);
  }
  start_next_zones();
}

}  // namespace dnsboot::scanner
