// Scanner — YoDNS-style orchestration (paper §3): resolve each zone's
// delegation, query *every* authoritative nameserver for the DNSSEC-relevant
// RRsets, probe the RFC 9615 signaling names, and emit raw ZoneObservations.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "scanner/observation.hpp"

namespace dnsboot::scanner {

struct ScannerOptions {
  // Zones probed concurrently; bounds outstanding queries.
  std::size_t max_concurrent_zones = 256;

  // Probe the RFC 9615 signaling names.
  bool scan_signal_zones = true;

  // Also query CSYNC (RFC 7477) at each endpoint — used by registries that
  // synchronize NS/glue from the child (the paper's future-work pointer).
  bool scan_csync = false;

  // Cloudflare pool sampling (§3): when a zone's endpoint set is at least
  // `pool_threshold` addresses, scan only 1 IPv4 + 1 IPv6 endpoint for
  // (1 - pool_full_scan_fraction) of such zones.
  std::size_t pool_threshold = 6;
  double pool_full_scan_fraction = 0.05;
  bool enable_pool_sampling = true;

  // Zone-cut probing for signaling names (registry short-circuit, App. D):
  // only performed when signal CDS records were actually found.
  bool probe_signal_zone_cuts = true;

  // Bounded end-of-scan requeue: zones whose observation carries transient
  // failures are rescanned (after the main queue drains) up to this many
  // total passes, and the best observation per zone is delivered once.
  // 1 = no requeue (the seed behavior).
  int max_scan_attempts = 1;

  std::uint64_t seed = 0x5ca11ab1e;

  // Pre-captured infrastructure hand-off (continuous monitoring): when set,
  // the snapshot is adopted wholesale and the root-DNSKEY / already-covered
  // TLD captures are skipped — a re-probe batch reuses the previous batch's
  // infrastructure instead of re-fetching it. TLDs absent from the snapshot
  // are still captured on demand. Not owned; read in the constructor only.
  const InfrastructureSnapshot* infrastructure = nullptr;

  // Optional zone-lifecycle tracing (obs/trace.hpp): every started zone
  // scan is a sampling candidate; sampled ones record a "zone" span from
  // scan start to delivery with the outcome class. Not owned.
  obs::Tracer* tracer = nullptr;
};

// Registry-backed counter view (obs/stats.hpp): fields read like the old
// plain-uint64 struct but live in the scanner's MetricsRegistry as
// dnsboot_scanner_* counters; shard merging is MetricsRegistry::merge.
using ScannerStats = obs::ScannerStats;

class Scanner {
 public:
  using ZoneCallback = std::function<void(ZoneObservation)>;

  Scanner(net::Transport& network, resolver::QueryEngine& engine,
          resolver::DelegationResolver& resolver, ScannerOptions options);

  // Enqueue zones for scanning. Observations are delivered via `on_zone`
  // as they complete. Call run() afterwards to drive the simulation.
  void scan(std::vector<dns::Name> zones, ZoneCallback on_zone);

  // Drive the simulated network until all scheduled work completes.
  void run();

  const ScannerStats& stats() const { return stats_; }
  const InfrastructureSnapshot& infrastructure() const { return infra_; }
  // The scanner's dnsboot_scanner_* counters and per-zone scan-duration
  // histogram; run_survey merges this into the survey-wide registry.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct ZoneTask;
  struct SignalTask;

  void start_next_zones();
  void start_zone(const dns::Name& zone, int attempt);
  void zone_finished(std::shared_ptr<ZoneTask> task);
  void finalize_completeness(ZoneObservation& obs) const;
  void deliver_zone(ZoneObservation obs);
  void apply_pool_sampling(ZoneObservation& obs);
  void probe_endpoints(std::shared_ptr<ZoneTask> task);
  void start_signal_probes(std::shared_ptr<ZoneTask> task);
  void run_signal_task(std::shared_ptr<ZoneTask> task,
                       std::shared_ptr<SignalTask> signal);
  void capture_tld(const dns::Name& tld);
  void capture_root_dnskey();

  RRsetProbe make_probe_result(const dns::Name& ns,
                               const net::IpAddress& endpoint,
                               const dns::Name& qname, dns::RRType qtype,
                               const Result<dns::Message>& response);

  net::Transport& network_;
  resolver::QueryEngine& engine_;
  resolver::DelegationResolver& resolver_;
  ScannerOptions options_;
  Rng rng_;
  // Liveness token: async callbacks hold a weak reference and become no-ops
  // once the Scanner is destroyed (callbacks can outlive it inside the
  // engine/resolver queues).
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);

  // (zone, attempt) pairs; requeue_ collects rescans until the main queue
  // drains, bounding the extra passes to max_scan_attempts - 1 per zone.
  std::deque<std::pair<dns::Name, int>> queue_;
  std::deque<std::pair<dns::Name, int>> requeue_;
  // Best observation so far for zones held back for a rescan (keyed by the
  // zone Name's cached canonical text); delivery is keep-better and
  // exactly-once. None of these tables is ever iterated, so hashed lookup
  // is safe for determinism.
  std::unordered_map<std::string, ZoneObservation> pending_best_;
  std::size_t active_zones_ = 0;
  ZoneCallback on_zone_;
  // Registry before its views (members initialize in declaration order).
  obs::MetricsRegistry metrics_;
  ScannerStats stats_{metrics_};
  obs::Histogram& zone_histogram_{
      metrics_.histogram("dnsboot_scanner_zone_usec")};
  InfrastructureSnapshot infra_;
  std::unordered_map<std::string, bool> tld_capture_started_;
  bool root_capture_started_ = false;

  // Cache of operator-zone delegations for signal probing (one operator
  // hosts many zones; resolving its zone once is the YoDNS dependency-tree
  // reuse).
  std::unordered_map<std::string, std::shared_ptr<Result<resolver::Delegation>>>
      operator_delegations_;
  std::unordered_map<
      std::string,
      std::vector<std::function<void(const Result<resolver::Delegation>&)>>>
      operator_waiters_;
};

// The RFC 9615 signaling name for (child, ns):
//   _dsboot.<child-labels>._signal.<ns-labels>
// Fails when the result would exceed the 255-octet name limit — one of the
// standard's documented bootstrapping gaps (§2 "DS Bootstrapping Limitations").
Result<dns::Name> signaling_name(const dns::Name& child, const dns::Name& ns);

// The registrable domain (direct child of a public suffix) that contains
// `host`, under the simulation's single-label-TLD model.
dns::Name registrable_domain_of(const dns::Name& host);

}  // namespace dnsboot::scanner
