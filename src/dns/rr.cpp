#include "dns/rr.hpp"

#include "base/strings.hpp"

namespace dnsboot::dns {

std::string to_string(RRType type) {
  switch (type) {
    case RRType::kA: return "A";
    case RRType::kNS: return "NS";
    case RRType::kCNAME: return "CNAME";
    case RRType::kSOA: return "SOA";
    case RRType::kPTR: return "PTR";
    case RRType::kMX: return "MX";
    case RRType::kTXT: return "TXT";
    case RRType::kAAAA: return "AAAA";
    case RRType::kOPT: return "OPT";
    case RRType::kDS: return "DS";
    case RRType::kRRSIG: return "RRSIG";
    case RRType::kNSEC: return "NSEC";
    case RRType::kDNSKEY: return "DNSKEY";
    case RRType::kNSEC3: return "NSEC3";
    case RRType::kNSEC3PARAM: return "NSEC3PARAM";
    case RRType::kCDS: return "CDS";
    case RRType::kCDNSKEY: return "CDNSKEY";
    case RRType::kCSYNC: return "CSYNC";
    case RRType::kAXFR: return "AXFR";
    case RRType::kANY: return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(type));
}

std::string to_string(RRClass klass) {
  switch (klass) {
    case RRClass::kIN: return "IN";
    case RRClass::kANY: return "ANY";
  }
  return "CLASS" + std::to_string(static_cast<std::uint16_t>(klass));
}

std::string to_string(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<std::uint8_t>(rcode));
}

RRType rrtype_from_string(const std::string& mnemonic) {
  static const struct {
    const char* text;
    RRType type;
  } kTable[] = {
      {"A", RRType::kA},           {"NS", RRType::kNS},
      {"CNAME", RRType::kCNAME},   {"SOA", RRType::kSOA},
      {"PTR", RRType::kPTR},       {"MX", RRType::kMX},
      {"TXT", RRType::kTXT},       {"AAAA", RRType::kAAAA},
      {"OPT", RRType::kOPT},       {"DS", RRType::kDS},
      {"RRSIG", RRType::kRRSIG},   {"NSEC", RRType::kNSEC},
      {"DNSKEY", RRType::kDNSKEY}, {"NSEC3", RRType::kNSEC3},
      {"NSEC3PARAM", RRType::kNSEC3PARAM},
      {"CDS", RRType::kCDS},       {"CDNSKEY", RRType::kCDNSKEY},
      {"CSYNC", RRType::kCSYNC},   {"AXFR", RRType::kAXFR},
      {"ANY", RRType::kANY},
  };
  for (const auto& entry : kTable) {
    if (ascii_iequals(mnemonic, entry.text)) return entry.type;
  }
  if (starts_with(mnemonic, "TYPE") || starts_with(mnemonic, "type")) {
    int v = 0;
    for (std::size_t i = 4; i < mnemonic.size(); ++i) {
      char c = mnemonic[i];
      if (c < '0' || c > '9') return RRType{0};
      v = v * 10 + (c - '0');
      if (v > 0xffff) return RRType{0};
    }
    if (mnemonic.size() > 4) return static_cast<RRType>(v);
  }
  return RRType{0};
}

}  // namespace dnsboot::dns
