// DNS message model and wire codec (RFC 1035 §4) with name compression on
// encode and pointer-following on decode. This is the format the simulated
// scanner and servers actually exchange.
#pragma once

#include <optional>
#include <vector>

#include "dns/record.hpp"

namespace dnsboot::dns {

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = false;  // recursion desired
  bool ra = false;  // recursion available
  bool ad = false;  // authentic data (DNSSEC)
  bool cd = false;  // checking disabled (DNSSEC)
  Rcode rcode = Rcode::kNoError;
};

struct Question {
  Name name;
  RRType type = RRType::kA;
  RRClass klass = RRClass::kIN;

  bool operator==(const Question& other) const {
    return name == other.name && type == other.type && klass == other.klass;
  }
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  // Convenience builders.
  static Message make_query(std::uint16_t id, const Name& name, RRType type,
                            bool dnssec_ok = true);
  static Message make_response(const Message& query);

  // Does any additionals entry carry EDNS (OPT)?
  bool has_edns() const;
  // The DO bit from the OPT TTL field, if EDNS present.
  bool dnssec_ok() const;
  // Append an OPT RR advertising `udp_size`, with the DO bit.
  void add_edns(std::uint16_t udp_size, bool dnssec_ok);

  // All answer records of `type` owned by `name`.
  std::vector<ResourceRecord> answers_of(const Name& name, RRType type) const;

  // Wire encoding with name compression for owner names and the
  // compression-eligible RDATA name fields.
  Bytes encode() const;
  // Append the wire encoding to an existing writer (callers that reuse an
  // encode buffer across messages: clear() + encode_into + take/copy).
  void encode_into(ByteWriter& writer) const;

  static Result<Message> decode(BytesView wire);
};

}  // namespace dnsboot::dns
