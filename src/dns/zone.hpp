// Zone — an authoritative data store for one zone apex, with the lookup
// semantics an authoritative server needs (answers, NODATA, NXDOMAIN,
// delegations, CNAMEs, empty non-terminals, occlusion below zone cuts).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "dns/record.hpp"

namespace dnsboot::dns {

class Zone {
 public:
  explicit Zone(Name origin) : origin_(std::move(origin)) {}

  const Name& origin() const { return origin_; }

  // Insert a record, merging into the owner/type RRset. Records outside the
  // zone are rejected; duplicates are suppressed.
  Status add(const ResourceRecord& record);
  Status add_rrset(const RRset& rrset);

  // Remove all records of `type` at `name` (and their covering RRSIGs if
  // `type` is not RRSIG itself).
  void remove_rrset(const Name& name, RRType type);
  // Remove every DNSSEC-generated record (RRSIG/NSEC/NSEC3/NSEC3PARAM);
  // used when re-signing.
  void strip_dnssec();
  // Remove only the RRSIGs covering (name, type); the data stays. Used by
  // failure injection to replace a signature with a corrupted one.
  void remove_signatures(const Name& name, RRType covered_type);

  const RRset* find_rrset(const Name& name, RRType type) const;
  // All RRsets at a node, empty if the node does not exist.
  std::vector<const RRset*> rrsets_at(const Name& name) const;
  bool has_name(const Name& name) const;

  // RRSIG RRset covering `type` at `name` (RRSIGs are stored per covered
  // type alongside the data they cover).
  std::vector<ResourceRecord> signatures_covering(const Name& name,
                                                  RRType type) const;

  const RRset* soa() const { return find_rrset(origin_, RRType::kSOA); }
  const RRset* apex_ns() const { return find_rrset(origin_, RRType::kNS); }

  // Names with data, in canonical (RFC 4034 §6.1) order.
  std::vector<Name> names() const;
  // Every RRset in the zone, canonical owner order.
  std::vector<RRset> all_rrsets() const;
  std::size_t record_count() const;

  // True if `name` is the owner of an NS RRset below the apex (a zone cut).
  bool is_delegation_point(const Name& name) const;

  struct LookupResult {
    enum class Kind {
      kAnswer,      // rrset is the answer
      kNoData,      // name exists, no data of qtype
      kNxDomain,    // name does not exist
      kDelegation,  // referral; rrset is the delegation NS set
      kCname,       // rrset is the CNAME at qname
      kNotInZone,   // qname not under this zone's origin
    };
    Kind kind = Kind::kNotInZone;
    const RRset* rrset = nullptr;
    // For delegations: the cut owner (child zone apex).
    Name cut_owner;
  };

  // Authoritative lookup. DS queries at a delegation point are answered from
  // this (parent) zone rather than referred (RFC 4035 §3.1.4.1).
  LookupResult lookup(const Name& qname, RRType qtype) const;

 private:
  struct NameTypeKey {
    Name name;
    RRType type;
  };
  // Heterogeneous probe type: lookups compare against the caller's Name by
  // reference instead of copying it into a temporary key (the copy showed up
  // in survey profiles — every authoritative answer does several probes).
  struct NameTypeRef {
    const Name& name;
    RRType type;
  };
  struct NameTypeLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      if (auto c = a.name <=> b.name; c != 0) return c < 0;
      return a.type < b.type;
    }
  };

  Name origin_;
  std::map<NameTypeKey, RRset, NameTypeLess> sets_;
  // RRSIGs bucketed by (owner, covered type).
  std::map<NameTypeKey, std::vector<ResourceRecord>, NameTypeLess> signatures_;
};

}  // namespace dnsboot::dns
