// DNS protocol constants: RR types, classes, opcodes, rcodes.
#pragma once

#include <cstdint>
#include <string>

namespace dnsboot::dns {

// RR type numbers (IANA DNS parameters registry). Only the types dnsboot
// manipulates get enumerators; unknown types round-trip as raw RDATA
// (RFC 3597).
enum class RRType : std::uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kOPT = 41,
  kDS = 43,
  kRRSIG = 46,
  kNSEC = 47,
  kDNSKEY = 48,
  kNSEC3 = 50,
  kNSEC3PARAM = 51,
  kCDS = 59,
  kCDNSKEY = 60,
  kCSYNC = 62,
  kAXFR = 252,  // QTYPE only (RFC 5936)
  kANY = 255,
};

enum class RRClass : std::uint16_t {
  kIN = 1,
  kANY = 255,
};

enum class Opcode : std::uint8_t {
  kQuery = 0,
  kNotify = 4,
  kUpdate = 5,
};

enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

std::string to_string(RRType type);
std::string to_string(RRClass klass);
std::string to_string(Rcode rcode);

// Parse a presentation-format type mnemonic ("CDS", "TYPE1234"). Returns
// RRType{0} when unrecognized and not a TYPE#### form.
RRType rrtype_from_string(const std::string& mnemonic);

}  // namespace dnsboot::dns
