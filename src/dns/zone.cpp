#include "dns/zone.hpp"

#include <algorithm>
#include <set>

namespace dnsboot::dns {

Status Zone::add(const ResourceRecord& record) {
  if (!record.name.is_under(origin_)) {
    return Error{"zone.out_of_zone", record.name.to_text() + " not under " +
                                         origin_.to_text()};
  }
  if (record.type == RRType::kRRSIG) {
    const auto& rrsig = std::get<RrsigRdata>(record.rdata);
    auto& bucket = signatures_[NameTypeKey{record.name, rrsig.type_covered}];
    for (const auto& existing : bucket) {
      if (existing.same_data(record)) return Status::ok_status();
    }
    bucket.push_back(record);
    return Status::ok_status();
  }
  auto key = NameTypeKey{record.name, record.type};
  auto it = sets_.find(key);
  if (it == sets_.end()) {
    RRset set;
    set.name = record.name;
    set.type = record.type;
    set.klass = record.klass;
    set.ttl = record.ttl;
    set.rdatas.push_back(record.rdata);
    sets_.emplace(std::move(key), std::move(set));
    return Status::ok_status();
  }
  RRset& set = it->second;
  set.ttl = std::min(set.ttl, record.ttl);
  Bytes incoming = canonical_rdata_bytes(record.rdata);
  for (const auto& existing : set.rdatas) {
    if (canonical_rdata_bytes(existing) == incoming) return Status::ok_status();
  }
  set.rdatas.push_back(record.rdata);
  return Status::ok_status();
}

Status Zone::add_rrset(const RRset& rrset) {
  for (const auto& rr : rrset.to_records()) DNSBOOT_CHECK(add(rr));
  return Status::ok_status();
}

void Zone::remove_rrset(const Name& name, RRType type) {
  if (auto it = sets_.find(NameTypeRef{name, type}); it != sets_.end()) {
    sets_.erase(it);
  }
  if (type == RRType::kRRSIG) return;
  if (auto it = signatures_.find(NameTypeRef{name, type});
      it != signatures_.end()) {
    signatures_.erase(it);
  }
}

void Zone::strip_dnssec() {
  signatures_.clear();
  for (auto it = sets_.begin(); it != sets_.end();) {
    RRType t = it->first.type;
    if (t == RRType::kNSEC || t == RRType::kNSEC3 ||
        t == RRType::kNSEC3PARAM) {
      it = sets_.erase(it);
    } else {
      ++it;
    }
  }
}

void Zone::remove_signatures(const Name& name, RRType covered_type) {
  if (auto it = signatures_.find(NameTypeRef{name, covered_type});
      it != signatures_.end()) {
    signatures_.erase(it);
  }
}

const RRset* Zone::find_rrset(const Name& name, RRType type) const {
  auto it = sets_.find(NameTypeRef{name, type});
  return it == sets_.end() ? nullptr : &it->second;
}

std::vector<const RRset*> Zone::rrsets_at(const Name& name) const {
  std::vector<const RRset*> out;
  auto it = sets_.lower_bound(NameTypeRef{name, RRType{0}});
  while (it != sets_.end() && it->first.name == name) {
    out.push_back(&it->second);
    ++it;
  }
  return out;
}

bool Zone::has_name(const Name& name) const {
  // A name exists if it owns data or is an empty non-terminal (some name at
  // or below it owns data).
  auto it = sets_.lower_bound(NameTypeRef{name, RRType{0}});
  if (it != sets_.end() &&
      (it->first.name == name || it->first.name.is_under(name))) {
    return true;
  }
  // Signature-only nodes count too.
  auto sit = signatures_.lower_bound(NameTypeRef{name, RRType{0}});
  return sit != signatures_.end() &&
         (sit->first.name == name || sit->first.name.is_under(name));
}

std::vector<ResourceRecord> Zone::signatures_covering(const Name& name,
                                                      RRType type) const {
  auto it = signatures_.find(NameTypeRef{name, type});
  return it == signatures_.end() ? std::vector<ResourceRecord>{} : it->second;
}

std::vector<Name> Zone::names() const {
  std::set<Name> seen;
  std::vector<Name> out;
  for (const auto& [key, set] : sets_) {
    if (seen.insert(key.name).second) out.push_back(key.name);
  }
  // sets_ iterates in canonical order already (NameTypeKey sorts by name
  // first), so `out` is canonical-ordered.
  return out;
}

std::vector<RRset> Zone::all_rrsets() const {
  std::vector<RRset> out;
  out.reserve(sets_.size());
  for (const auto& [key, set] : sets_) out.push_back(set);
  return out;
}

std::size_t Zone::record_count() const {
  std::size_t n = 0;
  for (const auto& [key, set] : sets_) n += set.rdatas.size();
  for (const auto& [key, sigs] : signatures_) n += sigs.size();
  return n;
}

bool Zone::is_delegation_point(const Name& name) const {
  return name != origin_ && find_rrset(name, RRType::kNS) != nullptr;
}

Zone::LookupResult Zone::lookup(const Name& qname, RRType qtype) const {
  LookupResult result;
  if (!qname.is_under(origin_)) {
    result.kind = LookupResult::Kind::kNotInZone;
    return result;
  }

  // Walk down from the apex looking for a zone cut above (or at) qname.
  // A cut at qname itself is still a referral — except for DS, which is
  // authoritative parent-side data (RFC 4035 §3.1.4.1).
  std::size_t extra = qname.label_count() - origin_.label_count();
  Name walk = qname;
  std::vector<Name> chain;  // qname, its parent, ... down to just below apex
  for (std::size_t i = 0; i < extra; ++i) {
    chain.push_back(walk);
    walk = walk.parent();
  }
  // Check cuts from the top of the tree downwards.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const bool at_qname = (*it == qname);
    if (const RRset* ns = find_rrset(*it, RRType::kNS)) {
      if (at_qname && qtype == RRType::kDS) break;  // parent answers DS
      if (at_qname && qtype == RRType::kNS && !is_delegation_point(*it)) break;
      result.kind = LookupResult::Kind::kDelegation;
      result.rrset = ns;
      result.cut_owner = *it;
      return result;
    }
  }

  if (!has_name(qname)) {
    result.kind = LookupResult::Kind::kNxDomain;
    return result;
  }

  if (qtype != RRType::kCNAME) {
    if (const RRset* cname = find_rrset(qname, RRType::kCNAME)) {
      result.kind = LookupResult::Kind::kCname;
      result.rrset = cname;
      return result;
    }
  }

  if (const RRset* set = find_rrset(qname, qtype)) {
    result.kind = LookupResult::Kind::kAnswer;
    result.rrset = set;
    return result;
  }

  result.kind = LookupResult::Kind::kNoData;
  return result;
}

}  // namespace dnsboot::dns
