// dns::NamePool — the process-global interned-name table (DESIGN.md §14).
//
// Every dns::Name is a 4-byte handle (an id) into this pool. Each distinct
// spelling of a name is interned exactly once; the pool stores its flat
// wire-form labels, a pointer to the canonical (case-folded) spelling's
// entry, and — on canonical entries — the cached presentation text and a
// canonical *order key* whose plain memcmp order equals RFC 4034 §6.1
// canonical name order. Equality is one pointer compare, ordering is one
// memcmp, and decode of an already-seen name is a hash lookup with no
// canonicalization work at all.
//
// Storage rules ("leak by design"): entries are append-only and live for the
// whole process. Label bytes and order keys go into per-shard arenas
// (base::Arena); entry structs live in chunks published through atomic
// pointers so readers never take a lock to dereference an id. The pool
// itself is reachable from a function-local static for the process lifetime,
// so LeakSanitizer sees everything as still-reachable.
//
// Determinism rule, load-bearing for the sharded survey executor: the
// *numeric* id assigned to a spelling depends on thread interleaving, so ids
// must never be ordered, hashed into output, or branched on by value — only
// identity (same id <=> same spelling) and the canon link are stable. All
// ordering goes through the order key; dnsboot-audit A002 bans leaking ids
// into reports the same way it bans pointer values.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "base/arena.hpp"
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace dnsboot::obs {
class MetricsRegistry;
}  // namespace dnsboot::obs

namespace dnsboot::dns {

class NamePool {
 public:
  struct Rep {
    // Wire-form labels, length-prefixed, without the trailing root byte.
    // Arena-backed; stable for the process lifetime.
    std::string_view flat;
    // The canonical (case-folded) spelling's entry; self when this spelling
    // is already canonical. Name equality is `canon == other.canon`.
    const Rep* canon = nullptr;
    // Canonical presentation text with trailing dot ("." for root). Only
    // populated on canonical entries — go through `canon->canon_text`.
    std::string canon_text;
    // Reversed-label case-folded key; memcmp order == RFC 4034 §6.1 order.
    // Only populated on canonical entries.
    std::string_view order_key;
    std::uint32_t id = 0;
    std::uint8_t label_count = 0;
  };

  // The process-wide pool. First call constructs it (thread-safe); it is
  // never destroyed.
  static NamePool& instance();

  // Intern the flat wire-form spelling `flat` (validated by the caller:
  // label lengths, total length). Returns the id of its entry, creating it
  // and its canonical sibling on first sight.
  std::uint32_t intern_flat(std::string_view flat, std::size_t label_count);

  // Entry for `id`. O(1), lock-free, valid for any id previously returned by
  // intern_flat in any thread whose result reached this thread.
  const Rep& rep(std::uint32_t id) const {
    const Rep* chunk = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    return chunk[id & kChunkMask];
  }

  struct Stats {
    std::uint64_t entries = 0;        // interned spellings (incl. root)
    std::uint64_t arena_bytes = 0;    // label + order-key bytes reserved
  };
  Stats stats();

  // Publish stats() as the dnsboot_namepool_names / dnsboot_namepool_bytes
  // gauges. A long-running monitor calls this after each batch: a flat
  // curve over re-probes of a fixed population is the interning working
  // (the pool is append-only, so growth == new spellings, never churn).
  void export_gauges(obs::MetricsRegistry& registry);

  // Build the canonical order key for a flat label sequence: labels in
  // reverse (rightmost first), case-folded, each preceded by 0x00, with
  // label bytes 0x00 -> 0x01 0x02 and 0x01 -> 0x01 0x03 so the separator
  // sorts below any label byte and byte order is preserved. Exposed for
  // tests; production callers read Rep::order_key.
  static std::string make_order_key(std::string_view flat);

 private:
  // 4096 entries per chunk, 65536 chunks: capacity 2^28 interned spellings.
  static constexpr std::uint32_t kChunkBits = 12;
  static constexpr std::uint32_t kChunkMask = (1u << kChunkBits) - 1;
  static constexpr std::uint32_t kMaxChunks = 1u << 16;
  static constexpr std::uint32_t kShards = 64;

  struct Shard {
    base::Mutex mutex{"NamePool::shard"};
    // Keys view arena-backed flat bytes of the entry they map to.
    std::unordered_map<std::string_view, std::uint32_t> map GUARDED_BY(mutex);
    base::Arena arena GUARDED_BY(mutex){256 * 1024};
  };

  NamePool();

  // Allocate the next id and return its (uninitialized) entry slot. The
  // caller fully populates the slot before publishing the id.
  Rep* new_rep(std::uint32_t* id_out);

  // Intern the already-case-folded spelling (becomes its own canon).
  std::uint32_t intern_canonical(std::string_view folded,
                                 std::size_t label_count);

  // Intern under `shard`'s lock. `canon_rep` is the canonical sibling, or
  // null when `flat` is itself canonical (the entry becomes its own canon).
  std::uint32_t intern_locked(Shard& shard, std::string_view flat,
                              std::size_t label_count, const Rep* canon_rep)
      REQUIRES(shard.mutex);

  Shard shards_[kShards];
  // Entry chunk table. Slots are null until a writer publishes a chunk with
  // a release store; rep() acquire-loads, so an id obtained through any
  // synchronizing channel dereferences safely without locks.
  std::atomic<Rep*> chunks_[kMaxChunks];
  base::Mutex grow_mutex_{"NamePool::grow"};  // audit-allow: A003 serializes chunk allocation; chunks_ slots are lock-free acquire/release atomics, not GUARDED_BY-able
  std::atomic<std::uint32_t> next_id_{0};
};

}  // namespace dnsboot::dns
