#include "dns/name_pool.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hpp"

#include "base/strings.hpp"
#include "dns/name.hpp"

namespace dnsboot::dns {
namespace {

std::size_t shard_of(std::string_view flat) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : flat) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  // Top bits: decorrelated from the low bits std::unordered_map consumes.
  return static_cast<std::size_t>(h >> 58);
}

// Lowercase the label bytes of a flat spelling. Length prefixes are <= 63,
// below 'A', so folding the whole buffer bytewise is exact.
std::string fold_flat(std::string_view flat) {
  std::string out(flat);
  for (char& c : out) c = ascii_lower(c);
  return out;
}

}  // namespace

NamePool& NamePool::instance() {
  // Leaked by design (see header): entries and their ids stay valid until
  // process exit, and the pointer root keeps LeakSanitizer quiet.
  static NamePool* pool = new NamePool();
  return *pool;
}

NamePool::NamePool() : chunks_{} {
  // Pre-intern the root name so a default Name (id 0) needs no pool trip to
  // exist and `rep(0)` is always valid.
  std::uint32_t root_id = intern_canonical(std::string_view(), 0);
  (void)root_id;
}

std::string NamePool::make_order_key(std::string_view flat) {
  // Collect label offsets, then emit labels rightmost first: 0x00 separator,
  // then case-folded label bytes with 0x00 -> 0x01 0x02, 0x01 -> 0x01 0x03.
  // The separator sorts below every escaped label byte (all >= 0x01), which
  // encodes RFC 4034's "absent labels sort first"; the escape preserves
  // byte order and prefix order within a label.
  std::uint8_t offsets[128];
  std::size_t n = 0;
  std::size_t pos = 0;
  while (pos < flat.size()) {
    offsets[n++] = static_cast<std::uint8_t>(pos);
    pos += 1 + static_cast<unsigned char>(flat[pos]);
  }
  std::string key;
  key.reserve(flat.size() + n);
  for (std::size_t i = n; i-- > 0;) {
    std::size_t at = offsets[i];
    auto len = static_cast<unsigned char>(flat[at]);
    key.push_back('\0');
    for (std::size_t j = 0; j < len; ++j) {
      char c = ascii_lower(flat[at + 1 + j]);
      if (c == '\0') {
        key.push_back('\x01');
        key.push_back('\x02');
      } else if (c == '\x01') {
        key.push_back('\x01');
        key.push_back('\x03');
      } else {
        key.push_back(c);
      }
    }
  }
  return key;
}

std::uint32_t NamePool::intern_flat(std::string_view flat,
                                    std::size_t label_count) {
  Shard& shard = shards_[shard_of(flat)];
  {
    base::MutexLock lock(shard.mutex);
    auto it = shard.map.find(flat);
    if (it != shard.map.end()) return it->second;
  }
  // First sight of this spelling: resolve its canonical sibling before
  // retaking the shard lock (the sibling may live in a different shard, and
  // shard mutexes are never nested — lockdep-clean by construction).
  std::string folded = fold_flat(flat);
  const Rep* canon_rep = nullptr;
  if (folded != flat) {
    canon_rep = &rep(intern_canonical(folded, label_count));
  }
  base::MutexLock lock(shard.mutex);
  return intern_locked(shard, flat, label_count, canon_rep);
}

std::uint32_t NamePool::intern_canonical(std::string_view folded,
                                         std::size_t label_count) {
  Shard& shard = shards_[shard_of(folded)];
  base::MutexLock lock(shard.mutex);
  return intern_locked(shard, folded, label_count, nullptr);
}

std::uint32_t NamePool::intern_locked(Shard& shard, std::string_view flat,
                                      std::size_t label_count,
                                      const Rep* canon_rep) {
  auto it = shard.map.find(flat);
  if (it != shard.map.end()) return it->second;
  std::uint32_t id = 0;
  Rep* r = new_rep(&id);
  r->flat = shard.arena.copy(flat);
  r->id = id;
  r->label_count = static_cast<std::uint8_t>(label_count);
  if (canon_rep == nullptr) {
    r->canon = r;
    if (flat.empty()) {
      // assign via push_back: gcc-12 -Werror=restrict misfires on literal
      // assignment here once the sanitizer presets turn up inlining.
      r->canon_text.push_back('.');
    } else {
      r->canon_text.reserve(flat.size() + 1);
      std::size_t pos = 0;
      while (pos < flat.size()) {
        auto len = static_cast<unsigned char>(flat[pos]);
        append_canonical_label(r->canon_text, flat.substr(pos + 1, len));
        pos += 1 + len;
      }
    }
    r->order_key = shard.arena.copy(make_order_key(r->flat));
  } else {
    r->canon = canon_rep;
  }
  shard.map.emplace(r->flat, id);
  return id;
}

NamePool::Rep* NamePool::new_rep(std::uint32_t* id_out) {
  // audit-allow: A004 monotone id ticket; entry contents publish via the shard mutex every intern path holds
  std::uint32_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::uint32_t chunk_i = id >> kChunkBits;
  if (chunk_i >= kMaxChunks) {
    std::fprintf(stderr,
                 "dnsboot: NamePool capacity exhausted (%u spellings)\n", id);
    std::abort();
  }
  Rep* chunk = chunks_[chunk_i].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    base::MutexLock lock(grow_mutex_);
    chunk = chunks_[chunk_i].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      chunk = new Rep[std::size_t{1} << kChunkBits]();
      chunks_[chunk_i].store(chunk, std::memory_order_release);
    }
  }
  *id_out = id;
  return chunk + (id & kChunkMask);
}

void NamePool::export_gauges(obs::MetricsRegistry& registry) {
  const Stats s = stats();
  registry.set_help("dnsboot_namepool_names",
                    "distinct interned name spellings (process-global)");
  registry.set_help("dnsboot_namepool_bytes",
                    "arena bytes reserved for labels and order keys");
  registry.gauge("dnsboot_namepool_names").set(static_cast<double>(s.entries));
  registry.gauge("dnsboot_namepool_bytes")
      .set(static_cast<double>(s.arena_bytes));
}

NamePool::Stats NamePool::stats() {
  Stats out;
  // audit-allow: A004 monitoring read; exactness is not required.
  out.entries = next_id_.load(std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    base::MutexLock lock(shard.mutex);
    out.arena_bytes += shard.arena.bytes_reserved();
  }
  return out;
}

}  // namespace dnsboot::dns
