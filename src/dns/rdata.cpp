#include "dns/rdata.hpp"

#include <cstdio>

#include "base/encoding.hpp"
#include "base/strings.hpp"

namespace dnsboot::dns {
namespace {

// Parse a u16/u32 decimal field.
Result<std::uint32_t> parse_u32_field(const std::string& s) {
  if (s.empty()) return Error{"rdata.bad_field", "empty numeric field"};
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Error{"rdata.bad_field", "non-numeric field: " + s};
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xffffffffULL) return Error{"rdata.bad_field", "field too large"};
  }
  return static_cast<std::uint32_t>(v);
}

Result<std::uint16_t> parse_u16_field(const std::string& s) {
  DNSBOOT_TRY(v, parse_u32_field(s));
  if (v > 0xffff) return Error{"rdata.bad_field", "field exceeds 16 bits"};
  return static_cast<std::uint16_t>(v);
}

Result<std::uint8_t> parse_u8_field(const std::string& s) {
  DNSBOOT_TRY(v, parse_u32_field(s));
  if (v > 0xff) return Error{"rdata.bad_field", "field exceeds 8 bits"};
  return static_cast<std::uint8_t>(v);
}

Status need_fields(const std::vector<std::string>& fields, std::size_t n,
                   const char* what) {
  if (fields.size() < n) {
    return Error{"rdata.missing_fields", std::string(what) + " needs " +
                                             std::to_string(n) + " fields"};
  }
  return Status::ok_status();
}

// Concatenate base64 fields from index `from` to the end (keys/signatures are
// often split across whitespace in presentation form).
Result<Bytes> parse_base64_fields(const std::vector<std::string>& fields,
                                  std::size_t from) {
  std::string joined;
  for (std::size_t i = from; i < fields.size(); ++i) joined += fields[i];
  return base64_decode(joined);
}

Result<Bytes> parse_hex_fields(const std::vector<std::string>& fields,
                               std::size_t from) {
  std::string joined;
  for (std::size_t i = from; i < fields.size(); ++i) joined += fields[i];
  return hex_decode(joined);
}

}  // namespace

// --- TypeBitmap -------------------------------------------------------------

void TypeBitmap::encode(ByteWriter& writer) const {
  // Group types by window (high byte), emit minimal-length bitmaps.
  int current_window = -1;
  std::uint8_t bitmap[32];
  int bitmap_len = 0;
  auto flush = [&] {
    if (current_window >= 0 && bitmap_len > 0) {
      writer.u8(static_cast<std::uint8_t>(current_window));
      writer.u8(static_cast<std::uint8_t>(bitmap_len));
      writer.raw(BytesView(bitmap, static_cast<std::size_t>(bitmap_len)));
    }
  };
  for (RRType type : types_) {
    std::uint16_t value = static_cast<std::uint16_t>(type);
    int window = value >> 8;
    if (window != current_window) {
      flush();
      current_window = window;
      bitmap_len = 0;
      std::fill(std::begin(bitmap), std::end(bitmap), 0);
    }
    int low = value & 0xff;
    bitmap[low >> 3] |= static_cast<std::uint8_t>(0x80 >> (low & 7));
    if (low / 8 + 1 > bitmap_len) bitmap_len = low / 8 + 1;
  }
  flush();
}

Result<TypeBitmap> TypeBitmap::decode(ByteReader& reader, std::size_t length) {
  std::set<RRType> types;
  std::size_t end = reader.offset() + length;
  int previous_window = -1;
  while (reader.offset() < end) {
    DNSBOOT_TRY(window, reader.u8());
    DNSBOOT_TRY(len, reader.u8());
    if (len == 0 || len > 32) {
      return Error{"rdata.bad_bitmap", "bitmap block length out of range"};
    }
    if (window <= previous_window) {
      return Error{"rdata.bad_bitmap", "bitmap windows out of order"};
    }
    previous_window = window;
    DNSBOOT_TRY(block, reader.bytes(len));
    for (std::size_t i = 0; i < block.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        if (block[i] & (0x80 >> bit)) {
          types.insert(static_cast<RRType>(window << 8 | (i * 8 + bit)));
        }
      }
    }
  }
  if (reader.offset() != end) {
    return Error{"rdata.bad_bitmap", "bitmap overruns rdata"};
  }
  return TypeBitmap(std::move(types));
}

std::string TypeBitmap::to_text() const {
  std::vector<std::string> names;
  names.reserve(types_.size());
  for (RRType t : types_) names.push_back(dns::to_string(t));
  return join(names, " ");
}

// --- key tags & sentinels ----------------------------------------------------

std::uint16_t DnskeyRdata::key_tag() const {
  // RFC 4034 Appendix B.
  ByteWriter w;
  w.u16(flags);
  w.u8(protocol);
  w.u8(algorithm);
  w.raw(public_key);
  const Bytes& rdata = w.data();
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < rdata.size(); ++i) {
    acc += (i & 1) ? rdata[i] : static_cast<std::uint32_t>(rdata[i]) << 8;
  }
  acc += (acc >> 16) & 0xffff;
  return static_cast<std::uint16_t>(acc & 0xffff);
}

bool DnskeyRdata::is_delete_sentinel() const {
  return flags == 0 && protocol == 3 && algorithm == 0 &&
         public_key == Bytes{0};
}

bool DsRdata::is_delete_sentinel() const {
  return key_tag == 0 && algorithm == 0 && digest_type == 0 &&
         digest == Bytes{0};
}

// --- wire decode --------------------------------------------------------------

Result<Rdata> decode_rdata(RRType type, ByteReader& reader,
                           std::size_t rdlength) {
  const std::size_t start = reader.offset();
  const std::size_t end = start + rdlength;
  if (reader.remaining() < rdlength) {
    return Error{"wire.truncated", "rdata extends past message"};
  }

  auto check_consumed = [&](Rdata value) -> Result<Rdata> {
    if (reader.offset() != end) {
      return Error{"rdata.length_mismatch",
                   "rdata for " + dns::to_string(type) + " consumed " +
                       std::to_string(reader.offset() - start) + " of " +
                       std::to_string(rdlength)};
    }
    return value;
  };

  switch (type) {
    case RRType::kA: {
      DNSBOOT_TRY(raw, reader.bytes(4));
      if (rdlength != 4) return Error{"rdata.length_mismatch", "A rdlength"};
      ARdata a;
      std::copy(raw.begin(), raw.end(), a.address.begin());
      return Rdata{a};
    }
    case RRType::kAAAA: {
      if (rdlength != 16) {
        return Error{"rdata.length_mismatch", "AAAA rdlength"};
      }
      DNSBOOT_TRY(raw, reader.bytes(16));
      AaaaRdata a;
      std::copy(raw.begin(), raw.end(), a.address.begin());
      return Rdata{a};
    }
    case RRType::kNS: {
      DNSBOOT_TRY(name, Name::decode(reader));
      return check_consumed(Rdata{NsRdata{std::move(name)}});
    }
    case RRType::kCNAME: {
      DNSBOOT_TRY(name, Name::decode(reader));
      return check_consumed(Rdata{CnameRdata{std::move(name)}});
    }
    case RRType::kPTR: {
      DNSBOOT_TRY(name, Name::decode(reader));
      return check_consumed(Rdata{PtrRdata{std::move(name)}});
    }
    case RRType::kMX: {
      DNSBOOT_TRY(pref, reader.u16());
      DNSBOOT_TRY(name, Name::decode(reader));
      return check_consumed(Rdata{MxRdata{pref, std::move(name)}});
    }
    case RRType::kSOA: {
      DNSBOOT_TRY(mname, Name::decode(reader));
      DNSBOOT_TRY(rname, Name::decode(reader));
      DNSBOOT_TRY(serial, reader.u32());
      DNSBOOT_TRY(refresh, reader.u32());
      DNSBOOT_TRY(retry, reader.u32());
      DNSBOOT_TRY(expire, reader.u32());
      DNSBOOT_TRY(minimum, reader.u32());
      return check_consumed(Rdata{SoaRdata{std::move(mname), std::move(rname),
                                           serial, refresh, retry, expire,
                                           minimum}});
    }
    case RRType::kTXT: {
      TxtRdata txt;
      while (reader.offset() < end) {
        DNSBOOT_TRY(len, reader.u8());
        DNSBOOT_TRY(raw, reader.bytes(len));
        txt.strings.emplace_back(raw.begin(), raw.end());
      }
      return check_consumed(Rdata{std::move(txt)});
    }
    case RRType::kDNSKEY:
    case RRType::kCDNSKEY: {
      DNSBOOT_TRY(flags, reader.u16());
      DNSBOOT_TRY(protocol, reader.u8());
      DNSBOOT_TRY(algorithm, reader.u8());
      DNSBOOT_TRY(key, reader.bytes(end - reader.offset()));
      return check_consumed(
          Rdata{DnskeyRdata{flags, protocol, algorithm, std::move(key)}});
    }
    case RRType::kDS:
    case RRType::kCDS: {
      DNSBOOT_TRY(key_tag, reader.u16());
      DNSBOOT_TRY(algorithm, reader.u8());
      DNSBOOT_TRY(digest_type, reader.u8());
      DNSBOOT_TRY(digest, reader.bytes(end - reader.offset()));
      return check_consumed(
          Rdata{DsRdata{key_tag, algorithm, digest_type, std::move(digest)}});
    }
    case RRType::kRRSIG: {
      DNSBOOT_TRY(covered, reader.u16());
      DNSBOOT_TRY(algorithm, reader.u8());
      DNSBOOT_TRY(labels, reader.u8());
      DNSBOOT_TRY(original_ttl, reader.u32());
      DNSBOOT_TRY(expiration, reader.u32());
      DNSBOOT_TRY(inception, reader.u32());
      DNSBOOT_TRY(key_tag, reader.u16());
      DNSBOOT_TRY(signer, Name::decode(reader));
      DNSBOOT_TRY(sig, reader.bytes(end - reader.offset()));
      RrsigRdata r;
      r.type_covered = static_cast<RRType>(covered);
      r.algorithm = algorithm;
      r.labels = labels;
      r.original_ttl = original_ttl;
      r.expiration = expiration;
      r.inception = inception;
      r.key_tag = key_tag;
      r.signer_name = std::move(signer);
      r.signature = std::move(sig);
      return check_consumed(Rdata{std::move(r)});
    }
    case RRType::kNSEC: {
      DNSBOOT_TRY(next, Name::decode(reader));
      DNSBOOT_TRY(types, TypeBitmap::decode(reader, end - reader.offset()));
      return check_consumed(Rdata{NsecRdata{std::move(next), std::move(types)}});
    }
    case RRType::kNSEC3: {
      DNSBOOT_TRY(hash_alg, reader.u8());
      DNSBOOT_TRY(flags, reader.u8());
      DNSBOOT_TRY(iterations, reader.u16());
      DNSBOOT_TRY(salt_len, reader.u8());
      DNSBOOT_TRY(salt, reader.bytes(salt_len));
      DNSBOOT_TRY(hash_len, reader.u8());
      DNSBOOT_TRY(next_hashed, reader.bytes(hash_len));
      DNSBOOT_TRY(types, TypeBitmap::decode(reader, end - reader.offset()));
      Nsec3Rdata r;
      r.hash_algorithm = hash_alg;
      r.flags = flags;
      r.iterations = iterations;
      r.salt = std::move(salt);
      r.next_hashed_owner = std::move(next_hashed);
      r.types = std::move(types);
      return check_consumed(Rdata{std::move(r)});
    }
    case RRType::kNSEC3PARAM: {
      DNSBOOT_TRY(hash_alg, reader.u8());
      DNSBOOT_TRY(flags, reader.u8());
      DNSBOOT_TRY(iterations, reader.u16());
      DNSBOOT_TRY(salt_len, reader.u8());
      DNSBOOT_TRY(salt, reader.bytes(salt_len));
      return check_consumed(
          Rdata{Nsec3ParamRdata{hash_alg, flags, iterations, std::move(salt)}});
    }
    case RRType::kCSYNC: {
      DNSBOOT_TRY(serial, reader.u32());
      DNSBOOT_TRY(flags, reader.u16());
      DNSBOOT_TRY(types, TypeBitmap::decode(reader, end - reader.offset()));
      return check_consumed(Rdata{CsyncRdata{serial, flags, std::move(types)}});
    }
    case RRType::kOPT: {
      DNSBOOT_TRY(options, reader.bytes(rdlength));
      return Rdata{OptRdata{std::move(options)}};
    }
    default: {
      DNSBOOT_TRY(raw, reader.bytes(rdlength));
      return Rdata{RawRdata{std::move(raw)}};
    }
  }
}

// --- wire encode --------------------------------------------------------------

namespace {

void encode_name_field(const Name& name, ByteWriter& writer, bool canonical) {
  if (canonical) {
    name.encode_canonical(writer);
  } else {
    name.encode(writer);
  }
}

struct RdataEncoder {
  ByteWriter& writer;
  bool canonical;

  void operator()(const ARdata& r) const {
    writer.raw(BytesView(r.address.data(), r.address.size()));
  }
  void operator()(const AaaaRdata& r) const {
    writer.raw(BytesView(r.address.data(), r.address.size()));
  }
  void operator()(const NsRdata& r) const {
    encode_name_field(r.nsdname, writer, canonical);
  }
  void operator()(const CnameRdata& r) const {
    encode_name_field(r.target, writer, canonical);
  }
  void operator()(const PtrRdata& r) const {
    encode_name_field(r.target, writer, canonical);
  }
  void operator()(const MxRdata& r) const {
    writer.u16(r.preference);
    encode_name_field(r.exchange, writer, canonical);
  }
  void operator()(const SoaRdata& r) const {
    encode_name_field(r.mname, writer, canonical);
    encode_name_field(r.rname, writer, canonical);
    writer.u32(r.serial);
    writer.u32(r.refresh);
    writer.u32(r.retry);
    writer.u32(r.expire);
    writer.u32(r.minimum);
  }
  void operator()(const TxtRdata& r) const {
    for (const auto& s : r.strings) {
      writer.u8(static_cast<std::uint8_t>(s.size()));
      writer.raw(s);
    }
  }
  void operator()(const DnskeyRdata& r) const {
    writer.u16(r.flags);
    writer.u8(r.protocol);
    writer.u8(r.algorithm);
    writer.raw(r.public_key);
  }
  void operator()(const DsRdata& r) const {
    writer.u16(r.key_tag);
    writer.u8(r.algorithm);
    writer.u8(r.digest_type);
    writer.raw(r.digest);
  }
  void operator()(const RrsigRdata& r) const {
    writer.u16(static_cast<std::uint16_t>(r.type_covered));
    writer.u8(r.algorithm);
    writer.u8(r.labels);
    writer.u32(r.original_ttl);
    writer.u32(r.expiration);
    writer.u32(r.inception);
    writer.u16(r.key_tag);
    // Signer name is always canonical-encoded in signatures (RFC 4034 §3.1.7
    // requires lowercase in the signed data; we emit lowercase on the wire
    // too, which is valid and simplifies comparison).
    encode_name_field(r.signer_name, writer, canonical);
    writer.raw(r.signature);
  }
  void operator()(const NsecRdata& r) const {
    encode_name_field(r.next_domain, writer, canonical);
    r.types.encode(writer);
  }
  void operator()(const Nsec3Rdata& r) const {
    writer.u8(r.hash_algorithm);
    writer.u8(r.flags);
    writer.u16(r.iterations);
    writer.u8(static_cast<std::uint8_t>(r.salt.size()));
    writer.raw(r.salt);
    writer.u8(static_cast<std::uint8_t>(r.next_hashed_owner.size()));
    writer.raw(r.next_hashed_owner);
    r.types.encode(writer);
  }
  void operator()(const Nsec3ParamRdata& r) const {
    writer.u8(r.hash_algorithm);
    writer.u8(r.flags);
    writer.u16(r.iterations);
    writer.u8(static_cast<std::uint8_t>(r.salt.size()));
    writer.raw(r.salt);
  }
  void operator()(const CsyncRdata& r) const {
    writer.u32(r.soa_serial);
    writer.u16(r.flags);
    r.types.encode(writer);
  }
  void operator()(const OptRdata& r) const { writer.raw(r.options); }
  void operator()(const RawRdata& r) const { writer.raw(r.data); }
};

}  // namespace

void encode_rdata(const Rdata& rdata, ByteWriter& writer, bool canonical) {
  std::visit(RdataEncoder{writer, canonical}, rdata);
}

// --- presentation form ---------------------------------------------------------

std::string ipv4_to_text(const std::array<std::uint8_t, 4>& addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", addr[0], addr[1], addr[2],
                addr[3]);
  return buf;
}

std::string ipv6_to_text(const std::array<std::uint8_t, 16>& addr) {
  // Uncompressed 8-group form; simple and unambiguous.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%x:%x:%x:%x:%x:%x:%x:%x",
                addr[0] << 8 | addr[1], addr[2] << 8 | addr[3],
                addr[4] << 8 | addr[5], addr[6] << 8 | addr[7],
                addr[8] << 8 | addr[9], addr[10] << 8 | addr[11],
                addr[12] << 8 | addr[13], addr[14] << 8 | addr[15]);
  return buf;
}

Result<std::array<std::uint8_t, 4>> ipv4_from_text(const std::string& text) {
  auto parts = split(text, '.');
  if (parts.size() != 4) return Error{"rdata.bad_ipv4", text};
  std::array<std::uint8_t, 4> out{};
  for (int i = 0; i < 4; ++i) {
    DNSBOOT_TRY(v, parse_u32_field(parts[static_cast<std::size_t>(i)]));
    if (v > 255) return Error{"rdata.bad_ipv4", text};
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
  }
  return out;
}

Result<std::array<std::uint8_t, 16>> ipv6_from_text(const std::string& text) {
  // Supports the "::" shorthand with hex groups; no embedded IPv4 form.
  std::array<std::uint8_t, 16> out{};
  auto halves = split(text, ':');
  // split() keeps empty fields, which represent the "::" compression.
  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool seen_gap = false;
  bool expect_empty_run = false;
  for (std::size_t i = 0; i < halves.size(); ++i) {
    const std::string& part = halves[i];
    if (part.empty()) {
      // Leading/trailing "::" produce two empties; interior produces one.
      if (seen_gap && !expect_empty_run) {
        return Error{"rdata.bad_ipv6", "multiple '::' in " + text};
      }
      seen_gap = true;
      expect_empty_run = (i == 0 || i + 2 == halves.size());
      continue;
    }
    expect_empty_run = false;
    std::uint32_t v = 0;
    for (char c : part) {
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
      else return Error{"rdata.bad_ipv6", text};
      v = v << 4 | static_cast<std::uint32_t>(d);
      if (v > 0xffff) return Error{"rdata.bad_ipv6", text};
    }
    (seen_gap ? tail : head).push_back(static_cast<std::uint16_t>(v));
  }
  std::size_t groups = head.size() + tail.size();
  if (groups > 8 || (!seen_gap && groups != 8)) {
    return Error{"rdata.bad_ipv6", text};
  }
  for (std::size_t i = 0; i < head.size(); ++i) {
    out[2 * i] = static_cast<std::uint8_t>(head[i] >> 8);
    out[2 * i + 1] = static_cast<std::uint8_t>(head[i] & 0xff);
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    std::size_t g = 8 - tail.size() + i;
    out[2 * g] = static_cast<std::uint8_t>(tail[i] >> 8);
    out[2 * g + 1] = static_cast<std::uint8_t>(tail[i] & 0xff);
  }
  return out;
}

namespace {

struct RdataPrinter {
  std::string operator()(const ARdata& r) const { return ipv4_to_text(r.address); }
  std::string operator()(const AaaaRdata& r) const {
    return ipv6_to_text(r.address);
  }
  std::string operator()(const NsRdata& r) const { return r.nsdname.to_text(); }
  std::string operator()(const CnameRdata& r) const { return r.target.to_text(); }
  std::string operator()(const PtrRdata& r) const { return r.target.to_text(); }
  std::string operator()(const MxRdata& r) const {
    return std::to_string(r.preference) + " " + r.exchange.to_text();
  }
  std::string operator()(const SoaRdata& r) const {
    return r.mname.to_text() + " " + r.rname.to_text() + " " +
           std::to_string(r.serial) + " " + std::to_string(r.refresh) + " " +
           std::to_string(r.retry) + " " + std::to_string(r.expire) + " " +
           std::to_string(r.minimum);
  }
  std::string operator()(const TxtRdata& r) const {
    std::vector<std::string> quoted;
    quoted.reserve(r.strings.size());
    for (const auto& s : r.strings) quoted.push_back("\"" + s + "\"");
    return join(quoted, " ");
  }
  std::string operator()(const DnskeyRdata& r) const {
    return std::to_string(r.flags) + " " + std::to_string(r.protocol) + " " +
           std::to_string(r.algorithm) + " " + base64_encode(r.public_key);
  }
  std::string operator()(const DsRdata& r) const {
    return std::to_string(r.key_tag) + " " + std::to_string(r.algorithm) +
           " " + std::to_string(r.digest_type) + " " + hex_encode(r.digest);
  }
  std::string operator()(const RrsigRdata& r) const {
    return dns::to_string(r.type_covered) + " " + std::to_string(r.algorithm) +
           " " + std::to_string(r.labels) + " " +
           std::to_string(r.original_ttl) + " " + std::to_string(r.expiration) +
           " " + std::to_string(r.inception) + " " + std::to_string(r.key_tag) +
           " " + r.signer_name.to_text() + " " + base64_encode(r.signature);
  }
  std::string operator()(const NsecRdata& r) const {
    std::string out = r.next_domain.to_text();
    if (!r.types.empty()) out += " " + r.types.to_text();
    return out;
  }
  std::string operator()(const Nsec3Rdata& r) const {
    std::string out = std::to_string(r.hash_algorithm) + " " +
                      std::to_string(r.flags) + " " +
                      std::to_string(r.iterations) + " " +
                      (r.salt.empty() ? "-" : hex_encode(r.salt)) + " " +
                      base32hex_encode(r.next_hashed_owner);
    if (!r.types.empty()) out += " " + r.types.to_text();
    return out;
  }
  std::string operator()(const Nsec3ParamRdata& r) const {
    return std::to_string(r.hash_algorithm) + " " + std::to_string(r.flags) +
           " " + std::to_string(r.iterations) + " " +
           (r.salt.empty() ? "-" : hex_encode(r.salt));
  }
  std::string operator()(const CsyncRdata& r) const {
    std::string out =
        std::to_string(r.soa_serial) + " " + std::to_string(r.flags);
    if (!r.types.empty()) out += " " + r.types.to_text();
    return out;
  }
  std::string operator()(const OptRdata& r) const {
    return r.options.empty() ? "" : hex_encode(r.options);
  }
  std::string operator()(const RawRdata& r) const {
    return "\\# " + std::to_string(r.data.size()) +
           (r.data.empty() ? "" : " " + hex_encode(r.data));
  }
};

}  // namespace

std::string rdata_to_text(const Rdata& rdata) {
  return std::visit(RdataPrinter{}, rdata);
}

Result<Rdata> rdata_from_text(RRType type,
                              const std::vector<std::string>& fields) {
  switch (type) {
    case RRType::kA: {
      DNSBOOT_CHECK(need_fields(fields, 1, "A"));
      DNSBOOT_TRY(addr, ipv4_from_text(fields[0]));
      return Rdata{ARdata{addr}};
    }
    case RRType::kAAAA: {
      DNSBOOT_CHECK(need_fields(fields, 1, "AAAA"));
      DNSBOOT_TRY(addr, ipv6_from_text(fields[0]));
      return Rdata{AaaaRdata{addr}};
    }
    case RRType::kNS: {
      DNSBOOT_CHECK(need_fields(fields, 1, "NS"));
      DNSBOOT_TRY(name, Name::from_text(fields[0]));
      return Rdata{NsRdata{std::move(name)}};
    }
    case RRType::kCNAME: {
      DNSBOOT_CHECK(need_fields(fields, 1, "CNAME"));
      DNSBOOT_TRY(name, Name::from_text(fields[0]));
      return Rdata{CnameRdata{std::move(name)}};
    }
    case RRType::kPTR: {
      DNSBOOT_CHECK(need_fields(fields, 1, "PTR"));
      DNSBOOT_TRY(name, Name::from_text(fields[0]));
      return Rdata{PtrRdata{std::move(name)}};
    }
    case RRType::kMX: {
      DNSBOOT_CHECK(need_fields(fields, 2, "MX"));
      DNSBOOT_TRY(pref, parse_u16_field(fields[0]));
      DNSBOOT_TRY(name, Name::from_text(fields[1]));
      return Rdata{MxRdata{pref, std::move(name)}};
    }
    case RRType::kSOA: {
      DNSBOOT_CHECK(need_fields(fields, 7, "SOA"));
      DNSBOOT_TRY(mname, Name::from_text(fields[0]));
      DNSBOOT_TRY(rname, Name::from_text(fields[1]));
      DNSBOOT_TRY(serial, parse_u32_field(fields[2]));
      DNSBOOT_TRY(refresh, parse_u32_field(fields[3]));
      DNSBOOT_TRY(retry, parse_u32_field(fields[4]));
      DNSBOOT_TRY(expire, parse_u32_field(fields[5]));
      DNSBOOT_TRY(minimum, parse_u32_field(fields[6]));
      return Rdata{SoaRdata{std::move(mname), std::move(rname), serial,
                            refresh, retry, expire, minimum}};
    }
    case RRType::kTXT: {
      DNSBOOT_CHECK(need_fields(fields, 1, "TXT"));
      TxtRdata txt;
      for (const auto& f : fields) {
        std::string s = f;
        if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
          s = s.substr(1, s.size() - 2);
        }
        txt.strings.push_back(std::move(s));
      }
      return Rdata{std::move(txt)};
    }
    case RRType::kDNSKEY:
    case RRType::kCDNSKEY: {
      DNSBOOT_CHECK(need_fields(fields, 4, "DNSKEY"));
      DNSBOOT_TRY(flags, parse_u16_field(fields[0]));
      DNSBOOT_TRY(protocol, parse_u8_field(fields[1]));
      DNSBOOT_TRY(algorithm, parse_u8_field(fields[2]));
      DNSBOOT_TRY(key, parse_base64_fields(fields, 3));
      return Rdata{DnskeyRdata{flags, protocol, algorithm, std::move(key)}};
    }
    case RRType::kDS:
    case RRType::kCDS: {
      DNSBOOT_CHECK(need_fields(fields, 4, "DS"));
      DNSBOOT_TRY(key_tag, parse_u16_field(fields[0]));
      DNSBOOT_TRY(algorithm, parse_u8_field(fields[1]));
      DNSBOOT_TRY(digest_type, parse_u8_field(fields[2]));
      DNSBOOT_TRY(digest, parse_hex_fields(fields, 3));
      return Rdata{
          DsRdata{key_tag, algorithm, digest_type, std::move(digest)}};
    }
    case RRType::kRRSIG: {
      DNSBOOT_CHECK(need_fields(fields, 9, "RRSIG"));
      RrsigRdata r;
      r.type_covered = rrtype_from_string(fields[0]);
      if (r.type_covered == RRType{0}) {
        return Error{"rdata.bad_field", "unknown covered type " + fields[0]};
      }
      DNSBOOT_TRY(algorithm, parse_u8_field(fields[1]));
      DNSBOOT_TRY(labels, parse_u8_field(fields[2]));
      DNSBOOT_TRY(original_ttl, parse_u32_field(fields[3]));
      DNSBOOT_TRY(expiration, parse_u32_field(fields[4]));
      DNSBOOT_TRY(inception, parse_u32_field(fields[5]));
      DNSBOOT_TRY(key_tag, parse_u16_field(fields[6]));
      DNSBOOT_TRY(signer, Name::from_text(fields[7]));
      DNSBOOT_TRY(sig, parse_base64_fields(fields, 8));
      r.algorithm = algorithm;
      r.labels = labels;
      r.original_ttl = original_ttl;
      r.expiration = expiration;
      r.inception = inception;
      r.key_tag = key_tag;
      r.signer_name = std::move(signer);
      r.signature = std::move(sig);
      return Rdata{std::move(r)};
    }
    case RRType::kNSEC: {
      DNSBOOT_CHECK(need_fields(fields, 1, "NSEC"));
      DNSBOOT_TRY(next, Name::from_text(fields[0]));
      TypeBitmap types;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        RRType t = rrtype_from_string(fields[i]);
        if (t == RRType{0}) {
          return Error{"rdata.bad_field", "unknown type " + fields[i]};
        }
        types.add(t);
      }
      return Rdata{NsecRdata{std::move(next), std::move(types)}};
    }
    case RRType::kNSEC3: {
      DNSBOOT_CHECK(need_fields(fields, 5, "NSEC3"));
      Nsec3Rdata r;
      DNSBOOT_TRY(hash_alg, parse_u8_field(fields[0]));
      DNSBOOT_TRY(flags, parse_u8_field(fields[1]));
      DNSBOOT_TRY(iterations, parse_u16_field(fields[2]));
      r.hash_algorithm = hash_alg;
      r.flags = flags;
      r.iterations = iterations;
      if (fields[3] != "-") {
        DNSBOOT_TRY(salt, hex_decode(fields[3]));
        r.salt = std::move(salt);
      }
      DNSBOOT_TRY(next_hashed, base32hex_decode(fields[4]));
      r.next_hashed_owner = std::move(next_hashed);
      for (std::size_t i = 5; i < fields.size(); ++i) {
        RRType t = rrtype_from_string(fields[i]);
        if (t == RRType{0}) {
          return Error{"rdata.bad_field", "unknown type " + fields[i]};
        }
        r.types.add(t);
      }
      return Rdata{std::move(r)};
    }
    case RRType::kNSEC3PARAM: {
      DNSBOOT_CHECK(need_fields(fields, 4, "NSEC3PARAM"));
      Nsec3ParamRdata r;
      DNSBOOT_TRY(hash_alg, parse_u8_field(fields[0]));
      DNSBOOT_TRY(flags, parse_u8_field(fields[1]));
      DNSBOOT_TRY(iterations, parse_u16_field(fields[2]));
      r.hash_algorithm = hash_alg;
      r.flags = flags;
      r.iterations = iterations;
      if (fields[3] != "-") {
        DNSBOOT_TRY(salt, hex_decode(fields[3]));
        r.salt = std::move(salt);
      }
      return Rdata{std::move(r)};
    }
    case RRType::kCSYNC: {
      DNSBOOT_CHECK(need_fields(fields, 2, "CSYNC"));
      DNSBOOT_TRY(serial, parse_u32_field(fields[0]));
      DNSBOOT_TRY(flags, parse_u16_field(fields[1]));
      TypeBitmap types;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        RRType t = rrtype_from_string(fields[i]);
        if (t == RRType{0}) {
          return Error{"rdata.bad_field", "unknown type " + fields[i]};
        }
        types.add(t);
      }
      return Rdata{CsyncRdata{serial, flags, std::move(types)}};
    }
    default:
      return Error{"rdata.unsupported_text",
                   "no presentation parser for " + dns::to_string(type)};
  }
}

}  // namespace dnsboot::dns
