// Typed RDATA for every RR type dnsboot manipulates, with wire and
// presentation codecs. Unknown types round-trip as opaque bytes (RFC 3597).
//
// CDS shares the DS wire format and CDNSKEY shares the DNSKEY wire format
// (RFC 7344 §3.1/§3.2), so they share the typed structs here; the owning
// ResourceRecord carries the actual RR type.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "base/bytes.hpp"
#include "base/result.hpp"
#include "dns/name.hpp"
#include "dns/rr.hpp"

namespace dnsboot::dns {

// RFC 4034 §4.1.2 type bitmap (NSEC, NSEC3, CSYNC).
class TypeBitmap {
 public:
  TypeBitmap() = default;
  explicit TypeBitmap(std::set<RRType> types) : types_(std::move(types)) {}

  void add(RRType type) { types_.insert(type); }
  bool contains(RRType type) const { return types_.count(type) > 0; }
  const std::set<RRType>& types() const { return types_; }
  bool empty() const { return types_.empty(); }

  void encode(ByteWriter& writer) const;
  static Result<TypeBitmap> decode(ByteReader& reader, std::size_t length);

  std::string to_text() const;

  bool operator==(const TypeBitmap&) const = default;

 private:
  std::set<RRType> types_;
};

struct ARdata {
  std::array<std::uint8_t, 4> address{};
  bool operator==(const ARdata&) const = default;
};

struct AaaaRdata {
  std::array<std::uint8_t, 16> address{};
  bool operator==(const AaaaRdata&) const = default;
};

struct NsRdata {
  Name nsdname;
  bool operator==(const NsRdata&) const = default;
};

struct CnameRdata {
  Name target;
  bool operator==(const CnameRdata&) const = default;
};

struct PtrRdata {
  Name target;
  bool operator==(const PtrRdata&) const = default;
};

struct MxRdata {
  std::uint16_t preference = 0;
  Name exchange;
  bool operator==(const MxRdata&) const = default;
};

struct SoaRdata {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
  bool operator==(const SoaRdata&) const = default;
};

struct TxtRdata {
  std::vector<std::string> strings;
  bool operator==(const TxtRdata&) const = default;
};

// DNSKEY and CDNSKEY (RFC 4034 §2, RFC 7344 §3.2).
struct DnskeyRdata {
  std::uint16_t flags = 0;
  std::uint8_t protocol = 3;
  std::uint8_t algorithm = 0;
  Bytes public_key;
  bool operator==(const DnskeyRdata&) const = default;

  // RFC 4034 Appendix B key tag.
  std::uint16_t key_tag() const;
  bool is_sep() const { return (flags & 0x0001) != 0; }
  bool is_zone_key() const { return (flags & 0x0100) != 0; }
  // RFC 8078 §4: CDNSKEY delete sentinel ("0 3 0 AA==", i.e. alg 0).
  bool is_delete_sentinel() const;
};

// DS and CDS (RFC 4034 §5, RFC 7344 §3.1).
struct DsRdata {
  std::uint16_t key_tag = 0;
  std::uint8_t algorithm = 0;
  std::uint8_t digest_type = 0;
  Bytes digest;
  bool operator==(const DsRdata&) const = default;

  // RFC 8078 §4: CDS delete sentinel ("0 0 0 00").
  bool is_delete_sentinel() const;
};

struct RrsigRdata {
  RRType type_covered = RRType{0};
  std::uint8_t algorithm = 0;
  std::uint8_t labels = 0;
  std::uint32_t original_ttl = 0;
  std::uint32_t expiration = 0;  // seconds, absolute simulated time
  std::uint32_t inception = 0;
  std::uint16_t key_tag = 0;
  Name signer_name;
  Bytes signature;
  bool operator==(const RrsigRdata&) const = default;
};

struct NsecRdata {
  Name next_domain;
  TypeBitmap types;
  bool operator==(const NsecRdata&) const = default;
};

struct Nsec3Rdata {
  std::uint8_t hash_algorithm = 1;  // 1 = SHA-1
  std::uint8_t flags = 0;
  std::uint16_t iterations = 0;
  Bytes salt;
  Bytes next_hashed_owner;
  TypeBitmap types;
  bool operator==(const Nsec3Rdata&) const = default;
};

struct Nsec3ParamRdata {
  std::uint8_t hash_algorithm = 1;
  std::uint8_t flags = 0;
  std::uint16_t iterations = 0;
  Bytes salt;
  bool operator==(const Nsec3ParamRdata&) const = default;
};

// CSYNC (RFC 7477) — the parent/child synchronization mechanism the paper's
// conclusion points to as future work.
struct CsyncRdata {
  std::uint32_t soa_serial = 0;
  std::uint16_t flags = 0;  // bit 0: immediate, bit 1: soaminimum
  TypeBitmap types;
  bool operator==(const CsyncRdata&) const = default;
};

// EDNS OPT pseudo-RR payload; options kept opaque.
struct OptRdata {
  Bytes options;
  bool operator==(const OptRdata&) const = default;
};

// RFC 3597 opaque RDATA for unknown types.
struct RawRdata {
  Bytes data;
  bool operator==(const RawRdata&) const = default;
};

using Rdata = std::variant<ARdata, AaaaRdata, NsRdata, CnameRdata, PtrRdata,
                           MxRdata, SoaRdata, TxtRdata, DnskeyRdata, DsRdata,
                           RrsigRdata, NsecRdata, Nsec3Rdata, Nsec3ParamRdata,
                           CsyncRdata, OptRdata, RawRdata>;

// Decode RDLENGTH bytes of RDATA at the reader's cursor. The reader spans the
// whole message so embedded names can follow compression pointers (permitted
// for the pre-RFC-3597 types only). Fails unless exactly `rdlength` bytes are
// consumed.
Result<Rdata> decode_rdata(RRType type, ByteReader& reader,
                           std::size_t rdlength);

// Append wire-format RDATA (without the RDLENGTH prefix). Embedded names are
// never compressed. `canonical` lowercases embedded names (RFC 4034 §6.2).
void encode_rdata(const Rdata& rdata, ByteWriter& writer,
                  bool canonical = false);

// Presentation form of the RDATA fields (without owner/TTL/class/type).
std::string rdata_to_text(const Rdata& rdata);

// Parse presentation fields for `type`.
Result<Rdata> rdata_from_text(RRType type,
                              const std::vector<std::string>& fields);

// IPv4/IPv6 text helpers.
std::string ipv4_to_text(const std::array<std::uint8_t, 4>& addr);
std::string ipv6_to_text(const std::array<std::uint8_t, 16>& addr);
Result<std::array<std::uint8_t, 4>> ipv4_from_text(const std::string& text);
Result<std::array<std::uint8_t, 16>> ipv6_from_text(const std::string& text);

}  // namespace dnsboot::dns
