#include "dns/zonefile.hpp"

#include "base/strings.hpp"

namespace dnsboot::dns {
namespace {

// Strip a trailing comment that is not inside a quoted string.
std::string strip_comment(const std::string& line) {
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_quotes = !in_quotes;
    if (line[i] == ';' && !in_quotes) return line.substr(0, i);
  }
  return line;
}

// Resolve a possibly-relative owner/rdata name against the origin.
Result<Name> resolve_name(const std::string& text, const Name& origin) {
  if (text == "@") return origin;
  if (!text.empty() && text.back() == '.') return Name::from_text(text);
  DNSBOOT_TRY(relative, Name::from_text(text));
  return relative.concat(origin);
}

bool is_ttl(const std::string& field, std::uint32_t& out) {
  if (field.empty()) return false;
  std::uint64_t v = 0;
  for (char c : field) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xffffffffULL) return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

}  // namespace

Result<std::vector<ResourceRecord>> parse_zone_text(
    const std::string& text, const ZoneFileOptions& options) {
  std::vector<ResourceRecord> records;
  Name origin = options.origin;
  std::uint32_t default_ttl = options.default_ttl;
  Name last_owner = origin;

  std::size_t line_no = 0;
  for (const std::string& raw_line : split(text, '\n')) {
    ++line_no;
    std::string line = strip_comment(raw_line);
    if (trim(line).empty()) continue;
    bool owner_inherited = (line[0] == ' ' || line[0] == '\t');
    auto fields = split_whitespace(line);
    if (fields.empty()) continue;

    auto fail = [&](const std::string& why) -> Error {
      return Error{"zonefile.parse",
                   "line " + std::to_string(line_no) + ": " + why};
    };

    if (fields[0] == "$ORIGIN") {
      if (fields.size() < 2) return fail("$ORIGIN needs a name");
      DNSBOOT_TRY(new_origin, Name::from_text(fields[1]));
      origin = std::move(new_origin);
      continue;
    }
    if (fields[0] == "$TTL") {
      if (fields.size() < 2 || !is_ttl(fields[1], default_ttl)) {
        return fail("$TTL needs a number");
      }
      continue;
    }
    if (fields[0] == "$INCLUDE") {
      return fail("$INCLUDE is not supported");
    }

    std::size_t idx = 0;
    Name owner = last_owner;
    if (!owner_inherited) {
      DNSBOOT_TRY(resolved, resolve_name(fields[idx], origin));
      owner = std::move(resolved);
      ++idx;
    }

    std::uint32_t ttl = default_ttl;
    RRClass klass = RRClass::kIN;
    // TTL and class may appear in either order before the type.
    for (int pass = 0; pass < 2 && idx < fields.size(); ++pass) {
      std::uint32_t parsed_ttl = 0;
      if (is_ttl(fields[idx], parsed_ttl)) {
        ttl = parsed_ttl;
        ++idx;
      } else if (ascii_iequals(fields[idx], "IN")) {
        klass = RRClass::kIN;
        ++idx;
      }
    }
    if (idx >= fields.size()) return fail("missing record type");
    RRType type = rrtype_from_string(fields[idx]);
    if (type == RRType{0}) return fail("unknown type " + fields[idx]);
    ++idx;

    std::vector<std::string> rdata_fields(fields.begin() + static_cast<std::ptrdiff_t>(idx),
                                          fields.end());
    // Relative names inside rdata: resolve name-typed first fields.
    auto resolve_field = [&](std::size_t i) -> Status {
      if (i >= rdata_fields.size()) return Status::ok_status();
      DNSBOOT_TRY(resolved, resolve_name(rdata_fields[i], origin));
      rdata_fields[i] = resolved.to_text();
      return Status::ok_status();
    };
    switch (type) {
      case RRType::kNS:
      case RRType::kCNAME:
      case RRType::kPTR:
        DNSBOOT_CHECK(resolve_field(0));
        break;
      case RRType::kMX:
        DNSBOOT_CHECK(resolve_field(1));
        break;
      case RRType::kSOA:
        DNSBOOT_CHECK(resolve_field(0));
        DNSBOOT_CHECK(resolve_field(1));
        break;
      case RRType::kRRSIG:
        DNSBOOT_CHECK(resolve_field(7));
        break;
      case RRType::kNSEC:
        DNSBOOT_CHECK(resolve_field(0));
        break;
      default:
        break;
    }

    auto rdata = rdata_from_text(type, rdata_fields);
    if (!rdata.ok()) return fail(rdata.error().to_string());

    ResourceRecord rr;
    rr.name = owner;
    rr.type = type;
    rr.klass = klass;
    rr.ttl = ttl;
    rr.rdata = std::move(rdata).take();
    records.push_back(std::move(rr));
    last_owner = owner;
  }
  return records;
}

Result<Zone> parse_zone(const std::string& text,
                        const ZoneFileOptions& options) {
  DNSBOOT_TRY(records, parse_zone_text(text, options));
  Zone zone(options.origin);
  for (const auto& rr : records) DNSBOOT_CHECK(zone.add(rr));
  return zone;
}

std::string zone_to_text(const Zone& zone) {
  std::string out;
  out += "$ORIGIN " + zone.origin().to_text() + "\n";
  // SOA first, then everything else in canonical order.
  if (const RRset* soa = zone.soa()) {
    for (const auto& rr : soa->to_records()) out += rr.to_text() + "\n";
    for (const auto& sig :
         zone.signatures_covering(zone.origin(), RRType::kSOA)) {
      out += sig.to_text() + "\n";
    }
  }
  for (const auto& set : zone.all_rrsets()) {
    if (set.type == RRType::kSOA && set.name == zone.origin()) continue;
    for (const auto& rr : set.to_records()) out += rr.to_text() + "\n";
    for (const auto& sig : zone.signatures_covering(set.name, set.type)) {
      out += sig.to_text() + "\n";
    }
  }
  return out;
}

}  // namespace dnsboot::dns
