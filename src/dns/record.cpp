#include "dns/record.hpp"

#include <algorithm>

namespace dnsboot::dns {

bool ResourceRecord::same_data(const ResourceRecord& other) const {
  return name == other.name && type == other.type && klass == other.klass &&
         rdata == other.rdata;
}

std::string ResourceRecord::to_text() const {
  return name.to_text() + " " + std::to_string(ttl) + " " +
         dns::to_string(klass) + " " + dns::to_string(type) + " " +
         rdata_to_text(rdata);
}

Bytes ResourceRecord::rdata_wire(bool canonical) const {
  ByteWriter w;
  encode_rdata(rdata, w, canonical);
  return w.take();
}

std::vector<ResourceRecord> RRset::to_records() const {
  std::vector<ResourceRecord> out;
  out.reserve(rdatas.size());
  for (const auto& rd : rdatas) {
    out.push_back(ResourceRecord{name, type, klass, ttl, rd});
  }
  return out;
}

bool RRset::same_rdatas(const RRset& other) const {
  if (rdatas.size() != other.rdatas.size()) return false;
  // Compare as canonical byte multisets: order must not matter.
  std::vector<Bytes> a;
  std::vector<Bytes> b;
  a.reserve(rdatas.size());
  b.reserve(other.rdatas.size());
  for (const auto& rd : rdatas) a.push_back(canonical_rdata_bytes(rd));
  for (const auto& rd : other.rdatas) b.push_back(canonical_rdata_bytes(rd));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

std::vector<RRset> group_into_rrsets(
    const std::vector<ResourceRecord>& records) {
  std::vector<RRset> out;
  for (const auto& rr : records) {
    RRset* target = nullptr;
    for (auto& set : out) {
      if (set.name == rr.name && set.type == rr.type && set.klass == rr.klass) {
        target = &set;
        break;
      }
    }
    if (target == nullptr) {
      out.push_back(RRset{rr.name, rr.type, rr.klass, rr.ttl, {}});
      target = &out.back();
    }
    target->ttl = std::min(target->ttl, rr.ttl);
    // Suppress duplicate rdatas (RFC 2181 §5: no duplicate records in a set).
    Bytes incoming = canonical_rdata_bytes(rr.rdata);
    bool duplicate = false;
    for (const auto& existing : target->rdatas) {
      if (canonical_rdata_bytes(existing) == incoming) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) target->rdatas.push_back(rr.rdata);
  }
  return out;
}

Bytes canonical_rdata_bytes(const Rdata& rdata) {
  ByteWriter w;
  encode_rdata(rdata, w, /*canonical=*/true);
  return w.take();
}

}  // namespace dnsboot::dns
