// Master-file (RFC 1035 §5) reader/writer — the interchange format for zone
// data in examples and tests. Supports $ORIGIN, $TTL, '@', relative names and
// ';' comments; $INCLUDE and multi-line parentheses are not supported (the
// writer never emits them).
#pragma once

#include <string>
#include <vector>

#include "dns/zone.hpp"

namespace dnsboot::dns {

struct ZoneFileOptions {
  Name origin;                    // initial $ORIGIN
  std::uint32_t default_ttl = 3600;  // initial $TTL
};

// Parse zone-file text into records. Owner defaults to the previous owner
// when a line starts with whitespace.
Result<std::vector<ResourceRecord>> parse_zone_text(
    const std::string& text, const ZoneFileOptions& options);

// Parse directly into a Zone rooted at options.origin.
Result<Zone> parse_zone(const std::string& text,
                        const ZoneFileOptions& options);

// Serialize a zone to master-file text (absolute names, one record per line,
// SOA first).
std::string zone_to_text(const Zone& zone);

}  // namespace dnsboot::dns
