// ResourceRecord and RRset — the units the scanner, signer and validator
// operate on.
#pragma once

#include <string>
#include <vector>

#include "dns/name.hpp"
#include "dns/rdata.hpp"
#include "dns/rr.hpp"

namespace dnsboot::dns {

struct ResourceRecord {
  Name name;
  RRType type = RRType::kA;
  RRClass klass = RRClass::kIN;
  std::uint32_t ttl = 0;
  Rdata rdata;

  // Equality ignores TTL (RRset semantics, RFC 2181 §5.2): two records with
  // the same owner/type/class/rdata are the same record.
  bool same_data(const ResourceRecord& other) const;

  // "<owner> <ttl> IN <TYPE> <rdata>" presentation line.
  std::string to_text() const;

  // Wire-format RDATA bytes (canonical form lowercases embedded names).
  Bytes rdata_wire(bool canonical = false) const;
};

// An RRset: all records sharing owner name, type, and class. Invariant: all
// members agree on (name, type, klass); TTLs are normalized to the minimum
// when signing.
struct RRset {
  Name name;
  RRType type = RRType::kA;
  RRClass klass = RRClass::kIN;
  std::uint32_t ttl = 0;
  std::vector<Rdata> rdatas;

  bool empty() const { return rdatas.empty(); }
  std::size_t size() const { return rdatas.size(); }

  std::vector<ResourceRecord> to_records() const;

  // True if both sets contain the same rdatas regardless of order — the
  // consistency test the paper applies across nameservers (§4.2).
  bool same_rdatas(const RRset& other) const;
};

// Group loose records into RRsets, preserving first-seen order.
std::vector<RRset> group_into_rrsets(const std::vector<ResourceRecord>& records);

// Canonical wire form of one rdata, used for sorting inside signatures.
Bytes canonical_rdata_bytes(const Rdata& rdata);

}  // namespace dnsboot::dns
