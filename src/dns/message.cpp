#include "dns/message.hpp"

#include <algorithm>
#include <string_view>
#include <unordered_map>

namespace dnsboot::dns {
namespace {

// Compression context: canonical suffix text -> message offset. Keys are
// views into the names' cached canonical strings (every suffix of a name's
// canonical text starting at a label boundary is the suffix name's
// canonical text), so building the table allocates nothing per label. The
// names must outlive the compressor — they are members of the Message being
// encoded.
class NameCompressor {
 public:
  void encode(const Name& name, ByteWriter& writer) {
    const std::string& canon = name.canonical_text();
    std::size_t canon_pos = 0;
    for (std::string_view label : name.labels()) {
      std::string_view key(canon.data() + canon_pos, canon.size() - canon_pos);
      auto it = offsets_.find(key);
      if (it != offsets_.end()) {
        writer.u16(static_cast<std::uint16_t>(0xc000 | it->second));
        return;
      }
      if (writer.size() < 0x3fff) {
        offsets_.emplace(key, static_cast<std::uint16_t>(writer.size()));
      }
      writer.u8(static_cast<std::uint8_t>(label.size()));
      writer.raw(label);
      canon_pos += canonical_label_width(label) + 1;
    }
    writer.u8(0);  // root
  }

 private:
  std::unordered_map<std::string_view, std::uint16_t> offsets_;
};

void encode_record(const ResourceRecord& rr, ByteWriter& writer,
                   NameCompressor& compressor) {
  compressor.encode(rr.name, writer);
  writer.u16(static_cast<std::uint16_t>(rr.type));
  writer.u16(static_cast<std::uint16_t>(rr.klass));
  writer.u32(rr.ttl);
  // RDATA is written uncompressed: always legal, and keeps RDLENGTH
  // back-patching trivial (compression inside RDATA is optional per RFC 1035
  // and forbidden for post-RFC-3597 types anyway).
  std::size_t rdlength_at = writer.size();
  writer.u16(0);
  std::size_t rdata_start = writer.size();
  encode_rdata(rr.rdata, writer);
  writer.patch_u16(rdlength_at,
                   static_cast<std::uint16_t>(writer.size() - rdata_start));
}

Result<ResourceRecord> decode_record(ByteReader& reader) {
  DNSBOOT_TRY(name, Name::decode(reader));
  DNSBOOT_TRY(type_raw, reader.u16());
  DNSBOOT_TRY(klass_raw, reader.u16());
  DNSBOOT_TRY(ttl, reader.u32());
  DNSBOOT_TRY(rdlength, reader.u16());
  RRType type = static_cast<RRType>(type_raw);
  DNSBOOT_TRY(rdata, decode_rdata(type, reader, rdlength));
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = type;
  rr.klass = static_cast<RRClass>(klass_raw);
  rr.ttl = ttl;
  rr.rdata = std::move(rdata);
  return rr;
}

}  // namespace

Message Message::make_query(std::uint16_t id, const Name& name, RRType type,
                            bool dnssec_ok) {
  Message m;
  m.header.id = id;
  m.header.rd = false;  // iterative scanner: never ask for recursion
  m.questions.push_back(Question{name, type, RRClass::kIN});
  m.add_edns(4096, dnssec_ok);
  return m;
}

Message Message::make_response(const Message& query) {
  Message m;
  m.header = query.header;
  m.header.qr = true;
  m.header.ra = false;
  m.questions = query.questions;
  if (query.has_edns()) m.add_edns(4096, query.dnssec_ok());
  return m;
}

bool Message::has_edns() const {
  for (const auto& rr : additionals) {
    if (rr.type == RRType::kOPT) return true;
  }
  return false;
}

bool Message::dnssec_ok() const {
  for (const auto& rr : additionals) {
    if (rr.type == RRType::kOPT) return (rr.ttl & 0x00008000u) != 0;
  }
  return false;
}

void Message::add_edns(std::uint16_t udp_size, bool dnssec_ok) {
  ResourceRecord opt;
  opt.name = Name::root();
  opt.type = RRType::kOPT;
  opt.klass = static_cast<RRClass>(udp_size);  // CLASS field carries UDP size
  opt.ttl = dnssec_ok ? 0x00008000u : 0;       // TTL carries ext-rcode/flags
  opt.rdata = OptRdata{};
  additionals.push_back(std::move(opt));
}

std::vector<ResourceRecord> Message::answers_of(const Name& name,
                                                RRType type) const {
  std::vector<ResourceRecord> out;
  for (const auto& rr : answers) {
    if (rr.type == type && rr.name == name) out.push_back(rr);
  }
  return out;
}

Bytes Message::encode() const {
  ByteWriter w;
  w.reserve(512);
  encode_into(w);
  return w.take();
}

void Message::encode_into(ByteWriter& w) const {
  w.u16(header.id);
  std::uint16_t flags = 0;
  if (header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(header.opcode) << 11;
  if (header.aa) flags |= 0x0400;
  if (header.tc) flags |= 0x0200;
  if (header.rd) flags |= 0x0100;
  if (header.ra) flags |= 0x0080;
  if (header.ad) flags |= 0x0020;
  if (header.cd) flags |= 0x0010;
  flags |= static_cast<std::uint16_t>(header.rcode) & 0x000f;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size()));

  NameCompressor compressor;
  for (const auto& q : questions) {
    compressor.encode(q.name, w);
    w.u16(static_cast<std::uint16_t>(q.type));
    w.u16(static_cast<std::uint16_t>(q.klass));
  }
  for (const auto& rr : answers) encode_record(rr, w, compressor);
  for (const auto& rr : authorities) encode_record(rr, w, compressor);
  for (const auto& rr : additionals) encode_record(rr, w, compressor);
}

Result<Message> Message::decode(BytesView wire) {
  ByteReader r{wire};
  Message m;
  DNSBOOT_TRY(id, r.u16());
  DNSBOOT_TRY(flags, r.u16());
  m.header.id = id;
  m.header.qr = (flags & 0x8000) != 0;
  m.header.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
  m.header.aa = (flags & 0x0400) != 0;
  m.header.tc = (flags & 0x0200) != 0;
  m.header.rd = (flags & 0x0100) != 0;
  m.header.ra = (flags & 0x0080) != 0;
  m.header.ad = (flags & 0x0020) != 0;
  m.header.cd = (flags & 0x0010) != 0;
  m.header.rcode = static_cast<Rcode>(flags & 0xf);

  DNSBOOT_TRY(qdcount, r.u16());
  DNSBOOT_TRY(ancount, r.u16());
  DNSBOOT_TRY(nscount, r.u16());
  DNSBOOT_TRY(arcount, r.u16());

  // Pre-size the sections. Counts come off the wire, so cap the speculative
  // reserve — a hostile header can claim 65535 records it never carries.
  constexpr std::size_t kReserveCap = 512;
  m.questions.reserve(std::min<std::size_t>(qdcount, kReserveCap));
  m.answers.reserve(std::min<std::size_t>(ancount, kReserveCap));
  m.authorities.reserve(std::min<std::size_t>(nscount, kReserveCap));
  m.additionals.reserve(std::min<std::size_t>(arcount, kReserveCap));

  for (int i = 0; i < qdcount; ++i) {
    DNSBOOT_TRY(name, Name::decode(r));
    DNSBOOT_TRY(type_raw, r.u16());
    DNSBOOT_TRY(klass_raw, r.u16());
    m.questions.push_back(Question{std::move(name),
                                   static_cast<RRType>(type_raw),
                                   static_cast<RRClass>(klass_raw)});
  }
  for (int i = 0; i < ancount; ++i) {
    DNSBOOT_TRY(rr, decode_record(r));
    m.answers.push_back(std::move(rr));
  }
  for (int i = 0; i < nscount; ++i) {
    DNSBOOT_TRY(rr, decode_record(r));
    m.authorities.push_back(std::move(rr));
  }
  for (int i = 0; i < arcount; ++i) {
    DNSBOOT_TRY(rr, decode_record(r));
    m.additionals.push_back(std::move(rr));
  }
  if (!r.at_end()) {
    return Error{"wire.trailing_bytes",
                 std::to_string(r.remaining()) + " bytes after message"};
  }
  return m;
}

}  // namespace dnsboot::dns
