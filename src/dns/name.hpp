// DNS domain names (RFC 1035 §3.1, RFC 4034 §6 canonical form).
//
// A Name is a sequence of labels, leftmost first; the root is the empty
// sequence. Names compare case-insensitively and preserve their original
// spelling. Wire-format decoding follows compression pointers with a hop
// limit so malicious messages cannot loop the parser.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/bytes.hpp"
#include "base/result.hpp"

namespace dnsboot::dns {

inline constexpr std::size_t kMaxLabelLength = 63;
// Maximum wire length of a name, including the root byte (RFC 1035 §3.1).
inline constexpr std::size_t kMaxNameWireLength = 255;

class Name {
 public:
  // The root name ".".
  Name() = default;

  static Name root() { return Name(); }

  // Parse presentation form. Accepts absolute ("example.com.") and relative
  // ("example.com") spellings — both produce the same absolute name, as the
  // scanner only ever deals in fully-qualified names. Supports \. and \DDD
  // escapes. Rejects over-long labels/names and empty interior labels.
  static Result<Name> from_text(std::string_view text);

  // Build from raw labels (no escape processing).
  static Result<Name> from_labels(std::vector<std::string> labels);

  // Decode from wire format at the reader's cursor, following compression
  // pointers within reader.whole_buffer(). The cursor ends just past the
  // name's first pointer (or its root byte if uncompressed).
  static Result<Name> decode(ByteReader& reader);

  // Append uncompressed wire form.
  void encode(ByteWriter& writer) const;

  // Presentation form, always absolute with trailing dot; "." for root.
  std::string to_text() const;

  bool is_root() const { return labels_.empty(); }
  std::size_t label_count() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }
  // Wire-format length in bytes (sum of label lengths + length bytes + root).
  std::size_t wire_length() const;

  // Immediate parent ("example.com." -> "com."). Parent of root is root.
  Name parent() const;

  // New name with `label` prepended ("www" + "example.com." -> "www.example.com.").
  Result<Name> prepend(std::string_view label) const;

  // New name of this name's labels followed by `suffix`'s labels.
  Result<Name> concat(const Name& suffix) const;

  // True if this name is `ancestor` or is below it ("a.b.c" under "b.c").
  bool is_under(const Name& ancestor) const;
  // Strictly below (not equal).
  bool is_strictly_under(const Name& ancestor) const;

  // Case-insensitive equality.
  bool operator==(const Name& other) const;
  bool operator!=(const Name& other) const { return !(*this == other); }

  // RFC 4034 §6.1 canonical ordering (by reversed label sequence, labels as
  // case-folded octet strings). Used for NSEC chains and sorted containers.
  std::strong_ordering operator<=>(const Name& other) const;

  // Lower-cased presentation form; stable key for hashing/maps.
  std::string canonical_text() const;

  // Append RFC 4034 §6.2 canonical wire form (lowercased, uncompressed).
  void encode_canonical(ByteWriter& writer) const;

 private:
  explicit Name(std::vector<std::string> labels) : labels_(std::move(labels)) {}

  std::vector<std::string> labels_;
};

}  // namespace dnsboot::dns
