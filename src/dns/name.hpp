// DNS domain names (RFC 1035 §3.1, RFC 4034 §6 canonical form).
//
// A Name is a sequence of labels, leftmost first; the root is the empty
// sequence. Names compare case-insensitively and preserve their original
// spelling. Wire-format decoding follows compression pointers with a hop
// limit so malicious messages cannot loop the parser.
//
// Storage is a 4-byte handle into the process-global interned-name table
// (dns::NamePool, DESIGN.md §14): each distinct spelling is stored once —
// flat length-prefixed labels, cached canonical presentation text, and a
// canonical order key whose memcmp order equals RFC 4034 §6.1 order. Copying
// a Name copies one uint32_t; equality is a pointer compare; ordering is a
// memcmp; canonical_text() returns a reference that stays valid for the
// whole process. Decoding a name the process has seen before is a single
// hash-table hit with no canonicalization work.
#pragma once

#include <compare>
#include <cstdint>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "base/bytes.hpp"
#include "base/result.hpp"
#include "dns/name_pool.hpp"

namespace dnsboot::dns {

inline constexpr std::size_t kMaxLabelLength = 63;
// Maximum wire length of a name, including the root byte (RFC 1035 §3.1).
inline constexpr std::size_t kMaxNameWireLength = 255;

// Width of `label` in canonical presentation text, excluding the trailing
// dot ('.' and '\\' escape to two characters, non-printables to four).
std::size_t canonical_label_width(std::string_view label);

// Append `label`'s canonical (lower-cased, escaped) presentation form plus a
// trailing dot to `out`. Shared with the name pool's canonical-text builder.
void append_canonical_label(std::string& out, std::string_view label);

class Name {
 public:
  // Forward range over a name's labels as string_views into its pooled
  // wire-form storage. Views stay valid for the process lifetime.
  class LabelsView {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = std::string_view;
      using difference_type = std::ptrdiff_t;
      using pointer = const std::string_view*;
      using reference = std::string_view;

      iterator() = default;

      std::string_view operator*() const {
        auto len = static_cast<unsigned char>(data_[pos_]);
        return std::string_view(data_ + pos_ + 1, len);
      }
      iterator& operator++() {
        pos_ += 1 + static_cast<std::size_t>(
                        static_cast<unsigned char>(data_[pos_]));
        return *this;
      }
      iterator operator++(int) {
        iterator tmp = *this;
        ++*this;
        return tmp;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.pos_ == b.pos_;
      }

     private:
      friend class LabelsView;
      iterator(const char* data, std::size_t pos) : data_(data), pos_(pos) {}

      const char* data_ = nullptr;
      std::size_t pos_ = 0;
    };

    iterator begin() const { return iterator(data_.data(), 0); }
    iterator end() const { return iterator(data_.data(), data_.size()); }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    std::string_view front() const { return *begin(); }
    std::string_view back() const { return (*this)[count_ - 1]; }
    std::string_view operator[](std::size_t i) const {
      iterator it = begin();
      while (i-- > 0) ++it;
      return *it;
    }

   private:
    friend class Name;
    LabelsView(std::string_view data, std::size_t count)
        : data_(data), count_(count) {}

    std::string_view data_;
    std::size_t count_;
  };

  // The root name ".". Id 0 is the pool's pre-interned root entry.
  Name() = default;

  static Name root() { return Name(); }

  // Parse presentation form. Accepts absolute ("example.com.") and relative
  // ("example.com") spellings — both produce the same absolute name, as the
  // scanner only ever deals in fully-qualified names. Supports \. and \DDD
  // escapes. Rejects over-long labels/names and empty interior labels.
  static Result<Name> from_text(std::string_view text);

  // Build from raw labels (no escape processing).
  static Result<Name> from_labels(std::vector<std::string> labels);

  // Decode from wire format at the reader's cursor, following compression
  // pointers within reader.whole_buffer(). The cursor ends just past the
  // name's first pointer (or its root byte if uncompressed).
  static Result<Name> decode(ByteReader& reader);

  // Append uncompressed wire form.
  void encode(ByteWriter& writer) const;

  // Presentation form, always absolute with trailing dot; "." for root.
  std::string to_text() const;

  bool is_root() const { return id_ == 0; }
  std::size_t label_count() const { return rep_().label_count; }
  LabelsView labels() const {
    const NamePool::Rep& r = rep_();
    return LabelsView(r.flat, r.label_count);
  }
  // Wire-format length in bytes (sum of label lengths + length bytes + root).
  std::size_t wire_length() const { return rep_().flat.size() + 1; }

  // Immediate parent ("example.com." -> "com."). Parent of root is root.
  Name parent() const;

  // The name formed of this name's last `n` labels ("a.b.c." -> "b.c." for
  // n=2); the whole name when n >= label_count().
  Name suffix(std::size_t n) const;

  // New name with `label` prepended ("www" + "example.com." -> "www.example.com.").
  Result<Name> prepend(std::string_view label) const;

  // New name of this name's labels followed by `suffix`'s labels.
  Result<Name> concat(const Name& suffix) const;

  // True if this name is `ancestor` or is below it ("a.b.c" under "b.c").
  bool is_under(const Name& ancestor) const;
  // Strictly below (not equal).
  bool is_strictly_under(const Name& ancestor) const;

  // Case-insensitive equality: both spellings link to the same canonical
  // pool entry, so this is one pointer compare.
  bool operator==(const Name& other) const {
    return id_ == other.id_ || rep_().canon == other.rep_().canon;
  }
  bool operator!=(const Name& other) const { return !(*this == other); }

  // RFC 4034 §6.1 canonical ordering (by reversed label sequence, labels as
  // case-folded octet strings). One memcmp over the pooled order keys.
  std::strong_ordering operator<=>(const Name& other) const;

  // Lower-cased presentation form; stable key for hashing/maps. Cached in
  // the pool — this accessor never allocates, and the reference stays valid
  // for the process lifetime.
  const std::string& canonical_text() const { return rep_().canon->canon_text; }

  // Append RFC 4034 §6.2 canonical wire form (lowercased, uncompressed).
  void encode_canonical(ByteWriter& writer) const;

 private:
  explicit Name(std::uint32_t id) : id_(id) {}

  const NamePool::Rep& rep_() const { return NamePool::instance().rep(id_); }

  // Build from validated labels (lengths and totals already checked).
  static Name build(const std::vector<std::string>& labels);
  // Intern a validated flat spelling.
  static Name intern(std::string_view flat, std::size_t label_count);

  // Flat offset of label `index` (0 <= index <= label_count()).
  std::size_t flat_offset_of(std::size_t index) const;

  // Handle into NamePool; 0 is the root.
  std::uint32_t id_ = 0;
};

}  // namespace dnsboot::dns
