#include "dns/name.hpp"

#include <algorithm>

#include "base/strings.hpp"

namespace dnsboot::dns {
namespace {

// Validate a single raw label (post-escape-processing).
Status check_label(std::string_view label) {
  if (label.empty()) return Error{"name.empty_label", "empty interior label"};
  if (label.size() > kMaxLabelLength) {
    return Error{"name.label_too_long",
                 "label of " + std::to_string(label.size()) + " octets"};
  }
  return Status::ok_status();
}

Status check_total_length(const std::vector<std::string>& labels) {
  std::size_t total = 1;  // root byte
  for (const auto& l : labels) total += l.size() + 1;
  if (total > kMaxNameWireLength) {
    return Error{"name.too_long",
                 "wire length " + std::to_string(total) + " exceeds 255"};
  }
  return Status::ok_status();
}

// Escape one presentation-form character into `out`, lowercasing when
// `lower` (the canonical form is the lower-cased escaped spelling).
void append_escaped(std::string& out, char c, bool lower) {
  if (c == '.' || c == '\\') {
    out.push_back('\\');
    out.push_back(c);
  } else if (static_cast<unsigned char>(c) < 0x21 ||
             static_cast<unsigned char>(c) > 0x7e) {
    unsigned v = static_cast<unsigned char>(c);
    out.push_back('\\');
    out.push_back(static_cast<char>('0' + v / 100));
    out.push_back(static_cast<char>('0' + (v / 10) % 10));
    out.push_back(static_cast<char>('0' + v % 10));
  } else {
    out.push_back(lower ? ascii_lower(c) : c);
  }
}

}  // namespace

std::size_t canonical_label_width(std::string_view label) {
  std::size_t width = 0;
  for (char c : label) {
    if (c == '.' || c == '\\') {
      width += 2;
    } else if (static_cast<unsigned char>(c) < 0x21 ||
               static_cast<unsigned char>(c) > 0x7e) {
      width += 4;
    } else {
      width += 1;
    }
  }
  return width;
}

void append_canonical_label(std::string& out, std::string_view label) {
  // Fast path: labels are overwhelmingly plain lowercase LDH strings, which
  // canonicalize to themselves — one bulk append instead of per-char escaping.
  bool plain = true;
  for (char c : label) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x21 || u > 0x7e || c == '.' || c == '\\' ||
        (c >= 'A' && c <= 'Z')) {
      plain = false;
      break;
    }
  }
  if (plain) {
    out.append(label);
  } else {
    for (char c : label) append_escaped(out, c, /*lower=*/true);
  }
  out.push_back('.');
}

Name Name::intern(std::string_view flat, std::size_t label_count) {
  return Name(NamePool::instance().intern_flat(flat, label_count));
}

Name Name::build(const std::vector<std::string>& labels) {
  if (labels.empty()) return Name();
  std::string flat;
  std::size_t flat_size = 0;
  for (const auto& l : labels) flat_size += 1 + l.size();
  flat.reserve(flat_size);
  for (const auto& l : labels) {
    flat.push_back(static_cast<char>(l.size()));
    flat.append(l);
  }
  return intern(flat, labels.size());
}

std::size_t Name::flat_offset_of(std::size_t index) const {
  std::string_view flat = rep_().flat;
  std::size_t flat_pos = 0;
  for (std::size_t i = 0; i < index; ++i) {
    flat_pos += 1 + static_cast<unsigned char>(flat[flat_pos]);
  }
  return flat_pos;
}

Result<Name> Name::from_text(std::string_view text) {
  if (text.empty()) return Error{"name.empty", "empty name"};
  if (text == ".") return Name::root();

  std::vector<std::string> labels;
  std::string current;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size()) {
        return Error{"name.bad_escape", "trailing backslash"};
      }
      char next = text[i + 1];
      if (next >= '0' && next <= '9') {
        if (i + 3 >= text.size() || text[i + 2] < '0' || text[i + 2] > '9' ||
            text[i + 3] < '0' || text[i + 3] > '9') {
          return Error{"name.bad_escape", "incomplete \\DDD escape"};
        }
        int value = (next - '0') * 100 + (text[i + 2] - '0') * 10 +
                    (text[i + 3] - '0');
        if (value > 255) return Error{"name.bad_escape", "\\DDD out of range"};
        current.push_back(static_cast<char>(value));
        i += 3;
      } else {
        current.push_back(next);
        ++i;
      }
    } else if (c == '.') {
      if (current.empty()) {
        return Error{"name.empty_label", "empty label in " + std::string(text)};
      }
      DNSBOOT_CHECK(check_label(current));
      labels.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    DNSBOOT_CHECK(check_label(current));
    labels.push_back(std::move(current));
  }
  DNSBOOT_CHECK(check_total_length(labels));
  return build(labels);
}

Result<Name> Name::from_labels(std::vector<std::string> labels) {
  for (const auto& l : labels) DNSBOOT_CHECK(check_label(l));
  DNSBOOT_CHECK(check_total_length(labels));
  return build(labels);
}

Result<Name> Name::decode(ByteReader& reader) {
  // Small stack buffer: virtually every name fits 255 octets by definition,
  // so the flat spelling is assembled without heap allocation, then interned
  // (a hash hit for any name seen before).
  char flat_buf[kMaxNameWireLength];
  std::size_t flat_len = 0;
  std::size_t count = 0;
  std::size_t wire_len = 1;
  // Position to restore after the first compression pointer.
  bool jumped = false;
  std::size_t resume_at = 0;
  int hops = 0;

  while (true) {
    DNSBOOT_TRY(len, reader.u8());
    if ((len & 0xc0) == 0xc0) {
      // Compression pointer (RFC 1035 §4.1.4).
      DNSBOOT_TRY(low, reader.u8());
      std::size_t target = static_cast<std::size_t>(len & 0x3f) << 8 | low;
      if (!jumped) {
        resume_at = reader.offset();
        jumped = true;
      }
      if (++hops > 32) {
        return Error{"name.pointer_loop", "too many compression pointers"};
      }
      if (target >= reader.offset() - 2 && !jumped) {
        return Error{"name.bad_pointer", "forward compression pointer"};
      }
      DNSBOOT_CHECK(reader.seek(target));
      continue;
    }
    if ((len & 0xc0) != 0) {
      return Error{"name.bad_label_type",
                   "reserved label type " + std::to_string(len >> 6)};
    }
    if (len == 0) break;  // root
    wire_len += len + 1;
    if (wire_len > kMaxNameWireLength) {
      return Error{"name.too_long", "decoded name exceeds 255 octets"};
    }
    DNSBOOT_TRY(raw, reader.bytes(len));
    flat_buf[flat_len++] = static_cast<char>(len);
    std::copy(raw.begin(), raw.end(), flat_buf + flat_len);
    flat_len += len;
    ++count;
  }

  if (jumped) DNSBOOT_CHECK(reader.seek(resume_at));

  return intern(std::string_view(flat_buf, flat_len), count);
}

void Name::encode(ByteWriter& writer) const {
  writer.raw(rep_().flat);
  writer.u8(0);
}

void Name::encode_canonical(ByteWriter& writer) const {
  for (std::string_view label : labels()) {
    writer.u8(static_cast<std::uint8_t>(label.size()));
    for (char c : label) writer.u8(static_cast<std::uint8_t>(ascii_lower(c)));
  }
  writer.u8(0);
}

std::string Name::to_text() const {
  if (is_root()) return ".";
  std::string out;
  out.reserve(canonical_text().size());
  for (std::string_view label : labels()) {
    for (char c : label) append_escaped(out, c, /*lower=*/false);
    out.push_back('.');
  }
  return out;
}

Name Name::parent() const {
  const NamePool::Rep& r = rep_();
  if (r.label_count <= 1) return Name();
  std::size_t skip = 1 + static_cast<unsigned char>(r.flat[0]);
  return intern(r.flat.substr(skip), r.label_count - 1u);
}

Name Name::suffix(std::size_t n) const {
  const NamePool::Rep& r = rep_();
  if (n >= r.label_count) return *this;
  if (n == 0) return Name();
  std::size_t skip = flat_offset_of(r.label_count - n);
  return intern(r.flat.substr(skip), n);
}

Result<Name> Name::prepend(std::string_view label) const {
  DNSBOOT_CHECK(check_label(label));
  std::string_view flat = rep_().flat;
  std::size_t new_wire = flat.size() + 1 + label.size() + 1;
  if (new_wire > kMaxNameWireLength) {
    return Error{"name.too_long",
                 "wire length " + std::to_string(new_wire) + " exceeds 255"};
  }
  std::string out;
  out.reserve(1 + label.size() + flat.size());
  out.push_back(static_cast<char>(label.size()));
  out.append(label);
  out.append(flat);
  return intern(out, label_count() + 1);
}

Result<Name> Name::concat(const Name& suffix) const {
  std::string_view a = rep_().flat;
  std::string_view b = suffix.rep_().flat;
  std::size_t new_wire = a.size() + b.size() + 1;
  if (new_wire > kMaxNameWireLength) {
    return Error{"name.too_long",
                 "wire length " + std::to_string(new_wire) + " exceeds 255"};
  }
  std::size_t count = label_count() + suffix.label_count();
  if (count == 0) return Name();
  std::string flat;
  flat.reserve(a.size() + b.size());
  flat.append(a);
  flat.append(b);
  return intern(flat, count);
}

bool Name::is_under(const Name& ancestor) const {
  const NamePool::Rep& mine = rep_();
  const NamePool::Rep& anc_rep = ancestor.rep_();
  if (anc_rep.label_count > mine.label_count) return false;
  std::size_t pos = flat_offset_of(mine.label_count - anc_rep.label_count);
  std::string_view tail = mine.flat.substr(pos);
  std::string_view anc = anc_rep.flat;
  if (tail.size() != anc.size()) return false;
  // Compare label by label: length bytes must match exactly, label octets
  // case-insensitively.
  while (!tail.empty()) {
    auto len_a = static_cast<unsigned char>(tail[0]);
    auto len_b = static_cast<unsigned char>(anc[0]);
    if (len_a != len_b) return false;
    if (!ascii_iequals(tail.substr(1, len_a), anc.substr(1, len_b))) {
      return false;
    }
    tail.remove_prefix(1 + len_a);
    anc.remove_prefix(1 + len_b);
  }
  return true;
}

bool Name::is_strictly_under(const Name& ancestor) const {
  return label_count() > ancestor.label_count() && is_under(ancestor);
}

std::strong_ordering Name::operator<=>(const Name& other) const {
  const NamePool::Rep* a = rep_().canon;
  const NamePool::Rep* b = other.rep_().canon;
  if (a == b) return std::strong_ordering::equal;
  // RFC 4034 §6.1 order is plain byte order over the pooled order keys, and
  // the key encoding is injective, so distinct canonical entries never
  // compare equal here.
  int c = a->order_key.compare(b->order_key);
  return c < 0 ? std::strong_ordering::less : std::strong_ordering::greater;
}

}  // namespace dnsboot::dns
