#include "dns/name.hpp"

#include <algorithm>

#include "base/strings.hpp"

namespace dnsboot::dns {
namespace {

// Validate a single raw label (post-escape-processing).
Status check_label(std::string_view label) {
  if (label.empty()) return Error{"name.empty_label", "empty interior label"};
  if (label.size() > kMaxLabelLength) {
    return Error{"name.label_too_long",
                 "label of " + std::to_string(label.size()) + " octets"};
  }
  return Status::ok_status();
}

Status check_total_length(const std::vector<std::string>& labels) {
  std::size_t total = 1;  // root byte
  for (const auto& l : labels) total += l.size() + 1;
  if (total > kMaxNameWireLength) {
    return Error{"name.too_long",
                 "wire length " + std::to_string(total) + " exceeds 255"};
  }
  return Status::ok_status();
}

}  // namespace

Result<Name> Name::from_text(std::string_view text) {
  if (text.empty()) return Error{"name.empty", "empty name"};
  if (text == ".") return Name::root();

  std::vector<std::string> labels;
  std::string current;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size()) {
        return Error{"name.bad_escape", "trailing backslash"};
      }
      char next = text[i + 1];
      if (next >= '0' && next <= '9') {
        if (i + 3 >= text.size() || text[i + 2] < '0' || text[i + 2] > '9' ||
            text[i + 3] < '0' || text[i + 3] > '9') {
          return Error{"name.bad_escape", "incomplete \\DDD escape"};
        }
        int value = (next - '0') * 100 + (text[i + 2] - '0') * 10 +
                    (text[i + 3] - '0');
        if (value > 255) return Error{"name.bad_escape", "\\DDD out of range"};
        current.push_back(static_cast<char>(value));
        i += 3;
      } else {
        current.push_back(next);
        ++i;
      }
    } else if (c == '.') {
      if (current.empty()) {
        return Error{"name.empty_label", "empty label in " + std::string(text)};
      }
      DNSBOOT_CHECK(check_label(current));
      labels.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    DNSBOOT_CHECK(check_label(current));
    labels.push_back(std::move(current));
  }
  DNSBOOT_CHECK(check_total_length(labels));
  return Name(std::move(labels));
}

Result<Name> Name::from_labels(std::vector<std::string> labels) {
  for (const auto& l : labels) DNSBOOT_CHECK(check_label(l));
  DNSBOOT_CHECK(check_total_length(labels));
  return Name(std::move(labels));
}

Result<Name> Name::decode(ByteReader& reader) {
  std::vector<std::string> labels;
  std::size_t wire_len = 1;
  // Position to restore after the first compression pointer.
  bool jumped = false;
  std::size_t resume_at = 0;
  int hops = 0;

  while (true) {
    DNSBOOT_TRY(len, reader.u8());
    if ((len & 0xc0) == 0xc0) {
      // Compression pointer (RFC 1035 §4.1.4).
      DNSBOOT_TRY(low, reader.u8());
      std::size_t target = static_cast<std::size_t>(len & 0x3f) << 8 | low;
      if (!jumped) {
        resume_at = reader.offset();
        jumped = true;
      }
      if (++hops > 32) {
        return Error{"name.pointer_loop", "too many compression pointers"};
      }
      if (target >= reader.offset() - 2 && !jumped) {
        return Error{"name.bad_pointer", "forward compression pointer"};
      }
      DNSBOOT_CHECK(reader.seek(target));
      continue;
    }
    if ((len & 0xc0) != 0) {
      return Error{"name.bad_label_type",
                   "reserved label type " + std::to_string(len >> 6)};
    }
    if (len == 0) break;  // root
    wire_len += len + 1;
    if (wire_len > kMaxNameWireLength) {
      return Error{"name.too_long", "decoded name exceeds 255 octets"};
    }
    DNSBOOT_TRY(raw, reader.bytes(len));
    labels.emplace_back(raw.begin(), raw.end());
  }

  if (jumped) DNSBOOT_CHECK(reader.seek(resume_at));
  return Name(std::move(labels));
}

void Name::encode(ByteWriter& writer) const {
  for (const auto& label : labels_) {
    writer.u8(static_cast<std::uint8_t>(label.size()));
    writer.raw(label);
  }
  writer.u8(0);
}

void Name::encode_canonical(ByteWriter& writer) const {
  for (const auto& label : labels_) {
    writer.u8(static_cast<std::uint8_t>(label.size()));
    writer.raw(ascii_lower(label));
  }
  writer.u8(0);
}

std::string Name::to_text() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& label : labels_) {
    for (char c : label) {
      if (c == '.' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x21 ||
                 static_cast<unsigned char>(c) > 0x7e) {
        unsigned v = static_cast<unsigned char>(c);
        out.push_back('\\');
        out.push_back(static_cast<char>('0' + v / 100));
        out.push_back(static_cast<char>('0' + (v / 10) % 10));
        out.push_back(static_cast<char>('0' + v % 10));
      } else {
        out.push_back(c);
      }
    }
    out.push_back('.');
  }
  return out;
}

std::size_t Name::wire_length() const {
  std::size_t total = 1;
  for (const auto& l : labels_) total += l.size() + 1;
  return total;
}

Name Name::parent() const {
  if (labels_.empty()) return Name();
  return Name(std::vector<std::string>(labels_.begin() + 1, labels_.end()));
}

Result<Name> Name::prepend(std::string_view label) const {
  DNSBOOT_CHECK(check_label(label));
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  DNSBOOT_CHECK(check_total_length(labels));
  return Name(std::move(labels));
}

Result<Name> Name::concat(const Name& suffix) const {
  std::vector<std::string> labels = labels_;
  labels.insert(labels.end(), suffix.labels_.begin(), suffix.labels_.end());
  DNSBOOT_CHECK(check_total_length(labels));
  return Name(std::move(labels));
}

bool Name::is_under(const Name& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  auto it = labels_.end() - static_cast<std::ptrdiff_t>(ancestor.labels_.size());
  for (const auto& al : ancestor.labels_) {
    if (!ascii_iequals(*it, al)) return false;
    ++it;
  }
  return true;
}

bool Name::is_strictly_under(const Name& ancestor) const {
  return labels_.size() > ancestor.labels_.size() && is_under(ancestor);
}

bool Name::operator==(const Name& other) const {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!ascii_iequals(labels_[i], other.labels_[i])) return false;
  }
  return true;
}

std::strong_ordering Name::operator<=>(const Name& other) const {
  // RFC 4034 §6.1: compare label sequences right to left; absent labels sort
  // first; labels compare as case-folded octet strings.
  std::size_t n = std::min(labels_.size(), other.labels_.size());
  for (std::size_t i = 1; i <= n; ++i) {
    const std::string& a = labels_[labels_.size() - i];
    const std::string& b = other.labels_[other.labels_.size() - i];
    std::size_t m = std::min(a.size(), b.size());
    for (std::size_t j = 0; j < m; ++j) {
      unsigned char ca = static_cast<unsigned char>(ascii_lower(a[j]));
      unsigned char cb = static_cast<unsigned char>(ascii_lower(b[j]));
      if (ca != cb) return ca <=> cb;
    }
    if (a.size() != b.size()) return a.size() <=> b.size();
  }
  return labels_.size() <=> other.labels_.size();
}

std::string Name::canonical_text() const { return ascii_lower(to_text()); }

}  // namespace dnsboot::dns
