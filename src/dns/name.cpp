#include "dns/name.hpp"

#include <algorithm>

#include "base/strings.hpp"

namespace dnsboot::dns {
namespace {

// Validate a single raw label (post-escape-processing).
Status check_label(std::string_view label) {
  if (label.empty()) return Error{"name.empty_label", "empty interior label"};
  if (label.size() > kMaxLabelLength) {
    return Error{"name.label_too_long",
                 "label of " + std::to_string(label.size()) + " octets"};
  }
  return Status::ok_status();
}

Status check_total_length(const std::vector<std::string>& labels) {
  std::size_t total = 1;  // root byte
  for (const auto& l : labels) total += l.size() + 1;
  if (total > kMaxNameWireLength) {
    return Error{"name.too_long",
                 "wire length " + std::to_string(total) + " exceeds 255"};
  }
  return Status::ok_status();
}

// Escape one presentation-form character into `out`, lowercasing when
// `lower` (the canonical form is the lower-cased escaped spelling).
void append_escaped(std::string& out, char c, bool lower) {
  if (c == '.' || c == '\\') {
    out.push_back('\\');
    out.push_back(c);
  } else if (static_cast<unsigned char>(c) < 0x21 ||
             static_cast<unsigned char>(c) > 0x7e) {
    unsigned v = static_cast<unsigned char>(c);
    out.push_back('\\');
    out.push_back(static_cast<char>('0' + v / 100));
    out.push_back(static_cast<char>('0' + (v / 10) % 10));
    out.push_back(static_cast<char>('0' + v % 10));
  } else {
    out.push_back(lower ? ascii_lower(c) : c);
  }
}

void append_canon_label(std::string& out, std::string_view label) {
  // Fast path: labels are overwhelmingly plain lowercase LDH strings, which
  // canonicalize to themselves — one bulk append instead of per-char escaping.
  bool plain = true;
  for (char c : label) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x21 || u > 0x7e || c == '.' || c == '\\' ||
        (c >= 'A' && c <= 'Z')) {
      plain = false;
      break;
    }
  }
  if (plain) {
    out.append(label);
  } else {
    for (char c : label) append_escaped(out, c, /*lower=*/true);
  }
  out.push_back('.');
}

// Label start offsets within a flat buffer, for right-to-left comparisons. A
// name has at most 127 labels (255-octet wire limit, 2 octets per label
// minimum) and a flat buffer of at most 254 octets, so uint8_t offsets fit.
std::size_t collect_label_offsets(std::string_view flat,
                                  std::uint8_t (&out)[128]) {
  std::size_t n = 0;
  std::size_t pos = 0;
  while (pos < flat.size()) {
    out[n++] = static_cast<std::uint8_t>(pos);
    pos += 1 + static_cast<unsigned char>(flat[pos]);
  }
  return n;
}

}  // namespace

std::size_t canonical_label_width(std::string_view label) {
  std::size_t width = 0;
  for (char c : label) {
    if (c == '.' || c == '\\') {
      width += 2;
    } else if (static_cast<unsigned char>(c) < 0x21 ||
               static_cast<unsigned char>(c) > 0x7e) {
      width += 4;
    } else {
      width += 1;
    }
  }
  return width;
}

Name Name::build(const std::vector<std::string>& labels) {
  Name out;
  if (labels.empty()) return out;
  std::size_t flat_size = 0;
  for (const auto& l : labels) flat_size += 1 + l.size();
  out.flat_.reserve(flat_size);
  out.canon_.clear();
  for (const auto& l : labels) {
    out.flat_.push_back(static_cast<char>(l.size()));
    out.flat_.append(l);
    append_canon_label(out.canon_, l);
  }
  out.label_count_ = static_cast<std::uint8_t>(labels.size());
  return out;
}

Name Name::from_parts(std::string flat, std::string canon,
                      std::uint8_t count) {
  Name out;
  out.flat_ = std::move(flat);
  out.canon_ = std::move(canon);
  out.label_count_ = count;
  return out;
}

std::size_t Name::flat_offset_of(std::size_t index,
                                 std::size_t* canon_offset) const {
  std::size_t flat_pos = 0;
  std::size_t canon_pos = 0;
  for (std::size_t i = 0; i < index; ++i) {
    auto len = static_cast<unsigned char>(flat_[flat_pos]);
    if (canon_offset != nullptr) {
      canon_pos +=
          canonical_label_width(std::string_view(flat_).substr(flat_pos + 1,
                                                               len)) +
          1;
    }
    flat_pos += 1 + len;
  }
  if (canon_offset != nullptr) *canon_offset = canon_pos;
  return flat_pos;
}

Result<Name> Name::from_text(std::string_view text) {
  if (text.empty()) return Error{"name.empty", "empty name"};
  if (text == ".") return Name::root();

  std::vector<std::string> labels;
  std::string current;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size()) {
        return Error{"name.bad_escape", "trailing backslash"};
      }
      char next = text[i + 1];
      if (next >= '0' && next <= '9') {
        if (i + 3 >= text.size() || text[i + 2] < '0' || text[i + 2] > '9' ||
            text[i + 3] < '0' || text[i + 3] > '9') {
          return Error{"name.bad_escape", "incomplete \\DDD escape"};
        }
        int value = (next - '0') * 100 + (text[i + 2] - '0') * 10 +
                    (text[i + 3] - '0');
        if (value > 255) return Error{"name.bad_escape", "\\DDD out of range"};
        current.push_back(static_cast<char>(value));
        i += 3;
      } else {
        current.push_back(next);
        ++i;
      }
    } else if (c == '.') {
      if (current.empty()) {
        return Error{"name.empty_label", "empty label in " + std::string(text)};
      }
      DNSBOOT_CHECK(check_label(current));
      labels.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    DNSBOOT_CHECK(check_label(current));
    labels.push_back(std::move(current));
  }
  DNSBOOT_CHECK(check_total_length(labels));
  return build(labels);
}

Result<Name> Name::from_labels(std::vector<std::string> labels) {
  for (const auto& l : labels) DNSBOOT_CHECK(check_label(l));
  DNSBOOT_CHECK(check_total_length(labels));
  return build(labels);
}

Result<Name> Name::decode(ByteReader& reader) {
  std::string flat;
  std::size_t count = 0;
  std::size_t wire_len = 1;
  // Position to restore after the first compression pointer.
  bool jumped = false;
  std::size_t resume_at = 0;
  int hops = 0;

  while (true) {
    DNSBOOT_TRY(len, reader.u8());
    if ((len & 0xc0) == 0xc0) {
      // Compression pointer (RFC 1035 §4.1.4).
      DNSBOOT_TRY(low, reader.u8());
      std::size_t target = static_cast<std::size_t>(len & 0x3f) << 8 | low;
      if (!jumped) {
        resume_at = reader.offset();
        jumped = true;
      }
      if (++hops > 32) {
        return Error{"name.pointer_loop", "too many compression pointers"};
      }
      if (target >= reader.offset() - 2 && !jumped) {
        return Error{"name.bad_pointer", "forward compression pointer"};
      }
      DNSBOOT_CHECK(reader.seek(target));
      continue;
    }
    if ((len & 0xc0) != 0) {
      return Error{"name.bad_label_type",
                   "reserved label type " + std::to_string(len >> 6)};
    }
    if (len == 0) break;  // root
    wire_len += len + 1;
    if (wire_len > kMaxNameWireLength) {
      return Error{"name.too_long", "decoded name exceeds 255 octets"};
    }
    DNSBOOT_TRY(raw, reader.bytes(len));
    flat.push_back(static_cast<char>(len));
    flat.append(raw.begin(), raw.end());
    ++count;
  }

  if (jumped) DNSBOOT_CHECK(reader.seek(resume_at));

  std::string canon;
  if (count == 0) {
    canon = ".";
  } else {
    for (std::string_view label : LabelsView(flat, count)) {
      append_canon_label(canon, label);
    }
  }
  return from_parts(std::move(flat), std::move(canon),
                    static_cast<std::uint8_t>(count));
}

void Name::encode(ByteWriter& writer) const {
  writer.raw(flat_);
  writer.u8(0);
}

void Name::encode_canonical(ByteWriter& writer) const {
  for (std::string_view label : labels()) {
    writer.u8(static_cast<std::uint8_t>(label.size()));
    for (char c : label) writer.u8(static_cast<std::uint8_t>(ascii_lower(c)));
  }
  writer.u8(0);
}

std::string Name::to_text() const {
  if (is_root()) return ".";
  std::string out;
  out.reserve(canon_.size());
  for (std::string_view label : labels()) {
    for (char c : label) append_escaped(out, c, /*lower=*/false);
    out.push_back('.');
  }
  return out;
}

Name Name::parent() const {
  if (is_root()) return Name();
  if (label_count_ == 1) return Name();
  std::size_t canon_skip = 0;
  std::size_t flat_skip = flat_offset_of(1, &canon_skip);
  return from_parts(flat_.substr(flat_skip), canon_.substr(canon_skip),
                    static_cast<std::uint8_t>(label_count_ - 1));
}

Name Name::suffix(std::size_t n) const {
  if (n >= label_count_) return *this;
  if (n == 0) return Name();
  std::size_t canon_skip = 0;
  std::size_t flat_skip = flat_offset_of(label_count_ - n, &canon_skip);
  return from_parts(flat_.substr(flat_skip), canon_.substr(canon_skip),
                    static_cast<std::uint8_t>(n));
}

Result<Name> Name::prepend(std::string_view label) const {
  DNSBOOT_CHECK(check_label(label));
  std::size_t new_wire = flat_.size() + 1 + label.size() + 1;
  if (new_wire > kMaxNameWireLength) {
    return Error{"name.too_long",
                 "wire length " + std::to_string(new_wire) + " exceeds 255"};
  }
  std::string flat;
  flat.reserve(1 + label.size() + flat_.size());
  flat.push_back(static_cast<char>(label.size()));
  flat.append(label);
  flat.append(flat_);
  std::string canon;
  canon.reserve(canonical_label_width(label) + 1 + canon_.size());
  append_canon_label(canon, label);
  if (!is_root()) canon.append(canon_);
  return from_parts(std::move(flat), std::move(canon),
                    static_cast<std::uint8_t>(label_count_ + 1));
}

Result<Name> Name::concat(const Name& suffix) const {
  std::size_t new_wire = flat_.size() + suffix.flat_.size() + 1;
  if (new_wire > kMaxNameWireLength) {
    return Error{"name.too_long",
                 "wire length " + std::to_string(new_wire) + " exceeds 255"};
  }
  std::size_t count = label_count_ + suffix.label_count_;
  if (count == 0) return Name();
  std::string flat = flat_ + suffix.flat_;
  std::string canon;
  if (!is_root()) canon.append(canon_);
  if (!suffix.is_root()) canon.append(suffix.canon_);
  return from_parts(std::move(flat), std::move(canon),
                    static_cast<std::uint8_t>(count));
}

bool Name::is_under(const Name& ancestor) const {
  if (ancestor.label_count_ > label_count_) return false;
  std::size_t pos = flat_offset_of(label_count_ - ancestor.label_count_);
  std::string_view tail = std::string_view(flat_).substr(pos);
  std::string_view anc = ancestor.flat_;
  if (tail.size() != anc.size()) return false;
  // Compare label by label: length bytes must match exactly, label octets
  // case-insensitively.
  while (!tail.empty()) {
    auto len_a = static_cast<unsigned char>(tail[0]);
    auto len_b = static_cast<unsigned char>(anc[0]);
    if (len_a != len_b) return false;
    if (!ascii_iequals(tail.substr(1, len_a), anc.substr(1, len_b))) {
      return false;
    }
    tail.remove_prefix(1 + len_a);
    anc.remove_prefix(1 + len_b);
  }
  return true;
}

bool Name::is_strictly_under(const Name& ancestor) const {
  return label_count_ > ancestor.label_count_ && is_under(ancestor);
}

std::strong_ordering Name::operator<=>(const Name& other) const {
  // Equal names share a canonical spelling; one memcmp settles the common
  // case (map lookups hit it once per find) before the label walk.
  if (canon_ == other.canon_) return std::strong_ordering::equal;
  // RFC 4034 §6.1: compare label sequences right to left; absent labels sort
  // first; labels compare as case-folded octet strings. Offset arrays are
  // uninitialized PODs on purpose — only the first na/nb slots are written.
  std::uint8_t mine[128];
  std::uint8_t theirs[128];
  std::size_t na = collect_label_offsets(flat_, mine);
  std::size_t nb = collect_label_offsets(other.flat_, theirs);
  std::size_t n = std::min(na, nb);
  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t pa = mine[na - i];
    std::size_t pb = theirs[nb - i];
    std::size_t la = static_cast<unsigned char>(flat_[pa]);
    std::size_t lb = static_cast<unsigned char>(other.flat_[pb]);
    std::size_t m = std::min(la, lb);
    for (std::size_t j = 0; j < m; ++j) {
      unsigned char ca =
          static_cast<unsigned char>(ascii_lower(flat_[pa + 1 + j]));
      unsigned char cb =
          static_cast<unsigned char>(ascii_lower(other.flat_[pb + 1 + j]));
      if (ca != cb) return ca <=> cb;
    }
    if (la != lb) return la <=> lb;
  }
  return na <=> nb;
}

}  // namespace dnsboot::dns
