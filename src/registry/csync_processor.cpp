#include "registry/csync_processor.hpp"

#include "analysis/zone_report.hpp"

namespace dnsboot::registry {
namespace {

using scanner::RRsetProbe;

const RRsetProbe* first_signed_answer(
    const std::vector<const RRsetProbe*>& probes) {
  const RRsetProbe* any = nullptr;
  for (const auto* probe : probes) {
    if (probe->outcome != RRsetProbe::Outcome::kAnswer) continue;
    if (!probe->rrset.signatures.empty()) return probe;
    if (any == nullptr) any = probe;
  }
  return any;
}

}  // namespace

std::string to_string(CsyncOutcome::Action action) {
  switch (action) {
    case CsyncOutcome::Action::kNone: return "none";
    case CsyncOutcome::Action::kSynchronized: return "synchronized";
    case CsyncOutcome::Action::kDeferred: return "deferred";
    case CsyncOutcome::Action::kRejected: return "rejected";
  }
  return "?";
}

CsyncProcessor::CsyncProcessor(net::Transport& network,
                               resolver::QueryEngine& engine,
                               resolver::DelegationResolver& resolver,
                               ecosystem::TldHandle handle, dns::Name tld,
                               std::uint32_t now)
    : network_(network),
      engine_(engine),
      resolver_(resolver),
      handle_(std::move(handle)),
      tld_(std::move(tld)),
      now_(now) {}

CsyncOutcome CsyncProcessor::decide(const dns::Name& zone,
                                    const scanner::ZoneObservation& obs,
                                    const analysis::TrustContext& trust) {
  CsyncOutcome outcome;
  if (!obs.resolved) {
    outcome.reason = "zone did not resolve";
    return outcome;
  }
  if (!zone.is_under(tld_)) {
    outcome.action = CsyncOutcome::Action::kRejected;
    outcome.reason = "zone outside this registry's TLD";
    return outcome;
  }

  const RRsetProbe* csync = first_signed_answer(
      obs.probes_of(dns::RRType::kCSYNC));
  if (csync == nullptr) {
    outcome.reason = "no CSYNC published";
    return outcome;
  }

  // RFC 7477 §3: the CSYNC RRset MUST be validated with DNSSEC — an
  // unsigned or unvalidatable CSYNC is ignored.
  const RRsetProbe* dnskey = first_signed_answer(
      obs.probes_of(dns::RRType::kDNSKEY));
  if (dnskey == nullptr ||
      !trust.validate_parent_ds(obs.tld, obs.parent_ds)) {
    outcome.action = CsyncOutcome::Action::kRejected;
    outcome.reason = "zone is not securely delegated; CSYNC unusable";
    return outcome;
  }
  std::vector<dns::DsRdata> parent_ds;
  for (const auto& rd : obs.parent_ds.rrset.rdatas) {
    if (const auto* ds = std::get_if<dns::DsRdata>(&rd)) {
      parent_ds.push_back(*ds);
    }
  }
  auto chain = dnssec::validate_dnskey_rrset(zone, dnskey->rrset, parent_ds,
                                             now_);
  if (!chain.valid) {
    outcome.action = CsyncOutcome::Action::kRejected;
    outcome.reason = "DNSKEY chain invalid: " + chain.reason;
    return outcome;
  }
  auto keys = analysis::dnskeys_of(dnskey->rrset.rrset);
  auto csync_valid = dnssec::verify_rrset(
      csync->rrset.rrset, csync->rrset.signatures, keys, zone, now_);
  if (!csync_valid.valid) {
    outcome.action = CsyncOutcome::Action::kRejected;
    outcome.reason = "CSYNC signature invalid: " + csync_valid.reason;
    return outcome;
  }

  const auto& rdata = std::get<dns::CsyncRdata>(csync->rrset.rrset.rdatas[0]);
  constexpr std::uint16_t kFlagImmediate = 0x0001;
  constexpr std::uint16_t kFlagSoaMinimum = 0x0002;
  if ((rdata.flags & kFlagImmediate) == 0) {
    // Without "immediate", the serial gate applies (RFC 7477 §2.1.1). The
    // registry would compare against the SOA serial it has processed before;
    // dnsboot has no persistent serial store, so defer.
    outcome.action = CsyncOutcome::Action::kDeferred;
    outcome.reason = "immediate flag clear; serial-gated";
    return outcome;
  }
  if ((rdata.flags & kFlagSoaMinimum) != 0) {
    const RRsetProbe* soa = first_signed_answer(obs.probes_of(dns::RRType::kSOA));
    if (soa != nullptr) {
      const auto& soa_rdata = std::get<dns::SoaRdata>(soa->rrset.rrset.rdatas[0]);
      if (soa_rdata.serial < rdata.soa_serial) {
        outcome.action = CsyncOutcome::Action::kDeferred;
        outcome.reason = "zone serial below CSYNC soa_serial";
        return outcome;
      }
    }
  }
  if (!rdata.types.contains(dns::RRType::kNS)) {
    outcome.reason = "CSYNC does not cover NS";
    return outcome;
  }

  // Child's validated apex NS set.
  const RRsetProbe* ns = first_signed_answer(obs.probes_of(dns::RRType::kNS));
  if (ns == nullptr) {
    outcome.action = CsyncOutcome::Action::kRejected;
    outcome.reason = "no NS answer from the child";
    return outcome;
  }
  auto ns_valid = dnssec::verify_rrset(ns->rrset.rrset, ns->rrset.signatures,
                                       keys, zone, now_);
  if (!ns_valid.valid) {
    outcome.action = CsyncOutcome::Action::kRejected;
    outcome.reason = "child NS RRset not validly signed";
    return outcome;
  }
  std::vector<dns::Name> child_ns;
  for (const auto& rd : ns->rrset.rrset.rdatas) {
    child_ns.push_back(std::get<dns::NsRdata>(rd).nsdname);
  }

  // Compare with the delegation currently installed.
  bool differs = child_ns.size() != obs.parent_ns.size();
  if (!differs) {
    for (const auto& name : child_ns) {
      bool found = false;
      for (const auto& existing : obs.parent_ns) {
        if (existing == name) {
          found = true;
          break;
        }
      }
      if (!found) {
        differs = true;
        break;
      }
    }
  }
  if (!differs) {
    outcome.reason = "delegation NS already matches the child";
    return outcome;
  }

  dns::Zone& tld_zone = *handle_.zone;
  tld_zone.remove_rrset(zone, dns::RRType::kNS);
  for (const auto& name : child_ns) {
    dns::ResourceRecord rr;
    rr.name = zone;
    rr.type = dns::RRType::kNS;
    rr.ttl = 86400;
    rr.rdata = dns::NsRdata{name};
    if (auto status = tld_zone.add(rr); !status.ok()) {
      outcome.action = CsyncOutcome::Action::kRejected;
      outcome.reason = status.error().to_string();
      return outcome;
    }
  }
  outcome.action = CsyncOutcome::Action::kSynchronized;
  outcome.reason = "delegation NS set synchronized from the child";
  outcome.new_ns = std::move(child_ns);
  return outcome;
}

void CsyncProcessor::process(const dns::Name& zone, Callback callback) {
  scanner::ScannerOptions options;
  options.scan_csync = true;
  options.scan_signal_zones = false;  // CSYNC needs no signaling trees
  // Ownership: see CdsProcessor::process — the processor holds the scanner
  // until the deferred decision consumes it.
  const std::uint64_t scan_id = next_scan_id_++;
  auto scanner = std::make_shared<scanner::Scanner>(network_, engine_,
                                                    resolver_, options);
  active_scans_.emplace(scan_id, scanner);
  auto cb = std::make_shared<Callback>(std::move(callback));
  scanner->scan({zone}, [this, scan_id, cb,
                         zone](scanner::ZoneObservation obs) {
    network_.schedule(net::kSecond, [this, scan_id, cb, zone,
                                     obs = std::move(obs)] {
      auto it = active_scans_.find(scan_id);
      if (it == active_scans_.end()) return;
      std::shared_ptr<scanner::Scanner> owned = std::move(it->second);
      active_scans_.erase(it);
      analysis::TrustContext trust(owned->infrastructure(),
                                   resolver_.hints().trust_anchor, now_);
      (*cb)(decide(zone, obs, trust));
    });
  });
}

}  // namespace dnsboot::registry
