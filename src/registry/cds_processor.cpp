#include "registry/cds_processor.hpp"

#include "analysis/trust.hpp"
#include "crypto/sha2.hpp"
#include "dnssec/signer.hpp"

namespace dnsboot::registry {

std::string to_string(ProcessingOutcome::Action action) {
  switch (action) {
    case ProcessingOutcome::Action::kNone: return "none";
    case ProcessingOutcome::Action::kBootstrapped: return "bootstrapped";
    case ProcessingOutcome::Action::kBootstrappedUnauthenticated:
      return "bootstrapped-unauthenticated";
    case ProcessingOutcome::Action::kRolledOver: return "rolled-over";
    case ProcessingOutcome::Action::kDeleted: return "deleted";
    case ProcessingOutcome::Action::kHeldDown: return "held-down";
    case ProcessingOutcome::Action::kRejected: return "rejected";
  }
  return "?";
}

CdsProcessor::CdsProcessor(net::Transport& network,
                           resolver::QueryEngine& engine,
                           resolver::DelegationResolver& resolver,
                           ecosystem::TldHandle handle, RegistryConfig config)
    : network_(network),
      engine_(engine),
      resolver_(resolver),
      handle_(std::move(handle)),
      config_(std::move(config)) {}

Bytes CdsProcessor::cds_digest(const std::vector<dns::DsRdata>& cds) {
  ByteWriter w;
  for (const auto& ds : cds) {
    w.u16(ds.key_tag);
    w.u8(ds.algorithm);
    w.u8(ds.digest_type);
    w.raw(ds.digest);
  }
  auto digest = crypto::Sha256::digest(w.data());
  return Bytes(digest.begin(), digest.end());
}

Status CdsProcessor::install_ds(const dns::Name& zone,
                                const std::vector<dns::DsRdata>& ds_set) {
  if (!zone.is_under(config_.tld)) {
    return Error{"registry.foreign_zone", zone.to_text()};
  }
  if (ds_set.empty()) return Error{"registry.empty_ds", zone.to_text()};
  dns::Zone& tld_zone = *handle_.zone;
  tld_zone.remove_rrset(zone, dns::RRType::kDS);
  dns::RRset set;
  set.name = zone;
  set.type = dns::RRType::kDS;
  set.ttl = 86400;
  for (const auto& ds : ds_set) set.rdatas.push_back(dns::Rdata{ds});
  DNSBOOT_CHECK(tld_zone.add_rrset(set));
  // Sign the new DS RRset with the TLD's ZSK so the child's chain closes.
  tld_zone.remove_signatures(zone, dns::RRType::kDS);
  DNSBOOT_CHECK(tld_zone.add(
      dnssec::sign_rrset(set, handle_.keys.zsk, config_.tld, handle_.policy)));
  return Status::ok_status();
}

Status CdsProcessor::remove_ds(const dns::Name& zone) {
  if (!zone.is_under(config_.tld)) {
    return Error{"registry.foreign_zone", zone.to_text()};
  }
  handle_.zone->remove_rrset(zone, dns::RRType::kDS);
  return Status::ok_status();
}

ProcessingOutcome CdsProcessor::decide(const dns::Name& zone,
                                       const analysis::ZoneReport& report) {
  using Action = ProcessingOutcome::Action;
  ProcessingOutcome outcome;
  outcome.report = report;

  if (!report.resolved) {
    outcome.action = Action::kNone;
    outcome.reason = "zone did not resolve";
    return outcome;
  }

  // --- delete requests (RFC 8078 §4) --------------------------------------
  if (report.cds.present && report.cds.delete_request) {
    if (!config_.process_deletes) {
      outcome.action = Action::kRejected;
      outcome.reason = "delete requests disabled by policy";
      return outcome;
    }
    const bool had_ds =
        handle_.zone->find_rrset(zone, dns::RRType::kDS) != nullptr;
    if (!had_ds) {
      outcome.action = Action::kNone;
      outcome.reason = "delete request with no DS installed";
      return outcome;
    }
    if (auto status = remove_ds(zone); !status.ok()) {
      outcome.action = Action::kRejected;
      outcome.reason = status.error().to_string();
      return outcome;
    }
    outcome.action = Action::kDeleted;
    outcome.reason = "CDS delete sentinel honoured";
    return outcome;
  }

  // --- rollover on secured zones (RFC 7344) --------------------------------
  if (report.dnssec == dnssec::ZoneDnssecStatus::kSecure) {
    if (!config_.process_rollovers || !report.cds.present) {
      outcome.action = Action::kNone;
      outcome.reason = "secured zone, no actionable CDS";
      return outcome;
    }
    if (!report.cds.consistent || !report.cds.matches_dnskey ||
        !report.cds.rrsig_valid) {
      outcome.action = Action::kRejected;
      outcome.reason = "CDS failed rollover validation";
      return outcome;
    }
    // Compare with the installed DS set; replace only on change.
    const dns::RRset* current = handle_.zone->find_rrset(zone, dns::RRType::kDS);
    std::vector<dns::DsRdata> installed;
    if (current != nullptr) {
      for (const auto& rd : current->rdatas) {
        installed.push_back(std::get<dns::DsRdata>(rd));
      }
    }
    if (cds_digest(installed) == cds_digest(report.cds.cds)) {
      outcome.action = Action::kNone;
      outcome.reason = "CDS already matches installed DS";
      return outcome;
    }
    if (auto status = install_ds(zone, report.cds.cds); !status.ok()) {
      outcome.action = Action::kRejected;
      outcome.reason = status.error().to_string();
      return outcome;
    }
    outcome.action = Action::kRolledOver;
    outcome.reason = "DS replaced to match CDS";
    return outcome;
  }

  // --- bootstrapping (zone not currently secured) ---------------------------
  if (report.eligibility !=
      analysis::BootstrapEligibility::kBootstrappable) {
    outcome.action = report.cds.present ? Action::kRejected : Action::kNone;
    outcome.reason =
        "not bootstrappable: " + analysis::to_string(report.eligibility);
    return outcome;
  }

  // RFC 8078 §3 precondition for any install path: the zone must validate
  // with the prospective DS (the analysis has already checked CDS↔DNSKEY
  // correspondence, signatures, and consistency).
  if (!report.cds.rrsig_valid) {
    outcome.action = Action::kRejected;
    outcome.reason = "in-zone CDS not validly signed";
    return outcome;
  }

  // Authenticated path (RFC 9615).
  if (report.ab == analysis::AbStatus::kSignalCorrect) {
    if (auto status = install_ds(zone, report.cds.cds); !status.ok()) {
      outcome.action = Action::kRejected;
      outcome.reason = status.error().to_string();
      return outcome;
    }
    outcome.action = Action::kBootstrapped;
    outcome.reason = "authenticated signals verified on every nameserver";
    return outcome;
  }
  if (report.signal_present) {
    // Signals exist but fail the RFC 9615 checks: never fall back silently.
    outcome.action = Action::kRejected;
    outcome.reason = "signal records present but invalid";
    return outcome;
  }

  // Unauthenticated fallback policies (RFC 8078 §3, paper Appendix C).
  switch (config_.unauthenticated) {
    case UnauthenticatedPolicy::kNever:
      outcome.action = Action::kRejected;
      outcome.reason = "no authenticated signal; policy forbids fallback";
      return outcome;
    case UnauthenticatedPolicy::kAcceptFromInception: {
      if (auto status = install_ds(zone, report.cds.cds); !status.ok()) {
        outcome.action = Action::kRejected;
        outcome.reason = status.error().to_string();
        return outcome;
      }
      outcome.action = Action::kBootstrappedUnauthenticated;
      outcome.reason = "accepted from inception";
      return outcome;
    }
    case UnauthenticatedPolicy::kAcceptAfterDelay: {
      const std::string key = zone.canonical_text();
      Bytes digest = cds_digest(report.cds.cds);
      auto it = holddown_.find(key);
      if (it == holddown_.end() || it->second.cds_digest != digest) {
        holddown_[key] = HolddownEntry{network_.now(), std::move(digest)};
        outcome.action = Action::kHeldDown;
        outcome.reason = "hold-down window started";
        return outcome;
      }
      if (network_.now() - it->second.first_seen < config_.holddown) {
        outcome.action = Action::kHeldDown;
        outcome.reason = "hold-down window running";
        return outcome;
      }
      if (auto status = install_ds(zone, report.cds.cds); !status.ok()) {
        outcome.action = Action::kRejected;
        outcome.reason = status.error().to_string();
        return outcome;
      }
      holddown_.erase(key);
      outcome.action = Action::kBootstrappedUnauthenticated;
      outcome.reason = "CDS stable through the hold-down window";
      return outcome;
    }
  }
  outcome.action = Action::kRejected;
  outcome.reason = "unreachable policy state";
  return outcome;
}

void CdsProcessor::process(const dns::Name& zone, Callback callback) {
  // The registry performs its own scan of the candidate: every NS, the
  // signaling trees, and the infrastructure snapshot for offline validation.
  // The processor owns the scanner for the lifetime of this process() call;
  // the scan callback must not hold an owning reference (it lives inside the
  // scanner — a cycle would leak).
  const std::uint64_t scan_id = next_scan_id_++;
  auto scanner = std::make_shared<scanner::Scanner>(
      network_, engine_, resolver_, scanner::ScannerOptions{});
  active_scans_.emplace(scan_id, scanner);
  auto cb = std::make_shared<Callback>(std::move(callback));
  scanner->scan(
      {zone}, [this, scan_id, cb, zone](scanner::ZoneObservation obs) {
        // Defer the decision one event so the infrastructure captures
        // (root/TLD DNSKEY queries) finish before validation.
        network_.schedule(net::kSecond, [this, scan_id, cb, zone,
                                         obs = std::move(obs)] {
          auto it = active_scans_.find(scan_id);
          if (it == active_scans_.end()) return;
          std::shared_ptr<scanner::Scanner> owned = std::move(it->second);
          active_scans_.erase(it);
          analysis::TrustContext trust(owned->infrastructure(),
                                       resolver_.hints().trust_anchor,
                                       config_.now);
          analysis::ZoneReport report =
              analysis::analyze_zone(obs, trust, operators_);
          (*cb)(decide(zone, report));
        });
      });
}

}  // namespace dnsboot::registry
