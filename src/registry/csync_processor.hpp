// CSYNC processing (RFC 7477) — child-to-parent synchronization of NS and
// glue records, the companion mechanism to CDS that the paper's conclusion
// names as future work. A registry runs this to keep its delegation NS set
// in lock-step with the child's (DNSSEC-validated) apex NS RRset.
#pragma once

#include <functional>

#include "analysis/trust.hpp"
#include "ecosystem/builder.hpp"
#include "scanner/scanner.hpp"

namespace dnsboot::registry {

struct CsyncOutcome {
  enum class Action {
    kNone,          // no CSYNC published / nothing to change
    kSynchronized,  // delegation NS set updated from the child
    kDeferred,      // serial gate: soaminimum set and serial too old
    kRejected,      // validation failed (unsigned zone, bad sigs, ...)
  };
  Action action = Action::kNone;
  std::string reason;
  std::vector<dns::Name> new_ns;  // installed NS set when kSynchronized
};

std::string to_string(CsyncOutcome::Action action);

class CsyncProcessor {
 public:
  using Callback = std::function<void(CsyncOutcome)>;

  CsyncProcessor(net::Transport& network, resolver::QueryEngine& engine,
                 resolver::DelegationResolver& resolver,
                 ecosystem::TldHandle handle, dns::Name tld,
                 std::uint32_t now);

  // Scan `zone`, validate its CSYNC RRset, and apply any NS change to the
  // TLD delegation. Drive the network to completion before reading results.
  void process(const dns::Name& zone, Callback callback);

 private:
  CsyncOutcome decide(const dns::Name& zone,
                      const scanner::ZoneObservation& obs,
                      const analysis::TrustContext& trust);

  net::Transport& network_;
  resolver::QueryEngine& engine_;
  resolver::DelegationResolver& resolver_;
  ecosystem::TldHandle handle_;
  dns::Name tld_;
  std::uint32_t now_;
  std::map<std::uint64_t, std::shared_ptr<scanner::Scanner>> active_scans_;
  std::uint64_t next_scan_id_ = 1;
};

}  // namespace dnsboot::registry
