// Registry-side CDS/CDNSKEY processing — the consumer of the signals this
// whole system measures. Implements what SWITCH (.ch/.li) and the .swiss
// registry run (paper §2 and [2]):
//
//   * RFC 7344  — DS rollover driven by in-zone CDS on secured zones
//   * RFC 8078  — DS deletion (delete sentinel) and *unauthenticated*
//                 bootstrapping policies (paper Appendix C)
//   * RFC 9615  — authenticated bootstrapping via the _dsboot/_signal trees
//
// The processor drives its own scans over the simulated network, applies the
// full acceptance rules, and — when satisfied — edits the TLD zone through
// the registry's TldHandle (install/replace/remove DS + re-sign).
#pragma once

#include <functional>
#include <map>

#include "analysis/zone_report.hpp"
#include "ecosystem/builder.hpp"
#include "scanner/scanner.hpp"

namespace dnsboot::registry {

// Unauthenticated acceptance policies from RFC 8078 §3 (paper Appendix C).
enum class UnauthenticatedPolicy {
  kNever,               // authenticated bootstrapping only
  kAcceptAfterDelay,    // install after the CDS is stable for `holddown`
  kAcceptFromInception, // accept on first sight (new registrations)
};

struct RegistryConfig {
  dns::Name tld;
  UnauthenticatedPolicy unauthenticated = UnauthenticatedPolicy::kNever;
  net::SimTime holddown = net::SimTime{72} * 3600 * net::kSecond;
  bool process_rollovers = true;
  bool process_deletes = true;
  // DNSSEC validation time (simulated epoch seconds).
  std::uint32_t now = 0;
};

struct ProcessingOutcome {
  enum class Action {
    kNone,             // nothing applicable (unsigned, no CDS, foreign TLD)
    kBootstrapped,     // DS installed via authenticated signals (RFC 9615)
    kBootstrappedUnauthenticated,  // DS installed via an RFC 8078 policy
    kRolledOver,       // existing DS replaced to match the CDS
    kDeleted,          // DS removed on a delete sentinel
    kHeldDown,         // accept-after-delay window still running
    kRejected,         // checks failed; nothing installed
  };
  Action action = Action::kNone;
  std::string reason;
  // The report the decision was based on (diagnostics / audit trail).
  analysis::ZoneReport report;
};

std::string to_string(ProcessingOutcome::Action action);

class CdsProcessor {
 public:
  using Callback = std::function<void(ProcessingOutcome)>;

  CdsProcessor(net::Transport& network, resolver::QueryEngine& engine,
               resolver::DelegationResolver& resolver,
               ecosystem::TldHandle handle, RegistryConfig config);

  // Evaluate one candidate zone: scan, validate, decide, and apply any DS
  // change to the TLD zone. Drive the network (network.run()) to completion
  // before reading results.
  void process(const dns::Name& zone, Callback callback);

  // Direct zone edits (also used internally).
  Status install_ds(const dns::Name& zone,
                    const std::vector<dns::DsRdata>& ds_set);
  Status remove_ds(const dns::Name& zone);

  const RegistryConfig& config() const { return config_; }

 private:
  struct HolddownEntry {
    net::SimTime first_seen = 0;
    Bytes cds_digest;  // canonical digest of the CDS set under observation
  };

  ProcessingOutcome decide(const dns::Name& zone,
                           const analysis::ZoneReport& report);
  static Bytes cds_digest(const std::vector<dns::DsRdata>& cds);

  net::Transport& network_;
  resolver::QueryEngine& engine_;
  resolver::DelegationResolver& resolver_;
  ecosystem::TldHandle handle_;
  RegistryConfig config_;
  analysis::OperatorIdentifier operators_;  // empty: registry needs no attribution
  std::map<std::string, HolddownEntry> holddown_;
  // Scanners for in-flight process() calls; erased when the decision fires.
  std::map<std::uint64_t, std::shared_ptr<scanner::Scanner>> active_scans_;
  std::uint64_t next_scan_id_ = 1;
};

}  // namespace dnsboot::registry
