#include "server/auth_server.hpp"

#include <algorithm>
#include <optional>

#include "dnssec/nsec3.hpp"

namespace dnsboot::server {
namespace {

// NSEC3 parameters of a zone, when it uses hashed denial.
std::optional<dnssec::Nsec3Params> nsec3_params_of(const dns::Zone& zone) {
  const dns::RRset* param =
      zone.find_rrset(zone.origin(), dns::RRType::kNSEC3PARAM);
  if (param == nullptr || param->rdatas.empty()) return std::nullopt;
  const auto& rdata = std::get<dns::Nsec3ParamRdata>(param->rdatas[0]);
  return dnssec::Nsec3Params{rdata.iterations, rdata.salt};
}

// The RR types a pre-2003 (pre-RFC 3597) implementation knows about; anything
// else draws FORMERR from the kLegacyFormerr profile.
bool legacy_known_type(dns::RRType type) {
  switch (type) {
    case dns::RRType::kA:
    case dns::RRType::kNS:
    case dns::RRType::kCNAME:
    case dns::RRType::kSOA:
    case dns::RRType::kPTR:
    case dns::RRType::kMX:
    case dns::RRType::kTXT:
    case dns::RRType::kAAAA:
      return true;
    default:
      return false;
  }
}

}  // namespace

AuthServer::AuthServer(ServerConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  // Pre-create the whole rcode family now so the serve-mode scrape thread
  // only ever reads the registry maps, never racing an insertion.
  rcode_counters_.reserve(7);
  for (int rcode = 0; rcode <= 5; ++rcode) {
    rcode_counters_.push_back(&metrics_.counter(
        "dnsboot_server_responses", "rcode", std::to_string(rcode)));
  }
  rcode_counters_.push_back(
      &metrics_.counter("dnsboot_server_responses", "rcode", "other"));
}

void AuthServer::count_response(dns::Rcode rcode) {
  const std::size_t index = static_cast<std::size_t>(rcode);
  rcode_counters_[index < 6 ? index : 6]->add(1);
}

void AuthServer::add_zone(std::shared_ptr<const dns::Zone> zone) {
  zones_[zone->origin().canonical_text()] = std::move(zone);
}

std::shared_ptr<const dns::Zone> AuthServer::zone_for(
    const dns::Name& name) const {
  // Longest-origin match: walk the name's ancestors from most to least
  // specific. O(labels * log zones) — operators here serve 10^5 zones.
  dns::Name walk = name;
  while (true) {
    auto it = zones_.find(walk.canonical_text());
    if (it != zones_.end()) return it->second;
    if (walk.is_root()) return nullptr;
    walk = walk.parent();
  }
}

void AuthServer::append_rrset_with_sigs(
    const dns::Zone& zone, const dns::RRset& rrset, bool dnssec_ok,
    std::vector<dns::ResourceRecord>* section) {
  for (const auto& rr : rrset.to_records()) section->push_back(rr);
  if (dnssec_ok) {
    for (const auto& sig : zone.signatures_covering(rrset.name, rrset.type)) {
      section->push_back(sig);
    }
  }
}

dns::Message AuthServer::respond_parking(const dns::Message& query) {
  // The Afternic model: every query for every name gets the same
  // authoritative-looking answer. NS queries return the parking NS set;
  // address queries return a parking address; everything else is NODATA
  // without an SOA (these servers are not careful about standards).
  dns::Message response = dns::Message::make_response(query);
  response.header.aa = true;
  const dns::Question& q = query.questions[0];
  if (q.type == dns::RRType::kNS) {
    for (const auto& ns : config_.parking_ns) {
      dns::ResourceRecord rr;
      rr.name = q.name;
      rr.type = dns::RRType::kNS;
      rr.ttl = 300;
      rr.rdata = dns::NsRdata{ns};
      response.answers.push_back(std::move(rr));
    }
  } else if (q.type == dns::RRType::kA) {
    dns::ResourceRecord rr;
    rr.name = q.name;
    rr.type = dns::RRType::kA;
    rr.ttl = 300;
    rr.rdata = dns::ARdata{{203, 0, 113, 1}};
    response.answers.push_back(std::move(rr));
  } else if (q.type == dns::RRType::kSOA) {
    dns::ResourceRecord rr;
    rr.name = q.name;
    rr.type = dns::RRType::kSOA;
    rr.ttl = 300;
    rr.rdata = dns::SoaRdata{config_.parking_ns.empty()
                                 ? q.name
                                 : config_.parking_ns.front(),
                             q.name, 1, 3600, 600, 86400, 300};
    response.answers.push_back(std::move(rr));
  }
  return response;
}

dns::Message AuthServer::respond_from_zone(const dns::Message& query,
                                           const dns::Zone& zone) {
  dns::Message response = dns::Message::make_response(query);
  const dns::Question& q = query.questions[0];
  const bool dnssec_ok = query.dnssec_ok();

  auto lookup = zone.lookup(q.name, q.type);
  using Kind = dns::Zone::LookupResult::Kind;
  switch (lookup.kind) {
    case Kind::kAnswer:
    case Kind::kCname:
      response.header.aa = true;
      append_rrset_with_sigs(zone, *lookup.rrset, dnssec_ok,
                             &response.answers);
      break;
    case Kind::kNoData: {
      response.header.aa = true;
      if (const dns::RRset* soa = zone.soa()) {
        append_rrset_with_sigs(zone, *soa, dnssec_ok,
                               &response.authorities);
      }
      if (dnssec_ok) {
        if (const dns::RRset* nsec =
                zone.find_rrset(q.name, dns::RRType::kNSEC)) {
          append_rrset_with_sigs(zone, *nsec, dnssec_ok,
                                 &response.authorities);
        } else if (auto params = nsec3_params_of(zone)) {
          dns::Name owner =
              dnssec::nsec3_owner(q.name, zone.origin(), *params);
          if (const dns::RRset* nsec3 =
                  zone.find_rrset(owner, dns::RRType::kNSEC3)) {
            append_rrset_with_sigs(zone, *nsec3, dnssec_ok,
                                   &response.authorities);
          }
        }
      }
      break;
    }
    case Kind::kNxDomain: {
      response.header.aa = true;
      response.header.rcode = dns::Rcode::kNxDomain;
      if (const dns::RRset* soa = zone.soa()) {
        append_rrset_with_sigs(zone, *soa, dnssec_ok,
                               &response.authorities);
      }
      if (dnssec_ok) {
        if (auto params = nsec3_params_of(zone)) {
          // RFC 5155 §7.2.2: matching NSEC3 for the closest encloser and a
          // covering NSEC3 for the next-closer name.
          dns::Name closest = q.name.parent();
          dns::Name next_closer = q.name;
          while (closest.label_count() >= zone.origin().label_count()) {
            dns::Name owner =
                dnssec::nsec3_owner(closest, zone.origin(), *params);
            if (const dns::RRset* match =
                    zone.find_rrset(owner, dns::RRType::kNSEC3)) {
              append_rrset_with_sigs(zone, *match, dnssec_ok,
                                     &response.authorities);
              break;
            }
            if (closest.is_root()) break;
            next_closer = closest;
            closest = closest.parent();
          }
          for (const auto& set : zone.all_rrsets()) {
            if (set.type != dns::RRType::kNSEC3) continue;
            dns::ResourceRecord rr = set.to_records()[0];
            if (dnssec::nsec3_covers(rr, zone.origin(), next_closer)) {
              append_rrset_with_sigs(zone, set, dnssec_ok,
                                     &response.authorities);
              break;
            }
          }
        } else {
          // Covering NSEC for the denied name.
          for (const auto& set : zone.all_rrsets()) {
            if (set.type != dns::RRType::kNSEC) continue;
            const auto& nsec = std::get<dns::NsecRdata>(set.rdatas[0]);
            bool covers;
            if (set.name < nsec.next_domain) {
              covers = set.name < q.name && q.name < nsec.next_domain;
            } else {
              covers = set.name < q.name || q.name < nsec.next_domain;
            }
            if (covers) {
              append_rrset_with_sigs(zone, set, dnssec_ok,
                                     &response.authorities);
              break;
            }
          }
        }
      }
      break;
    }
    case Kind::kDelegation: {
      // Referral: NS in authority, DS (+sigs) if present, glue in additional.
      response.header.aa = false;
      for (const auto& rr : lookup.rrset->to_records()) {
        response.authorities.push_back(rr);
      }
      if (const dns::RRset* ds =
              zone.find_rrset(lookup.cut_owner, dns::RRType::kDS)) {
        append_rrset_with_sigs(zone, *ds, dnssec_ok,
                               &response.authorities);
      } else if (dnssec_ok) {
        // Prove the absence of DS (insecure delegation).
        if (const dns::RRset* nsec =
                zone.find_rrset(lookup.cut_owner, dns::RRType::kNSEC)) {
          append_rrset_with_sigs(zone, *nsec, dnssec_ok,
                                 &response.authorities);
        }
      }
      for (const auto& rd : lookup.rrset->rdatas) {
        const dns::Name& ns_name = std::get<dns::NsRdata>(rd).nsdname;
        for (dns::RRType glue_type : {dns::RRType::kA, dns::RRType::kAAAA}) {
          if (const dns::RRset* glue = zone.find_rrset(ns_name, glue_type)) {
            for (const auto& rr : glue->to_records()) {
              response.additionals.push_back(rr);
            }
          }
        }
      }
      break;
    }
    case Kind::kNotInZone:
      response.header.rcode = dns::Rcode::kRefused;
      break;
  }
  return response;
}

dns::Message AuthServer::handle(const dns::Message& query) {
  ++queries_handled_;
  dns::Message response = dns::Message::make_response(query);
  if (query.questions.size() != 1) {
    response.header.rcode = dns::Rcode::kFormErr;
    return response;
  }
  const dns::Question& q = query.questions[0];

  if (rng_.chance(config_.transient_servfail_rate)) {
    response.header.rcode = dns::Rcode::kServFail;
    return response;
  }

  if (config_.behavior == ServerBehavior::kLegacyFormerr &&
      !legacy_known_type(q.type)) {
    response.header.rcode = dns::Rcode::kFormErr;
    return response;
  }

  if (config_.behavior == ServerBehavior::kParkingWildcard) {
    return respond_parking(query);
  }

  auto zone = zone_for(q.name);
  if (zone == nullptr) {
    response.header.rcode = dns::Rcode::kRefused;
    return response;
  }
  response = respond_from_zone(query, *zone);
  maybe_corrupt_signatures(response);
  return response;
}

void AuthServer::maybe_corrupt_signatures(dns::Message& response) {
  if (!rng_.chance(config_.transient_badsig_rate)) return;
  auto corrupt_section = [&](std::vector<dns::ResourceRecord>& section) {
    for (auto& rr : section) {
      if (rr.type != dns::RRType::kRRSIG) continue;
      auto& rrsig = std::get<dns::RrsigRdata>(rr.rdata);
      if (!rrsig.signature.empty()) {
        rrsig.signature[rrsig.signature.size() / 2] ^= 0x01;
      }
    }
  };
  corrupt_section(response.answers);
  corrupt_section(response.authorities);
}

std::vector<dns::Message> AuthServer::handle_axfr(const dns::Message& query) {
  ++queries_handled_;
  std::vector<dns::Message> out;
  auto refuse = [&] {
    dns::Message response = dns::Message::make_response(query);
    response.header.rcode = dns::Rcode::kRefused;
    out = {response};
  };
  if (query.questions.size() != 1 || !config_.allow_axfr) {
    refuse();
    return out;
  }
  const dns::Question& q = query.questions[0];
  auto zone = zone_for(q.name);
  if (zone == nullptr || !(zone->origin() == q.name)) {
    refuse();
    return out;
  }
  const dns::RRset* soa = zone->soa();
  if (soa == nullptr) {
    refuse();
    return out;
  }

  // Serialize: SOA first, every RRset (including signatures), SOA last.
  std::vector<dns::ResourceRecord> stream;
  stream.push_back(soa->to_records()[0]);
  for (const auto& set : zone->all_rrsets()) {
    if (set.type == dns::RRType::kSOA && set.name == zone->origin()) {
      // only at the stream boundaries
    } else {
      for (const auto& rr : set.to_records()) stream.push_back(rr);
    }
    for (const auto& sig : zone->signatures_covering(set.name, set.type)) {
      stream.push_back(sig);
    }
  }
  stream.push_back(soa->to_records()[0]);

  const std::size_t chunk = std::max<std::size_t>(1, config_.axfr_chunk_records);
  for (std::size_t offset = 0; offset < stream.size(); offset += chunk) {
    dns::Message response = dns::Message::make_response(query);
    response.header.aa = true;
    std::size_t end = std::min(stream.size(), offset + chunk);
    response.answers.assign(stream.begin() + static_cast<std::ptrdiff_t>(offset),
                            stream.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(std::move(response));
  }
  return out;
}

// Evaluate the chaos fault gates for one incoming query. Returns the extra
// service delay to apply, and fills `short_circuit` with a SERVFAIL/REFUSED
// response when a gate fires.
net::SimTime AuthServer::fault_gate(const dns::Message& query,
                                    net::SimTime now,
                                    std::optional<dns::Message>* short_circuit) {
  const ServerFaultProfile& faults = config_.faults;

  net::SimTime delay = 0;
  if (slow_queries_seen_ < faults.slow_start_queries) {
    ++slow_queries_seen_;
    if (faults.slow_start_penalty > 0) {
      delay = faults.slow_start_penalty;
      ++slow_start_penalized_;
    }
  }

  if (faults.flap_period > 0 && now % faults.flap_period < faults.flap_fail) {
    dns::Message response = dns::Message::make_response(query);
    response.header.rcode = dns::Rcode::kServFail;
    *short_circuit = std::move(response);
    ++flap_servfails_;
    return delay;
  }

  if (faults.rate_limit_qps > 0) {
    if (!rl_initialized_) {
      rl_tokens_ = faults.rate_limit_burst;
      rl_initialized_ = true;
    } else {
      double refill = static_cast<double>(now - rl_last_refill_) *
                      faults.rate_limit_qps / 1e6;
      rl_tokens_ = std::min(faults.rate_limit_burst, rl_tokens_ + refill);
    }
    rl_last_refill_ = now;
    if (rl_tokens_ < 1.0) {
      dns::Message response = dns::Message::make_response(query);
      response.header.rcode = dns::Rcode::kRefused;
      *short_circuit = std::move(response);
      ++rate_limited_;
      return delay;
    }
    rl_tokens_ -= 1.0;
  }
  return delay;
}

// The per-client token bucket. Silent drop on empty (RRL-style): answering
// REFUSED would hand an attacker spoofing a victim's address an amplifier.
bool AuthServer::defense_gate(const net::IpAddress& client,
                              net::SimTime now) {
  const ServerDefenseProfile& defense = config_.defense;
  if (defense.per_client_qps <= 0) return true;
  auto it = client_buckets_.find(client);
  if (it == client_buckets_.end()) {
    if (client_buckets_.size() >= defense.max_clients_tracked) {
      return true;  // table full: fail open (see ServerDefenseProfile)
    }
    it = client_buckets_
             .emplace(client,
                      ClientBucket{defense.per_client_burst, now})
             .first;
  }
  ClientBucket& bucket = it->second;
  double refill = static_cast<double>(now - bucket.last_refill) *
                  defense.per_client_qps / 1e6;
  bucket.tokens = std::min(defense.per_client_burst, bucket.tokens + refill);
  bucket.last_refill = now;
  if (bucket.tokens < 1.0) {
    ++client_throttled_;
    return false;
  }
  bucket.tokens -= 1.0;
  return true;
}

void AuthServer::attach(net::Transport& network,
                        const net::IpAddress& address) {
  // Re-attaching an address (e.g. moving a built ecosystem from the
  // simulator onto a wire transport) replaces the binding, not the record.
  if (std::find(addresses_.begin(), addresses_.end(), address) ==
      addresses_.end()) {
    addresses_.push_back(address);
  }
  network.bind(address, [this, &network](const net::Datagram& dgram) {
    auto query = dns::Message::decode(dgram.payload);
    if (!query.ok()) {
      // Garbage in, silence out (as UDP would) — but observably: malformed
      // floods are an attack signal the metrics must show.
      ++malformed_dropped_;
      return;
    }
    // Hardening gate before any work is spent on the query.
    if (!defense_gate(dgram.source, network.now())) return;

    // Chaos gates next: a slow, flapping, or rate-limited server fails the
    // same way for AXFR streams as for plain queries.
    std::optional<dns::Message> short_circuit;
    net::SimTime delay =
        fault_gate(query.value(), network.now(), &short_circuit);
    // Replies echo the query's ports swapped, so the client's source-port
    // check can match on transports that model ports.
    auto send_wire = [&network, delay, source = dgram.source,
                      destination = dgram.destination,
                      sport = dgram.destination_port,
                      dport = dgram.source_port](Bytes wire, bool tcp) {
      auto make = [&](Bytes payload) {
        net::Datagram reply;
        reply.source = destination;
        reply.destination = source;
        reply.payload = std::move(payload);
        reply.tcp = tcp;
        reply.source_port = sport;
        reply.destination_port = dport;
        return reply;
      };
      if (delay == 0) {
        network.send(make(std::move(wire)));
        return;
      }
      network.schedule(delay, [&network, reply = make(std::move(wire))] {
        network.send(reply);
      });
    };
    // Request span for sampled queries: receipt → response handed to the
    // transport (including any fault-gate service delay).
    const bool traced = tracer_ != nullptr && tracer_->sample();
    auto trace_request = [this, &network, &query, delay,
                          received = network.now(),
                          traced](dns::Rcode rcode) {
      count_response(rcode);
      if (!traced) return;
      obs::TraceSpan span;
      span.kind = "request";
      span.name = query->questions.empty()
                      ? std::string("<no question>")
                      : query->questions[0].name.to_text() + " " +
                            dns::to_string(query->questions[0].type);
      span.detail = config_.id;
      span.start_usec = received;
      span.end_usec = network.now() + delay;
      span.status = dns::to_string(rcode);
      tracer_->record(std::move(span));
    };
    if (short_circuit.has_value()) {
      trace_request(short_circuit->header.rcode);
      send_wire(short_circuit->encode(), dgram.tcp);
      return;
    }

    if (!query->questions.empty() &&
        query->questions[0].type == dns::RRType::kAXFR) {
      // Zone transfers run over TCP (RFC 5936 §4.2); refuse UDP attempts.
      if (!dgram.tcp) {
        dns::Message refusal = dns::Message::make_response(query.value());
        refusal.header.rcode = dns::Rcode::kRefused;
        trace_request(refusal.header.rcode);
        send_wire(refusal.encode(), /*tcp=*/false);
        return;
      }
      std::vector<dns::Message> stream = handle_axfr(query.value());
      if (!stream.empty()) trace_request(stream.front().header.rcode);
      for (auto& response : stream) {
        send_wire(response.encode(), /*tcp=*/true);
      }
      return;
    }
    dns::Message response = handle(query.value());
    trace_request(response.header.rcode);
    Bytes wire = response.encode();
    if (!dgram.tcp) {
      // UDP size limit: the client's EDNS-advertised buffer, or the
      // classic 512 bytes without EDNS (RFC 1035 §4.2.1). Oversized
      // responses are truncated to header+question with TC set.
      std::size_t limit = 512;
      for (const auto& rr : query->additionals) {
        if (rr.type == dns::RRType::kOPT) {
          limit = std::max<std::size_t>(
              512, static_cast<std::uint16_t>(rr.klass));
        }
      }
      if (wire.size() > limit) {
        dns::Message truncated = dns::Message::make_response(query.value());
        truncated.header.rcode = response.header.rcode;
        truncated.header.aa = response.header.aa;
        truncated.header.tc = true;
        wire = truncated.encode();
      }
    }
    send_wire(std::move(wire), dgram.tcp);
  });
}

}  // namespace dnsboot::server
