// Authoritative DNS server engine over the simulated network.
//
// One AuthServer instance models one operational server identity (which may
// answer on many addresses — the anycast-pool model). Behaviour profiles
// reproduce the server populations the paper observed:
//   kCompliant       — answers per RFC 1035/4035, NODATA for unknown types
//   kLegacyFormerr   — pre-RFC 3597 software: FORMERR on unknown RR types
//                      (the 7.6 M zones of §4.2 "lack of support for CDS")
//   kParkingWildcard — Afternic-style parking: identical answers for every
//                      name, creating the illusion of a zone cut at every
//                      level (the copacabana zone-cut violation of §4.4)
// Transient failures (deSEC's SERVFAILs and invalid signatures during the
// scan, §4.4) are injected via failure rates.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/rng.hpp"
#include "dns/message.hpp"
#include "dns/zone.hpp"
#include "net/transport.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace dnsboot::server {

enum class ServerBehavior {
  kCompliant,
  kLegacyFormerr,
  kParkingWildcard,
};

// Per-server fault profile for chaos worlds. All knobs default to off; the
// gates are evaluated in order slow-start -> flap -> rate-limit before the
// normal query path, deterministically under the server's seed.
struct ServerFaultProfile {
  // Slow start: the first `slow_start_queries` queries are answered with an
  // extra `slow_start_penalty` of service latency (cold caches / thundering
  // herd after a restart).
  net::SimTime slow_start_penalty = 0;
  std::uint64_t slow_start_queries = 0;

  // Rate limiting: a token bucket of `rate_limit_burst` tokens refilled at
  // `rate_limit_qps`; queries arriving with the bucket empty draw REFUSED.
  // 0 qps disables the limiter.
  double rate_limit_qps = 0.0;
  double rate_limit_burst = 10.0;

  // Flapping: SERVFAIL to every query during the first `flap_fail` of every
  // `flap_period` (a periodically-wedged backend). Disabled when period is 0.
  net::SimTime flap_period = 0;
  net::SimTime flap_fail = 0;
};

// Per-client defenses for hostile traffic (the adversarial chaos tier; see
// DESIGN.md §13). Unlike ServerFaultProfile — which *simulates* a degraded
// server — this hardens the server: response-rate limiting per client
// address in the RRL style (silent drop, not REFUSED, so a spoofed victim
// is not used as a reflector), bounded tracking state, and malformed-query
// shedding that is observable in /metrics.
struct ServerDefenseProfile {
  // Token bucket per client source address; 0 qps disables the limiter.
  double per_client_qps = 0.0;
  double per_client_burst = 32.0;
  // Bounded bucket table: at capacity, queries from *new* clients pass
  // unthrottled rather than evicting state (fail-open — the limiter is a
  // flood dampener, not an ACL).
  std::size_t max_clients_tracked = 1024;
};

struct ServerConfig {
  std::string id;  // diagnostic label, e.g. "ns1.desec.io"
  ServerBehavior behavior = ServerBehavior::kCompliant;
  // Probability of answering any query with SERVFAIL (transient outage).
  double transient_servfail_rate = 0.0;
  // Probability of corrupting every RRSIG in a response (transient bad
  // signatures, as observed from deSEC during the paper's scan).
  double transient_badsig_rate = 0.0;
  // Parking profile: the NS names returned for every NS query.
  std::vector<dns::Name> parking_ns;

  // Permit zone transfers (RFC 5936). The paper obtained full zone files via
  // AXFR only from a handful of ccTLDs (.ch/.li/.se/.nu/.ee) and by private
  // arrangement (.uk/.sk); everyone else refuses.
  bool allow_axfr = false;
  // Records per AXFR response message (the simulated stream framing).
  std::size_t axfr_chunk_records = 2000;

  // Chaos fault profile (off by default; see apply_chaos()).
  ServerFaultProfile faults;
  // Hardening profile (off by default; the adversarial preset enables it).
  ServerDefenseProfile defense;
};

class AuthServer {
 public:
  AuthServer(ServerConfig config, std::uint64_t seed);

  const ServerConfig& config() const { return config_; }
  // Install a fault profile after construction (the chaos planner does this
  // on servers the ecosystem builder already created).
  void set_faults(const ServerFaultProfile& faults) { config_.faults = faults; }
  void set_defense(const ServerDefenseProfile& defense) {
    config_.defense = defense;
  }

  // Serve a zone. Zones are shared (an operator's servers all serve the same
  // zone objects).
  void add_zone(std::shared_ptr<const dns::Zone> zone);
  // The zone whose origin is the longest suffix of `name`, if any.
  std::shared_ptr<const dns::Zone> zone_for(const dns::Name& name) const;

  // Every zone this server publishes, keyed by canonical origin text. The
  // static linter enumerates these to build its ecosystem view.
  const std::map<std::string, std::shared_ptr<const dns::Zone>>& zones() const {
    return zones_;
  }

  // Produce the response for one query (the core of the engine; pure except
  // for the failure-injection RNG).
  dns::Message handle(const dns::Message& query);

  // Zone transfer: the full record stream for an AXFR query, chunked into
  // multiple messages (first and last carry the SOA, RFC 5936 §2.2). Empty
  // with REFUSED semantics when transfers are not allowed or the zone is not
  // served here.
  std::vector<dns::Message> handle_axfr(const dns::Message& query);

  // Bind this server to an address on the simulated network. May be called
  // many times (anycast pool: every pool address answers identically).
  void attach(net::Transport& network, const net::IpAddress& address);

  // Every address this server has been attached to, in attach order. The
  // chaos planner and the L106 lint walk these to reason about reachability.
  const std::vector<net::IpAddress>& addresses() const { return addresses_; }

  std::uint64_t queries_handled() const { return queries_handled_; }
  // Fault-profile outcome counters.
  std::uint64_t rate_limited() const { return rate_limited_; }
  std::uint64_t flap_servfails() const { return flap_servfails_; }
  std::uint64_t slow_start_penalized() const { return slow_start_penalized_; }
  // Defense outcome counters.
  std::uint64_t client_throttled() const { return client_throttled_; }
  std::uint64_t malformed_dropped() const { return malformed_dropped_; }

  // The server's dnsboot_server_* counters, including the per-rcode
  // response family (all family members are pre-created at construction, so
  // a scrape thread never races a map insertion). dnsboot-serve merges each
  // worker's server registries into its /metrics exposition.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Optional request tracing: sampled incoming queries record a "request"
  // span (receipt → response send, status = rcode). Not owned.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  net::SimTime fault_gate(const dns::Message& query, net::SimTime now,
                          std::optional<dns::Message>* short_circuit);
  // Per-client token bucket (RRL-style): false means drop the query
  // silently. Tracking state is bounded by max_clients_tracked.
  bool defense_gate(const net::IpAddress& client, net::SimTime now);
  dns::Message respond_from_zone(const dns::Message& query,
                                 const dns::Zone& zone);
  dns::Message respond_parking(const dns::Message& query);
  void append_rrset_with_sigs(const dns::Zone& zone, const dns::RRset& rrset,
                              bool dnssec_ok,
                              std::vector<dns::ResourceRecord>* section);
  void maybe_corrupt_signatures(dns::Message& response);
  // Bump the dnsboot_server_responses{rcode=...} family member.
  void count_response(dns::Rcode rcode);

  ServerConfig config_;
  Rng rng_;
  // Keyed by canonical origin text for longest-suffix lookup.
  std::map<std::string, std::shared_ptr<const dns::Zone>> zones_;
  std::vector<net::IpAddress> addresses_;

  // Registry before its views (members initialize in declaration order).
  // Single-writer contract (enforced under DNSBOOT_VERIFY): an AuthServer
  // handles queries on exactly one serving thread, and only handle_query()
  // writes these counters — construction binds the refs but writes nothing,
  // so the first write claims them for the serving thread. Scrapers read
  // through registry copies, never through these references.
  obs::MetricsRegistry metrics_;
  obs::CounterRef queries_handled_{metrics_.counter("dnsboot_server_queries")};
  obs::CounterRef rate_limited_{
      metrics_.counter("dnsboot_server_rate_limited")};
  obs::CounterRef flap_servfails_{
      metrics_.counter("dnsboot_server_flap_servfails")};
  obs::CounterRef slow_start_penalized_{
      metrics_.counter("dnsboot_server_slow_start_penalized")};
  obs::CounterRef client_throttled_{
      metrics_.counter("dnsboot_server_client_throttled")};
  obs::CounterRef malformed_dropped_{
      metrics_.counter("dnsboot_server_malformed_dropped")};
  // Per-rcode response family, pre-bound for rcodes 0..5 plus "other".
  std::vector<obs::Counter*> rcode_counters_;
  obs::Tracer* tracer_ = nullptr;

  // Fault-profile state (shared across all attached addresses — the pool is
  // one server identity).
  double rl_tokens_ = 0.0;
  net::SimTime rl_last_refill_ = 0;
  bool rl_initialized_ = false;
  std::uint64_t slow_queries_seen_ = 0;

  // Per-client limiter state (defense profile), bounded by
  // max_clients_tracked.
  struct ClientBucket {
    double tokens = 0.0;
    net::SimTime last_refill = 0;
  };
  std::unordered_map<net::IpAddress, ClientBucket, net::IpAddressHash>
      client_buckets_;
};

}  // namespace dnsboot::server
