#include "obs/trace.hpp"

#include <cstdio>

namespace dnsboot::obs {

namespace {

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string TraceSpan::to_json() const {
  std::string out;
  out.reserve(128);
  out.append("{\"seq\":").append(std::to_string(seq));
  out.append(",\"kind\":");
  append_escaped(&out, kind);
  out.append(",\"name\":");
  append_escaped(&out, name);
  out.append(",\"start_usec\":").append(std::to_string(start_usec));
  out.append(",\"end_usec\":").append(std::to_string(end_usec));
  out.append(",\"attempts\":").append(std::to_string(attempts));
  out.append(",\"status\":");
  append_escaped(&out, status);
  if (!detail.empty()) {
    out.append(",\"detail\":");
    append_escaped(&out, detail);
  }
  out.push_back('}');
  return out;
}

Tracer::Tracer(TracerOptions options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.reserve(options_.capacity);
}

bool Tracer::sample() {
  if (options_.sample_every == 0) return false;
  const std::uint64_t n =  // audit-allow: A004 RMW sample counter, any thread
      candidates_.fetch_add(1, std::memory_order_relaxed);
  return n % options_.sample_every == 0;
}

void Tracer::record(TraceSpan span) {
  base::MutexLock lock(mutex_);
  // audit-allow: A004 RMW under mutex_; relaxed is for lock-free readers
  span.seq = recorded_.fetch_add(1, std::memory_order_relaxed);
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(span));
    if (ring_.size() == options_.capacity) next_ = 0;
  } else {
    // Full: overwrite the oldest slot (the cursor) and advance.
    ring_[next_] = std::move(span);
    next_ = (next_ + 1) % options_.capacity;
    wrapped_ = true;
    // audit-allow: A004 RMW under mutex_; relaxed is for lock-free readers
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<TraceSpan> Tracer::snapshot() const {
  base::MutexLock lock(mutex_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  if (!wrapped_ || ring_.size() < options_.capacity) {
    out = ring_;
  } else {
    // next_ points at the oldest span once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::string Tracer::to_jsonl() const {
  std::string out;
  for (const TraceSpan& span : snapshot()) {
    out.append(span.to_json());
    out.push_back('\n');
  }
  return out;
}

}  // namespace dnsboot::obs
