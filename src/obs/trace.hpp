// Structured trace layer (DESIGN.md §11) — per-unit spans for query →
// retry → response lifecycles, scan phases and server request handling,
// kept in a bounded ring buffer and emitted as JSONL.
//
// Sampling is counter-based, not random: the Nth candidate is traced
// (`sample()` returns true every `sample_every` calls), so a seeded
// simulation traces exactly the same spans every run — randomness would
// break the repo's determinism contract. `sample_every == 1` traces
// everything, `0` disables tracing entirely.
//
// The ring holds the most recent `capacity` spans; overflow drops the
// oldest and counts the drop, so a long survey's trace file is "the tail of
// the run" rather than an unbounded allocation.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace dnsboot::obs {

// One traced unit of work. Times are transport microseconds (simulated time
// under SimNetwork, wall-derived under WireTransport).
struct TraceSpan {
  std::string kind;    // "query" | "zone" | "phase" | "request"
  std::string name;    // qname / zone / phase label
  std::string status;  // outcome: "ok", "timeout", "degraded", ...
  std::string detail;  // free-form context (server address, rcode, ...)
  std::uint64_t start_usec = 0;
  std::uint64_t end_usec = 0;
  std::uint64_t attempts = 0;  // send attempts (queries) / probes (zones)
  std::uint64_t seq = 0;       // assigned by Tracer::record, monotonic

  std::string to_json() const;  // one JSONL line, no trailing newline
};

struct TracerOptions {
  std::size_t capacity = 4096;     // ring size in spans
  std::uint64_t sample_every = 64; // trace every Nth candidate; 0 = off
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  // Span-start decision: should this candidate unit be traced? Increments
  // the candidate counter either way (that is what makes the choice
  // deterministic and cheap — one relaxed fetch_add on the untraced path).
  bool sample();

  void record(TraceSpan span);

  // Oldest-first copy of the ring.
  std::vector<TraceSpan> snapshot() const;
  // The ring as JSONL, oldest span first, one object per line.
  std::string to_jsonl() const;

  std::uint64_t candidates() const {
    return candidates_.load(std::memory_order_relaxed);
  }
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  const TracerOptions& options() const { return options_; }

 private:
  TracerOptions options_;  // immutable after construction
  // Sampling/accounting counters: relaxed RMW atomics, safe from any thread
  // (fetch_add is a full read-modify-write; order does not matter here).
  std::atomic<std::uint64_t> candidates_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};

  // The ring and its cursor are the only multi-writer state in the tracer;
  // everything below is touched with mutex_ held (enforced by clang
  // -Wthread-safety via the annotations, and by lockdep under
  // DNSBOOT_VERIFY).
  mutable base::Mutex mutex_{"Tracer::mutex_"};
  std::vector<TraceSpan> ring_ GUARDED_BY(mutex_);  // fixed capacity once full
  std::size_t next_ GUARDED_BY(mutex_) = 0;  // insertion point when full
  bool wrapped_ GUARDED_BY(mutex_) = false;
};

}  // namespace dnsboot::obs
