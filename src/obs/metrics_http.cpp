#include "obs/metrics_http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dnsboot::obs {

namespace {

// Read until the end of the request headers (or a small cap — we only need
// the request line). Returns the first line.
std::string read_request_line(int fd) {
  std::string buffer;
  char chunk[512];
  while (buffer.size() < 4096) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, 1000) <= 0) break;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.find("\r\n") != std::string::npos) break;
  }
  auto eol = buffer.find("\r\n");
  if (eol == std::string::npos) eol = buffer.find('\n');
  return eol == std::string::npos ? buffer : buffer.substr(0, eol);
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out;
  out.reserve(body.size() + 128);
  out.append("HTTP/1.0 ").append(status).append("\r\n");
  out.append("Content-Type: ").append(content_type).append("\r\n");
  out.append("Content-Length: ").append(std::to_string(body.size()));
  out.append("\r\nConnection: close\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace

bool MetricsHttpServer::start(std::uint16_t port, Collector collector) {
  if (running_.load()) {
    error_ = "already running";
    return false;
  }
  collector_ = std::move(collector);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    error_ = std::string("bind/listen 127.0.0.1:") + std::to_string(port) +
             ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }

  stopping_.store(false);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void MetricsHttpServer::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void MetricsHttpServer::serve_loop() {
  while (!stopping_.load()) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);  // 100ms tick to notice stop()
    if (ready <= 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    std::string request = read_request_line(client);
    // "GET /metrics HTTP/1.x" — accept any HTTP version, exact path.
    bool is_metrics = request.rfind("GET /metrics", 0) == 0 &&
                      (request.size() == 12 || request[12] == ' ');
    if (is_metrics) {
      // audit-allow: A004 single-writer: only this serving thread increments
      scrapes_.fetch_add(1, std::memory_order_relaxed);
      send_all(client,
               http_response("200 OK",
                             "text/plain; version=0.0.4; charset=utf-8",
                             collector_ ? collector_() : std::string()));
    } else {
      send_all(client, http_response("404 Not Found", "text/plain",
                                     "only GET /metrics is served\n"));
    }
    ::close(client);
  }
}

}  // namespace dnsboot::obs
