// Metrics core — a lock-cheap registry of counters, gauges and fixed-bucket
// latency histograms, the one place every subsystem's operational counters
// live (DESIGN.md §11).
//
// Concurrency contract (what makes it lock-cheap):
//   * Metric *creation* (counter()/gauge()/histogram(), which may mutate the
//     name maps) is single-threaded setup work. Every instrumented component
//     creates all of its metrics in its constructor and keeps raw handles;
//     hot paths never touch a map.
//   * Metric *updates* are relaxed atomics — safe from the owning thread
//     while any other thread snapshots (copies / merges / exposes) the
//     registry, which is how dnsboot-serve scrapes live workers.
//   * There are no locks anywhere; the registry never blocks a hot path.
//
// Determinism contract: all maps are ordered by full metric name, merge() is
// name-keyed addition, and the JSON/Prometheus expositions walk the maps in
// order — so per-shard registries merged in shard order produce byte-
// identical output for every thread count (the same guarantee the survey
// reports already have, DESIGN.md §9).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#if defined(DNSBOOT_VERIFY)
#include "base/verify.hpp"
#endif

namespace dnsboot::obs {

// Monotonically increasing event count. Single-writer: add() is a relaxed
// load+store (a plain add in codegen — no `lock` prefix on the hot path),
// which is exactly as cheap as the raw uint64_t fields it replaces and
// still torn-read-free for a concurrent scrape thread. Each counter has one
// owning writer (a component on its own thread); cross-thread aggregation
// happens by merging registry copies, never by concurrent add().
//
// Under DNSBOOT_VERIFY that contract is enforced: the first add() tags the
// counter with its writer thread and any later add() from another thread
// fails (verify.hpp), unless the owning component declared an ownership
// handoff via verify_reset_writer() at a point with a happens-before edge.
class Counter {
 public:
  Counter() = default;
  // Copies are snapshots: they take the value, not the writer claim.
  Counter(const Counter& other) : value_(other.get()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.get(), std::memory_order_relaxed);
#if defined(DNSBOOT_VERIFY)
    writer_.reset();
#endif
    return *this;
  }

  void add(std::uint64_t n) {
#if defined(DNSBOOT_VERIFY)
    writer_.on_write(this);
#endif
    value_.store(value_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }
  std::uint64_t get() const { return value_.load(std::memory_order_relaxed); }

  // Release the single-writer claim at a documented handoff seam (no-op
  // without DNSBOOT_VERIFY). See MetricsRegistry::verify_reset_writers().
  void verify_reset_writer() {
#if defined(DNSBOOT_VERIFY)
    writer_.reset();
#endif
  }

 private:
  std::atomic<std::uint64_t> value_{0};
#if defined(DNSBOOT_VERIFY)
  verify::SingleWriter writer_;
#endif
};

// Point-in-time value (uptime, worker count, queue depth). Set-style.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) : value_(other.get()) {}
  Gauge& operator=(const Gauge& other) {
    value_.store(other.get(), std::memory_order_relaxed);
    return *this;
  }

  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram over unsigned values (latencies in microseconds).
// Buckets are inclusive upper bounds plus an implicit +Inf bucket; p50/p99
// are estimated by linear interpolation inside the covering bucket, which
// is deterministic and plenty for scan telemetry.
class Histogram {
 public:
  // The default latency ladder: 100µs .. 10s, roughly 1-2.5-5 per decade.
  static const std::vector<std::uint64_t>& default_latency_bounds_usec();

  explicit Histogram(std::vector<std::uint64_t> bounds =
                         default_latency_bounds_usec());
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void observe(std::uint64_t value);

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) count; index bounds_.size() is +Inf.
  std::uint64_t bucket_count(std::size_t index) const {
    return counts_[index].get();
  }
  std::uint64_t count() const { return count_.get(); }
  std::uint64_t sum() const { return sum_.get(); }

  // Estimated quantile, q in [0, 1]. 0 when empty.
  double quantile(double q) const;

  // Bucket-wise addition. Requires identical bounds (all dnsboot histograms
  // of one name share them); mismatched bounds fold count/sum only.
  void merge(const Histogram& other);

  // Handoff seam for the DNSBOOT_VERIFY single-writer check (no-op without).
  void verify_reset_writers();

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<Counter> counts_;  // bounds_.size() + 1 (the +Inf bucket)
  Counter count_;
  Counter sum_;
};

// The registry: named metrics, ordered maps, deterministic merge and
// exposition. Copyable (a copy is a consistent-enough snapshot: each value
// is read atomically; cross-counter skew is acceptable for telemetry).
class MetricsRegistry {
 public:
  // Get-or-create. The returned reference is stable for the registry's
  // lifetime (node-based maps). Setup-time only; see the header comment.
  Counter& counter(std::string_view name);
  // Labeled family member: stored under `name{key="value"}` so the flat key
  // IS the Prometheus exposition sample name.
  Counter& counter(std::string_view name, std::string_view label_key,
                   std::string_view label_value);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds =
                           Histogram::default_latency_bounds_usec());

  // Optional # HELP text, keyed by base metric name.
  void set_help(std::string_view name, std::string_view help);

  // Name-keyed addition of counters and histograms; gauges take the other
  // side's value (last write wins — gauges are point-in-time).
  void merge(const MetricsRegistry& other);

  // Reads. counter_value() returns 0 for unknown names (absent == never
  // incremented), which keeps assertions on merged registries total.
  std::uint64_t counter_value(std::string_view name) const;
  bool has_counter(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // Prometheus text exposition format (version 0.0.4): # HELP/# TYPE per
  // base name, histogram as cumulative _bucket/_sum/_count samples.
  std::string to_prometheus() const;
  // One-line JSON dump: {"counters":{...},"gauges":{...},"histograms":{...}}
  // with keys in map (name) order — byte-stable across merges of the same
  // data in the same order.
  std::string to_json() const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Release every counter's single-writer claim (DNSBOOT_VERIFY only,
  // otherwise a no-op). Call exactly at ownership-handoff seams — points
  // with a real happens-before edge between the old and new writer thread,
  // like WireTransport::run_forever() entry after setup on a builder
  // thread. Anywhere else this call would mask genuine races.
  void verify_reset_writers();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

}  // namespace dnsboot::obs
