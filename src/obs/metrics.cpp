#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace dnsboot::obs {

namespace {

// %.6g without locale surprises; integers print without a trailing ".0" so
// counters read naturally in both expositions.
std::string format_double(double v) {
  char buffer[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  }
  return buffer;
}

// `name{rcode="0"}` -> base `name`; exposition groups family members under
// one # TYPE header keyed by the base.
std::string_view base_name(std::string_view key) {
  auto brace = key.find('{');
  return brace == std::string_view::npos ? key : key.substr(0, brace);
}

void append_json_key(std::string* out, std::string_view key) {
  out->push_back('"');
  for (char c : key) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

const std::vector<std::uint64_t>& Histogram::default_latency_bounds_usec() {
  static const std::vector<std::uint64_t> bounds = {
      100,     250,     500,      1000,     2500,     5000,    10000,
      25000,   50000,   100000,   250000,   500000,   1000000, 2500000,
      5000000, 10000000};
  return bounds;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

Histogram::Histogram(const Histogram& other)
    : bounds_(other.bounds_),
      counts_(other.counts_),
      count_(other.count_),
      sum_(other.sum_) {}

Histogram& Histogram::operator=(const Histogram& other) {
  bounds_ = other.bounds_;
  counts_ = other.counts_;
  count_ = other.count_;
  sum_ = other.sum_;
  return *this;
}

void Histogram::observe(std::uint64_t value) {
  std::size_t index = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      index = i;
      break;
    }
  }
  counts_[index].add(1);
  count_.add(1);
  sum_.add(value);
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = counts_[i].get();
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Linear interpolation inside the covering bucket. The +Inf bucket has
      // no upper edge; report its lower edge (the best bounded estimate).
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
      if (i == bounds_.size()) return lower;
      const double upper = static_cast<double>(bounds_[i]);
      const double into =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * into;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(bounds_.empty() ? 0 : bounds_.back());
}

void Histogram::merge(const Histogram& other) {
  count_.add(other.count());
  sum_.add(other.sum());
  if (bounds_ == other.bounds_) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i].add(other.counts_[i].get());
    }
  } else if (!counts_.empty()) {
    // Mismatched ladders can't be folded bucket-wise; keep the totals honest
    // by dumping the other side into +Inf.
    counts_.back().add(other.count());
  }
}

void Histogram::verify_reset_writers() {
  for (Counter& c : counts_) c.verify_reset_writer();
  count_.verify_reset_writer();
  sum_.verify_reset_writer();
}

void MetricsRegistry::verify_reset_writers() {
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter.verify_reset_writer();
  }
  for (auto& [name, histogram] : histograms_) {
    (void)name;
    histogram.verify_reset_writers();
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter()).first;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view label_key,
                                  std::string_view label_value) {
  std::string key;
  key.reserve(name.size() + label_key.size() + label_value.size() + 5);
  key.append(name);
  key.push_back('{');
  key.append(label_key);
  key.append("=\"");
  key.append(label_value);
  key.append("\"}");
  return counter(key);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge()).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::uint64_t> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
             .first;
  }
  return it->second;
}

void MetricsRegistry::set_help(std::string_view name, std::string_view help) {
  help_[std::string(name)] = std::string(help);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counter(name).add(value.get());
  }
  for (const auto& [name, value] : other.gauges_) {
    gauge(name).set(value.get());
  }
  for (const auto& [name, value] : other.histograms_) {
    histogram(name, value.bounds()).merge(value);
  }
  for (const auto& [name, text] : other.help_) {
    help_.emplace(name, text);
  }
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.get();
}

bool MetricsRegistry::has_counter(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  out.reserve(4096);
  auto emit_headers = [&](std::string_view base, const char* type) {
    auto help = help_.find(base);
    if (help != help_.end()) {
      out.append("# HELP ").append(base).append(" ").append(help->second);
      out.push_back('\n');
    }
    out.append("# TYPE ").append(base).append(" ").append(type);
    out.push_back('\n');
  };

  std::string_view last_base;
  for (const auto& [key, value] : counters_) {
    std::string_view base = base_name(key);
    if (base != last_base) {
      emit_headers(base, "counter");
      last_base = base;
    }
    out.append(key).push_back(' ');
    out.append(std::to_string(value.get()));
    out.push_back('\n');
  }
  for (const auto& [key, value] : gauges_) {
    emit_headers(key, "gauge");
    out.append(key).push_back(' ');
    out.append(format_double(value.get()));
    out.push_back('\n');
  }
  for (const auto& [key, value] : histograms_) {
    emit_headers(key, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < value.bounds().size(); ++i) {
      cumulative += value.bucket_count(i);
      out.append(key).append("_bucket{le=\"");
      out.append(std::to_string(value.bounds()[i]));
      out.append("\"} ").append(std::to_string(cumulative));
      out.push_back('\n');
    }
    cumulative += value.bucket_count(value.bounds().size());
    out.append(key).append("_bucket{le=\"+Inf\"} ");
    out.append(std::to_string(cumulative));
    out.push_back('\n');
    out.append(key).append("_sum ").append(std::to_string(value.sum()));
    out.push_back('\n');
    out.append(key).append("_count ").append(std::to_string(value.count()));
    out.push_back('\n');
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  out.reserve(4096);
  out.append("{\"counters\":{");
  bool first = true;
  for (const auto& [key, value] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_key(&out, key);
    out.push_back(':');
    out.append(std::to_string(value.get()));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [key, value] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_key(&out, key);
    out.push_back(':');
    out.append(format_double(value.get()));
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [key, value] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_key(&out, key);
    out.append(":{\"count\":").append(std::to_string(value.count()));
    out.append(",\"sum\":").append(std::to_string(value.sum()));
    out.append(",\"p50\":").append(format_double(value.quantile(0.5)));
    out.append(",\"p99\":").append(format_double(value.quantile(0.99)));
    out.append(",\"buckets\":[");
    for (std::size_t i = 0; i < value.bounds().size(); ++i) {
      if (i != 0) out.push_back(',');
      out.push_back('[');
      out.append(std::to_string(value.bounds()[i]));
      out.push_back(',');
      out.append(std::to_string(value.bucket_count(i)));
      out.push_back(']');
    }
    if (!value.bounds().empty()) out.push_back(',');
    out.append("[-1,");
    out.append(std::to_string(value.bucket_count(value.bounds().size())));
    out.append("]]}");
  }
  out.append("}}");
  return out;
}

}  // namespace dnsboot::obs
