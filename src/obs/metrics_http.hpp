// A deliberately tiny HTTP/1.0 listener whose only job is answering
// `GET /metrics` with the Prometheus text exposition (DESIGN.md §11). Not a
// general HTTP server: one thread, one request per connection, bounded
// request read, everything else answered 404. Good enough for a scraper on
// loopback; dnsboot-serve owns one when --metrics-port is given.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace dnsboot::obs {

class MetricsHttpServer {
 public:
  // Called per scrape; returns the full Prometheus exposition body.
  using Collector = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer() { stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Bind 127.0.0.1:port (port 0 picks an ephemeral one — see port()) and
  // start the serving thread. Returns false with error() set on failure.
  bool start(std::uint16_t port, Collector collector);
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }
  const std::string& error() const { return error_; }
  std::uint64_t scrapes() const {
    // audit-allow: A004 single-writer count (serve thread); readers tolerate lag
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();

  // Threading contract (no mutex on purpose): collector_, listen_fd_ and
  // port_/error_ are written by start() strictly before the serving thread
  // exists (the std::thread constructor is the happens-before edge) and are
  // immutable while it runs; stop() closes listen_fd_ only after join().
  // The atomics are the only state both threads touch concurrently.
  Collector collector_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> scrapes_{0};  // written by serve_loop() only
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
};

}  // namespace dnsboot::obs
