// Registry-backed stats views (DESIGN.md §11). PRs 2–4 grew three parallel
// counter structs — QueryEngineStats, ScannerStats, FaultStats — each with
// its own hand-written operator+= shard merge. They are now thin *views*
// over obs::MetricsRegistry: every field is a CounterRef bound to a named
// registry counter, so existing call sites (`++stats.queries`,
// `stats.sends`, report_io field writes, test assertions) compile
// unchanged, while merging collapsed into the one generic
// MetricsRegistry::merge() and the same counters feed /metrics,
// --metrics-json and the bench histogram hook for free.
//
// Lifetime rule: a view is a bundle of pointers into one registry. Never
// assign a view across registries (the old `result.stats = engine.stats()`
// pattern) — merge the registries instead, then bind a fresh view over the
// merged one. Default-constructed views are unbound: reads yield 0, writes
// are dropped.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/metrics.hpp"

namespace dnsboot::obs {

// A borrowed counter handle that imitates the old `std::uint64_t` fields.
// Implicit conversion keeps every read site compiling; ++/+= keep every
// write site compiling.
class CounterRef {
 public:
  CounterRef() = default;
  explicit CounterRef(Counter& counter) : counter_(&counter) {}

  std::uint64_t value() const { return counter_ ? counter_->get() : 0; }
  operator std::uint64_t() const { return value(); }  // NOLINT(google-explicit-constructor)

  CounterRef& operator++() {
    if (counter_) counter_->add(1);
    return *this;
  }
  CounterRef& operator+=(std::uint64_t n) {
    if (counter_) counter_->add(n);
    return *this;
  }

 private:
  Counter* counter_ = nullptr;
};

// resolver::QueryEngine counters (metric family dnsboot_engine_*).
struct QueryEngineStats {
  CounterRef queries;        // logical queries issued by callers
  CounterRef sends;          // datagrams sent (includes retries)
  CounterRef responses;      // matched responses
  CounterRef timeouts;       // logical queries that exhausted retries
  CounterRef retries;
  CounterRef mismatched;     // responses that matched no pending query
  CounterRef tcp_fallbacks;  // truncated UDP answers retried over TCP
  CounterRef truncation_loops;     // TCP answers still truncated
  CounterRef fail_fast;            // rejected by an open circuit
  CounterRef servfail_cache_hits;  // answered from the RFC 9520 cache
  CounterRef budget_denied;        // retries denied by the budget

  QueryEngineStats() = default;
  explicit QueryEngineStats(MetricsRegistry& reg)
      : queries(reg.counter("dnsboot_engine_queries")),
        sends(reg.counter("dnsboot_engine_sends")),
        responses(reg.counter("dnsboot_engine_responses")),
        timeouts(reg.counter("dnsboot_engine_timeouts")),
        retries(reg.counter("dnsboot_engine_retries")),
        mismatched(reg.counter("dnsboot_engine_mismatched")),
        tcp_fallbacks(reg.counter("dnsboot_engine_tcp_fallbacks")),
        truncation_loops(reg.counter("dnsboot_engine_truncation_loops")),
        fail_fast(reg.counter("dnsboot_engine_fail_fast")),
        servfail_cache_hits(
            reg.counter("dnsboot_engine_servfail_cache_hits")),
        budget_denied(reg.counter("dnsboot_engine_budget_denied")) {}

  // Sends that never produced a matched response — the waste metric the
  // chaos bench compares across retry policies.
  std::uint64_t wasted_sends() const {
    const std::uint64_t s = sends, r = responses;
    return s >= r ? s - r : 0;
  }
};

// scanner::Scanner counters (metric family dnsboot_scanner_*).
struct ScannerStats {
  CounterRef zones_scanned;  // zone scans finished (requeues count)
  CounterRef zones_failed;   // delivered with unresolved delegation
  CounterRef signal_probes;
  CounterRef pool_zones_sampled;
  CounterRef pool_zones_full;
  CounterRef zones_complete;   // delivered fully observed
  CounterRef zones_degraded;   // delivered with failed probes
  CounterRef zones_requeued;   // rescans queued by the requeue pass
  CounterRef zones_recovered;  // requeue strictly improved the result

  ScannerStats() = default;
  explicit ScannerStats(MetricsRegistry& reg)
      : zones_scanned(reg.counter("dnsboot_scanner_zones_scanned")),
        zones_failed(reg.counter("dnsboot_scanner_zones_failed")),
        signal_probes(reg.counter("dnsboot_scanner_signal_probes")),
        pool_zones_sampled(reg.counter("dnsboot_scanner_pool_zones_sampled")),
        pool_zones_full(reg.counter("dnsboot_scanner_pool_zones_full")),
        zones_complete(reg.counter("dnsboot_scanner_zones_complete")),
        zones_degraded(reg.counter("dnsboot_scanner_zones_degraded")),
        zones_requeued(reg.counter("dnsboot_scanner_zones_requeued")),
        zones_recovered(reg.counter("dnsboot_scanner_zones_recovered")) {}
};

// net::SimNetwork fault-injection counters (family dnsboot_net_fault_*).
struct FaultStats {
  CounterRef blackholed;
  CounterRef flap_dropped;
  CounterRef burst_dropped;
  CounterRef fault_lost;  // FaultProfile::loss_rate drops
  CounterRef corrupted;
  CounterRef reordered;
  CounterRef duplicated;

  FaultStats() = default;
  explicit FaultStats(MetricsRegistry& reg)
      : blackholed(reg.counter("dnsboot_net_fault_blackholed")),
        flap_dropped(reg.counter("dnsboot_net_fault_flap_dropped")),
        burst_dropped(reg.counter("dnsboot_net_fault_burst_dropped")),
        fault_lost(reg.counter("dnsboot_net_fault_lost")),
        corrupted(reg.counter("dnsboot_net_fault_corrupted")),
        reordered(reg.counter("dnsboot_net_fault_reordered")),
        duplicated(reg.counter("dnsboot_net_fault_duplicated")) {}
};

// net::SimNetwork attacker-layer counters (family dnsboot_attack_*): what
// the adversary injected, by taxonomy class. Written by the simulator, read
// by the survey robustness summary and the adversarial acceptance tests.
struct AttackStats {
  CounterRef queries_observed;      // UDP queries seen toward attacked targets
  CounterRef spoofs_injected;       // off-path spoof-sweep candidates
  CounterRef floods_injected;       // wrong-ID junk responses
  CounterRef wrong_tuple_injected;  // right ID/port, wrong source address
  CounterRef tc_injected;           // forged TC=1 truncation-game replies
  CounterRef malformed_injected;    // undecodable junk replies
  CounterRef oversized_injected;    // replies past any sane UDP budget

  AttackStats() = default;
  explicit AttackStats(MetricsRegistry& reg)
      : queries_observed(reg.counter("dnsboot_attack_queries_observed")),
        spoofs_injected(reg.counter("dnsboot_attack_spoofs_injected")),
        floods_injected(reg.counter("dnsboot_attack_floods_injected")),
        wrong_tuple_injected(
            reg.counter("dnsboot_attack_wrong_tuple_injected")),
        tc_injected(reg.counter("dnsboot_attack_tc_injected")),
        malformed_injected(reg.counter("dnsboot_attack_malformed_injected")),
        oversized_injected(reg.counter("dnsboot_attack_oversized_injected")) {}

  std::uint64_t total_injected() const {
    return spoofs_injected + floods_injected + wrong_tuple_injected +
           tc_injected + malformed_injected + oversized_injected;
  }
};

// resolver::QueryEngine anti-spoofing counters (family dnsboot_defense_*).
// accepted_forgeries is the headline number: it counts matched responses
// whose ground-truth `injected` marker was set, and the adversarial
// acceptance criterion is that it stays exactly 0 off-path.
struct DefenseStats {
  CounterRef forged_rejected;    // rejected responses attributed to a pending
                                 // question (spoof-sweep candidates)
  CounterRef port_rejected;      // right ID, wrong destination port
  CounterRef malformed_rejected; // undecodable payloads shed
  CounterRef forgery_aborts;     // birthday detection: UDP abandoned for TCP
  CounterRef accepted_forgeries; // injected datagrams that completed a query
  CounterRef servers_marked;     // endpoints marked under_attack

  DefenseStats() = default;
  explicit DefenseStats(MetricsRegistry& reg)
      : forged_rejected(reg.counter("dnsboot_defense_forged_rejected")),
        port_rejected(reg.counter("dnsboot_defense_port_rejected")),
        malformed_rejected(reg.counter("dnsboot_defense_malformed_rejected")),
        forgery_aborts(reg.counter("dnsboot_defense_forgery_aborts")),
        accepted_forgeries(
            reg.counter("dnsboot_defense_accepted_forgeries")),
        servers_marked(reg.counter("dnsboot_defense_servers_marked")) {}
};

// An owned snapshot: copies a component's registry and binds a view over
// the copy, for call sites where the stats must outlive the component
// (tests and benches that return stats from a scope that owns the engine).
// Copyable — copies share the snapshot registry.
template <typename ViewT>
class StatsSnapshot {
 public:
  explicit StatsSnapshot(const MetricsRegistry& source)
      : registry_(std::make_shared<MetricsRegistry>(source)),
        view_(*registry_) {}

  const ViewT* operator->() const { return &view_; }
  const ViewT& operator*() const { return view_; }
  const MetricsRegistry& registry() const { return *registry_; }

 private:
  std::shared_ptr<MetricsRegistry> registry_;
  ViewT view_;
};

}  // namespace dnsboot::obs
