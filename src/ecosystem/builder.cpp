#include "ecosystem/builder.hpp"

#include "ecosystem/plan.hpp"

namespace dnsboot::ecosystem {

EcosystemBuilder::EcosystemBuilder(net::SimNetwork& network,
                                   EcosystemConfig config)
    : network_(network), config_(std::move(config)) {}

Ecosystem EcosystemBuilder::build() {
  return build_shard(network_, config_, make_ecosystem_plan(config_), 0, 1);
}

}  // namespace dnsboot::ecosystem
