#include "ecosystem/profiles.hpp"

#include <algorithm>

namespace dnsboot::ecosystem {
namespace {

OperatorProfile op(std::string name, std::string ns_domain,
                   std::uint64_t domains, std::uint64_t secured,
                   std::uint64_t invalid, std::uint64_t islands,
                   std::uint64_t cds) {
  OperatorProfile p;
  p.name = std::move(name);
  p.ns_domains = {std::move(ns_domain)};
  p.domains = domains;
  p.secured = secured;
  p.invalid = invalid;
  p.islands = islands;
  p.cds_domains = cds;
  return p;
}

}  // namespace

std::vector<std::string> simulated_tlds() {
  return {"com", "net",  "org", "io", "ch", "li",
          "se",  "uk",   "sk",  "ee", "nu", "swiss",
          "bo",  "vip",  "dev"};
}

std::vector<OperatorProfile> paper_operator_profiles() {
  std::vector<OperatorProfile> out;

  // ---- Table 1: top-20 DNS operators (domains, unsigned implied) ----
  {
    auto p = op("GoDaddy", "domaincontrol.com", 56'446'359, 107'550, 8'550,
                3'507, 111'078);
    p.island_cds_fraction = 1.0;  // CDS on its few auto-managed islands
    out.push_back(p);
  }
  {
    auto p = op("Cloudflare", "ns.cloudflare.com", 27'790'208, 799'377,
                16'694, 432'152, 1'232'531);
    p.anycast_pool = true;
    p.addresses_per_ns = 3;  // x2 NS names, each 3 IPv4 + 3 IPv6 = 12 endpoints
    p.island_cds_fraction = 1.0;
    p.island_cds_delete_fraction = 0.372;  // 160.0 k of 432.2 k (§4.2)
    p.publishes_signal = true;
    p.signal_includes_delete = true;
    p.signal_on_invalid = 765;  // Table 3: CF "invalid DNSSEC" row
    out.push_back(p);
  }
  out.push_back(op("Namecheap", "registrar-servers.com", 10'252'586, 126'601,
                   5'300, 1'615, 0));
  {
    // Google Domains (SquareSpace): DNSSEC on by default; CDS on secured
    // zones. (Table 2 credits CDS ≈ secured + islands; Figure 1 forbids
    // islands-with-CDS at this volume — the funnel wins, see DESIGN.md.)
    auto p = op("GoogleDomains", "googledomains.com", 9'931'131, 4'496'848,
                109'499, 127'137, 4'496'848);
    out.push_back(p);
  }
  {
    // WIX: the 15.7 % secure-island experiment (§4.1); islands carry no CDS.
    auto p = op("WIX", "wixdns.net", 7'318'524, 74'423, 2'954, 1'151'200,
                77'377);
    out.push_back(p);
  }
  out.push_back(op("Hostinger", "dns-parking.com", 6'561'661, 5'360, 0, 0, 0));
  {
    auto p = op("AfterNIC", "afternic.com", 5'360'163, 11'034, 0, 0, 0);
    out.push_back(p);
  }
  out.push_back(op("HiChina", "hichina.com", 4'637'997, 9'481, 0, 0, 0));
  out.push_back(
      op("AWS", "awsdns.net", 3'698'499, 30'005, 4'345, 10'776, 0));
  out.push_back(op("GName", "gname.net", 3'558'801, 1'145, 1'002, 572, 0));
  out.push_back(op("NameBright", "namebrightdns.com", 3'516'303, 73, 680, 2, 0));
  out.push_back(op("SquareSpace", "squarespacedns.com", 2'735'515, 24'278,
                   1'023, 174, 0));
  {
    // OVH: DNSSEC by default, but no CDS publication (absent from Table 2).
    auto p = op("OVH", "ovh.net", 2'662'864, 1'169'714, 2'839, 20'886, 0);
    out.push_back(p);
  }
  out.push_back(op("Sedo", "sedoparking.com", 2'340'028, 3'645, 0, 0, 0));
  out.push_back(
      op("BlueHost", "bluehost.com", 1'976'091, 13'188, 136, 1'215, 0));
  out.push_back(op("NameSilo", "namesilo.com", 1'847'474, 1'223, 0, 0, 0));
  out.push_back(
      op("Alibaba", "alidns.com", 1'570'903, 2'675, 1'216, 2'032, 0));
  out.push_back(op("DynaDot", "dynadot.com", 1'552'892, 461, 0, 0, 0));
  out.push_back(
      op("Wordpress", "wordpress.com", 1'549'730, 7'824, 347, 60, 0));
  out.push_back(op("SiteGround", "sgvps.net", 1'535'176, 1'302, 0, 0, 0));

  // ---- Table 2: CDS-publishing operators not already above ----
  // Portfolio derived from count/percentage; these operators auto-manage
  // DNSSEC, so secured ≈ CDS count and islands contribute the long tail of
  // the funnel's "possible to bootstrap" branch beyond Cloudflare.
  struct CdsOp {
    const char* name;
    const char* ns_domain;
    std::uint64_t cds;
    double pct;
    bool swiss;
  };
  static const CdsOp kCdsOps[] = {
      {"SimplyCom", "simply.com", 218'590, 96.8, false},
      {"cyon", "cyon.ch", 60'981, 48.1, true},
      {"Gransy", "gransy.com", 54'690, 98.9, false},
      {"METANET", "metanet.ch", 54'522, 70.5, true},
      {"Porkbun", "porkbun.com", 34'989, 3.2, false},
      {"netim", "netim.net", 34'586, 40.9, false},
      {"Gandi", "gandi.net", 34'486, 3.6, false},
      {"Webland", "webland.ch", 26'416, 76.3, true},
      {"greench", "green.ch", 24'674, 16.8, true},
      {"WebHouse", "webhouse.sk", 18'766, 60.0, false},
      {"Va3Hosting", "va3.net", 13'066, 98.3, false},
      {"HostFactory", "hostfactory.ch", 12'897, 68.4, true},
      {"INWX", "inwx.net", 11'303, 7.8, false},
      {"OpenProvider", "openprovider.net", 10'312, 79.5, false},
      {"AWARDIC", "awardic.net", 8'898, 99.9, false},
      {"ThreeDNS", "3dns.net", 8'112, 75.6, false},
  };
  for (const auto& c : kCdsOps) {
    std::uint64_t domains =
        static_cast<std::uint64_t>(static_cast<double>(c.cds) / c.pct * 100.0);
    // Mostly secured; ~2 % of the CDS zones are still islands (bootstrappable).
    std::uint64_t islands = c.cds / 50;
    std::uint64_t secured = c.cds - islands;
    auto p = op(c.name, c.ns_domain, domains, secured, 0, islands, c.cds);
    p.swiss = c.swiss;
    if (c.swiss) {
      p.tld = "ch";
      p.customer_tld = "ch";
    }
    if (std::string(c.ns_domain).find(".sk") != std::string::npos) {
      p.tld = "sk";
      p.customer_tld = "sk";
    }
    if (std::string(c.ns_domain).find(".net") != std::string::npos) {
      p.tld = "net";
    }
    p.island_cds_fraction = 1.0;
    out.push_back(p);
  }

  // ---- Table 3: the remaining authenticated-bootstrapping operators ----
  {
    // deSEC: everything signed, signal RRs for the whole portfolio, two
    // signal domains (desec.io + desec.org), no delete sentinels in signal.
    OperatorProfile p;
    p.name = "deSEC";
    p.ns_domains = {"desec.io", "desec.org"};
    p.tld = "io";
    p.customer_tld = "dev";
    p.domains = 7'320;
    p.secured = 5'439;
    p.invalid = 20;
    p.islands = 1'855;
    p.cds_domains = 7'314;
    p.island_cds_fraction = 1.0;
    p.publishes_signal = true;
    p.signal_includes_delete = false;
    p.signal_on_invalid = 20;  // Table 3: deSEC "invalid DNSSEC" row
    out.push_back(p);
  }
  {
    // Glauca Digital: small portfolio, delete sentinels copied into signal.
    OperatorProfile p;
    p.name = "Glauca";
    p.ns_domains = {"glauca.uk"};  // glauca.digital in reality; .digital is
                                   // not simulated, so host under .uk
    p.tld = "uk";
    p.customer_tld = "uk";
    p.domains = 295;
    p.secured = 233;
    p.invalid = 1;
    p.islands = 56;  // 49 potential + 7 delete
    p.cds_domains = 290;
    p.island_cds_fraction = 1.0;
    p.island_cds_delete_fraction = 7.0 / 56.0;
    p.publishes_signal = true;
    p.signal_includes_delete = true;
    p.signal_on_invalid = 1;
    out.push_back(p);
  }
  {
    // "Others" from Table 3: test deployments (Wordpress, One.com, AWS,
    // 51DNS, Verisign, personal servers) modelled as one small operator
    // whose composition matches the Others column: 113 secured, 20 delete,
    // 123 invalid, 23 potential.
    OperatorProfile p;
    p.name = "OtherSignal";
    p.ns_domains = {"othersignal.net"};
    p.tld = "net";
    p.domains = 330;
    p.secured = 113;
    p.invalid = 123;
    p.islands = 43;  // 23 potential + 20 delete
    p.cds_domains = 279;
    p.island_cds_fraction = 1.0;
    p.island_cds_delete_fraction = 20.0 / 43.0;
    p.publishes_signal = true;
    p.signal_includes_delete = true;
    p.signal_on_invalid = 123;
    p.signal_on_unsigned = 43;  // §4.4: signal RRs over entirely unsigned zones
    out.push_back(p);
  }
  {
    // Canal Dominios: the §4.2 misconfiguration — CDS published in zones
    // that are not signed at all (2 469 zones).
    OperatorProfile p;
    p.name = "CanalDominios";
    p.ns_domains = {"canaldominios.net"};
    p.tld = "net";
    p.domains = 2'600;
    p.cds_domains = 0;  // CDS handled by the pathology injector
    out.push_back(p);
  }
  {
    // Afternic-style parking for the typo'd nameserver domain desc.io
    // (§4.4 zone-cut violation). Serves identical answers for every name.
    OperatorProfile p;
    p.name = "ParkingNamefind";
    p.ns_domains = {"namefind.com"};
    p.tld = "com";
    p.domains = 0;  // hosts no scanned zones; only the parked desc.io
    out.push_back(p);
  }

  return out;
}

std::vector<OperatorProfile> long_tail_profiles(
    const std::vector<OperatorProfile>& named, const GlobalTargets& targets,
    int count) {
  std::uint64_t named_domains = 0, named_secured = 0, named_invalid = 0,
                named_islands = 0, named_cds = 0;
  for (const auto& p : named) {
    named_domains += p.domains;
    named_secured += p.secured;
    named_invalid += p.invalid;
    named_islands += p.islands;
    named_cds += p.cds_domains;
  }
  auto saturating_sub = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : 0;
  };
  std::uint64_t rest_domains = saturating_sub(targets.total_domains, named_domains);
  std::uint64_t rest_secured = saturating_sub(targets.secured, named_secured);
  std::uint64_t rest_invalid = saturating_sub(targets.invalid, named_invalid);
  std::uint64_t rest_islands = saturating_sub(targets.islands, named_islands);
  std::uint64_t rest_cds = saturating_sub(targets.with_cds, named_cds);

  // The funnel's island-CDS branches beyond the named operators: Cloudflare
  // supplies most delete sentinels and most valid-CDS islands; the long tail
  // supplies the remainder of the 302 985 "possible to bootstrap".
  std::uint64_t named_island_cds_valid = 0;
  for (const auto& p : named) {
    double with_cds = static_cast<double>(p.islands) * p.island_cds_fraction;
    named_island_cds_valid += static_cast<std::uint64_t>(
        with_cds * (1.0 - p.island_cds_delete_fraction));
  }
  std::uint64_t rest_island_cds_valid =
      saturating_sub(targets.island_cds_valid, named_island_cds_valid);

  std::vector<OperatorProfile> out;
  out.reserve(static_cast<std::size_t>(count));
  const auto tlds = simulated_tlds();

  // Servers that predate RFC 3597 cannot serve DNSKEY either, so legacy
  // operators host exclusively unsigned zones; the DNSSEC mass is spread
  // over the modern remainder. The first `legacy_count` tail operators
  // together cover the paper's 7.6 M CDS-query-failure domains.
  const std::uint64_t per_op_domains =
      rest_domains / static_cast<std::uint64_t>(count);
  int legacy_count = per_op_domains == 0
                         ? 0
                         : static_cast<int>(
                               (targets.legacy_formerr_domains +
                                per_op_domains - 1) /
                               per_op_domains);
  legacy_count = std::min(legacy_count, count - 1);
  const int modern_count = count - legacy_count;

  for (int i = 0; i < count; ++i) {
    OperatorProfile p;
    p.name = "LongTail" + std::to_string(i + 1);
    p.ns_domains = {"dns" + std::to_string(i + 1) + "-longtail.net"};
    p.tld = "net";
    p.customer_tld = tlds[static_cast<std::size_t>(i) % tlds.size()];
    p.legacy_formerr = i < legacy_count;

    auto share_all = [&](std::uint64_t total) {
      std::uint64_t base = total / static_cast<std::uint64_t>(count);
      return (i == count - 1)
                 ? total - base * static_cast<std::uint64_t>(count - 1)
                 : base;
    };
    // DNSSEC mass goes to modern operators only.
    auto share_modern = [&](std::uint64_t total) -> std::uint64_t {
      if (p.legacy_formerr) return 0;
      int j = i - legacy_count;  // index among modern ops
      std::uint64_t base = total / static_cast<std::uint64_t>(modern_count);
      return (j == modern_count - 1)
                 ? total - base * static_cast<std::uint64_t>(modern_count - 1)
                 : base;
    };
    p.domains = share_all(rest_domains);
    p.secured = share_modern(rest_secured);
    p.invalid = share_modern(rest_invalid);
    p.islands = share_modern(rest_islands);
    p.cds_domains = share_modern(rest_cds);
    std::uint64_t island_cds =
        std::min(share_modern(rest_island_cds_valid), p.islands);
    p.island_cds_fraction =
        p.islands == 0 ? 0.0
                       : static_cast<double>(island_cds) /
                             static_cast<double>(p.islands);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace dnsboot::ecosystem
