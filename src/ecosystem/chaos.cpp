#include "ecosystem/chaos.hpp"

namespace dnsboot::ecosystem {

ChaosOptions chaos_preset(const std::string& name) {
  ChaosOptions options;
  if (name == "mild") {
    options.loss_rate = 0.05;
    options.duplicate_rate = 0.02;
    options.reorder_rate = 0.05;
    options.flap_fraction = 0.05;
    options.flap_period = 20 * net::kSecond;
    options.flap_down = 2 * net::kSecond;
    options.servfail_flap_fraction = 0.05;
    options.servfail_flap_period = 15 * net::kSecond;
    options.servfail_flap_fail = 3 * net::kSecond;
  } else if (name == "hostile") {
    options.loss_rate = 0.30;
    options.duplicate_rate = 0.05;
    options.reorder_rate = 0.10;
    options.corrupt_rate = 0.01;
    options.burst_enter = 0.01;
    options.burst_duration = 500 * net::kMillisecond;
    options.blackhole_fraction = 0.10;
    options.blackhole_start = 5 * net::kSecond;
    options.blackhole_duration = 20 * net::kSecond;
    options.flap_fraction = 0.15;
    options.flap_period = 10 * net::kSecond;
    options.flap_down = 3 * net::kSecond;
    options.slow_start_fraction = 0.10;
    options.slow_start_penalty = 500 * net::kMillisecond;
    options.slow_start_queries = 5;
    options.rate_limit_fraction = 0.10;
    options.rate_limit_qps = 200.0;
    options.servfail_flap_fraction = 0.10;
    options.servfail_flap_period = 10 * net::kSecond;
    options.servfail_flap_fail = 2 * net::kSecond;
  } else if (name == "adversarial") {
    // Clean links, hostile peers. Link faults stay off on purpose: the
    // acceptance claim is that a world under active attack produces a
    // byte-identical adoption report to the clean run, which requires every
    // *authentic* answer to arrive exactly as it would without the
    // attacker. Everything else is crafted traffic racing it.
    options.attack_fraction = 0.5;
    options.attack.spoof_candidates = 12;
    options.attack.flood_responses = 4;
    options.attack.wrong_source_responses = 4;
    options.attack.tc_rate = 0.25;
    options.attack.malformed_responses = 2;
    options.attack.oversized_responses = 1;
    // Roll out the serving-tier hardening with the attack; generous enough
    // that the paced scanner (50 qps/NS) never trips it.
    options.defense_per_client_qps = 500.0;
    options.defense_per_client_burst = 64.0;
  }
  // Anything else (notably "off") keeps the all-zero defaults.
  return options;
}

const std::vector<std::string>& chaos_preset_names() {
  static const std::vector<std::string> names = {"off", "mild", "hostile",
                                                 "adversarial"};
  return names;
}

namespace {

bool is_infrastructure(const std::string& server_id) {
  return server_id == "root" || server_id.rfind("nic.", 0) == 0;
}

}  // namespace

ChaosPlan apply_chaos(net::SimNetwork& network, Ecosystem& eco,
                      const ChaosOptions& options) {
  ChaosPlan plan;
  Rng rng(options.seed);
  for (auto& server : eco.servers) {
    const std::string& id = server->config().id;
    const bool infra =
        options.exempt_infrastructure && is_infrastructure(id);

    if (!infra) {
      // Server-side fault gates: each gate rolled independently per server,
      // forked off the server id so the plan is stable under reordering.
      Rng server_rng = rng.fork("server:" + id);
      server::ServerFaultProfile faults;
      bool any = false;
      if (options.slow_start_fraction > 0 &&
          server_rng.chance(options.slow_start_fraction)) {
        faults.slow_start_penalty = options.slow_start_penalty;
        faults.slow_start_queries = options.slow_start_queries;
        any = true;
      }
      if (options.rate_limit_fraction > 0 &&
          server_rng.chance(options.rate_limit_fraction)) {
        faults.rate_limit_qps = options.rate_limit_qps;
        any = true;
      }
      if (options.servfail_flap_fraction > 0 &&
          server_rng.chance(options.servfail_flap_fraction)) {
        faults.flap_period = options.servfail_flap_period;
        faults.flap_fail = options.servfail_flap_fail;
        any = true;
      }
      if (any) {
        server->set_faults(faults);
        ++plan.servers_faulted;
      }
      if (options.defense_per_client_qps > 0) {
        server::ServerDefenseProfile defense;
        defense.per_client_qps = options.defense_per_client_qps;
        defense.per_client_burst = options.defense_per_client_burst;
        server->set_defense(defense);
        ++plan.servers_hardened;
      }
    }

    // Infrastructure links stay fully clean: the paper's scan presumes a
    // reachable parent side, and a lossy root degrades *every* delegation
    // for reasons no per-zone provenance can express.
    if (infra) continue;
    for (const auto& address : server->addresses()) {
      // Attacker placement, forked per endpoint so the plan is stable
      // under server reordering. The attacker's runtime RNG is a second
      // independent fork: placement draws must not perturb its traffic.
      if (options.attack_fraction > 0 && options.attack.any()) {
        Rng placement_rng = rng.fork("attack-at:" + address.to_text());
        if (placement_rng.chance(options.attack_fraction)) {
          network.set_attack_on(address, options.attack,
                                rng.fork("attack:" + address.to_text()));
          ++plan.endpoints_attacked;
        }
      }
      Rng addr_rng = rng.fork("link:" + address.to_text());
      net::FaultProfile profile;
      bool any = false;
      if (options.loss_rate > 0) {
        profile.loss_rate = options.loss_rate;
        any = true;
      }
      if (options.duplicate_rate > 0) {
        profile.duplicate_rate = options.duplicate_rate;
        any = true;
      }
      if (options.reorder_rate > 0) {
        profile.reorder_rate = options.reorder_rate;
        any = true;
      }
      if (options.corrupt_rate > 0) {
        profile.corrupt_rate = options.corrupt_rate;
        any = true;
      }
      if (options.burst_enter > 0) {
        profile.burst_enter = options.burst_enter;
        profile.burst_duration = options.burst_duration;
        any = true;
      }
      if (options.blackhole_fraction > 0 &&
          addr_rng.chance(options.blackhole_fraction)) {
        net::TimeWindow window;
        window.start = options.blackhole_start;
        window.end = options.blackhole_duration >= net::kSimTimeForever -
                                                       options.blackhole_start
                         ? net::kSimTimeForever
                         : options.blackhole_start + options.blackhole_duration;
        profile.blackholes.push_back(window);
        ++plan.endpoints_blackholed;
        any = true;
      }
      if (options.flap_fraction > 0 && options.flap_period > 0 &&
          addr_rng.chance(options.flap_fraction)) {
        profile.flap_period = options.flap_period;
        profile.flap_down = options.flap_down;
        // Random phase so flapping endpoints do not all go dark together.
        profile.flap_phase = addr_rng.next_below(options.flap_period);
        ++plan.endpoints_flapping;
        any = true;
      }
      if (any) {
        network.set_faults_to(address, profile);
        plan.links[address] = profile;
        ++plan.endpoints_faulted;
      }
    }
  }
  return plan;
}

}  // namespace dnsboot::ecosystem
