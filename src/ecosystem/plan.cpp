#include "ecosystem/plan.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "base/rng.hpp"
#include "base/strings.hpp"

namespace dnsboot::ecosystem {
namespace {

dns::Name name_of(const std::string& text) {
  auto r = dns::Name::from_text(text);
  // Generator-internal names are always well-formed.
  return std::move(r).take();
}

dns::ResourceRecord make_rr(const dns::Name& owner, dns::RRType type,
                            std::uint32_t ttl, dns::Rdata rdata) {
  dns::ResourceRecord rr;
  rr.name = owner;
  rr.type = type;
  rr.ttl = ttl;
  rr.rdata = std::move(rdata);
  return rr;
}

dns::ARdata a_of(const net::IpAddress& address) {
  const auto& b = address.bytes();
  return dns::ARdata{{b[0], b[1], b[2], b[3]}};
}

dns::AaaaRdata aaaa_of(const net::IpAddress& address) {
  return dns::AaaaRdata{address.bytes()};
}

std::string slug_of(const std::string& operator_name) {
  std::string out;
  for (char c : operator_name) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) out += c;
    if (c >= 'A' && c <= 'Z') out += static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::uint64_t scaled(const EcosystemConfig& config, std::uint64_t full_count) {
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(full_count) * config.scale));
}

std::uint64_t scaled_pathology(const EcosystemConfig& config,
                               std::uint64_t full_count) {
  if (full_count == 0) return 0;
  return std::max<std::uint64_t>(1, scaled(config, full_count));
}

dnssec::SigningPolicy zone_policy(const EcosystemConfig& config,
                                  bool expired = false) {
  dnssec::SigningPolicy policy;
  if (expired) {
    // Signed long ago, never re-signed: classic expired-RRSIG breakage.
    policy.inception = config.now - 90 * 86400;
    policy.expiration = config.now - 30 * 86400;
  } else {
    policy.inception = config.now - 86400;
    policy.expiration = config.now + 30 * 86400;
  }
  return policy;
}

// Largest-remainder scaling: a plain llround() would bias totals when the
// long tail splits a quantity into hundreds of equal shares (e.g. 5.5
// zones per operator rounding to 6 everywhere). Carrying the fractional
// remainder across operators keeps every global total exact to ±1.
struct CarryScaler {
  double carry = 0.0;
  std::uint64_t operator()(std::uint64_t full_count, double scale) {
    double x = static_cast<double>(full_count) * scale + carry;
    double floored = std::floor(x);
    carry = x - floored;
    return static_cast<std::uint64_t>(floored);
  }
};

}  // namespace

EcosystemPlan make_ecosystem_plan(const EcosystemConfig& config) {
  EcosystemPlan plan;

  std::vector<OperatorProfile> profiles = config.operators;
  if (profiles.empty()) {
    profiles = paper_operator_profiles();
    auto tail = long_tail_profiles(profiles, config.targets,
                                   config.long_tail_operators);
    profiles.insert(profiles.end(), tail.begin(), tail.end());
  }

  const std::vector<std::string> tld_labels = simulated_tlds();
  auto has_tld = [&](const std::string& label) {
    return std::find(tld_labels.begin(), tld_labels.end(), label) !=
           tld_labels.end();
  };

  plan.operators.reserve(profiles.size());
  std::map<std::string, int> by_name;
  for (const auto& profile : profiles) {
    OperatorPlan op;
    op.profile = profile;
    op.slug = slug_of(profile.name);
    op.tld = has_tld(profile.customer_tld) ? profile.customer_tld : "com";
    by_name.emplace(profile.name, static_cast<int>(plan.operators.size()));
    plan.operators.push_back(std::move(op));
  }

  // Multi-op partners: pair each operator with deSEC when present, else the
  // first other operator (mirrors the legacy runtime-pointer selection).
  {
    auto desec_it = by_name.find("deSEC");
    int desec = desec_it == by_name.end() ? -1 : desec_it->second;
    for (int k = 0; k < static_cast<int>(plan.operators.size()); ++k) {
      OperatorPlan& op = plan.operators[static_cast<std::size_t>(k)];
      op.partner = (desec >= 0 && desec != k) ? desec : -1;
      if (op.partner < 0 && plan.operators.size() > 1) {
        op.partner = k == 0 ? 1 : 0;
      }
    }
  }

  // ---- pathology quotas ----------------------------------------------------
  if (config.inject_pathologies) {
    const PathologySpec& spec = config.pathologies;
    auto assign = [&](const char* op_name,
                      std::uint64_t OperatorPlan::* member,
                      std::uint64_t count) {
      auto it = by_name.find(op_name);
      if (it == by_name.end() || count == 0) return;
      plan.operators[static_cast<std::size_t>(it->second)].*member =
          scaled_pathology(config, count);
    };
    assign("CanalDominios", &OperatorPlan::q_unsigned_cds,
           spec.unsigned_with_cds_canal);
    // Not on LongTail1/2: those are legacy-FORMERR operators whose servers
    // cannot answer CDS queries, which would make the records unobservable.
    assign("LongTail51", &OperatorPlan::q_unsigned_cds,
           spec.unsigned_with_cds_other);
    assign("LongTail51", &OperatorPlan::q_unsigned_cds_delete,
           spec.unsigned_with_cds_delete);
    assign("GoogleDomains", &OperatorPlan::q_signed_cds_delete,
           spec.signed_with_cds_delete);
    // The leading tail operators carry the legacy-FORMERR flag (their
    // servers do not answer CDS queries at all), so CDS-visible pathologies
    // live on later, modern tail operators.
    assign("LongTail50", &OperatorPlan::q_island_inconsistent_multi,
           spec.island_cds_inconsistent_multi_op);
    // Same-operator inconsistency must live on a non-pooled operator: the
    // Cloudflare sampling policy (§3) would collapse a pool to 2 endpoints
    // and hide the divergence, exactly as the paper discusses.
    assign("GoDaddy", &OperatorPlan::q_island_inconsistent_same,
           spec.island_cds_inconsistent_other);
    assign("Cloudflare", &OperatorPlan::q_island_cds_no_match,
           spec.island_cds_no_matching_dnskey);
    assign("GoogleDomains", &OperatorPlan::q_signed_cds_no_match,
           spec.signed_cds_no_matching_dnskey);
    assign("Cloudflare", &OperatorPlan::q_cds_bad_rrsig,
           spec.cds_invalid_rrsig);
    assign("Cloudflare", &OperatorPlan::q_signal_missing_ns,
           spec.signal_missing_one_ns_cloudflare);
    assign("deSEC", &OperatorPlan::q_signal_missing_ns,
           spec.signal_missing_one_ns_desec);
    assign("Glauca", &OperatorPlan::q_signal_missing_ns,
           spec.signal_missing_one_ns_glauca);
    assign("Cloudflare", &OperatorPlan::q_signal_missing_ns_multi,
           spec.signal_missing_one_ns_multi_op);
    assign("Cloudflare", &OperatorPlan::q_signal_cds_inconsistent,
           spec.signal_cds_inconsistent);
    assign("Cloudflare", &OperatorPlan::q_signal_cds_bad_rrsig,
           spec.signal_cds_bad_rrsig);
    assign("Glauca", &OperatorPlan::q_signal_zone_cut, spec.signal_zone_cut);
  }
  for (OperatorPlan& op : plan.operators) {
    op.q_signal_on_invalid =
        scaled_pathology(config, op.profile.signal_on_invalid);
    op.q_signal_on_unsigned =
        scaled_pathology(config, op.profile.signal_on_unsigned);
    op.q_csync = scaled_pathology(config, op.profile.csync_migrations);
    op.q_roll_mid_zsk = scaled_pathology(config, op.profile.roll_mid_zsk);
    op.q_roll_mid_ksk = scaled_pathology(config, op.profile.roll_mid_ksk);
    op.q_roll_premature_ds =
        scaled_pathology(config, op.profile.roll_premature_ds);
    op.q_roll_stale_rrsig =
        scaled_pathology(config, op.profile.roll_stale_rrsig);
    op.q_roll_cds_unpublished =
        scaled_pathology(config, op.profile.roll_cds_unpublished);
    op.q_roll_algorithm_broken =
        scaled_pathology(config, op.profile.roll_algorithm_broken);
  }

  // ---- population arithmetic ----------------------------------------------
  CarryScaler scale_domains, scale_secured, scale_invalid, scale_islands,
      scale_cds;
  // Duplicate guard: cumulative generated count per (slug, tld) key. An
  // operator whose key was seen before skips the already-generated prefix —
  // exactly the names the legacy truth-map collision check suppressed.
  std::map<std::pair<std::string, std::string>, std::uint64_t> slug_seen;
  std::uint64_t apex_counter = 1;

  for (OperatorPlan& op : plan.operators) {
    const OperatorProfile& profile = op.profile;
    const std::uint64_t need_island =
        op.q_island_inconsistent_multi + op.q_island_inconsistent_same +
        op.q_island_cds_no_match + op.q_cds_bad_rrsig + op.q_signal_missing_ns +
        op.q_signal_missing_ns_multi + op.q_signal_zone_cut +
        op.q_signal_cds_inconsistent + op.q_signal_cds_bad_rrsig +
        (profile.publishes_signal ? 1 : 0);  // headroom for a correct signal
    // Rollover snapshots occupy the tail of the secured range; growing the
    // floor by their sum keeps them disjoint from the prefix chains.
    const std::uint64_t need_rollover =
        op.q_roll_mid_zsk + op.q_roll_mid_ksk + op.q_roll_premature_ds +
        op.q_roll_stale_rrsig + op.q_roll_cds_unpublished +
        op.q_roll_algorithm_broken;
    const std::uint64_t need_secured = op.q_signed_cds_delete +
                                       op.q_signed_cds_no_match + op.q_csync +
                                       need_rollover;
    const std::uint64_t need_unsigned =
        op.q_unsigned_cds + op.q_unsigned_cds_delete + op.q_signal_on_unsigned;
    const std::uint64_t need_invalid = op.q_signal_on_invalid;

    // Delete-sentinel islands wanted by the profile (floor 1 when the
    // profile calls for any).
    std::uint64_t delete_want = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(scaled(config, profile.islands)) *
        profile.island_cds_fraction * profile.island_cds_delete_fraction));
    if (delete_want == 0 && profile.island_cds_fraction > 0 &&
        profile.island_cds_delete_fraction > 0 && profile.islands > 0) {
      delete_want = 1;
    }

    std::uint64_t n_secured =
        std::max(scale_secured(profile.secured, config.scale), need_secured);
    std::uint64_t n_invalid =
        std::max(scale_invalid(profile.invalid, config.scale), need_invalid);
    std::uint64_t n_island =
        std::max(scale_islands(profile.islands, config.scale),
                 need_island + delete_want);
    const std::uint64_t n =
        std::max(scale_domains(profile.domains, config.scale),
                 n_secured + n_invalid + n_island + need_unsigned);
    if (n == 0) continue;  // op.n stays 0; no zones, no carry for scale_cds
    n_secured = std::min(n, n_secured);
    n_invalid = std::min(n - n_secured, n_invalid);
    n_island = std::min(n - n_secured - n_invalid, n_island);

    const std::uint64_t cds_target =
        scale_cds(profile.cds_domains, config.scale);
    const std::uint64_t cds_secured =
        std::min(n_secured, std::max(cds_target, need_secured));
    // Islands with CDS: enough for the configured fraction AND the quotas
    // plus the delete sentinels (quota'd pathologies apply to non-delete
    // islands, which are assigned after the delete block).
    const std::uint64_t island_cds_fraction_count =
        static_cast<std::uint64_t>(std::llround(
            static_cast<double>(n_island) * profile.island_cds_fraction));
    const std::uint64_t island_cds =
        std::min(n_island, std::max(island_cds_fraction_count,
                                    need_island + delete_want));
    const std::uint64_t island_cds_delete =
        std::min(delete_want, island_cds > need_island
                                  ? island_cds - need_island
                                  : std::uint64_t{0});

    op.n = n;
    op.n_secured = n_secured;
    op.n_invalid = n_invalid;
    op.n_island = n_island;
    op.cds_secured = cds_secured;
    op.island_cds = island_cds;
    op.island_cds_delete = island_cds_delete;

    auto& seen = slug_seen[{op.slug, op.tld}];
    op.skip_below = std::min(seen, n);
    seen = std::max(seen, n);

    op.apex_base = apex_counter;
    apex_counter += n - op.skip_below;
    plan.zones_total += n - op.skip_below;

    // Eager infrastructure: the same-operator divergence server is needed
    // whenever a cds_inconsistent zone cannot go to a partner; the third NS
    // host whenever a CSYNC migration exists.
    op.has_alt_server =
        op.q_island_inconsistent_same > 0 ||
        (op.q_island_inconsistent_multi > 0 && op.partner < 0);
    op.has_csync_host = op.q_csync > 0;
  }
  return plan;
}

ZoneTruth planned_truth(const OperatorPlan& op, std::uint64_t i) {
  ZoneTruth truth;
  truth.operator_name = op.profile.name;
  truth.legacy_servers = op.profile.legacy_formerr;

  const std::uint64_t sec_hi = op.n_secured;
  const std::uint64_t inv_hi = sec_hi + op.n_invalid;
  const std::uint64_t isl_hi = inv_hi + op.n_island;
  const std::uint64_t S = op.skip_below;

  if (i < sec_hi) {
    truth.state = ZoneState::kSecured;
  } else if (i < inv_hi) {
    truth.state = ZoneState::kInvalid;
  } else if (i < isl_hi) {
    truth.state = ZoneState::kIsland;
  } else {
    truth.state = ZoneState::kUnsigned;
  }

  // Generated-ordinal within the island range (the legacy island_index):
  // duplicates are skipped before counting, so the ordinal starts at the
  // later of the range start and the skip prefix.
  std::uint64_t gib = 0;
  if (truth.state == ZoneState::kIsland) {
    gib = i - std::max(inv_hi, S);
  }

  // CDS assignment.
  if (truth.state == ZoneState::kSecured && i < op.cds_secured) {
    truth.cds = true;
  } else if (truth.state == ZoneState::kIsland && gib < op.island_cds) {
    truth.cds = true;
    truth.cds_delete = gib < op.island_cds_delete;
  }

  // Quota chains. Each legacy take() chain consumed quotas sequentially over
  // a contiguous subsequence of generated zones, so membership reduces to
  // comparing this zone's ordinal in that subsequence against prefix sums of
  // the quotas.
  if (truth.state == ZoneState::kUnsigned) {
    const std::uint64_t u = i - std::max(isl_hi, S);
    if (u < op.q_unsigned_cds) {
      truth.cds = true;
    } else if (u < op.q_unsigned_cds + op.q_unsigned_cds_delete) {
      truth.cds = true;
      truth.cds_delete = true;
    }
  }
  if (truth.state == ZoneState::kSecured && truth.cds) {
    // Generated secured-CDS zones are exactly the indices [S, cds_secured).
    const std::uint64_t s = i - S;
    if (s < op.q_signed_cds_delete) {
      truth.cds_delete = true;
    } else if (s < op.q_signed_cds_delete + op.q_signed_cds_no_match) {
      truth.cds_no_match = true;
    }
  }
  if (truth.state == ZoneState::kSecured && !truth.cds_delete &&
      !truth.cds_no_match) {
    // CSYNC chain: runs over generated secured zones not consumed by the
    // delete/no-match chain above (which tags a contiguous prefix).
    const std::uint64_t D = op.q_signed_cds_delete + op.q_signed_cds_no_match;
    const std::uint64_t tagged_total =
        std::min(D, op.cds_secured > S ? op.cds_secured - S : 0);
    const std::uint64_t c = (i - S) - std::min(i - S, tagged_total);
    if (c < op.q_csync) truth.csync = true;
  }
  if (truth.state == ZoneState::kSecured && !truth.cds_delete &&
      !truth.cds_no_match && !truth.csync) {
    // Key-lifecycle snapshots live at the TAIL of the secured range (ordinal
    // counted down from sec_hi), so this chain and the prefix chains above
    // never meet: need_secured in make_ecosystem_plan covers both sums.
    const std::uint64_t t = sec_hi - 1 - i;
    std::uint64_t hi = op.q_roll_mid_zsk;
    if (t < hi) {
      truth.rollover = kasp::RolloverScenario::kMidZskPrepublish;
    } else if (t < (hi += op.q_roll_mid_ksk)) {
      truth.rollover = kasp::RolloverScenario::kMidKskDoubleDs;
    } else if (t < (hi += op.q_roll_premature_ds)) {
      truth.rollover = kasp::RolloverScenario::kPrematureDs;
    } else if (t < (hi += op.q_roll_stale_rrsig)) {
      truth.rollover = kasp::RolloverScenario::kStaleRrsig;
    } else if (t < (hi += op.q_roll_cds_unpublished)) {
      truth.rollover = kasp::RolloverScenario::kCdsUnpublishedKey;
    } else if (t < (hi += op.q_roll_algorithm_broken)) {
      truth.rollover = kasp::RolloverScenario::kAlgorithmBroken;
    }
    if (truth.rollover == kasp::RolloverScenario::kMidKskDoubleDs ||
        truth.rollover == kasp::RolloverScenario::kPrematureDs ||
        truth.rollover == kasp::RolloverScenario::kCdsUnpublishedKey) {
      truth.cds = true;  // these scenarios publish their own CDS set
    }
  }
  if (truth.state == ZoneState::kIsland && truth.cds && !truth.cds_delete) {
    // Non-delete CDS islands: ordinal k among them (delete islands occupy
    // the first island_cds_delete generated slots).
    const std::uint64_t k = gib - op.island_cds_delete;
    std::uint64_t hi = op.q_island_inconsistent_multi;
    if (k < hi) {
      truth.cds_inconsistent = true;
      truth.multi_operator = true;
    } else if (k < (hi += op.q_island_inconsistent_same)) {
      truth.cds_inconsistent = true;
    } else if (k < (hi += op.q_island_cds_no_match)) {
      truth.cds_no_match = true;
    } else if (k < (hi += op.q_cds_bad_rrsig)) {
      truth.cds_bad_rrsig = true;
    }
  }

  // Signal publication policy.
  if (op.profile.publishes_signal) {
    bool qualifies = false;
    switch (truth.state) {
      case ZoneState::kSecured:
        qualifies = true;
        break;
      case ZoneState::kIsland:
        qualifies = truth.cds && (!truth.cds_delete ||
                                  op.profile.signal_includes_delete);
        break;
      case ZoneState::kInvalid:
        qualifies = (i - std::max(sec_hi, S)) < op.q_signal_on_invalid;
        break;
      case ZoneState::kUnsigned:
        qualifies = (i - std::max(isl_hi, S)) < op.q_signal_on_unsigned;
        break;
    }
    if (qualifies) {
      truth.signal = true;
      if (truth.state == ZoneState::kIsland && truth.cds &&
          !truth.cds_delete) {
        // Signal-pathology chain: same qualifying subsequence as the island
        // chain above, consumed independently.
        const std::uint64_t k = gib - op.island_cds_delete;
        std::uint64_t hi = op.q_signal_missing_ns;
        if (k < hi) {
          truth.signal_missing_one_ns = true;
        } else if (k < (hi += op.q_signal_missing_ns_multi)) {
          truth.signal_missing_one_ns = true;
          truth.multi_operator = true;
        } else if (k < (hi += op.q_signal_zone_cut)) {
          truth.signal_zone_cut = true;
        } else if (k < (hi += op.q_signal_cds_inconsistent)) {
          truth.signal_stale_one_ns = true;
        } else if (k < (hi += op.q_signal_cds_bad_rrsig)) {
          truth.cds_bad_rrsig = true;
        }
      }
    }
  }
  return truth;
}

// Mutable per-operator state during a shard build.
namespace {
struct OperatorRuntime {
  std::shared_ptr<server::AuthServer> server;
  std::shared_ptr<server::AuthServer> alt_server;  // same-operator divergence
  std::vector<dns::Name> ns_hosts;  // primary NS hostnames (one per domain slot)
  dns::Name alt_ns_host;
  // Operator zones keyed by canonical origin; signed at the end (signal RRs
  // accumulate during population generation).
  std::map<std::string, std::shared_ptr<dns::Zone>> operator_zones;
  std::map<std::string, dnssec::ZoneKeys> operator_zone_keys;
  Rng rng{0};
  // Third nameserver host, present when the plan calls for CSYNC migrations.
  dns::Name csync_ns_host;
};
}  // namespace

Ecosystem build_shard(net::SimNetwork& network, const EcosystemConfig& config,
                      const EcosystemPlan& plan, std::size_t shard_index,
                      std::size_t shard_count) {
  Ecosystem eco;
  eco.now = config.now;
  Rng rng(config.seed);
  std::uint32_t v4_counter = 100;
  std::uint64_t v6_counter = 100;
  auto next_v4 = [&] { return net::IpAddress::synthetic_v4(v4_counter++); };
  auto next_v6 = [&] { return net::IpAddress::synthetic_v6(v6_counter++); };

  // ---- root and TLD infrastructure ---------------------------------------
  // Identical in every shard world: the draws below replay the same RNG and
  // address-counter sequence regardless of shard_index.
  Rng infra_rng = rng.fork("infra");
  auto root_keys = dnssec::ZoneKeys::generate(infra_rng);
  auto root_zone = std::make_shared<dns::Zone>(dns::Name::root());
  auto root_server = std::make_shared<server::AuthServer>(
      server::ServerConfig{"root", server::ServerBehavior::kCompliant,
                           0.0, 0.0, {}},
      infra_rng.next_u64());
  std::vector<net::IpAddress> root_addresses = {next_v4(), next_v4()};
  dns::Name root_ns1 = name_of("a.root-servers.net.");
  dns::Name root_ns2 = name_of("b.root-servers.net.");
  (void)root_zone->add(make_rr(dns::Name::root(), dns::RRType::kSOA, 86400,
                               dns::SoaRdata{root_ns1, name_of("nstld.root."),
                                             1, 1800, 900, 604800, 86400}));
  (void)root_zone->add(make_rr(dns::Name::root(), dns::RRType::kNS, 518400,
                               dns::NsRdata{root_ns1}));
  (void)root_zone->add(make_rr(dns::Name::root(), dns::RRType::kNS, 518400,
                               dns::NsRdata{root_ns2}));

  struct TldRuntime {
    std::shared_ptr<dns::Zone> zone;
    dnssec::ZoneKeys keys;
    std::shared_ptr<server::AuthServer> server;
    std::vector<net::IpAddress> addresses;
  };
  std::map<std::string, TldRuntime> tlds;
  for (const std::string& tld_label : simulated_tlds()) {
    dns::Name tld = name_of(tld_label + ".");
    server::ServerConfig tld_config;
    tld_config.id = "nic." + tld_label;
    // AXFR access mirrors the paper's §3 sources: open ccTLDs plus the two
    // private arrangements; gTLD lists came from CZDS, not transfers.
    for (const char* open_axfr : {"ch", "li", "se", "nu", "ee", "uk", "sk"}) {
      if (tld_label == open_axfr) tld_config.allow_axfr = true;
    }
    TldRuntime runtime{std::make_shared<dns::Zone>(tld),
                       dnssec::ZoneKeys::generate(infra_rng),
                       std::make_shared<server::AuthServer>(
                           tld_config, infra_rng.next_u64()),
                       {next_v4(), next_v6()}};
    dns::Name tld_ns1 = name_of("a.nic." + tld_label + ".");
    dns::Name tld_ns2 = name_of("b.nic." + tld_label + ".");
    (void)runtime.zone->add(make_rr(
        tld, dns::RRType::kSOA, 86400,
        dns::SoaRdata{tld_ns1, name_of("hostmaster.nic." + tld_label + "."),
                      1, 1800, 900, 604800, 3600}));
    (void)runtime.zone->add(
        make_rr(tld, dns::RRType::kNS, 86400, dns::NsRdata{tld_ns1}));
    (void)runtime.zone->add(
        make_rr(tld, dns::RRType::kNS, 86400, dns::NsRdata{tld_ns2}));
    (void)runtime.zone->add(make_rr(tld_ns1, dns::RRType::kA, 86400,
                                    a_of(runtime.addresses[0])));
    (void)runtime.zone->add(make_rr(tld_ns2, dns::RRType::kAAAA, 86400,
                                    aaaa_of(runtime.addresses[1])));

    // Delegate in the root, with glue and DS.
    (void)root_zone->add(
        make_rr(tld, dns::RRType::kNS, 172800, dns::NsRdata{tld_ns1}));
    (void)root_zone->add(
        make_rr(tld, dns::RRType::kNS, 172800, dns::NsRdata{tld_ns2}));
    (void)root_zone->add(make_rr(tld_ns1, dns::RRType::kA, 172800,
                                 a_of(runtime.addresses[0])));
    (void)root_zone->add(make_rr(tld_ns2, dns::RRType::kAAAA, 172800,
                                 aaaa_of(runtime.addresses[1])));
    auto tld_ds =
        dnssec::make_ds(tld, dnssec::make_dnskey(runtime.keys.ksk), 2);
    (void)root_zone->add(make_rr(tld, dns::RRType::kDS, 86400,
                                 dns::Rdata{std::move(tld_ds).take()}));

    tlds.emplace(tld_label, std::move(runtime));
  }

  // ---- operator infrastructure --------------------------------------------
  std::deque<OperatorRuntime> operators;
  for (const OperatorPlan& op_plan : plan.operators) {
    const OperatorProfile& profile = op_plan.profile;
    operators.emplace_back();
    OperatorRuntime& op = operators.back();
    op.rng = rng.fork("op:" + profile.name);

    server::ServerConfig server_config;
    server_config.id = profile.name;
    if (profile.legacy_formerr) {
      server_config.behavior = server::ServerBehavior::kLegacyFormerr;
    }
    if (profile.name == "ParkingNamefind") {
      server_config.behavior = server::ServerBehavior::kParkingWildcard;
      server_config.parking_ns = {name_of("ns1.namefind.com."),
                                  name_of("ns2.namefind.com.")};
    }
    op.server = std::make_shared<server::AuthServer>(server_config,
                                                     op.rng.next_u64());
    if (profile.name == "ParkingNamefind") {
      // The wildcard answer points every A query at 203.0.113.1; bind the
      // parking server there too so hosts "resolved" through it stay inside
      // the parking web (as Afternic's do).
      op.server->attach(network, net::IpAddress::v4({203, 0, 113, 1}));
    }

    // NS hostnames: ns1.<d0>, ns2.<d1 or d0>.
    const auto& domains = profile.ns_domains;
    op.ns_hosts.push_back(name_of("ns1." + domains[0] + "."));
    op.ns_hosts.push_back(
        name_of("ns2." + (domains.size() > 1 ? domains[1] : domains[0]) + "."));

    // Operator zones: one per registrable domain of the NS hostnames.
    for (const auto& host : op.ns_hosts) {
      dns::Name apex = host.suffix(2);
      const std::string key = apex.canonical_text();
      if (op.operator_zones.count(key) > 0) continue;
      auto zone = std::make_shared<dns::Zone>(apex);
      (void)zone->add(make_rr(apex, dns::RRType::kSOA, 3600,
                              dns::SoaRdata{op.ns_hosts[0],
                                            name_of("hostmaster." +
                                                    apex.to_text()),
                                            1, 7200, 3600, 1209600, 300}));
      for (const auto& ns : op.ns_hosts) {
        (void)zone->add(make_rr(apex, dns::RRType::kNS, 3600,
                                dns::NsRdata{ns}));
      }
      op.operator_zones.emplace(key, zone);
      op.operator_zone_keys.emplace(key, dnssec::ZoneKeys::generate(op.rng));
    }

    // Addresses per NS host, bound to the operator's server; host records go
    // into the operator zone that contains the host.
    for (const auto& host : op.ns_hosts) {
      dns::Name apex = host.suffix(2);
      auto zone = op.operator_zones[apex.canonical_text()];
      for (int i = 0; i < profile.addresses_per_ns; ++i) {
        net::IpAddress v4 = next_v4();
        net::IpAddress v6 = next_v6();
        op.server->attach(network, v4);
        op.server->attach(network, v6);
        (void)zone->add(make_rr(host, dns::RRType::kA, 3600, a_of(v4)));
        (void)zone->add(make_rr(host, dns::RRType::kAAAA, 3600, aaaa_of(v6)));
      }
    }

    // Eager divergence/migration infrastructure (decided by the plan, never
    // by which zones this shard materializes).
    if (op_plan.has_alt_server) {
      server::ServerConfig alt_config;
      alt_config.id = profile.name + "-alt";
      op.alt_server = std::make_shared<server::AuthServer>(
          alt_config, op.rng.next_u64());
      op.alt_ns_host = name_of("ns-alt." + profile.ns_domains[0] + ".");
      net::IpAddress alt_address = next_v4();
      op.alt_server->attach(network, alt_address);
      dns::Name apex = op.alt_ns_host.suffix(2);
      auto zone_it = op.operator_zones.find(apex.canonical_text());
      if (zone_it != op.operator_zones.end()) {
        (void)zone_it->second->add(make_rr(op.alt_ns_host, dns::RRType::kA,
                                           3600, a_of(alt_address)));
      }
    }
    if (op_plan.has_csync_host) {
      // CSYNC migrations: the TLD delegation keeps the old NS pair while the
      // child apex already lists the replacement host (ns3).
      op.csync_ns_host = name_of("ns3." + profile.ns_domains[0] + ".");
      net::IpAddress csync_address = next_v4();
      op.server->attach(network, csync_address);
      dns::Name apex = op.csync_ns_host.suffix(2);
      auto zone_it = op.operator_zones.find(apex.canonical_text());
      if (zone_it != op.operator_zones.end()) {
        (void)zone_it->second->add(make_rr(op.csync_ns_host, dns::RRType::kA,
                                           3600, a_of(csync_address)));
      }
    }

    // Delegate operator zones in their TLDs, with glue (in-bailiwick NSes).
    for (auto& [key, zone] : op.operator_zones) {
      const dns::Name& apex = zone->origin();
      const std::string tld_label(apex.labels().back());
      auto tld_it = tlds.find(tld_label);
      if (tld_it == tlds.end()) continue;  // profile error; skip
      dns::Zone& tld_zone = *tld_it->second.zone;
      for (const auto& ns : op.ns_hosts) {
        (void)tld_zone.add(make_rr(apex, dns::RRType::kNS, 86400,
                                   dns::NsRdata{ns}));
        if (ns.is_under(apex)) {
          if (const auto* a = zone->find_rrset(ns, dns::RRType::kA)) {
            for (const auto& rr : a->to_records()) (void)tld_zone.add(rr);
          }
          if (const auto* aaaa = zone->find_rrset(ns, dns::RRType::kAAAA)) {
            for (const auto& rr : aaaa->to_records()) (void)tld_zone.add(rr);
          }
        }
      }
      // DS for the operator zone (signal chains need it) — added now from
      // the pre-generated keys; the zone is signed with them later.
      auto ds = dnssec::make_ds(
          apex, dnssec::make_dnskey(op.operator_zone_keys.at(key).ksk), 2);
      (void)tld_zone.add(make_rr(apex, dns::RRType::kDS, 86400,
                                 dns::Rdata{std::move(ds).take()}));
    }

    eco.servers.push_back(op.server);
    if (op.alt_server != nullptr) eco.servers.push_back(op.alt_server);
    for (const auto& d : profile.ns_domains) {
      eco.ns_domain_to_operator[ascii_lower(d)] = profile.name;
    }
  }

  // Parking target for the zone-cut pathology: desc.io -> parking servers.
  bool have_parking = false;
  for (const OperatorPlan& op_plan : plan.operators) {
    if (op_plan.profile.name == "ParkingNamefind") have_parking = true;
  }
  if (config.inject_pathologies && have_parking) {
    auto io_it = tlds.find("io");
    if (io_it != tlds.end()) {
      dns::Name desc = name_of("desc.io.");
      dns::Name parking_ns = name_of("ns1.namefind.com.");
      (void)io_it->second.zone->add(
          make_rr(desc, dns::RRType::kNS, 86400, dns::NsRdata{parking_ns}));
      // ns1.namefind.com has glue via ParkingNamefind's operator zone under
      // .com (set up like every operator above). Nothing else needed: the
      // parking server answers every name under desc.io identically.
    }
  }

  // ---- customer zone population -------------------------------------------
  for (std::size_t op_index = 0; op_index < plan.operators.size();
       ++op_index) {
    const OperatorPlan& op_plan = plan.operators[op_index];
    const OperatorProfile& profile = op_plan.profile;
    if (op_plan.n == 0) continue;
    OperatorRuntime& op = operators[op_index];
    OperatorRuntime* plan_partner =
        op_plan.partner >= 0
            ? &operators[static_cast<std::size_t>(op_plan.partner)]
            : nullptr;

    auto tld_it = tlds.find(op_plan.tld);
    if (tld_it == tlds.end()) continue;  // plan resolves to an existing TLD
    dns::Zone& tld_zone = *tld_it->second.zone;

    for (std::uint64_t i = op_plan.skip_below; i < op_plan.n; ++i) {
      // The hyphen separates slug from index: without it, slug "longtail1" +
      // index 60 would collide with slug "longtail16" + index 0. The name
      // below is already canonical (lowercase LDH), so the shard test needs
      // no dns::Name construction — skipped zones cost a hash, not memory.
      std::string canonical =
          op_plan.slug + "-" + std::to_string(i) + "." + op_plan.tld + ".";
      if (shard_count > 1 &&
          shard_of_canonical(canonical, shard_count) != shard_index) {
        continue;
      }
      dns::Name zone_name = name_of(canonical);
      ZoneTruth truth = planned_truth(op_plan, i);
      // All randomness in this zone's materialization comes from a fork
      // keyed by the zone name: byte-identical no matter which shard world
      // builds it (Rng::fork ignores stream position).
      Rng zrng = op.rng.fork("zone:" + canonical);

      // ---- materialize the zone ----
      OperatorRuntime* partner = truth.multi_operator ? plan_partner : nullptr;
      if (partner == nullptr) truth.multi_operator = false;
      if (truth.multi_operator) {
        truth.secondary_operator =
            plan.operators[static_cast<std::size_t>(op_plan.partner)]
                .profile.name;
      }

      std::vector<dns::Name> ns_set;
      ns_set.push_back(op.ns_hosts[0]);
      if (truth.signal_zone_cut) {
        ns_set.push_back(name_of("ns1.desc.io."));  // the parking typo
      } else if (truth.multi_operator) {
        ns_set.push_back(partner->ns_hosts[0]);
      } else if (truth.cds_inconsistent) {
        // Same-operator divergence via the operator's alias nameserver.
        ns_set.push_back(op.alt_ns_host);
      } else if (truth.csync) {
        ns_set.push_back(op.csync_ns_host);
      } else {
        ns_set.push_back(op.ns_hosts[1]);
      }

      // The delegation NS set the TLD carries; for CSYNC migrations it lags
      // behind the child's apex NS set.
      std::vector<dns::Name> delegation_ns = ns_set;
      if (truth.csync) delegation_ns = {op.ns_hosts[0], op.ns_hosts[1]};

      auto zone = std::make_shared<dns::Zone>(zone_name);
      (void)zone->add(make_rr(
          zone_name, dns::RRType::kSOA, 3600,
          dns::SoaRdata{ns_set[0], name_of("hostmaster." + zone_name.to_text()),
                        1, 7200, 3600, 1209600, 300}));
      for (const auto& ns : ns_set) {
        (void)zone->add(
            make_rr(zone_name, dns::RRType::kNS, 3600, dns::NsRdata{ns}));
      }
      const std::uint64_t apex_value =
          op_plan.apex_base + (i - op_plan.skip_below);
      (void)zone->add(make_rr(
          zone_name, dns::RRType::kA, 300,
          dns::ARdata{{198, 18, static_cast<std::uint8_t>(apex_value >> 8),
                       static_cast<std::uint8_t>(apex_value)}}));
      if (truth.csync) {
        // "Synchronize NS immediately" (RFC 7477 §2.1.1.1 flags).
        (void)zone->add(make_rr(
            zone_name, dns::RRType::kCSYNC, 300,
            dns::CsyncRdata{1, 0x0001,
                            dns::TypeBitmap({dns::RRType::kNS})}));
      }

      const bool signed_zone = truth.state == ZoneState::kSecured ||
                               truth.state == ZoneState::kIsland ||
                               (truth.state == ZoneState::kInvalid &&
                                profile.secured > 0);
      // Key-lifecycle snapshot material: keys (with extra published /
      // co-signing members), scenario CDS, and the parent DS override.
      // materialize_rollover's first draw is ZoneKeys::generate(zrng), the
      // same first draw plain zones make, so zone bytes stay a pure
      // function of (seed, name) either way.
      std::optional<kasp::RolloverMaterial> rollover;
      if (truth.rollover != kasp::RolloverScenario::kNone) {
        auto material =
            kasp::materialize_rollover(truth.rollover, zone_name, zrng);
        if (material.ok()) rollover = std::move(material).take();
      }

      std::optional<dnssec::ZoneKeys> keys;
      if (signed_zone) {
        if (rollover.has_value()) {
          keys = std::move(rollover->keys);
        } else {
          keys = dnssec::ZoneKeys::generate(zrng);
        }
      }

      // In-zone CDS/CDNSKEY.
      std::vector<dns::Rdata> cds_rdatas;
      std::vector<dns::Rdata> cdnskey_rdatas;
      if (rollover.has_value() && !rollover->cds.empty()) {
        for (const auto& cds : rollover->cds) {
          cds_rdatas.push_back(dns::Rdata{cds});
        }
        for (const auto& key : rollover->cdnskey) {
          cdnskey_rdatas.push_back(dns::Rdata{key});
        }
        for (const auto& rd : cds_rdatas) {
          (void)zone->add(make_rr(zone_name, dns::RRType::kCDS, 300, rd));
        }
        for (const auto& rd : cdnskey_rdatas) {
          (void)zone->add(make_rr(zone_name, dns::RRType::kCDNSKEY, 300, rd));
        }
      } else if (truth.cds) {
        if (truth.cds_delete) {
          cds_rdatas.push_back(dns::Rdata{dnssec::cds_delete_sentinel()});
          cdnskey_rdatas.push_back(
              dns::Rdata{dnssec::cdnskey_delete_sentinel()});
        } else if (truth.cds_no_match || !signed_zone) {
          // CDS referencing a key that is not (or cannot be) in the zone.
          auto stray = dnssec::ZoneKeys::generate(zrng);
          auto records =
              dnssec::make_child_sync_records(zone_name, stray.ksk).take();
          for (auto& cds : records.cds) cds_rdatas.push_back(dns::Rdata{cds});
          for (auto& key : records.cdnskey) {
            cdnskey_rdatas.push_back(dns::Rdata{key});
          }
        } else {
          auto records =
              dnssec::make_child_sync_records(zone_name, keys->ksk).take();
          for (auto& cds : records.cds) cds_rdatas.push_back(dns::Rdata{cds});
          for (auto& key : records.cdnskey) {
            cdnskey_rdatas.push_back(dns::Rdata{key});
          }
        }
        for (const auto& rd : cds_rdatas) {
          (void)zone->add(make_rr(zone_name, dns::RRType::kCDS, 300, rd));
        }
        for (const auto& rd : cdnskey_rdatas) {
          (void)zone->add(make_rr(zone_name, dns::RRType::kCDNSKEY, 300, rd));
        }
      }

      if (signed_zone) {
        const bool expired = truth.state == ZoneState::kInvalid;
        dnssec::SigningPolicy policy = zone_policy(config, expired);
        // ~40 % of signed zones use NSEC3 (hashed denial), the rest NSEC —
        // both widely deployed; the scanner must handle either.
        if (i % 5 < 2) policy.denial = dnssec::DenialMode::kNsec3;
        (void)dnssec::sign_zone(*zone, *keys, policy);
        eco.zones_signed++;
        if (rollover.has_value() && rollover->stale_zsk.has_value()) {
          // Re-sign the data RRsets with the retired (absent) ZSK: the
          // DNSKEY RRset and its KSK signature stay intact, so the breakage
          // is a key mismatch below the apex, never an expiry.
          (void)kasp::apply_stale_rrsigs(*zone, *rollover->stale_zsk, policy);
        }
        if (truth.cds_bad_rrsig) {
          // Corrupt the RRSIG over the CDS set.
          auto sigs = zone->signatures_covering(zone_name, dns::RRType::kCDS);
          zone->remove_signatures(zone_name, dns::RRType::kCDS);
          for (auto sig : sigs) {
            auto& rrsig = std::get<dns::RrsigRdata>(sig.rdata);
            if (!rrsig.signature.empty()) rrsig.signature[7] ^= 0x20;
            (void)zone->add(sig);
          }
        }
      }

      // Partner copy for multi-operator / divergent setups.
      if (truth.cds_inconsistent) {
        auto divergent = std::make_shared<dns::Zone>(*zone);
        if (truth.cds) {
          // The other operator serves stale CDS (pre-rollover key).
          divergent->remove_rrset(zone_name, dns::RRType::kCDS);
          divergent->remove_rrset(zone_name, dns::RRType::kCDNSKEY);
          auto stale = dnssec::ZoneKeys::generate(zrng);
          auto records =
              dnssec::make_child_sync_records(zone_name, stale.ksk).take();
          for (const auto& cds : records.cds) {
            (void)divergent->add(
                make_rr(zone_name, dns::RRType::kCDS, 300, dns::Rdata{cds}));
          }
          for (const auto& key : records.cdnskey) {
            (void)divergent->add(make_rr(zone_name, dns::RRType::kCDNSKEY,
                                         300, dns::Rdata{key}));
          }
          if (signed_zone) {
            const dnssec::SigningPolicy policy = zone_policy(config);
            dns::RRset cds_set =
                *divergent->find_rrset(zone_name, dns::RRType::kCDS);
            divergent->remove_signatures(zone_name, dns::RRType::kCDS);
            (void)divergent->add(
                dnssec::sign_rrset(cds_set, keys->zsk, zone_name, policy));
            dns::RRset cdnskey_set =
                *divergent->find_rrset(zone_name, dns::RRType::kCDNSKEY);
            divergent->remove_signatures(zone_name, dns::RRType::kCDNSKEY);
            (void)divergent->add(dnssec::sign_rrset(cdnskey_set, keys->zsk,
                                                    zone_name, policy));
          }
        }
        if (truth.multi_operator && partner != nullptr) {
          partner->server->add_zone(divergent);
        } else if (op.alt_server != nullptr) {
          op.alt_server->add_zone(divergent);
        }
      } else if (truth.multi_operator && partner != nullptr) {
        partner->server->add_zone(zone);
      }

      op.server->add_zone(zone);

      // TLD delegation (+ DS for secured / invalid).
      for (const auto& ns : delegation_ns) {
        (void)tld_zone.add(
            make_rr(zone_name, dns::RRType::kNS, 86400, dns::NsRdata{ns}));
      }
      if (rollover.has_value() && !rollover->parent_ds.empty()) {
        // Scenario-controlled DS set: double-DS mid-roll, or the premature
        // swap to a not-yet-published successor.
        for (const auto& ds : rollover->parent_ds) {
          (void)tld_zone.add(
              make_rr(zone_name, dns::RRType::kDS, 86400, dns::Rdata{ds}));
        }
      } else if (truth.state == ZoneState::kSecured ||
                 truth.state == ZoneState::kInvalid) {
        dns::DsRdata ds;
        if (signed_zone) {
          ds = dnssec::make_ds(zone_name, dnssec::make_dnskey(keys->ksk), 2)
                   .take();
        } else {
          // Errant DS: no keys below (the no-DNSSEC operators' "invalid").
          ds.key_tag = static_cast<std::uint16_t>(zrng.next_u64());
          ds.algorithm = 15;
          ds.digest_type = 2;
          ds.digest = zrng.bytes(32);
        }
        (void)tld_zone.add(
            make_rr(zone_name, dns::RRType::kDS, 86400, dns::Rdata{ds}));
      }

      // Signal records into the operator zone(s).
      if (truth.signal) {
        std::vector<dns::Rdata> signal_cds = cds_rdatas;
        std::vector<dns::Rdata> signal_cdnskey = cdnskey_rdatas;
        if (signal_cds.empty() && keys.has_value()) {
          auto records =
              dnssec::make_child_sync_records(zone_name, keys->ksk).take();
          for (auto& cds : records.cds) signal_cds.push_back(dns::Rdata{cds});
          for (auto& key : records.cdnskey) {
            signal_cdnskey.push_back(dns::Rdata{key});
          }
        }
        if (signal_cds.empty()) {
          // Unsigned zone with signal RRs (§4.4): synthesize from a stray key.
          auto stray = dnssec::ZoneKeys::generate(zrng);
          auto records =
              dnssec::make_child_sync_records(zone_name, stray.ksk).take();
          for (auto& cds : records.cds) signal_cds.push_back(dns::Rdata{cds});
          for (auto& key : records.cdnskey) {
            signal_cdnskey.push_back(dns::Rdata{key});
          }
        }
        // Stale records for a diverging second signaling tree (§4.4's
        // 32 inconsistent signal zones).
        std::vector<dns::Rdata> stale_cds;
        std::vector<dns::Rdata> stale_cdnskey;
        if (truth.signal_stale_one_ns) {
          auto stale = dnssec::ZoneKeys::generate(zrng);
          auto records =
              dnssec::make_child_sync_records(zone_name, stale.ksk).take();
          for (auto& cds : records.cds) stale_cds.push_back(dns::Rdata{cds});
          for (auto& key : records.cdnskey) {
            stale_cdnskey.push_back(dns::Rdata{key});
          }
        }
        bool first_ns = true;
        for (const auto& ns : op.ns_hosts) {
          const bool skip = truth.signal_missing_one_ns && !first_ns;
          const bool use_stale = truth.signal_stale_one_ns && !first_ns;
          const auto& cds_set = use_stale ? stale_cds : signal_cds;
          const auto& cdnskey_set = use_stale ? stale_cdnskey : signal_cdnskey;
          first_ns = false;
          if (skip) continue;
          auto signal_name_result = [&]() -> Result<dns::Name> {
            std::vector<std::string> labels;
            labels.push_back("_dsboot");
            for (std::string_view l : zone_name.labels()) labels.emplace_back(l);
            labels.push_back("_signal");
            for (std::string_view l : ns.labels()) labels.emplace_back(l);
            return dns::Name::from_labels(std::move(labels));
          }();
          if (!signal_name_result.ok()) continue;
          dns::Name signal_name = std::move(signal_name_result).take();
          dns::Name apex = ns.suffix(2);
          auto zone_it = op.operator_zones.find(apex.canonical_text());
          if (zone_it == op.operator_zones.end()) continue;
          for (const auto& rd : cds_set) {
            (void)zone_it->second->add(
                make_rr(signal_name, dns::RRType::kCDS, 300, rd));
          }
          for (const auto& rd : cdnskey_set) {
            (void)zone_it->second->add(
                make_rr(signal_name, dns::RRType::kCDNSKEY, 300, rd));
          }
        }
      }

      eco.scan_targets.push_back(zone_name);
      eco.truth.emplace(zone_name.canonical_text(), std::move(truth));
      ++eco.zones_total;
    }
  }

  // ---- sign operator zones (signal RRs are now in place) ------------------
  for (auto& op : operators) {
    for (auto& [key, zone] : op.operator_zones) {
      dnssec::SigningPolicy policy = zone_policy(config);
      policy.generate_nsec = false;
      (void)dnssec::sign_zone(*zone, op.operator_zone_keys.at(key), policy);
      op.server->add_zone(zone);
      if (op.alt_server != nullptr) op.alt_server->add_zone(zone);
    }
  }

  // ---- sign TLDs and root, attach infrastructure servers ------------------
  for (auto& [label, tld] : tlds) {
    dnssec::SigningPolicy policy = zone_policy(config);
    policy.generate_nsec = false;
    (void)dnssec::sign_zone(*tld.zone, tld.keys, policy);
    tld.server->add_zone(tld.zone);
    for (const auto& address : tld.addresses) {
      tld.server->attach(network, address);
    }
    eco.servers.push_back(tld.server);
    eco.registries.insert_or_assign(
        label + ".", TldHandle{tld.zone, tld.keys, tld.server, policy});
  }
  {
    dnssec::SigningPolicy policy = zone_policy(config);
    (void)dnssec::sign_zone(*root_zone, root_keys, policy);
    root_server->add_zone(root_zone);
    for (const auto& address : root_addresses) {
      root_server->attach(network, address);
    }
    eco.servers.push_back(root_server);
  }

  eco.hints.servers = root_addresses;
  eco.hints.trust_anchor = {
      dnssec::make_ds(dns::Name::root(), dnssec::make_dnskey(root_keys.ksk), 2)
          .take()};

  // White-label alias from the paper's methodology section: seized.gov NSes
  // are rebranded Cloudflare.
  eco.ns_domain_to_operator["seized.gov"] = "Cloudflare";
  eco.ns_domain_to_operator["namefind.com"] = "ParkingNamefind";

  return eco;
}

}  // namespace dnsboot::ecosystem
