// Operator profiles and pathology specification — the calibration data that
// makes the synthetic Internet reproduce the paper's evaluation.
//
// All counts are FULL-SCALE (the paper's absolute numbers); the builder
// multiplies population counts by the configured scale factor, while
// pathology counts are scaled with a floor of 1 so every error class the
// paper describes is exercised at any scale.
//
// Sources: Table 1 (DNSSEC per top-20 operator), Table 2 (CDS publishers),
// Table 3 / §4.4 (authenticated-bootstrapping signal zones), §4.2 (CDS error
// taxonomy), Figure 1 (bootstrappability funnel).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dnsboot::ecosystem {

struct OperatorProfile {
  std::string name;
  // NS hostnames are ns1.<d>, ns2.<d>, ... one per entry. Two entries on the
  // same domain model a conventional 2-NS setup; two entries on different
  // domains model the deSEC pattern (ns1.desec.io + ns2.desec.org).
  std::vector<std::string> ns_domains;
  std::string tld = "com";           // TLD of the operator's own zone(s)
  std::string customer_tld = "com";  // TLD where customer zones are created

  int addresses_per_ns = 1;  // Cloudflare pool: 3 IPv4 + 3 IPv6 => 6
  bool anycast_pool = false;
  bool legacy_formerr = false;  // pre-RFC 3597 servers: FORMERR on CDS (§4.2)
  bool swiss = false;           // Table 2 annotation

  // Portfolio composition (absolute, full scale). Remainder is unsigned.
  std::uint64_t domains = 0;
  std::uint64_t secured = 0;
  std::uint64_t invalid = 0;
  std::uint64_t islands = 0;

  // CDS publication: secured zones receive CDS first, then islands according
  // to island_cds_fraction, until cds_domains is exhausted.
  std::uint64_t cds_domains = 0;
  double island_cds_fraction = 0.0;
  // Of islands with CDS, the fraction carrying the RFC 8078 delete sentinel
  // (the Cloudflare disable-without-cleanup flow, §4.2: 37 % of their islands).
  double island_cds_delete_fraction = 0.0;

  // RFC 9615: publish signaling records for every DNSSEC-enabled zone
  // (secured + islands-with-CDS) — the Cloudflare/deSEC/Glauca policy (§4.4).
  bool publishes_signal = false;
  // Cloudflare and Glauca copy delete sentinels into signal zones; deSEC
  // does not (§4.4).
  bool signal_includes_delete = false;
  // Zones with signal RRs that are nonetheless invalid/unsigned in-zone —
  // the Table 3 "invalid DNSSEC" row (43 unsigned + 787 invalid across
  // operators). Full-scale counts.
  std::uint64_t signal_on_invalid = 0;
  std::uint64_t signal_on_unsigned = 0;

  // Secured zones publishing a CSYNC record (RFC 7477) announcing an apex NS
  // set that differs from the TLD delegation — migration via
  // child-to-parent synchronization (the paper's future-work mechanism).
  std::uint64_t csync_migrations = 0;

  // Key-lifecycle snapshots (RFC 7583 rollover states frozen at scan time).
  // A scan of the real ecosystem always catches some zones mid-rollover and
  // a few with botched rollovers; these counts (full scale, scaled with
  // floor 1) carve those states out of the secured population. All default
  // to zero so worlds built before this knob existed are byte-identical.
  std::uint64_t roll_mid_zsk = 0;          // successor ZSK published, waiting
  std::uint64_t roll_mid_ksk = 0;          // double-DS KSK roll in flight
  std::uint64_t roll_premature_ds = 0;     // DS swapped before DNSKEY publish
  std::uint64_t roll_stale_rrsig = 0;      // RRSIGs by a retired, absent ZSK
  std::uint64_t roll_cds_unpublished = 0;  // CDS announces an unpublished key
  std::uint64_t roll_algorithm_broken = 0; // new-alg DNSKEY that signs nothing
};

// Exact small-count error injections (scaled with floor 1).
struct PathologySpec {
  // §4.2 — CDS in unsigned zones (Canal Dominios et al.).
  std::uint64_t unsigned_with_cds_canal = 2469;
  std::uint64_t unsigned_with_cds_other = 385;  // 2 854 total
  std::uint64_t unsigned_with_cds_delete = 16;
  // §4.2 — signed zones whose CDS is a delete request the parent ignores.
  std::uint64_t signed_with_cds_delete = 3289;
  // §4.2 — islands with CDS inconsistent between nameservers (5 333 total,
  // 4 637 of them multi-operator setups).
  std::uint64_t island_cds_inconsistent_multi_op = 4637;
  std::uint64_t island_cds_inconsistent_other = 696;
  // §4.2 — CDS RRs matching no DNSKEY (7, of which 5 are secure islands)
  // and invalid RRSIGs over CDS (3).
  std::uint64_t island_cds_no_matching_dnskey = 5;
  std::uint64_t signed_cds_no_matching_dnskey = 2;
  std::uint64_t cds_invalid_rrsig = 3;

  // §4.4 — signal-zone violations among bootstrappable zones.
  std::uint64_t signal_missing_one_ns_cloudflare = 34;  // TLD/operator NS mismatch
  std::uint64_t signal_missing_one_ns_desec = 154;      // spurious NS etc.
  std::uint64_t signal_missing_one_ns_glauca = 1;
  std::uint64_t signal_missing_one_ns_multi_op = 17;
  std::uint64_t signal_zone_cut = 1;  // the ns1.desc.io parking typo

  // §4.4 — zones with signal RRs that cannot be bootstrapped for in-zone
  // reasons (beyond deletion requests): 43 unsigned, 787 invalidly signed,
  // 32 inconsistent CDS, 47 invalid RRSIGs over in-zone CDS. These are
  // attributed to the "other" signal publishers.
  std::uint64_t signal_zone_unsigned = 43;
  std::uint64_t signal_zone_invalid = 787;
  std::uint64_t signal_cds_inconsistent = 32;
  std::uint64_t signal_cds_bad_rrsig = 47;
};

// Global targets (§4.1 headline + Figure 1) used to calibrate the long tail.
struct GlobalTargets {
  std::uint64_t total_domains = 287'600'000;
  std::uint64_t secured = 15'786'327;
  std::uint64_t invalid = 640'048;
  std::uint64_t islands = 3'122'912;  // funnel branches summed
  std::uint64_t with_cds = 10'500'000;
  std::uint64_t island_cds_delete = 165'010;
  std::uint64_t island_cds_valid = 302'985;  // "possible to bootstrap"
  // §4.2: 7.6 M domains whose NSes fail on CDS queries (legacy servers).
  std::uint64_t legacy_formerr_domains = 7'600'000;
};

// The paper's named operators (Tables 1–3) plus deSEC/Glauca/parking/Canal.
std::vector<OperatorProfile> paper_operator_profiles();

// The calibrated long tail: generic operators covering the difference
// between the named operators and the global targets. `count` controls how
// many distinct operator identities the remainder is split across.
std::vector<OperatorProfile> long_tail_profiles(
    const std::vector<OperatorProfile>& named, const GlobalTargets& targets,
    int count = 32);

// TLDs the simulation serves. All are DNSSEC-signed (the paper scopes to
// signed TLDs).
std::vector<std::string> simulated_tlds();

}  // namespace dnsboot::ecosystem
