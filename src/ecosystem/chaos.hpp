// Chaos profiles — scriptable fault schedules for survey worlds. apply_chaos
// walks a built Ecosystem and installs deterministic (seeded) link faults on
// the SimNetwork plus server-side fault gates on the AuthServers, so
// `dnsboot-survey --chaos hostile` scans the same world the robustness tests
// assert against.
//
// Root and TLD infrastructure is exempt from all faults by default: the
// paper's scan presumes a reachable parent side, and a lossy or dead root
// would make every zone unobservable for uninteresting reasons. Chaos is a
// property of operator infrastructure, which is what the survey measures.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ecosystem/builder.hpp"

namespace dnsboot::ecosystem {

struct ChaosOptions {
  std::uint64_t seed = 0xc4a05;

  // Link faults toward operator endpoints (queries; the response path stays
  // clean so effective loss equals the configured rate).
  double loss_rate = 0.0;
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  double corrupt_rate = 0.0;
  double burst_enter = 0.0;           // per-datagram chance to start a burst
  net::SimTime burst_duration = 0;

  // Fraction of operator endpoints given a blackhole window / a periodic
  // link flap.
  double blackhole_fraction = 0.0;
  net::SimTime blackhole_start = 0;
  net::SimTime blackhole_duration = 0;  // kSimTimeForever-start = permanent
  double flap_fraction = 0.0;
  net::SimTime flap_period = 0;
  net::SimTime flap_down = 0;

  // Fraction of operator servers given each server-side fault gate.
  double slow_start_fraction = 0.0;
  net::SimTime slow_start_penalty = 0;
  int slow_start_queries = 0;
  double rate_limit_fraction = 0.0;
  double rate_limit_qps = 0.0;
  double servfail_flap_fraction = 0.0;  // transient-SERVFAIL servers
  net::SimTime servfail_flap_period = 0;
  net::SimTime servfail_flap_fail = 0;

  // Adversarial tier (DESIGN.md §13): station an off-path attacker at this
  // fraction of operator endpoints. The attacker races every observed UDP
  // query with the scripted AttackProfile below; infrastructure exemption
  // applies as for faults.
  double attack_fraction = 0.0;
  net::AttackProfile attack;

  // Server-side hardening rolled out with the attack (per-client token
  // buckets on every non-exempt server). 0 leaves servers unhardened.
  double defense_per_client_qps = 0.0;
  double defense_per_client_burst = 32.0;

  // Keep the root and TLD servers clean (see header comment).
  bool exempt_infrastructure = true;
};

// Named presets: "off", "mild" (low loss, some duplication/reordering),
// "hostile" (the acceptance world: 30% loss, flapping links and endpoints,
// transient-SERVFAIL and rate-limited servers), and "adversarial" (clean
// links, hostile *peers*: off-path spoof sweeps, wrong-ID floods,
// wrong-tuple injections, truncation games and garbage at half the
// operator endpoints — the ss2DNS threat model).
ChaosOptions chaos_preset(const std::string& name);

// Every name chaos_preset understands, in CLI display order. Tools build
// their --chaos choice lists from this so an unknown preset is a usage
// error, never a silent fallback to "off".
const std::vector<std::string>& chaos_preset_names();

// What apply_chaos installed — the link map feeds the L106 lint and the
// counters feed the survey's robustness summary.
struct ChaosPlan {
  std::map<net::IpAddress, net::FaultProfile> links;
  std::uint64_t servers_faulted = 0;
  std::uint64_t endpoints_faulted = 0;
  std::uint64_t endpoints_blackholed = 0;
  std::uint64_t endpoints_flapping = 0;
  std::uint64_t endpoints_attacked = 0;
  std::uint64_t servers_hardened = 0;
};

ChaosPlan apply_chaos(net::SimNetwork& network, Ecosystem& eco,
                      const ChaosOptions& options);

}  // namespace dnsboot::ecosystem
