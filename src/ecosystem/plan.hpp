// EcosystemPlan — the cheap, immutable, shared half of world construction
// (DESIGN.md §14).
//
// The legacy builder materialized the whole population in one pass, consuming
// sequential RNG draws and pathology quotas zone by zone; a shard worker that
// wanted its slice had to build (and pay the memory for) everything. The plan
// splits that into:
//
//   make_ecosystem_plan(config)   — pure scalar arithmetic: the operator set,
//       per-operator population counts, pathology-chain boundaries, duplicate
//       suppression, and apex-address prefix sums. O(operators), no RNG
//       state, no zones. Shareable across threads by const reference.
//
//   build_shard(network, config, plan, shard, shards) — materializes ONLY the
//       zones whose shard_of_canonical(name) == shard, plus the (small)
//       shared infrastructure every shard world needs to serve its slice:
//       root, TLD zones carrying this shard's delegations, operator zones
//       carrying this shard's signal records. Worker memory is
//       O(zones/shard + operators), not O(world).
//
// Determinism contract: a zone's bytes depend only on (config.seed, zone
// name). Every random draw inside zone materialization comes from
// op_rng.fork("zone:" + canonical_name) — Rng::fork is position-independent,
// so the same zone built by any shard world (or by the full build, which is
// build_shard(0, 1)) is byte-identical. Infrastructure draws are sequential
// but happen identically in every shard world; decisions the legacy builder
// made lazily mid-population (alt-server and CSYNC-host creation) are decided
// eagerly here so server identities and address assignments never depend on
// which zones a shard holds.
//
// Pathology truth is closed-form: every sequential quota chain the legacy
// builder consumed with take() reduces to prefix arithmetic over contiguous
// state ranges (see planned_truth in plan.cpp), so truth for zone i is O(1)
// without generating zones 0..i-1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ecosystem/builder.hpp"

namespace dnsboot::ecosystem {

// Per-operator population arithmetic, fully determined by the config.
struct OperatorPlan {
  OperatorProfile profile;
  std::string slug;  // lowercase alnum of profile.name; zone names are
                     // "<slug>-<i>.<tld>."
  std::string tld;   // resolved customer TLD label ("com" fallback)

  // Population counts (largest-remainder scaled, quota floors applied).
  std::uint64_t n = 0;
  std::uint64_t n_secured = 0;
  std::uint64_t n_invalid = 0;
  std::uint64_t n_island = 0;
  // CDS boundaries.
  std::uint64_t cds_secured = 0;       // secured zones i < cds_secured get CDS
  std::uint64_t island_cds = 0;        // first island_cds islands get CDS
  std::uint64_t island_cds_delete = 0; // ...of which the first get the
                                       // delete sentinel
  // Zones with index < skip_below collide with an earlier operator sharing
  // (slug, tld) and are never generated (the legacy duplicate guard).
  std::uint64_t skip_below = 0;
  // Apex A-record counter value of this operator's first generated zone
  // (198.18.x.x addresses are numbered globally in generation order).
  std::uint64_t apex_base = 1;

  // Pathology-chain boundaries (scaled quotas; fully consumed by
  // construction, see the need_* floors in make_ecosystem_plan).
  std::uint64_t q_unsigned_cds = 0;
  std::uint64_t q_unsigned_cds_delete = 0;
  std::uint64_t q_signed_cds_delete = 0;
  std::uint64_t q_signed_cds_no_match = 0;
  std::uint64_t q_island_inconsistent_multi = 0;
  std::uint64_t q_island_inconsistent_same = 0;
  std::uint64_t q_island_cds_no_match = 0;
  std::uint64_t q_cds_bad_rrsig = 0;
  std::uint64_t q_signal_missing_ns = 0;
  std::uint64_t q_signal_missing_ns_multi = 0;
  std::uint64_t q_signal_cds_inconsistent = 0;
  std::uint64_t q_signal_cds_bad_rrsig = 0;
  std::uint64_t q_signal_on_invalid = 0;
  std::uint64_t q_signal_on_unsigned = 0;
  std::uint64_t q_signal_zone_cut = 0;
  std::uint64_t q_csync = 0;
  // Key-lifecycle snapshot quotas, consumed from the TAIL of the secured
  // range (ordinal sec_hi - 1 - i) so they never collide with the prefix
  // chains above; need_secured in make_ecosystem_plan grows by their sum.
  std::uint64_t q_roll_mid_zsk = 0;
  std::uint64_t q_roll_mid_ksk = 0;
  std::uint64_t q_roll_premature_ds = 0;
  std::uint64_t q_roll_stale_rrsig = 0;
  std::uint64_t q_roll_cds_unpublished = 0;
  std::uint64_t q_roll_algorithm_broken = 0;

  // Eager infrastructure decisions (the legacy builder created these lazily
  // at the first zone that needed them, which would make server identity
  // depend on which zones a shard materializes).
  bool has_alt_server = false;
  bool has_csync_host = false;
  int partner = -1;  // index into EcosystemPlan::operators, -1 = none
};

struct EcosystemPlan {
  std::vector<OperatorPlan> operators;
  // Total generated zones across all operators (duplicates excluded); the
  // sum of every shard's slice.
  std::uint64_t zones_total = 0;
};

EcosystemPlan make_ecosystem_plan(const EcosystemConfig& config);

// Closed-form ground truth for zone index `i` of `op` (requires
// op.skip_below <= i < op.n). Equals what the legacy sequential quota
// consumption produced.
ZoneTruth planned_truth(const OperatorPlan& op, std::uint64_t i);

// Materialize shard `shard_index` of `shard_count` onto `network`.
// build_shard(n, c, plan, 0, 1) is the full world (EcosystemBuilder::build
// delegates to exactly that). The returned Ecosystem's scan_targets / truth /
// zone counters cover only this shard's slice; infrastructure (hints,
// registries, ns_domain_to_operator, servers) is present in every shard.
Ecosystem build_shard(net::SimNetwork& network, const EcosystemConfig& config,
                      const EcosystemPlan& plan, std::size_t shard_index,
                      std::size_t shard_count);

}  // namespace dnsboot::ecosystem
