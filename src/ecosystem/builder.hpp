// EcosystemBuilder — constructs the synthetic Internet: a signed root, signed
// TLDs, operator infrastructure (nameservers, anycast pools, operator zones
// with RFC 9615 signaling records), and the scaled zone population with every
// pathology class the paper describes, then wires it all onto a SimNetwork.
//
// The builder records ground truth per zone so integration tests can assert
// that the scan+analysis pipeline recovers exactly what was injected.
#pragma once

#include <map>
#include <memory>

#include "dnssec/signer.hpp"
#include "ecosystem/profiles.hpp"
#include "kasp/materialize.hpp"
#include "net/simnet.hpp"
#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"

namespace dnsboot::ecosystem {

struct EcosystemConfig {
  std::uint64_t seed = 1;
  // Population scale: 1/1000 means GoDaddy's 56.4 M becomes 56.4 k.
  double scale = 1.0 / 2000;
  bool inject_pathologies = true;
  std::uint32_t now = 1'750'000'000;  // DNSSEC validation time (simulated)
  // Enough distinct identities that no single long-tail operator outranks
  // the paper's smallest Table 2 row (~8 k CDS zones at full scale).
  int long_tail_operators = 400;
  // Override the operator set entirely (tests use tiny custom worlds).
  std::vector<OperatorProfile> operators;
  GlobalTargets targets;
  PathologySpec pathologies;
};

enum class ZoneState { kUnsigned, kSecured, kInvalid, kIsland };

struct ZoneTruth {
  std::string operator_name;
  std::string secondary_operator;  // multi-operator setups
  ZoneState state = ZoneState::kUnsigned;

  bool cds = false;
  bool cds_delete = false;
  bool cds_no_match = false;       // CDS matches no DNSKEY
  bool cds_bad_rrsig = false;      // RRSIG over CDS corrupted
  bool cds_inconsistent = false;   // NSes serve differing CDS
  bool multi_operator = false;
  bool legacy_servers = false;     // NSes FORMERR on CDS queries

  // Key-lifecycle snapshot this zone is frozen in (kNone for the vast
  // majority). Scenarios that publish CDS force `cds` true below.
  kasp::RolloverScenario rollover = kasp::RolloverScenario::kNone;

  bool csync = false;                   // publishes a migrating CSYNC record
  bool signal = false;                  // signal RRs published
  bool signal_missing_one_ns = false;   // only one NS's signaling tree filled
  bool signal_stale_one_ns = false;     // one signaling tree carries stale CDS
  bool signal_zone_cut = false;         // signaling name crosses a fake cut
};

// A registry's live handle on its TLD: the mutable zone, its keys, and the
// server publishing it. The registry module uses this to install/remove DS
// records and re-sign (the write side of CDS/CDNSKEY processing).
struct TldHandle {
  std::shared_ptr<dns::Zone> zone;
  dnssec::ZoneKeys keys;
  std::shared_ptr<server::AuthServer> server;
  dnssec::SigningPolicy policy;
};

struct Ecosystem {
  resolver::RootHints hints;
  std::vector<dns::Name> scan_targets;
  std::map<std::string, ZoneTruth> truth;  // canonical zone text -> truth
  // Registry-side handles, keyed by canonical TLD text ("ch.").
  std::map<std::string, TldHandle> registries;
  // Operator-identification data for the analysis: NS-domain suffix ->
  // operator name (including white-label aliases, §3).
  std::map<std::string, std::string> ns_domain_to_operator;
  std::uint32_t now = 0;

  // Keep servers (and through them zones) alive; the network holds only
  // handlers.
  std::vector<std::shared_ptr<server::AuthServer>> servers;

  // Generation statistics.
  std::uint64_t zones_total = 0;
  std::uint64_t zones_signed = 0;
  std::uint64_t signatures_created = 0;
};

// Thin facade over the plan/shard split in ecosystem/plan.hpp: build() is
// exactly build_shard(network, config, make_ecosystem_plan(config), 0, 1).
// Callers that want a full world keep using this; callers that want
// O(zones/shard) worker memory call make_ecosystem_plan once and build_shard
// per worker.
class EcosystemBuilder {
 public:
  EcosystemBuilder(net::SimNetwork& network, EcosystemConfig config);

  Ecosystem build();

 private:
  net::SimNetwork& network_;
  EcosystemConfig config_;
};

}  // namespace dnsboot::ecosystem
