#include "crypto/keys.hpp"

#include <cstring>

namespace dnsboot::crypto {

KeyPair::KeyPair(Ed25519Seed seed, std::uint16_t flags)
    : seed_(seed), public_key_(ed25519_public_key(seed)), flags_(flags) {}

KeyPair KeyPair::generate(Rng& rng, std::uint16_t flags) {
  Ed25519Seed seed;
  rng.fill(seed.data(), seed.size());
  return KeyPair(seed, flags);
}

Bytes KeyPair::public_key() const {
  return Bytes(public_key_.begin(), public_key_.end());
}

Ed25519Signature KeyPair::sign(BytesView message) const {
  return ed25519_sign(seed_, public_key_, message);
}

bool KeyPair::verify(BytesView message, const Ed25519Signature& sig) const {
  return ed25519_verify(public_key_, message, sig);
}

bool KeyPair::verify_with(BytesView public_key, BytesView message,
                          BytesView signature) {
  if (public_key.size() != kEd25519PublicKeySize ||
      signature.size() != kEd25519SignatureSize) {
    return false;
  }
  Ed25519PublicKey pk;
  Ed25519Signature sig;
  std::memcpy(pk.data(), public_key.data(), pk.size());
  std::memcpy(sig.data(), signature.data(), sig.size());
  return ed25519_verify(pk, message, sig);
}

}  // namespace dnsboot::crypto
