// DNSSEC-facing key-pair abstraction. dnsboot signs every synthetic zone with
// Ed25519 (DNSSEC algorithm 15, RFC 8080); the abstraction exists so tests can
// exercise unknown-algorithm handling in the validator.
#pragma once

#include <cstdint>

#include "base/bytes.hpp"
#include "base/rng.hpp"
#include "crypto/ed25519.hpp"

namespace dnsboot::crypto {

// DNSSEC algorithm numbers (IANA registry). Only ED25519 is implemented;
// the others appear in parsed data and in the CDS delete sentinel.
enum class DnssecAlgorithm : std::uint8_t {
  kDelete = 0,  // CDS/CDNSKEY delete sentinel (RFC 8078 §4)
  kRsaSha256 = 8,
  kEcdsaP256Sha256 = 13,
  kEd25519 = 15,
  kPrivateOid = 254,
};

// DNSKEY flags (RFC 4034 §2.1).
inline constexpr std::uint16_t kDnskeyFlagZone = 0x0100;  // ZONE bit
inline constexpr std::uint16_t kDnskeyFlagSep = 0x0001;   // SEP bit (KSK)
inline constexpr std::uint16_t kZskFlags = kDnskeyFlagZone;               // 256
inline constexpr std::uint16_t kKskFlags = kDnskeyFlagZone | kDnskeyFlagSep;  // 257

// An Ed25519 signing key with its DNSKEY metadata.
class KeyPair {
 public:
  // Deterministically derive a key from an RNG stream (the ecosystem
  // generator owns seeding, so the whole synthetic Internet reproduces).
  static KeyPair generate(Rng& rng, std::uint16_t flags);

  std::uint16_t flags() const { return flags_; }
  bool is_ksk() const { return (flags_ & kDnskeyFlagSep) != 0; }
  DnssecAlgorithm algorithm() const { return DnssecAlgorithm::kEd25519; }

  // Raw public key bytes as carried in DNSKEY RDATA (32 bytes for alg 15).
  Bytes public_key() const;

  Ed25519Signature sign(BytesView message) const;
  bool verify(BytesView message, const Ed25519Signature& sig) const;

  static bool verify_with(BytesView public_key, BytesView message,
                          BytesView signature);

 private:
  KeyPair(Ed25519Seed seed, std::uint16_t flags);

  Ed25519Seed seed_;
  Ed25519PublicKey public_key_;
  std::uint16_t flags_;
};

}  // namespace dnsboot::crypto
