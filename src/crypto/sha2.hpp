// SHA-2 family (FIPS 180-4): SHA-256 for DS digest type 2, SHA-384 for DS
// digest type 4, SHA-512 as the hash inside Ed25519 (RFC 8032).
//
// Implemented from the spec; validated against FIPS / RFC test vectors in
// tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "base/bytes.hpp"

namespace dnsboot::crypto {

// Streaming SHA-256.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256();
  void update(BytesView data);
  std::array<std::uint8_t, kDigestSize> finish();

  static std::array<std::uint8_t, kDigestSize> digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t length_bits_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

// Streaming SHA-512; SHA-384 is SHA-512 with different IV and truncation.
class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;

  Sha512();
  void update(BytesView data);
  std::array<std::uint8_t, kDigestSize> finish();

  static std::array<std::uint8_t, kDigestSize> digest(BytesView data);

 protected:
  explicit Sha512(bool is384);

  void process_block(const std::uint8_t* block);

  std::uint64_t state_[8];
  // 128-bit message length; low word is enough for any realistic input but
  // the spec requires 128 bits, so carry into high.
  std::uint64_t length_low_ = 0;
  std::uint64_t length_high_ = 0;
  std::uint8_t buffer_[128];
  std::size_t buffered_ = 0;
};

class Sha384 : private Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 48;

  Sha384();
  void update(BytesView data) { Sha512::update(data); }
  std::array<std::uint8_t, kDigestSize> finish();

  static std::array<std::uint8_t, kDigestSize> digest(BytesView data);
};

}  // namespace dnsboot::crypto
