#include "crypto/ed25519.hpp"

#include <cstring>

#include "crypto/sha2.hpp"

namespace dnsboot::crypto {
namespace {

// ---------------------------------------------------------------------------
// Field arithmetic over GF(p), p = 2^255 - 19, radix-2^51 limbs.
// Invariant outside of intermediate sums: each limb < 2^52.
// ---------------------------------------------------------------------------

struct Fe {
  std::uint64_t v[5];
};

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

Fe fe_zero() { return Fe{{0, 0, 0, 0, 0}}; }
Fe fe_one() { return Fe{{1, 0, 0, 0, 0}}; }

Fe fe_from_u64(std::uint64_t x) {
  Fe r = fe_zero();
  r.v[0] = x & kMask51;
  r.v[1] = x >> 51;
  return r;
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

// a - b, computed as a + 2p - b so all limbs stay non-negative.
Fe fe_sub(const Fe& a, const Fe& b) {
  static constexpr std::uint64_t k2p[5] = {
      0xfffffffffffdaULL, 0xffffffffffffeULL, 0xffffffffffffeULL,
      0xffffffffffffeULL, 0xffffffffffffeULL};
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + k2p[i] - b.v[i];
  // Partial carry to keep limbs bounded.
  std::uint64_t c;
  for (int i = 0; i < 4; ++i) {
    c = r.v[i] >> 51;
    r.v[i] &= kMask51;
    r.v[i + 1] += c;
  }
  c = r.v[4] >> 51;
  r.v[4] &= kMask51;
  r.v[0] += c * 19;
  return r;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  using u128 = unsigned __int128;
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 +
            (u128)a3 * b0 + (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 +
            (u128)a3 * b1 + (u128)a4 * b0;

  Fe r;
  std::uint64_t c;
  c = static_cast<std::uint64_t>(t0 >> 51); r.v[0] = static_cast<std::uint64_t>(t0) & kMask51; t1 += c;
  c = static_cast<std::uint64_t>(t1 >> 51); r.v[1] = static_cast<std::uint64_t>(t1) & kMask51; t2 += c;
  c = static_cast<std::uint64_t>(t2 >> 51); r.v[2] = static_cast<std::uint64_t>(t2) & kMask51; t3 += c;
  c = static_cast<std::uint64_t>(t3 >> 51); r.v[3] = static_cast<std::uint64_t>(t3) & kMask51; t4 += c;
  c = static_cast<std::uint64_t>(t4 >> 51); r.v[4] = static_cast<std::uint64_t>(t4) & kMask51;
  r.v[0] += c * 19;
  c = r.v[0] >> 51; r.v[0] &= kMask51; r.v[1] += c;
  return r;
}

// Dedicated squaring: the symmetric cross terms fold into doubled products,
// ~3/5 the multiply work of the general fe_mul.
Fe fe_sq(const Fe& a) {
  using u128 = unsigned __int128;
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3],
                      a4 = a.v[4];
  const std::uint64_t a0_2 = a0 * 2, a1_2 = a1 * 2, a2_2 = a2 * 2,
                      a3_19 = a3 * 19, a4_19 = a4 * 19;

  u128 t0 = (u128)a0 * a0 + (u128)a1_2 * a4_19 + (u128)a2_2 * a3_19;
  u128 t1 = (u128)a0_2 * a1 + (u128)a2_2 * a4_19 + (u128)a3 * a3_19;
  u128 t2 = (u128)a0_2 * a2 + (u128)a1 * a1 + (u128)a3 * 2 * a4_19;
  u128 t3 = (u128)a0_2 * a3 + (u128)a1_2 * a2 + (u128)a4 * a4_19;
  u128 t4 = (u128)a0_2 * a4 + (u128)a1_2 * a3 + (u128)a2 * a2;

  Fe r;
  std::uint64_t c;
  c = static_cast<std::uint64_t>(t0 >> 51); r.v[0] = static_cast<std::uint64_t>(t0) & kMask51; t1 += c;
  c = static_cast<std::uint64_t>(t1 >> 51); r.v[1] = static_cast<std::uint64_t>(t1) & kMask51; t2 += c;
  c = static_cast<std::uint64_t>(t2 >> 51); r.v[2] = static_cast<std::uint64_t>(t2) & kMask51; t3 += c;
  c = static_cast<std::uint64_t>(t3 >> 51); r.v[3] = static_cast<std::uint64_t>(t3) & kMask51; t4 += c;
  c = static_cast<std::uint64_t>(t4 >> 51); r.v[4] = static_cast<std::uint64_t>(t4) & kMask51;
  r.v[0] += c * 19;
  c = r.v[0] >> 51; r.v[0] &= kMask51; r.v[1] += c;
  return r;
}

// n successive squarings.
Fe fe_sqn(Fe a, int n) {
  for (int i = 0; i < n; ++i) a = fe_sq(a);
  return a;
}

// Square-and-multiply with a big-endian 32-byte exponent. Variable time.
Fe fe_pow(const Fe& base, const std::uint8_t exponent_be[32]) {
  Fe result = fe_one();
  bool started = false;
  for (int byte = 0; byte < 32; ++byte) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) result = fe_sq(result);
      if ((exponent_be[byte] >> bit) & 1) {
        result = fe_mul(result, base);
        started = true;
      } else if (started) {
        // nothing: square already applied
      }
    }
  }
  return result;
}

// z^(2^250 - 1): the shared prefix of the inversion and sqrt addition
// chains (the classic curve25519 ladder — 249 squarings, 11 multiplies,
// versus ~128 multiplies for the old bit-scan fe_pow).
Fe fe_pow_2_250_m1(const Fe& z) {
  Fe t0 = fe_sq(z);                      // z^2
  Fe t1 = fe_mul(z, fe_sqn(t0, 2));      // z^9
  t0 = fe_mul(t0, t1);                   // z^11
  t1 = fe_mul(t1, fe_sq(t0));            // z^31 = z^(2^5 - 1)
  t1 = fe_mul(fe_sqn(t1, 5), t1);        // z^(2^10 - 1)
  Fe t2 = fe_mul(fe_sqn(t1, 10), t1);    // z^(2^20 - 1)
  t2 = fe_mul(fe_sqn(t2, 20), t2);       // z^(2^40 - 1)
  t2 = fe_sqn(t2, 10);                   // z^(2^50 - 2^10)
  t1 = fe_mul(t2, t1);                   // z^(2^50 - 1)
  t2 = fe_mul(fe_sqn(t1, 50), t1);       // z^(2^100 - 1)
  t2 = fe_mul(fe_sqn(t2, 100), t2);      // z^(2^200 - 1)
  return fe_mul(fe_sqn(t2, 50), t1);     // z^(2^250 - 1)
}

Fe fe_invert(const Fe& a) {
  // a^(p-2), p-2 = 2^255 - 21 = (2^250 - 1)·2^5 + 11.
  Fe t = fe_sqn(fe_pow_2_250_m1(a), 5);  // a^(2^255 - 2^5)
  Fe a2 = fe_sq(a);                      // a^2
  Fe a9 = fe_mul(a, fe_sqn(a2, 2));      // a^9
  Fe a11 = fe_mul(a2, a9);               // a^11
  return fe_mul(t, a11);
}

Fe fe_pow_p58(const Fe& a) {
  // a^((p-5)/8), (p-5)/8 = 2^252 - 3 = (2^250 - 1)·4 + 1.
  Fe t = fe_sqn(fe_pow_2_250_m1(a), 2);  // a^(2^252 - 4)
  return fe_mul(t, a);
}

void fe_tobytes(std::uint8_t out[32], const Fe& a) {
  // Full carry so limbs < 2^51.
  Fe t = a;
  std::uint64_t c;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      c = t.v[i] >> 51;
      t.v[i] &= kMask51;
      t.v[i + 1] += c;
    }
    c = t.v[4] >> 51;
    t.v[4] &= kMask51;
    t.v[0] += c * 19;
  }
  // Canonical reduction: q = t + 19; if q >= 2^255 then t >= p, use q - 2^255.
  Fe q = t;
  q.v[0] += 19;
  for (int i = 0; i < 4; ++i) {
    c = q.v[i] >> 51;
    q.v[i] &= kMask51;
    q.v[i + 1] += c;
  }
  bool ge_p = (q.v[4] >> 51) != 0;
  q.v[4] &= kMask51;
  const Fe& r = ge_p ? q : t;
  // Serialize 255 bits little-endian.
  std::uint64_t packed[4];
  packed[0] = r.v[0] | (r.v[1] << 51);
  packed[1] = (r.v[1] >> 13) | (r.v[2] << 38);
  packed[2] = (r.v[2] >> 26) | (r.v[3] << 25);
  packed[3] = (r.v[3] >> 39) | (r.v[4] << 12);
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 8; ++b) {
      out[8 * i + b] = static_cast<std::uint8_t>(packed[i] >> (8 * b));
    }
  }
}

Fe fe_frombytes(const std::uint8_t in[32]) {
  std::uint64_t w[4];
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    for (int b = 7; b >= 0; --b) v = v << 8 | in[8 * i + b];
    w[i] = v;
  }
  Fe r;
  r.v[0] = w[0] & kMask51;
  r.v[1] = (w[0] >> 51 | w[1] << 13) & kMask51;
  r.v[2] = (w[1] >> 38 | w[2] << 26) & kMask51;
  r.v[3] = (w[2] >> 25 | w[3] << 39) & kMask51;
  r.v[4] = (w[3] >> 12) & kMask51;  // top bit (sign) dropped by the mask
  return r;
}

bool fe_is_zero(const Fe& a) {
  std::uint8_t bytes[32];
  fe_tobytes(bytes, a);
  std::uint8_t acc = 0;
  for (auto b : bytes) acc |= b;
  return acc == 0;
}

bool fe_is_negative(const Fe& a) {
  std::uint8_t bytes[32];
  fe_tobytes(bytes, a);
  return bytes[0] & 1;
}

bool fe_equal(const Fe& a, const Fe& b) { return fe_is_zero(fe_sub(a, b)); }

Fe fe_neg(const Fe& a) { return fe_sub(fe_zero(), a); }

// Curve constants, computed once (avoids transcription errors).
struct Constants {
  Fe d;        // -121665/121666
  Fe d2;       // 2*d
  Fe sqrt_m1;  // sqrt(-1) = 2^((p-1)/4)
};

const Constants& constants() {
  static const Constants c = [] {
    Constants out;
    Fe num = fe_neg(fe_from_u64(121665));
    Fe den = fe_from_u64(121666);
    out.d = fe_mul(num, fe_invert(den));
    out.d2 = fe_add(out.d, out.d);
    // (p-1)/4 = 2^253 - 5
    static constexpr std::uint8_t kExp[32] = {
        0x1f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xfb};
    out.sqrt_m1 = fe_pow(fe_from_u64(2), kExp);
    return out;
  }();
  return c;
}

// ---------------------------------------------------------------------------
// Point arithmetic, extended coordinates (X:Y:Z:T), x = X/Z, y = Y/Z, T=XY/Z.
// ---------------------------------------------------------------------------

struct Point {
  Fe x, y, z, t;
};

Point point_identity() { return Point{fe_zero(), fe_one(), fe_one(), fe_zero()}; }

// RFC 8032 §5.1.4 addition.
Point point_add(const Point& p, const Point& q) {
  Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  Fe c = fe_mul(fe_mul(p.t, constants().d2), q.t);
  Fe d = fe_mul(fe_add(p.z, p.z), q.z);
  Fe e = fe_sub(b, a);
  Fe f = fe_sub(d, c);
  Fe g = fe_add(d, c);
  Fe h = fe_add(b, a);
  return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// RFC 8032 §5.1.4 doubling.
Point point_double(const Point& p) {
  Fe a = fe_sq(p.x);
  Fe b = fe_sq(p.y);
  Fe c = fe_add(fe_sq(p.z), fe_sq(p.z));
  Fe h = fe_add(a, b);
  Fe xy = fe_add(p.x, p.y);
  Fe e = fe_sub(h, fe_sq(xy));
  Fe g = fe_sub(a, b);
  Fe f = fe_add(c, g);
  return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Point point_neg(const Point& p) {
  return Point{fe_neg(p.x), p.y, p.z, fe_neg(p.t)};
}

// Variable-time scalar multiplication, MSB-first double-and-add.
Point point_scalarmult(const Point& p, const std::uint8_t scalar_le[32]) {
  Point r = point_identity();
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      r = point_double(r);
      if ((scalar_le[byte] >> bit) & 1) r = point_add(r, p);
    }
  }
  return r;
}

void point_encode(std::uint8_t out[32], const Point& p) {
  Fe zinv = fe_invert(p.z);
  Fe x = fe_mul(p.x, zinv);
  Fe y = fe_mul(p.y, zinv);
  fe_tobytes(out, y);
  if (fe_is_negative(x)) out[31] |= 0x80;
}

// RFC 8032 §5.1.3 decompression. Returns false for non-points.
bool point_decode(Point& out, const std::uint8_t in[32]) {
  Fe y = fe_frombytes(in);
  bool x_sign = (in[31] & 0x80) != 0;

  // Solve x^2 = (y^2 - 1) / (d y^2 + 1).
  Fe y2 = fe_sq(y);
  Fe u = fe_sub(y2, fe_one());
  Fe v = fe_add(fe_mul(constants().d, y2), fe_one());
  // Candidate root: x = u v^3 (u v^7)^((p-5)/8).
  Fe v3 = fe_mul(fe_sq(v), v);
  Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow_p58(fe_mul(u, v7)));

  Fe vx2 = fe_mul(v, fe_sq(x));
  if (!fe_equal(vx2, u)) {
    if (fe_equal(vx2, fe_neg(u))) {
      x = fe_mul(x, constants().sqrt_m1);
    } else {
      return false;
    }
  }
  if (fe_is_zero(x) && x_sign) return false;  // -0 is not canonical
  if (fe_is_negative(x) != x_sign) x = fe_neg(x);

  out.x = x;
  out.y = y;
  out.z = fe_one();
  out.t = fe_mul(x, y);
  return true;
}

const Point& base_point() {
  static const Point b = [] {
    // Canonical encoding of the base point (y = 4/5, x positive... the
    // standard generator has sign bit 0): 0x58 0x66 0x66 ... 0x66.
    std::uint8_t enc[32];
    enc[0] = 0x58;
    std::memset(enc + 1, 0x66, 31);
    Point p;
    bool ok = point_decode(p, enc);
    (void)ok;
    return p;
  }();
  return b;
}

// A table entry in "cached" form: (Y+X, Y−X, Z, T·2d). Storing the sums and
// the 2d product once per entry shaves two additions and one multiply off
// every table addition relative to the generic point_add.
struct CachedPoint {
  Fe y_plus_x, y_minus_x, z, t2d;
};

CachedPoint point_cache(const Point& p) {
  return CachedPoint{fe_add(p.y, p.x), fe_sub(p.y, p.x), p.z,
                     fe_mul(p.t, constants().d2)};
}

Point point_add_cached(const Point& p, const CachedPoint& q) {
  Fe a = fe_mul(fe_sub(p.y, p.x), q.y_minus_x);
  Fe b = fe_mul(fe_add(p.y, p.x), q.y_plus_x);
  Fe c = fe_mul(q.t2d, p.t);
  Fe d = fe_mul(fe_add(p.z, p.z), q.z);
  Fe e = fe_sub(b, a);
  Fe f = fe_sub(d, c);
  Fe g = fe_add(d, c);
  Fe h = fe_add(b, a);
  return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// Precomputed multiples of the base point for 8-bit fixed-window scalar
// multiplication: table[w][j-1] = j * 256^w * B, cached form. Signing and
// key generation perform a base multiplication per call; 32 cached
// additions per multiply is ~4x cheaper than the 4-bit Point table this
// replaces (and ~40x cheaper than double-and-add). ~1.3 MiB, built once.
struct BaseTable {
  CachedPoint entry[32][255];
};

const BaseTable& base_table() {
  static const BaseTable& table = *[] {
    auto* t = new BaseTable;  // leaked singleton, like the name pool
    Point window_base = base_point();  // 256^w * B
    for (int w = 0; w < 32; ++w) {
      Point acc = window_base;
      for (int j = 0; j < 255; ++j) {
        t->entry[w][j] = point_cache(acc);
        acc = point_add(acc, window_base);
      }
      window_base = acc;  // 256 * window_base
    }
    return t;
  }();
  return table;
}

// r = scalar * B via the precomputed window table (variable time).
Point point_scalarmult_base(const std::uint8_t scalar_le[32]) {
  const BaseTable& table = base_table();
  Point acc = point_identity();
  for (int w = 0; w < 32; ++w) {
    int byte = scalar_le[w];
    if (byte != 0) acc = point_add_cached(acc, table.entry[w][byte - 1]);
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod L = 2^252 + 27742317777372353535851937790883648493.
// TweetNaCl-style byte-wise reduction.
// ---------------------------------------------------------------------------

constexpr std::int64_t kL[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12,
                                 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9,
                                 0xde, 0x14, 0,    0,    0,    0,    0,
                                 0,    0,    0,    0,    0,    0,    0,
                                 0,    0,    0,    0x10};

void mod_l(std::uint8_t r[32], std::int64_t x[64]) {
  std::int64_t carry;
  for (int i = 63; i >= 32; --i) {
    carry = 0;
    int j;
    for (j = i - 32; j < i - 12; ++j) {
      x[j] += carry - 16 * x[i] * kL[j - (i - 32)];
      carry = (x[j] + 128) >> 8;
      x[j] -= carry << 8;
    }
    x[j] += carry;
    x[i] = 0;
  }
  carry = 0;
  for (int j = 0; j < 32; ++j) {
    x[j] += carry - (x[31] >> 4) * kL[j];
    carry = x[j] >> 8;
    x[j] &= 255;
  }
  for (int j = 0; j < 32; ++j) x[j] -= carry * kL[j];
  for (int i = 0; i < 32; ++i) {
    x[i + 1] += x[i] >> 8;
    r[i] = static_cast<std::uint8_t>(x[i] & 255);
  }
}

// Reduce a 64-byte little-endian value mod L.
void scalar_reduce(std::uint8_t r[32], const std::uint8_t h[64]) {
  std::int64_t x[64];
  for (int i = 0; i < 64; ++i) x[i] = h[i];
  mod_l(r, x);
}

// r = (a*b + c) mod L, inputs 32-byte little-endian.
void scalar_muladd(std::uint8_t r[32], const std::uint8_t a[32],
                   const std::uint8_t b[32], const std::uint8_t c[32]) {
  std::int64_t x[64];
  for (auto& v : x) v = 0;
  for (int i = 0; i < 32; ++i) x[i] = c[i];
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      x[i + j] += static_cast<std::int64_t>(a[i]) * b[j];
    }
  }
  mod_l(r, x);
}

// Checks s < L (malleability check, RFC 8032 §5.1.7).
bool scalar_in_range(const std::uint8_t s[32]) {
  for (int i = 31; i >= 0; --i) {
    if (s[i] < kL[i]) return true;
    if (s[i] > kL[i]) return false;
  }
  return false;  // s == L
}

void clamp(std::uint8_t scalar[32]) {
  scalar[0] &= 248;
  scalar[31] &= 127;
  scalar[31] |= 64;
}

struct ExpandedSecret {
  std::uint8_t scalar[32];
  std::uint8_t prefix[32];
};

ExpandedSecret expand_seed(const Ed25519Seed& seed) {
  auto h = Sha512::digest(BytesView(seed.data(), seed.size()));
  ExpandedSecret out;
  std::memcpy(out.scalar, h.data(), 32);
  std::memcpy(out.prefix, h.data() + 32, 32);
  clamp(out.scalar);
  return out;
}

}  // namespace

Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed) {
  ExpandedSecret sec = expand_seed(seed);
  Point a = point_scalarmult_base(sec.scalar);
  Ed25519PublicKey pk;
  point_encode(pk.data(), a);
  return pk;
}

Ed25519Signature ed25519_sign(const Ed25519Seed& seed, BytesView message) {
  return ed25519_sign(seed, ed25519_public_key(seed), message);
}

Ed25519Signature ed25519_sign(const Ed25519Seed& seed,
                              const Ed25519PublicKey& public_key,
                              BytesView message) {
  ExpandedSecret sec = expand_seed(seed);
  const Ed25519PublicKey& pk = public_key;

  // r = SHA512(prefix || M) mod L
  Sha512 hr;
  hr.update(BytesView(sec.prefix, 32));
  hr.update(message);
  auto r_full = hr.finish();
  std::uint8_t r[32];
  scalar_reduce(r, r_full.data());

  Point rp = point_scalarmult_base(r);
  Ed25519Signature sig;
  point_encode(sig.data(), rp);

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.update(BytesView(sig.data(), 32));
  hk.update(BytesView(pk.data(), pk.size()));
  hk.update(message);
  auto k_full = hk.finish();
  std::uint8_t k[32];
  scalar_reduce(k, k_full.data());

  // S = (r + k*s) mod L
  scalar_muladd(sig.data() + 32, k, sec.scalar, r);
  return sig;
}

bool ed25519_verify(const Ed25519PublicKey& public_key, BytesView message,
                    const Ed25519Signature& signature) {
  const std::uint8_t* r_bytes = signature.data();
  const std::uint8_t* s_bytes = signature.data() + 32;
  if (!scalar_in_range(s_bytes)) return false;

  Point a;
  if (!point_decode(a, public_key.data())) return false;

  // k = SHA512(R || A || M) mod L
  Sha512 hk;
  hk.update(BytesView(r_bytes, 32));
  hk.update(BytesView(public_key.data(), public_key.size()));
  hk.update(message);
  auto k_full = hk.finish();
  std::uint8_t k[32];
  scalar_reduce(k, k_full.data());

  // Check [S]B == R + [k]A  <=>  [S]B + [k](-A) == R.
  Point sb = point_scalarmult_base(s_bytes);
  Point ka = point_scalarmult(point_neg(a), k);
  Point check = point_add(sb, ka);
  std::uint8_t check_bytes[32];
  point_encode(check_bytes, check);
  return std::memcmp(check_bytes, r_bytes, 32) == 0;
}

}  // namespace dnsboot::crypto
