// Ed25519 (RFC 8032) — DNSSEC signature algorithm 15 (RFC 8080).
//
// Self-contained implementation: radix-2^51 field arithmetic over
// GF(2^255-19), extended-coordinate Edwards point arithmetic, and TweetNaCl-
// style scalar reduction mod the group order L. Validated against the RFC
// 8032 test vectors in tests/crypto_test.cpp.
//
// NOTE: This implementation is *not* constant-time. dnsboot signs synthetic
// zones inside a simulator; it never holds keys that protect real data. The
// variable-time scalar multiplication is considerably simpler and faster to
// audit, which is the right trade-off here.
#pragma once

#include <array>
#include <cstdint>

#include "base/bytes.hpp"

namespace dnsboot::crypto {

inline constexpr std::size_t kEd25519SeedSize = 32;
inline constexpr std::size_t kEd25519PublicKeySize = 32;
inline constexpr std::size_t kEd25519SignatureSize = 64;

using Ed25519Seed = std::array<std::uint8_t, kEd25519SeedSize>;
using Ed25519PublicKey = std::array<std::uint8_t, kEd25519PublicKeySize>;
using Ed25519Signature = std::array<std::uint8_t, kEd25519SignatureSize>;

// Derive the public key for a 32-byte seed (RFC 8032 §5.1.5).
Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed);

// Sign a message (RFC 8032 §5.1.6).
Ed25519Signature ed25519_sign(const Ed25519Seed& seed, BytesView message);

// Sign with a pre-derived public key, skipping one base-point multiplication.
// `public_key` must equal ed25519_public_key(seed); bulk signers (the zone
// generator) hold keys long-term and use this path.
Ed25519Signature ed25519_sign(const Ed25519Seed& seed,
                              const Ed25519PublicKey& public_key,
                              BytesView message);

// Verify a signature (RFC 8032 §5.1.7). Returns false for malformed points,
// out-of-range scalars, and signature mismatches alike.
bool ed25519_verify(const Ed25519PublicKey& public_key, BytesView message,
                    const Ed25519Signature& signature);

}  // namespace dnsboot::crypto
