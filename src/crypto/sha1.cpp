#include "crypto/sha1.hpp"

#include <cstring>

namespace dnsboot::crypto {
namespace {

std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

Sha1::Sha1() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  state_[4] = 0xc3d2e1f0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(BytesView data) {
  length_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t i = 0;
  if (buffered_ > 0) {
    while (buffered_ < 64 && i < data.size()) buffer_[buffered_++] = data[i++];
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (i + 64 <= data.size()) {
    process_block(data.data() + i);
    i += 64;
  }
  while (i < data.size()) buffer_[buffered_++] = data[i++];
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::finish() {
  std::uint64_t bits = length_bits_;
  std::uint8_t pad[72];
  std::size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  update(BytesView(pad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  update(BytesView(len_bytes, 8));
  std::array<std::uint8_t, kDigestSize> out;
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::digest(BytesView data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

}  // namespace dnsboot::crypto
