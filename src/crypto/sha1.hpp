// SHA-1 (FIPS 180-1) — required only for NSEC3 owner-name hashing (RFC 5155
// mandates SHA-1 as hash algorithm 1). Not used for any signature or DS
// digest in dnsboot.
#pragma once

#include <array>
#include <cstdint>

#include "base/bytes.hpp"

namespace dnsboot::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;

  Sha1();
  void update(BytesView data);
  std::array<std::uint8_t, kDigestSize> finish();

  static std::array<std::uint8_t, kDigestSize> digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[5];
  std::uint64_t length_bits_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

}  // namespace dnsboot::crypto
