// PolicyClock — the KASP world motion: every participating zone's keys evolve
// through the RFC 7583 states (generated → published → ready → active →
// retired → removed) on the schedule its (seed, zone)-jittered KeyPolicy
// dictates, instead of LifecycleDriver's coarse participate/break/delete
// draws.
//
// Scenario space per participating zone (drawn once from the per-zone fork):
//   - bootstrap only (RFC 9615 → RFC 7344 DS install), then steady state
//   - clean ZSK pre-publication rollover (RFC 6781 §4.1.1.1)
//   - clean KSK double-DS rollover (RFC 6781 §4.1.2)
//   - clean algorithm rollover, modeled as a double-signature roll of both
//     keys (this build signs Ed25519 only, so "new algorithm" is a fresh key
//     pair that co-signs until the old pair retires)
//   - botched: premature DS swap (bogus until repaired), stale RRSIGs by a
//     retired ZSK (bogus until re-signed), CDS advertising an unpublished
//     key (secure; lint L109), foreign-algorithm DNSKEY that signs nothing
//     (secure; lint L110)
//   - unsigning via the RFC 8078 delete sentinel
//
// Like LifecycleDriver, the whole schedule is a pure function of
// (seed, population): a restarted monitor rebuilds the identical step list
// and advance() replays it, which the crash-recovery determinism gate
// (DESIGN.md §15) requires.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "ecosystem/builder.hpp"
#include "kasp/materialize.hpp"
#include "kasp/policy.hpp"
#include "longitudinal/world_motion.hpp"
#include "registry/cds_processor.hpp"

namespace dnsboot::kasp {

struct KaspOptions {
  std::uint64_t seed = 1;
  net::SimTime start = net::SimTime{3600} * net::kSecond;
  net::SimTime horizon = net::SimTime{30} * 86400 * net::kSecond;
  // Fraction of eligible (clean, unsigned, registry-covered) zones that
  // bootstrap and come under KASP management during the window.
  double participate_fraction = 0.7;
  // Post-bootstrap scenario weights (cumulative ladder; remainder stays in
  // steady state).
  double zsk_roll_fraction = 0.30;
  double ksk_roll_fraction = 0.18;
  double algorithm_roll_fraction = 0.06;
  double premature_ds_fraction = 0.07;
  double stale_rrsig_fraction = 0.07;
  double cds_stray_fraction = 0.05;
  double algorithm_broken_fraction = 0.05;
  double unsign_fraction = 0.10;
  // CDS publication -> registry DS install latency (bootstrap phase).
  net::SimTime ds_latency = net::SimTime{6} * 3600 * net::kSecond;
  // How long a botched state persists before the operator repairs it.
  net::SimTime repair_delay = net::SimTime{18} * 3600 * net::kSecond;
  // Base policy; each zone gets a deterministic jittered copy.
  KeyPolicy base_policy;
};

struct KaspStep {
  enum class Kind : std::uint8_t {
    kBootstrapSign,  // sign + publish CDS (RFC 9615 day one)
    kBootstrapDs,    // registry installs the DS
    // Clean ZSK pre-publication roll.
    kZskPublish,   // successor ZSK into the DNSKEY RRset (not signing)
    kZskActivate,  // successor signs; predecessor lingers published
    kZskRemove,    // predecessor leaves the RRset
    // Clean KSK double-DS roll.
    kKskPublish,   // successor KSK published + co-signing DNSKEY
    kKskSubmitDs,  // CDS {old,new} -> registry DS {old,new}
    kKskActivate,  // successor signs DNSKEY; CDS -> {new}
    kKskRemove,    // predecessor retired; DS -> {new}
    // Clean algorithm roll (double-signature of both keys).
    kAlgPublish,   // new pair published, co-signing everything
    kAlgSubmitDs,  // DS {old,new}
    kAlgActivate,  // new pair takes over; old pair co-signs out its Iret
    kAlgRemove,    // old pair + old DS gone
    // Botched states and their repairs.
    kBreakPrematureDs,   // DS swapped to an unpublished successor (bogus)
    kRepairPrematureDs,  // successor finally published; chain heals
    kBreakStaleRrsig,    // retired ZSK's RRSIGs kept in service (bogus)
    kRepairStaleRrsig,   // re-sign with the live set; chain heals
    kPublishStrayCds,    // CDS announces an unpublished key (L109)
    kClearStrayCds,      // CDS back to the live KSK
    kPublishForeignKey,  // foreign-algorithm DNSKEY, signs nothing (L110)
    kDropForeignKey,     // foreign key withdrawn
    // Delete-sentinel unsigning.
    kPublishDelete,  // CDS/CDNSKEY replaced by the RFC 8078 sentinel
    kRemoveDs,       // registry withdraws the DS
  };
  net::SimTime at = 0;
  Kind kind = Kind::kBootstrapSign;
  dns::Name zone;
};

std::string to_string(KaspStep::Kind kind);

class PolicyClock : public longitudinal::WorldMotion {
 public:
  PolicyClock(net::SimNetwork& network, resolver::QueryEngine& engine,
              resolver::DelegationResolver& resolver,
              ecosystem::Ecosystem& eco, KaspOptions options);

  // The full scripted schedule, in deterministic construction order.
  const std::vector<KaspStep>& steps() const { return steps_; }

  std::string_view motion_name() const override { return "kasp"; }
  std::size_t planned_steps() const override { return steps_.size(); }
  std::vector<net::SimTime> step_times() const override;
  void advance(net::SimTime now) override;

  std::uint64_t applied() const override { return applied_; }
  std::uint64_t failed() const override { return failed_; }

 private:
  // Live key material for one managed zone.
  struct ZoneRollState {
    dnssec::ZoneKeys keys;
    std::optional<crypto::KeyPair> successor_ksk;
    std::optional<crypto::KeyPair> successor_zsk;
    std::optional<crypto::KeyPair> retired_zsk;
    std::uint32_t generation = 0;
  };

  void apply(const KaspStep& step);
  ZoneRollState& state_for(const std::string& canonical);
  crypto::KeyPair next_key(const std::string& canonical, ZoneRollState& state,
                           std::uint16_t flags);
  std::shared_ptr<dns::Zone> mutable_zone(const dns::Name& zone);
  Result<registry::CdsProcessor*> processor_for(const dns::Name& tld);
  // Replace the CDS/CDNSKEY sets with the child-sync records of `ksks`.
  void publish_child_sync(dns::Zone& zone, const dns::Name& zone_name,
                          const std::vector<const crypto::KeyPair*>& ksks);
  bool install_ds(const dns::Name& zone_name,
                  const std::vector<const crypto::KeyPair*>& ksks);
  bool resign(dns::Zone& zone, const ZoneRollState& state);

  net::SimNetwork& network_;
  resolver::QueryEngine& engine_;
  resolver::DelegationResolver& resolver_;
  ecosystem::Ecosystem& eco_;
  KaspOptions options_;
  Rng rng_;
  dnssec::SigningPolicy policy_;

  std::vector<KaspStep> steps_;
  std::vector<std::size_t> fire_order_;
  std::size_t next_fire_ = 0;

  std::map<std::string, std::shared_ptr<server::AuthServer>> zone_server_;
  std::map<std::string, ZoneRollState> states_;
  std::map<std::string, std::unique_ptr<registry::CdsProcessor>> processors_;
  std::uint64_t applied_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace dnsboot::kasp
