#include "kasp/materialize.hpp"

namespace dnsboot::kasp {

std::string_view to_string(RolloverScenario scenario) {
  switch (scenario) {
    case RolloverScenario::kNone:
      return "none";
    case RolloverScenario::kMidZskPrepublish:
      return "mid_zsk_prepublish";
    case RolloverScenario::kMidKskDoubleDs:
      return "mid_ksk_double_ds";
    case RolloverScenario::kPrematureDs:
      return "premature_ds";
    case RolloverScenario::kStaleRrsig:
      return "stale_rrsig";
    case RolloverScenario::kCdsUnpublishedKey:
      return "cds_unpublished_key";
    case RolloverScenario::kAlgorithmBroken:
      return "algorithm_broken";
    case RolloverScenario::kCount:
      break;
  }
  return "unknown";
}

bool scenario_breaks_chain(RolloverScenario scenario) {
  return scenario == RolloverScenario::kPrematureDs ||
         scenario == RolloverScenario::kStaleRrsig;
}

namespace {

// The deSEC-style CDS/CDNSKEY publication for one KSK, appended to `out`.
Status append_child_sync(const dns::Name& zone, const crypto::KeyPair& ksk,
                         RolloverMaterial& out) {
  DNSBOOT_TRY(sync, dnssec::make_child_sync_records(zone, ksk));
  for (auto& cds : sync.cds) out.cds.push_back(std::move(cds));
  for (auto& key : sync.cdnskey) out.cdnskey.push_back(std::move(key));
  return Status::ok_status();
}

Result<dns::DsRdata> ds_of(const dns::Name& zone, const crypto::KeyPair& ksk) {
  return dnssec::make_ds(zone, dnssec::make_dnskey(ksk), 2);
}

}  // namespace

dns::DnskeyRdata foreign_algorithm_dnskey(Rng& rng) {
  dns::DnskeyRdata rd;
  rd.flags = crypto::kZskFlags;
  rd.protocol = 3;
  rd.algorithm =
      static_cast<std::uint8_t>(crypto::DnssecAlgorithm::kEcdsaP256Sha256);
  rd.public_key = rng.bytes(64);
  return rd;
}

Result<RolloverMaterial> materialize_rollover(RolloverScenario scenario,
                                              const dns::Name& zone,
                                              Rng& rng) {
  RolloverMaterial out{dnssec::ZoneKeys::generate(rng), {}, {}, {}, {}};
  switch (scenario) {
    case RolloverScenario::kNone:
    case RolloverScenario::kCount:
      break;

    case RolloverScenario::kMidZskPrepublish: {
      // Successor ZSK published (waiting out Ipub) but not yet signing.
      out.keys.extra_zsks.push_back(
          crypto::KeyPair::generate(rng, crypto::kZskFlags));
      break;
    }

    case RolloverScenario::kMidKskDoubleDs: {
      // Both KSKs published and signing the DNSKEY RRset; both DS installed;
      // CDS announces the pair (the moment between DS submit and activate).
      crypto::KeyPair successor =
          crypto::KeyPair::generate(rng, crypto::kKskFlags);
      DNSBOOT_TRY(old_ds, ds_of(zone, out.keys.ksk));
      DNSBOOT_TRY(new_ds, ds_of(zone, successor));
      out.parent_ds.push_back(std::move(old_ds));
      out.parent_ds.push_back(std::move(new_ds));
      DNSBOOT_CHECK(append_child_sync(zone, out.keys.ksk, out));
      DNSBOOT_CHECK(append_child_sync(zone, successor, out));
      out.keys.extra_ksks.push_back(std::move(successor));
      break;
    }

    case RolloverScenario::kPrematureDs: {
      // The registry swapped the DS to the successor before the successor
      // DNSKEY was published: the chain is bogus (L107 territory).
      crypto::KeyPair successor =
          crypto::KeyPair::generate(rng, crypto::kKskFlags);
      DNSBOOT_TRY(new_ds, ds_of(zone, successor));
      out.parent_ds.push_back(std::move(new_ds));
      DNSBOOT_CHECK(append_child_sync(zone, out.keys.ksk, out));
      DNSBOOT_CHECK(append_child_sync(zone, successor, out));
      break;
    }

    case RolloverScenario::kStaleRrsig: {
      // The predecessor ZSK was pulled from the RRset before its RRSIGs were
      // replaced: data signatures by a retired key (L108 territory).
      out.stale_zsk = crypto::KeyPair::generate(rng, crypto::kZskFlags);
      break;
    }

    case RolloverScenario::kCdsUnpublishedKey: {
      // CDS announces the successor ahead of its DNSKEY publication. The
      // chain stays secure via the current key (L109 territory).
      crypto::KeyPair successor =
          crypto::KeyPair::generate(rng, crypto::kKskFlags);
      DNSBOOT_CHECK(append_child_sync(zone, out.keys.ksk, out));
      DNSBOOT_CHECK(append_child_sync(zone, successor, out));
      break;
    }

    case RolloverScenario::kAlgorithmBroken: {
      // A new-algorithm DNSKEY is published but nothing is signed with it:
      // the algorithm-rollover ordering violation (L110 territory). The
      // zone still validates via the Ed25519 chain (RFC 6840 §5.11 lenient
      // rule), so only lint sees it.
      out.keys.extra_dnskeys.push_back(foreign_algorithm_dnskey(rng));
      break;
    }
  }
  return out;
}

Status apply_stale_rrsigs(dns::Zone& zone, const crypto::KeyPair& retired,
                          const dnssec::SigningPolicy& policy) {
  for (const dns::RRset& set : zone.all_rrsets()) {
    if (set.type == dns::RRType::kDNSKEY) continue;
    if (zone.signatures_covering(set.name, set.type).empty()) continue;
    zone.remove_signatures(set.name, set.type);
    DNSBOOT_CHECK(
        zone.add(dnssec::sign_rrset(set, retired, zone.origin(), policy)));
  }
  return Status::ok_status();
}

}  // namespace dnsboot::kasp
