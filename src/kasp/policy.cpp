#include "kasp/policy.hpp"

namespace dnsboot::kasp {

Seconds zsk_ipub(const KeyPolicy& policy) {
  return policy.zone_propagation + policy.dnskey_ttl;
}

Seconds zsk_iret(const KeyPolicy& policy) {
  // Dsgn (the re-sign sweep) is zero in this simulation: sign_zone rewrites
  // every RRSIG atomically, so Iret reduces to propagation + TTLsig, with
  // TTLsig bounded by the max zone TTL (RFC 7583 §2.3).
  return policy.zone_propagation + policy.max_zone_ttl;
}

Seconds ksk_dreg_ds(const KeyPolicy& policy) {
  return policy.registrar_delay + policy.parent_propagation + policy.ds_ttl;
}

Seconds ksk_iret(const KeyPolicy& policy) {
  return policy.parent_propagation + policy.ds_ttl;
}

ZskTiming zsk_timing(const KeyPolicy& policy) {
  ZskTiming t;
  t.publish_before = zsk_ipub(policy) + policy.publish_safety;
  t.retire_after = zsk_iret(policy) + policy.retire_safety;
  t.remove_after = t.retire_after;
  return t;
}

KskTiming ksk_timing(const KeyPolicy& policy) {
  KskTiming t;
  // The successor DNSKEY must be visible (Ipub) before its DS may be
  // submitted, and the new DS must be active everywhere (DregDS) before the
  // old key may stop signing.
  t.ds_submit_before = ksk_dreg_ds(policy) + policy.publish_safety;
  t.publish_before =
      t.ds_submit_before + zsk_ipub(policy) + policy.publish_safety;
  t.retire_after = ksk_iret(policy) + policy.retire_safety;
  return t;
}

namespace {

// value scaled into [value*(1-spread), value*(1+spread)], never zero.
Seconds jitter(Seconds value, double spread, Rng& rng) {
  if (value == 0) return 0;
  const double factor = 1.0 + spread * (2.0 * rng.next_double() - 1.0);
  auto out = static_cast<Seconds>(static_cast<double>(value) * factor);
  return out == 0 ? 1 : out;
}

}  // namespace

KeyPolicy jitter_policy(const KeyPolicy& base, Rng& rng) {
  KeyPolicy p = base;
  p.zsk_lifetime = jitter(base.zsk_lifetime, 0.25, rng);
  p.ksk_lifetime = jitter(base.ksk_lifetime, 0.25, rng);
  p.zone_propagation = jitter(base.zone_propagation, 0.5, rng);
  p.parent_propagation = jitter(base.parent_propagation, 0.5, rng);
  p.registrar_delay = jitter(base.registrar_delay, 0.5, rng);
  return p;
}

}  // namespace dnsboot::kasp
