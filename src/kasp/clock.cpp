#include "kasp/clock.hpp"

#include <algorithm>

namespace dnsboot::kasp {

std::string to_string(KaspStep::Kind kind) {
  switch (kind) {
    case KaspStep::Kind::kBootstrapSign:
      return "bootstrap_sign";
    case KaspStep::Kind::kBootstrapDs:
      return "bootstrap_ds";
    case KaspStep::Kind::kZskPublish:
      return "zsk_publish";
    case KaspStep::Kind::kZskActivate:
      return "zsk_activate";
    case KaspStep::Kind::kZskRemove:
      return "zsk_remove";
    case KaspStep::Kind::kKskPublish:
      return "ksk_publish";
    case KaspStep::Kind::kKskSubmitDs:
      return "ksk_submit_ds";
    case KaspStep::Kind::kKskActivate:
      return "ksk_activate";
    case KaspStep::Kind::kKskRemove:
      return "ksk_remove";
    case KaspStep::Kind::kAlgPublish:
      return "alg_publish";
    case KaspStep::Kind::kAlgSubmitDs:
      return "alg_submit_ds";
    case KaspStep::Kind::kAlgActivate:
      return "alg_activate";
    case KaspStep::Kind::kAlgRemove:
      return "alg_remove";
    case KaspStep::Kind::kBreakPrematureDs:
      return "break_premature_ds";
    case KaspStep::Kind::kRepairPrematureDs:
      return "repair_premature_ds";
    case KaspStep::Kind::kBreakStaleRrsig:
      return "break_stale_rrsig";
    case KaspStep::Kind::kRepairStaleRrsig:
      return "repair_stale_rrsig";
    case KaspStep::Kind::kPublishStrayCds:
      return "publish_stray_cds";
    case KaspStep::Kind::kClearStrayCds:
      return "clear_stray_cds";
    case KaspStep::Kind::kPublishForeignKey:
      return "publish_foreign_key";
    case KaspStep::Kind::kDropForeignKey:
      return "drop_foreign_key";
    case KaspStep::Kind::kPublishDelete:
      return "publish_delete";
    case KaspStep::Kind::kRemoveDs:
      return "remove_ds";
  }
  return "unknown";
}

PolicyClock::PolicyClock(net::SimNetwork& network,
                         resolver::QueryEngine& engine,
                         resolver::DelegationResolver& resolver,
                         ecosystem::Ecosystem& eco, KaspOptions options)
    : network_(network),
      engine_(engine),
      resolver_(resolver),
      eco_(eco),
      options_(options),
      rng_(options.seed) {
  policy_.inception = eco_.now - 3600;
  policy_.expiration = eco_.now + 90 * 86400;

  for (const auto& server : eco_.servers) {
    for (const auto& [origin, zone] : server->zones()) {
      zone_server_.emplace(origin, server);
    }
  }

  // Script the schedule: same eligibility as LifecycleDriver (clean unsigned
  // zones a registry covers), every draw from the per-zone fork.
  const net::SimTime start = options_.start;
  if (options_.horizon <= start + 2 * options_.ds_latency) return;
  const net::SimTime pub_span = (options_.horizon - start) * 2 / 5;
  const net::SimTime settle = net::SimTime{3600} * net::kSecond;

  for (const auto& [canonical, truth] : eco_.truth) {
    if (truth.state != ecosystem::ZoneState::kUnsigned || truth.cds ||
        truth.signal || truth.legacy_servers) {
      continue;
    }
    auto zone_name = dns::Name::from_text(canonical);
    if (!zone_name.ok()) continue;
    const dns::Name zone = std::move(zone_name).take();
    const std::string tld_text = zone.parent().canonical_text();
    if (eco_.registries.find(tld_text) == eco_.registries.end()) continue;
    if (zone_server_.find(canonical) == zone_server_.end()) continue;

    Rng zrng = rng_.fork("kasp:" + canonical);
    if (!zrng.chance(options_.participate_fraction)) continue;

    const KeyPolicy pol = jitter_policy(options_.base_policy, zrng);
    const net::SimTime t_pub =
        start + (pub_span > 0 ? zrng.next_below(pub_span) : 0);
    const net::SimTime t_ds = t_pub + options_.ds_latency +
                              zrng.next_below(options_.ds_latency + 1);
    steps_.push_back({t_pub, KaspStep::Kind::kBootstrapSign, zone});
    steps_.push_back({t_ds, KaspStep::Kind::kBootstrapDs, zone});

    // The activation instant R for the zone's one post-bootstrap scenario:
    // uniformly placed so that every pre-step (R - lead) lands after the DS
    // settles and every post-step (R + tail) lands before the horizon. Zones
    // whose window cannot fit the scenario stay in steady state — a KASP
    // clock never schedules a rollover it cannot complete.
    auto place = [&](net::SimTime lead,
                     net::SimTime tail) -> std::optional<net::SimTime> {
      const net::SimTime earliest = t_ds + settle + lead;
      if (options_.horizon <= earliest + tail) return std::nullopt;
      const net::SimTime span = options_.horizon - tail - earliest;
      return earliest + zrng.next_below(span);
    };

    const double draw = zrng.next_double();
    double lo = 0.0;
    auto in_band = [&](double fraction) {
      const bool hit = draw >= lo && draw < lo + fraction;
      lo += fraction;
      return hit;
    };

    if (in_band(options_.zsk_roll_fraction)) {
      const ZskTiming zt = zsk_timing(pol);
      const net::SimTime lead = zt.publish_before * net::kSecond;
      const net::SimTime tail = zt.remove_after * net::kSecond;
      if (auto r = place(lead, tail)) {
        steps_.push_back({*r - lead, KaspStep::Kind::kZskPublish, zone});
        steps_.push_back({*r, KaspStep::Kind::kZskActivate, zone});
        steps_.push_back({*r + tail, KaspStep::Kind::kZskRemove, zone});
      }
    } else if (in_band(options_.ksk_roll_fraction)) {
      const KskTiming kt = ksk_timing(pol);
      const net::SimTime lead = kt.publish_before * net::kSecond;
      const net::SimTime submit = kt.ds_submit_before * net::kSecond;
      const net::SimTime tail = kt.retire_after * net::kSecond;
      if (auto r = place(lead, tail)) {
        steps_.push_back({*r - lead, KaspStep::Kind::kKskPublish, zone});
        steps_.push_back({*r - submit, KaspStep::Kind::kKskSubmitDs, zone});
        steps_.push_back({*r, KaspStep::Kind::kKskActivate, zone});
        steps_.push_back({*r + tail, KaspStep::Kind::kKskRemove, zone});
      }
    } else if (in_band(options_.algorithm_roll_fraction)) {
      const KskTiming kt = ksk_timing(pol);
      const net::SimTime lead = kt.publish_before * net::kSecond;
      const net::SimTime submit = kt.ds_submit_before * net::kSecond;
      const net::SimTime tail = kt.retire_after * net::kSecond;
      if (auto r = place(lead, tail)) {
        steps_.push_back({*r - lead, KaspStep::Kind::kAlgPublish, zone});
        steps_.push_back({*r - submit, KaspStep::Kind::kAlgSubmitDs, zone});
        steps_.push_back({*r, KaspStep::Kind::kAlgActivate, zone});
        steps_.push_back({*r + tail, KaspStep::Kind::kAlgRemove, zone});
      }
    } else if (in_band(options_.premature_ds_fraction)) {
      if (auto r = place(0, options_.repair_delay)) {
        steps_.push_back({*r, KaspStep::Kind::kBreakPrematureDs, zone});
        steps_.push_back({*r + options_.repair_delay,
                          KaspStep::Kind::kRepairPrematureDs, zone});
      }
    } else if (in_band(options_.stale_rrsig_fraction)) {
      if (auto r = place(0, options_.repair_delay)) {
        steps_.push_back({*r, KaspStep::Kind::kBreakStaleRrsig, zone});
        steps_.push_back({*r + options_.repair_delay,
                          KaspStep::Kind::kRepairStaleRrsig, zone});
      }
    } else if (in_band(options_.cds_stray_fraction)) {
      if (auto r = place(0, options_.repair_delay)) {
        steps_.push_back({*r, KaspStep::Kind::kPublishStrayCds, zone});
        steps_.push_back({*r + options_.repair_delay,
                          KaspStep::Kind::kClearStrayCds, zone});
      }
    } else if (in_band(options_.algorithm_broken_fraction)) {
      if (auto r = place(0, options_.repair_delay)) {
        steps_.push_back({*r, KaspStep::Kind::kPublishForeignKey, zone});
        steps_.push_back({*r + options_.repair_delay,
                          KaspStep::Kind::kDropForeignKey, zone});
      }
    } else if (in_band(options_.unsign_fraction)) {
      if (auto r = place(0, options_.ds_latency)) {
        steps_.push_back({*r, KaspStep::Kind::kPublishDelete, zone});
        steps_.push_back(
            {*r + options_.ds_latency, KaspStep::Kind::kRemoveDs, zone});
      }
    }
  }

  fire_order_.resize(steps_.size());
  for (std::size_t i = 0; i < fire_order_.size(); ++i) fire_order_[i] = i;
  std::stable_sort(fire_order_.begin(), fire_order_.end(),
                   [this](std::size_t a, std::size_t b) {
                     return steps_[a].at < steps_[b].at;
                   });
}

std::vector<net::SimTime> PolicyClock::step_times() const {
  std::vector<net::SimTime> times;
  times.reserve(fire_order_.size());
  for (std::size_t index : fire_order_) {
    if (times.empty() || times.back() != steps_[index].at) {
      times.push_back(steps_[index].at);
    }
  }
  return times;
}

void PolicyClock::advance(net::SimTime now) {
  while (next_fire_ < fire_order_.size() &&
         steps_[fire_order_[next_fire_]].at <= now) {
    apply(steps_[fire_order_[next_fire_]]);
    ++next_fire_;
  }
}

PolicyClock::ZoneRollState& PolicyClock::state_for(
    const std::string& canonical) {
  auto it = states_.find(canonical);
  if (it == states_.end()) {
    Rng kr = rng_.fork("kasp-keys:" + canonical + ":0");
    it = states_
             .emplace(canonical, ZoneRollState{dnssec::ZoneKeys::generate(kr),
                                               std::nullopt, std::nullopt,
                                               std::nullopt, 0})
             .first;
  }
  return it->second;
}

crypto::KeyPair PolicyClock::next_key(const std::string& canonical,
                                      ZoneRollState& state,
                                      std::uint16_t flags) {
  Rng kr = rng_.fork("kasp-keys:" + canonical + ":" +
                     std::to_string(++state.generation));
  return crypto::KeyPair::generate(kr, flags);
}

std::shared_ptr<dns::Zone> PolicyClock::mutable_zone(const dns::Name& zone) {
  auto it = zone_server_.find(zone.canonical_text());
  if (it == zone_server_.end()) return nullptr;
  auto zone_const = it->second->zone_for(zone);
  if (zone_const == nullptr) return nullptr;
  return std::const_pointer_cast<dns::Zone>(
      std::shared_ptr<const dns::Zone>(zone_const));
}

Result<registry::CdsProcessor*> PolicyClock::processor_for(
    const dns::Name& tld) {
  const std::string& text = tld.canonical_text();
  auto it = processors_.find(text);
  if (it != processors_.end()) return it->second.get();
  auto handle = eco_.registries.find(text);
  if (handle == eco_.registries.end()) {
    return Error{"kasp.registry", "no registry handle for " + text};
  }
  registry::RegistryConfig config;
  config.tld = tld;
  config.now = eco_.now;
  auto processor = std::make_unique<registry::CdsProcessor>(
      network_, engine_, resolver_, handle->second, config);
  registry::CdsProcessor* raw = processor.get();
  processors_.emplace(text, std::move(processor));
  return raw;
}

void PolicyClock::publish_child_sync(
    dns::Zone& zone, const dns::Name& zone_name,
    const std::vector<const crypto::KeyPair*>& ksks) {
  zone.remove_rrset(zone_name, dns::RRType::kCDS);
  zone.remove_rrset(zone_name, dns::RRType::kCDNSKEY);
  for (const crypto::KeyPair* ksk : ksks) {
    auto sync = dnssec::make_child_sync_records(zone_name, *ksk);
    if (!sync.ok()) continue;
    for (const auto& cds : sync->cds) {
      (void)zone.add(dns::ResourceRecord{zone_name, dns::RRType::kCDS,
                                         dns::RRClass::kIN, 300,
                                         dns::Rdata{cds}});
    }
    for (const auto& key : sync->cdnskey) {
      (void)zone.add(dns::ResourceRecord{zone_name, dns::RRType::kCDNSKEY,
                                         dns::RRClass::kIN, 300,
                                         dns::Rdata{key}});
    }
  }
}

bool PolicyClock::install_ds(const dns::Name& zone_name,
                             const std::vector<const crypto::KeyPair*>& ksks) {
  auto processor = processor_for(zone_name.parent());
  if (!processor.ok()) return false;
  std::vector<dns::DsRdata> ds_set;
  for (const crypto::KeyPair* ksk : ksks) {
    auto ds = dnssec::make_ds(zone_name, dnssec::make_dnskey(*ksk), 2);
    if (!ds.ok()) return false;
    ds_set.push_back(std::move(ds).take());
  }
  return (*processor)->install_ds(zone_name, ds_set).ok();
}

bool PolicyClock::resign(dns::Zone& zone, const ZoneRollState& state) {
  return dnssec::sign_zone(zone, state.keys, policy_).ok();
}

void PolicyClock::apply(const KaspStep& step) {
  const std::string& canonical = step.zone.canonical_text();
  std::shared_ptr<dns::Zone> zone = mutable_zone(step.zone);
  if (zone == nullptr) {
    ++failed_;
    return;
  }
  ZoneRollState& state = state_for(canonical);
  bool ok = true;

  switch (step.kind) {
    case KaspStep::Kind::kBootstrapSign: {
      publish_child_sync(*zone, step.zone, {&state.keys.ksk});
      ok = resign(*zone, state);
      break;
    }
    case KaspStep::Kind::kBootstrapDs: {
      ok = install_ds(step.zone, {&state.keys.ksk});
      break;
    }

    case KaspStep::Kind::kZskPublish: {
      state.successor_zsk = next_key(canonical, state, crypto::kZskFlags);
      state.keys.extra_zsks = {*state.successor_zsk};
      ok = resign(*zone, state);
      break;
    }
    case KaspStep::Kind::kZskActivate: {
      if (!state.successor_zsk.has_value()) {
        ok = false;
        break;
      }
      crypto::KeyPair retired = state.keys.zsk;
      state.keys.zsk = *state.successor_zsk;
      state.successor_zsk.reset();
      // The predecessor lingers published for Iret (its RRSIGs may still be
      // cached even though this simulation re-signs atomically).
      state.keys.extra_zsks = {retired};
      ok = resign(*zone, state);
      break;
    }
    case KaspStep::Kind::kZskRemove: {
      state.keys.extra_zsks.clear();
      ok = resign(*zone, state);
      break;
    }

    case KaspStep::Kind::kKskPublish: {
      state.successor_ksk = next_key(canonical, state, crypto::kKskFlags);
      state.keys.extra_ksks = {*state.successor_ksk};
      ok = resign(*zone, state);
      break;
    }
    case KaspStep::Kind::kKskSubmitDs: {
      if (!state.successor_ksk.has_value()) {
        ok = false;
        break;
      }
      publish_child_sync(*zone, step.zone,
                         {&state.keys.ksk, &*state.successor_ksk});
      ok = resign(*zone, state);
      ok = install_ds(step.zone, {&state.keys.ksk, &*state.successor_ksk}) &&
           ok;
      break;
    }
    case KaspStep::Kind::kKskActivate: {
      if (!state.successor_ksk.has_value()) {
        ok = false;
        break;
      }
      crypto::KeyPair retired = state.keys.ksk;
      state.keys.ksk = *state.successor_ksk;
      state.successor_ksk.reset();
      state.keys.extra_ksks = {retired};
      publish_child_sync(*zone, step.zone, {&state.keys.ksk});
      ok = resign(*zone, state);
      break;
    }
    case KaspStep::Kind::kKskRemove: {
      state.keys.extra_ksks.clear();
      ok = resign(*zone, state);
      ok = install_ds(step.zone, {&state.keys.ksk}) && ok;
      break;
    }

    case KaspStep::Kind::kAlgPublish: {
      state.successor_ksk = next_key(canonical, state, crypto::kKskFlags);
      state.successor_zsk = next_key(canonical, state, crypto::kZskFlags);
      state.keys.extra_ksks = {*state.successor_ksk};
      state.keys.co_zsks = {*state.successor_zsk};
      publish_child_sync(*zone, step.zone,
                         {&state.keys.ksk, &*state.successor_ksk});
      ok = resign(*zone, state);
      break;
    }
    case KaspStep::Kind::kAlgSubmitDs: {
      if (!state.successor_ksk.has_value()) {
        ok = false;
        break;
      }
      ok = install_ds(step.zone, {&state.keys.ksk, &*state.successor_ksk});
      break;
    }
    case KaspStep::Kind::kAlgActivate: {
      if (!state.successor_ksk.has_value() ||
          !state.successor_zsk.has_value()) {
        ok = false;
        break;
      }
      crypto::KeyPair retired_ksk = state.keys.ksk;
      crypto::KeyPair retired_zsk = state.keys.zsk;
      state.keys.ksk = *state.successor_ksk;
      state.keys.zsk = *state.successor_zsk;
      state.successor_ksk.reset();
      state.successor_zsk.reset();
      state.keys.extra_ksks = {retired_ksk};
      state.keys.co_zsks = {retired_zsk};
      publish_child_sync(*zone, step.zone, {&state.keys.ksk});
      ok = resign(*zone, state);
      break;
    }
    case KaspStep::Kind::kAlgRemove: {
      state.keys.extra_ksks.clear();
      state.keys.co_zsks.clear();
      ok = resign(*zone, state);
      ok = install_ds(step.zone, {&state.keys.ksk}) && ok;
      break;
    }

    case KaspStep::Kind::kBreakPrematureDs: {
      // The registry swapped to the successor's DS, but the successor DNSKEY
      // was never published: bogus until kRepairPrematureDs.
      state.successor_ksk = next_key(canonical, state, crypto::kKskFlags);
      publish_child_sync(*zone, step.zone,
                         {&state.keys.ksk, &*state.successor_ksk});
      ok = resign(*zone, state);
      ok = install_ds(step.zone, {&*state.successor_ksk}) && ok;
      break;
    }
    case KaspStep::Kind::kRepairPrematureDs: {
      if (!state.successor_ksk.has_value()) {
        ok = false;
        break;
      }
      crypto::KeyPair retired = state.keys.ksk;
      state.keys.ksk = *state.successor_ksk;
      state.successor_ksk.reset();
      state.keys.extra_ksks = {retired};
      publish_child_sync(*zone, step.zone, {&state.keys.ksk});
      ok = resign(*zone, state);
      break;
    }

    case KaspStep::Kind::kBreakStaleRrsig: {
      state.retired_zsk = state.keys.zsk;
      state.keys.zsk = next_key(canonical, state, crypto::kZskFlags);
      ok = resign(*zone, state);
      ok = apply_stale_rrsigs(*zone, *state.retired_zsk, policy_).ok() && ok;
      break;
    }
    case KaspStep::Kind::kRepairStaleRrsig: {
      state.retired_zsk.reset();
      ok = resign(*zone, state);
      break;
    }

    case KaspStep::Kind::kPublishStrayCds: {
      crypto::KeyPair stray = next_key(canonical, state, crypto::kKskFlags);
      publish_child_sync(*zone, step.zone, {&state.keys.ksk, &stray});
      ok = resign(*zone, state);
      break;
    }
    case KaspStep::Kind::kClearStrayCds: {
      publish_child_sync(*zone, step.zone, {&state.keys.ksk});
      ok = resign(*zone, state);
      break;
    }

    case KaspStep::Kind::kPublishForeignKey: {
      Rng fr = rng_.fork("kasp-foreign:" + canonical);
      state.keys.extra_dnskeys = {foreign_algorithm_dnskey(fr)};
      ok = resign(*zone, state);
      break;
    }
    case KaspStep::Kind::kDropForeignKey: {
      state.keys.extra_dnskeys.clear();
      ok = resign(*zone, state);
      break;
    }

    case KaspStep::Kind::kPublishDelete: {
      zone->remove_rrset(step.zone, dns::RRType::kCDS);
      zone->remove_rrset(step.zone, dns::RRType::kCDNSKEY);
      (void)zone->add(dns::ResourceRecord{
          step.zone, dns::RRType::kCDS, dns::RRClass::kIN, 300,
          dns::Rdata{dnssec::cds_delete_sentinel()}});
      (void)zone->add(dns::ResourceRecord{
          step.zone, dns::RRType::kCDNSKEY, dns::RRClass::kIN, 300,
          dns::Rdata{dnssec::cdnskey_delete_sentinel()}});
      ok = resign(*zone, state);
      break;
    }
    case KaspStep::Kind::kRemoveDs: {
      auto processor = processor_for(step.zone.parent());
      ok = processor.ok() && (*processor)->remove_ds(step.zone).ok();
      break;
    }
  }

  if (!ok) ++failed_;
  ++applied_;
}

}  // namespace dnsboot::kasp
