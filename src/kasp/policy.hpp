// KASP — key-and-signing-policy timing (the BIND 9 kaspconf model, RFC 7583
// math).
//
// A KeyPolicy is the operator's declared intent: key lifetimes, TTLs, and
// propagation delays. The timing functions below turn that intent into the
// RFC 7583 rollover instants — when the successor key must be published
// before it may sign (Ipub), and how long the predecessor must linger after
// it stops signing (Iret) — for the two standard rollover methods:
//
//   ZSK  Pre-Publication (RFC 7583 §3.2.1, RFC 6781 §4.1.1.1)
//        Ipub = Dprp + TTLkey          (successor visible everywhere)
//        Iret = Dsgn + Dprp + TTLsig   (old RRSIGs out of caches)
//
//   KSK  Double-DS (RFC 7583 §3.3.2, RFC 6781 §4.1.2)
//        DregDS = Dreg + DprpP + TTLds (new DS visible everywhere)
//        Iret   = DprpP + TTLds        (old DS out of caches)
//
// Everything is integral seconds of simulated time; there is no wall clock
// anywhere in this subsystem. Policies are jittered per (seed, zone) so the
// population does not roll in lockstep, but the jitter is drawn from a
// deterministic fork — the same (seed, zone) always yields the same policy.
#pragma once

#include <cstdint>
#include <string>

#include "base/rng.hpp"

namespace dnsboot::kasp {

// Seconds of simulated time (matches net::SimTime / kSecond granularity at
// the call sites; kept as plain seconds here because RFC 7583 intervals are
// naturally second-valued).
using Seconds = std::uint64_t;

// The operator's key-and-signing policy for one zone (kaspconf's dns_kasp_t,
// trimmed to the fields this simulation exercises).
struct KeyPolicy {
  // Key lifetimes: how long a key signs before its successor takes over.
  Seconds zsk_lifetime = 90 * Seconds{86400};
  Seconds ksk_lifetime = 365 * Seconds{86400};

  // TTLs that bound cache visibility (RFC 7583's TTLkey / TTLsig / TTLds).
  Seconds dnskey_ttl = 3600;
  Seconds max_zone_ttl = 86400;  // max TTL of any RRSIG-covered data
  Seconds ds_ttl = 3600;

  // Propagation delays: zone push to all authoritatives (Dprp), parent zone
  // push (DprpP), and registrar/registry processing of a DS change (Dreg).
  Seconds zone_propagation = 300;
  Seconds parent_propagation = 3600;
  Seconds registrar_delay = 6 * Seconds{3600};

  // Safety margins added on top of the RFC minimum (kaspconf's
  // publish-safety / retire-safety knobs).
  Seconds publish_safety = 3600;
  Seconds retire_safety = 3600;
};

// RFC 7583 §3.2.1 pre-publication ZSK rollover offsets, all relative to the
// instant the successor starts signing (the "active" instant, t=0).
struct ZskTiming {
  Seconds publish_before;  // Ipub + publish-safety: successor in DNSKEY RRset
  Seconds retire_after;    // Iret + retire-safety: predecessor stops signing
                           // at t=0 but stays published until this offset
  Seconds remove_after;    // == retire_after; the predecessor leaves the
                           // RRset once old RRSIGs expired from caches
};

// RFC 7583 §3.3.2 double-DS KSK rollover offsets, relative to the instant
// the successor KSK takes over signing the DNSKEY RRset (t=0).
struct KskTiming {
  Seconds publish_before;     // successor DNSKEY published (Ipub analogue)
  Seconds ds_submit_before;   // CDS for {old,new} published; DregDS before
                              // the swap so the new DS is active everywhere
  Seconds retire_after;       // old DS + old DNSKEY may go after Iret
};

// The timing math, exposed pure so tests can golden-table it.
ZskTiming zsk_timing(const KeyPolicy& policy);
KskTiming ksk_timing(const KeyPolicy& policy);

// Ipub / Iret / DregDS primitives (for tests and documentation).
Seconds zsk_ipub(const KeyPolicy& policy);   // Dprp + TTLkey
Seconds zsk_iret(const KeyPolicy& policy);   // Dsgn=0 here: Dprp + TTLsig
Seconds ksk_dreg_ds(const KeyPolicy& policy);  // Dreg + DprpP + TTLds
Seconds ksk_iret(const KeyPolicy& policy);     // DprpP + TTLds

// Deterministic per-zone policy: the base policy with lifetimes jittered by
// +-25% and delays by +-50%, drawn from rng (callers fork per zone). The
// jitter keeps the population from rolling in lockstep while staying a pure
// function of the fork.
KeyPolicy jitter_policy(const KeyPolicy& base, Rng& rng);

}  // namespace dnsboot::kasp
