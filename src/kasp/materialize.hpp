// Rollover materialization — the key material for a zone frozen mid-scenario.
//
// Two consumers share this module so that generator, linter, and scanner all
// witness the same rollover states: `ecosystem::build_shard` materializes
// static worlds whose quota-selected zones are caught mid-rollover at scan
// time, and `kasp::PolicyClock` (plus its tests) materializes the same states
// dynamically as the policy clock advances. Every draw comes from the Rng the
// caller passes in — per-(seed, zone) forks — so a scenario is a pure
// function of its fork.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "base/rng.hpp"
#include "dnssec/signer.hpp"

namespace dnsboot::kasp {

// The rollover state a zone can be observed in. The two kMid* states are
// policy-compliant snapshots of RFC 6781 rollovers (the scanner must NOT
// classify them broken); the rest are the botched states lint rules
// L107–L110 exist for.
enum class RolloverScenario : std::uint8_t {
  kNone = 0,
  kMidZskPrepublish,   // successor ZSK published, waiting out Ipub (clean)
  kMidKskDoubleDs,     // double-DS KSK roll mid-flight: two DS, two KSK (clean)
  kPrematureDs,        // DS swapped to a DNSKEY not yet published -> bogus
  kStaleRrsig,         // retired ZSK's RRSIGs still served -> bogus
  kCdsUnpublishedKey,  // CDS advertises an unpublished key (secure, L109)
  kAlgorithmBroken,    // foreign-algorithm DNSKEY signs nothing (secure, L110)
  kCount,
};

std::string_view to_string(RolloverScenario scenario);

// True for the scenarios that leave the chain of trust bogus at probe time.
bool scenario_breaks_chain(RolloverScenario scenario);

struct RolloverMaterial {
  dnssec::ZoneKeys keys;  // sign the zone with this set
  // DS rdatas the parent installs. Empty = the default single SHA-256 DS of
  // keys.ksk (the non-rollover path).
  std::vector<dns::DsRdata> parent_ds;
  // CDS/CDNSKEY override. Empty = publish the default child-sync set for
  // keys.ksk.
  std::vector<dns::DsRdata> cds;
  std::vector<dns::DnskeyRdata> cdnskey;
  // Stale-RRSIG surgery: when set, call apply_stale_rrsigs() with this
  // retired key after sign_zone (its RRSIGs replace the live ones while the
  // key itself is absent from the DNSKEY RRset).
  std::optional<crypto::KeyPair> stale_zsk;
};

Result<RolloverMaterial> materialize_rollover(RolloverScenario scenario,
                                              const dns::Name& zone,
                                              Rng& rng);

// Replace every data RRSIG (everything but the DNSKEY RRset's) with a
// signature by `retired`, which is not in the DNSKEY RRset: the stale-RRSIG
// pathology. The DNSKEY RRset and its KSK signature stay intact, so the
// breakage is observable below the key level, exactly where a botched
// retire-before-resign leaves a real zone.
Status apply_stale_rrsigs(dns::Zone& zone, const crypto::KeyPair& retired,
                          const dnssec::SigningPolicy& policy);

// A DNSKEY rdata for an algorithm this build cannot sign with (ECDSA P-256,
// algorithm 13, with an rng-drawn public key). Published-but-never-signing
// models the ordering violation of an algorithm rollover (RFC 6840 §5.11).
dns::DnskeyRdata foreign_algorithm_dnskey(Rng& rng);

}  // namespace dnsboot::kasp
