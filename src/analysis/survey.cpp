#include "analysis/survey.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/trust.hpp"

namespace dnsboot::analysis {

SurveyRunResult run_survey(
    net::Transport& network, const resolver::RootHints& hints,
    const std::vector<dns::Name>& targets,
    const std::map<std::string, std::string>& ns_domain_to_operator,
    std::uint32_t now, const SurveyRunOptions& options) {
  SurveyRunResult result;

  // Scan phase: collect raw observations.
  net::IpAddress scanner_address = net::IpAddress::v4({192, 0, 2, 251});
  resolver::QueryEngineOptions engine_options = options.engine;
  if (engine_options.tracer == nullptr) engine_options.tracer = options.tracer;
  scanner::ScannerOptions scanner_options = options.scanner;
  if (scanner_options.tracer == nullptr) {
    scanner_options.tracer = options.tracer;
  }
  resolver::QueryEngine engine(network, scanner_address, engine_options);
  resolver::DelegationResolver delegation_resolver(engine, hints);
  scanner::Scanner scanner(network, engine, delegation_resolver,
                           scanner_options);

  std::vector<scanner::ZoneObservation> observations;
  observations.reserve(targets.size());
  net::SimTime started = network.now();
  scanner.scan(targets, [&](scanner::ZoneObservation obs) {
    observations.push_back(std::move(obs));
  });
  scanner.run();

  result.simulated_duration = network.now() - started;
  // Fold every component's registry into the run's: the result's stats
  // views are bound to result.metrics, so merging (rather than assigning
  // views, which would dangle once the components die) is what populates
  // them. Distinct name prefixes (engine/scanner/net/wire) keep the merge
  // collision-free.
  result.metrics->merge(engine.metrics());
  result.metrics->merge(scanner.metrics());
  if (const obs::MetricsRegistry* net_metrics = network.metrics_registry()) {
    result.metrics->merge(*net_metrics);
  }
  result.datagrams = network.datagrams_sent();
  result.bytes_on_wire = network.bytes_sent();

  if (options.tracer != nullptr) {
    obs::TraceSpan span;
    span.kind = "phase";
    span.name = "scan";
    span.start_usec = started;
    span.end_usec = network.now();
    span.attempts = targets.size();
    span.status = "ok";
    options.tracer->record(std::move(span));
  }

  // Canonical observation order: observations complete in network-timing
  // order, which differs between the simulator and real sockets (and, over
  // the wire, between runs). Re-sorting into target order makes the report
  // a pure function of the observations themselves, so a wire survey is
  // byte-identical to the simulated one for the same seed.
  std::unordered_map<std::string, std::size_t> target_rank;
  target_rank.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    target_rank.emplace(targets[i].to_text(), i);
  }
  std::stable_sort(observations.begin(), observations.end(),
                   [&target_rank](const scanner::ZoneObservation& a,
                                  const scanner::ZoneObservation& b) {
                     auto ra = target_rank.find(a.zone.to_text());
                     auto rb = target_rank.find(b.zone.to_text());
                     std::size_t ka =
                         ra != target_rank.end() ? ra->second : SIZE_MAX;
                     std::size_t kb =
                         rb != target_rank.end() ? rb->second : SIZE_MAX;
                     return ka < kb;
                   });

  // Analysis phase: validate + classify offline, as the paper does from its
  // stored DNS messages.
  const net::SimTime analysis_started = network.now();
  TrustContext trust(scanner.infrastructure(), hints.trust_anchor, now);
  OperatorIdentifier operators{
      std::map<std::string, std::string>(ns_domain_to_operator)};
  SurveyAggregator aggregator;
  for (const auto& obs : observations) {
    ZoneReport report = analyze_zone(obs, trust, operators);
    aggregator.add(report);
    if (options.keep_reports) result.reports.push_back(std::move(report));
  }
  result.survey = aggregator.survey();
  result.top_by_domains = aggregator.top_by_domains(20);
  result.top_by_cds = aggregator.top_by_cds(20);
  if (options.tracer != nullptr) {
    obs::TraceSpan span;
    span.kind = "phase";
    span.name = "analysis";
    span.start_usec = analysis_started;
    span.end_usec = network.now();
    span.attempts = observations.size();
    span.status = "ok";
    options.tracer->record(std::move(span));
  }
  return result;
}

}  // namespace dnsboot::analysis
