#include "analysis/survey.hpp"

#include "analysis/trust.hpp"

namespace dnsboot::analysis {

SurveyRunResult run_survey(
    net::SimNetwork& network, const resolver::RootHints& hints,
    const std::vector<dns::Name>& targets,
    const std::map<std::string, std::string>& ns_domain_to_operator,
    std::uint32_t now, const SurveyRunOptions& options) {
  SurveyRunResult result;

  // Scan phase: collect raw observations.
  net::IpAddress scanner_address = net::IpAddress::v4({192, 0, 2, 251});
  resolver::QueryEngine engine(network, scanner_address, options.engine);
  resolver::DelegationResolver delegation_resolver(engine, hints);
  scanner::Scanner scanner(network, engine, delegation_resolver,
                           options.scanner);

  std::vector<scanner::ZoneObservation> observations;
  observations.reserve(targets.size());
  net::SimTime started = network.now();
  scanner.scan(targets, [&](scanner::ZoneObservation obs) {
    observations.push_back(std::move(obs));
  });
  scanner.run();

  result.simulated_duration = network.now() - started;
  result.scanner_stats = scanner.stats();
  result.engine_stats = engine.stats();
  result.datagrams = network.datagrams_sent();
  result.bytes_on_wire = network.bytes_sent();

  // Analysis phase: validate + classify offline, as the paper does from its
  // stored DNS messages.
  TrustContext trust(scanner.infrastructure(), hints.trust_anchor, now);
  OperatorIdentifier operators{
      std::map<std::string, std::string>(ns_domain_to_operator)};
  SurveyAggregator aggregator;
  for (const auto& obs : observations) {
    ZoneReport report = analyze_zone(obs, trust, operators);
    aggregator.add(report);
    if (options.keep_reports) result.reports.push_back(std::move(report));
  }
  result.survey = aggregator.survey();
  result.top_by_domains = aggregator.top_by_domains(20);
  result.top_by_cds = aggregator.top_by_cds(20);
  return result;
}

}  // namespace dnsboot::analysis
