// DNS-operator identification from nameserver hostnames (paper §3):
// longest-suffix match against a registry of operator NS domains, including
// white-label aliases (e.g. seized.gov -> Cloudflare).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dns/name.hpp"

namespace dnsboot::analysis {

inline constexpr const char* kUnknownOperator = "unknown";

class OperatorIdentifier {
 public:
  OperatorIdentifier() = default;
  explicit OperatorIdentifier(
      std::map<std::string, std::string> ns_domain_to_operator);

  // Register `operator_name` for NS hostnames ending in `ns_domain_suffix`.
  void add(const std::string& ns_domain_suffix,
           const std::string& operator_name);

  // Operator for one NS hostname; kUnknownOperator when unmatched.
  std::string identify(const dns::Name& ns) const;

  // Distinct operators across a zone's NS set. Unknown suffixes collapse
  // into a single kUnknownOperator entry.
  std::vector<std::string> identify_all(
      const std::vector<dns::Name>& ns_names) const;

 private:
  // canonical suffix ("cloudflare.com.") -> operator.
  std::map<std::string, std::string> suffixes_;
};

}  // namespace dnsboot::analysis
