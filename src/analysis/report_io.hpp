// Machine-readable export of survey results: JSON for the aggregate Survey,
// CSV for per-zone reports. Downstream tooling (notebooks, dashboards)
// consumes these instead of scraping bench stdout.
#pragma once

#include <string>

#include "analysis/survey.hpp"

namespace dnsboot::analysis {

// The aggregate survey as a single JSON object (stable key names; numbers
// are raw zone counts at the simulated scale, not rescaled).
std::string survey_to_json(const SurveyRunResult& result);

// Per-zone reports as CSV, one row per zone, header included.
std::string reports_to_csv(const std::vector<ZoneReport>& reports);

}  // namespace dnsboot::analysis
