// ZoneReport — the per-zone result of the paper's full analysis pipeline:
// DNSSEC status (§4.1), CDS deployment and correctness (§4.2), bootstrap
// eligibility (§4.3, Figure 1), and RFC 9615 signal-zone status (§4.4,
// Table 3).
#pragma once

#include <string>
#include <vector>

#include "analysis/operator_id.hpp"
#include "analysis/trust.hpp"
#include "dnssec/validator.hpp"
#include "scanner/observation.hpp"

namespace dnsboot::analysis {

// In-zone CDS/CDNSKEY analysis (§4.2).
struct CdsAnalysis {
  bool query_failed = false;   // some NS FORMERR'd / timed out on CDS queries
  bool present = false;        // some NS served CDS or CDNSKEY
  bool consistent = true;      // every responding NS agrees (incl. presence)
  bool delete_request = false; // RFC 8078 delete sentinel present
  bool matches_dnskey = true;  // every non-delete CDS corresponds to a DNSKEY
  bool rrsig_valid = false;    // signatures over the CDS RRset verify
  // Representative CDS set (first answering endpoint).
  std::vector<dns::DsRdata> cds;
};

// Scan-side quality of the underlying observation — keeps "the operator
// misconfigured this" separate from "the scan could not observe this"
// (chaos worlds; paper §3's completeness discussion).
enum class ScanQuality {
  kComplete,     // every probe answered
  kDegraded,     // resolved, but some probes failed (provenance on each)
  kNotObserved,  // transient scan-side failure — retrying might have worked
  kUnreachable,  // permanent failure: lame or missing delegation
};

std::string to_string(ScanQuality quality);

// Where the zone lands in the Figure 1 funnel.
enum class BootstrapEligibility {
  kUnresolved,
  kAlreadySecured,      // signed + DS: rollovers only
  kUnsignedZone,        // no DNSSEC at all
  kInvalidDnssec,       // fails validation
  kIslandWithoutCds,
  kIslandCdsDelete,
  kIslandCdsMismatch,   // CDS matches no DNSKEY
  kBootstrappable,      // secure island with valid in-zone CDS
};

std::string to_string(BootstrapEligibility eligibility);

// Signal-zone (RFC 9615) status — the Table 3 row structure.
enum class AbStatus {
  kNoSignal,
  kAlreadySecured,
  kCannotDeleteRequest,
  kCannotInvalidDnssec,  // zone unsigned/bogus, or in-zone CDS broken
  kSignalIncorrect,
  kSignalCorrect,
};

std::string to_string(AbStatus status);

// Where the zone's keys stand in their RFC 7583 lifecycle, derived from the
// same observation the rest of the report comes from. A clean steady-state
// zone is kStable; a zone caught between rollover phases (successor key
// pre-published, double DS, CDS announcing a pending change, mixed DNSKEY
// algorithms) is kMidRollover; a zone whose parent serves a DS that the
// child's served data no longer validates under is kBrokenRollover.
enum class KeyLifecycleState {
  kStable,
  kMidRollover,
  kBrokenRollover,
};

std::string to_string(KeyLifecycleState state);

// Why a signal was judged incorrect (§4.4's violation taxonomy).
struct SignalViolations {
  bool zone_cut = false;             // signaling name crosses an extra cut
  bool not_under_every_ns = false;   // some NS lacks the signaling RRs
  bool chain_invalid = false;        // signaling zone fails DNSSEC validation
  bool inconsistent = false;         // signaling NSes disagree
  bool mismatch_with_zone = false;   // signal CDS != in-zone CDS

  bool any() const {
    return zone_cut || not_under_every_ns || chain_invalid || inconsistent ||
           mismatch_with_zone;
  }
};

struct ZoneReport {
  dns::Name zone;
  dns::Name tld;
  bool resolved = false;

  // Operator identification (§3).
  std::vector<std::string> operators;
  std::string operator_name;  // primary (first identified)
  bool multi_operator = false;

  dnssec::ZoneDnssecStatus dnssec = dnssec::ZoneDnssecStatus::kUnsigned;
  std::string dnssec_reason;
  bool parent_ds_authentic = false;  // DS RRset signature chain valid

  CdsAnalysis cds;
  BootstrapEligibility eligibility = BootstrapEligibility::kUnresolved;

  bool signal_present = false;  // any signaling CDS observed
  AbStatus ab = AbStatus::kNoSignal;
  SignalViolations signal_violations;

  // Scan-cost accounting (App. D).
  std::size_t endpoints_queried = 0;
  std::size_t endpoints_available = 0;
  bool pool_sampled = false;

  // Scan-robustness accounting (per-probe failure provenance rollup).
  ScanQuality scan_quality = ScanQuality::kUnreachable;
  std::size_t failed_probes = 0;
  std::size_t transient_failures = 0;
  int scan_attempt = 1;  // which scan pass produced the observation
  // Any probe completed while the engine's anti-spoofing defenses had the
  // endpoint flagged as under active attack. Provenance only: the answers
  // themselves still passed the ID/port/tuple checks.
  bool under_attack = false;

  // Key-lifecycle provenance (like under_attack: carried on every report,
  // rolled up by the survey, emitted as a trailing strippable CSV column).
  KeyLifecycleState key_state = KeyLifecycleState::kStable;
};

// Run the complete analysis for one observation.
ZoneReport analyze_zone(const scanner::ZoneObservation& observation,
                        const TrustContext& trust,
                        const OperatorIdentifier& operators);

}  // namespace dnsboot::analysis
