#include "analysis/trust.hpp"

#include "dnssec/validator.hpp"

namespace dnsboot::analysis {

std::vector<dns::DnskeyRdata> dnskeys_of(const dns::RRset& rrset) {
  std::vector<dns::DnskeyRdata> out;
  for (const auto& rd : rrset.rdatas) {
    if (const auto* key = std::get_if<dns::DnskeyRdata>(&rd)) {
      out.push_back(*key);
    }
  }
  return out;
}

namespace {

std::vector<dns::DsRdata> ds_of(const dns::RRset& rrset) {
  std::vector<dns::DsRdata> out;
  for (const auto& rd : rrset.rdatas) {
    if (const auto* ds = std::get_if<dns::DsRdata>(&rd)) out.push_back(*ds);
  }
  return out;
}

}  // namespace

TrustContext::TrustContext(const scanner::InfrastructureSnapshot& snapshot,
                           const std::vector<dns::DsRdata>& trust_anchor,
                           std::uint32_t now)
    : now_(now) {
  // 1. Root DNSKEY against the configured trust anchor.
  const dns::Name root = dns::Name::root();
  dnssec::SignedRRset root_dnskey = snapshot.root_dnskey;
  auto root_validation =
      dnssec::validate_dnskey_rrset(root, root_dnskey, trust_anchor, now_);
  root_secure_ = root_validation.valid;
  if (root_secure_) root_keys_ = dnskeys_of(root_dnskey.rrset);

  // 2. Each TLD: DS (signed by the root) then DNSKEY (chained through it).
  for (const auto& [label, info] : snapshot.tlds) {
    TldTrust trust;
    auto tld_name = dns::Name::from_text(label);
    if (root_secure_ && tld_name.ok() && !info.ds.rrset.rdatas.empty() &&
        !info.dnskey.rrset.rdatas.empty()) {
      auto ds_ok = dnssec::verify_rrset(info.ds.rrset, info.ds.signatures,
                                        root_keys_, root, now_);
      if (ds_ok.valid) {
        auto chain = dnssec::validate_dnskey_rrset(
            tld_name.value(), info.dnskey, ds_of(info.ds.rrset), now_);
        if (chain.valid) {
          trust.secure = true;
          trust.keys = dnskeys_of(info.dnskey.rrset);
        }
      }
    }
    tlds_.emplace(label, std::move(trust));
  }
}

bool TrustContext::tld_secure(const dns::Name& tld) const {
  auto it = tlds_.find(tld.canonical_text());
  return it != tlds_.end() && it->second.secure;
}

const std::vector<dns::DnskeyRdata>& TrustContext::tld_keys(
    const dns::Name& tld) const {
  static const std::vector<dns::DnskeyRdata> kEmpty;
  auto it = tlds_.find(tld.canonical_text());
  return it == tlds_.end() ? kEmpty : it->second.keys;
}

bool TrustContext::validate_parent_ds(const dns::Name& parent_tld,
                                      const dnssec::SignedRRset& ds) const {
  if (!tld_secure(parent_tld)) return false;
  if (ds.rrset.rdatas.empty()) return false;
  auto v = dnssec::verify_rrset(ds.rrset, ds.signatures,
                                tld_keys(parent_tld), parent_tld, now_);
  return v.valid;
}

}  // namespace dnsboot::analysis
