// Sharded survey executor (DESIGN.md §9, §14) — partition the zone
// population into S shards by a stable hash of the zone name, run each
// shard's scan in its own fully independent simulated world (network +
// servers + scanner + engine), and merge the per-shard results in shard
// order.
//
// Determinism contract:
//   * The merged report depends only on (source, shards, base_network_seed,
//     run options) — never on the thread count. Workers pull shard indices
//     from an atomic counter, but results land in a slot vector indexed by
//     shard and the merge walks shards 0..S-1 after all workers have joined.
//   * shards == 1 reproduces the single-world run_survey() pipeline
//     byte-for-byte: the full target list is scanned in one world whose
//     network seed is exactly base_network_seed.
//
// Streaming-shard contract (§14): the world source returns a world holding
// ONLY its shard's targets (ecosystem::build_shard materializes exactly that
// slice), so worker memory is O(zones/shard) instead of O(world). The
// executor trusts the source's slice — it no longer re-filters — and the
// source MUST slice with shard_of (i.e. base shard_of_canonical), or shards
// would scan zones they never built.
//
// Each worker's world is thread-confined; the only cross-thread traffic is
// the shard counter and the slot vector, whose entries are written by
// exactly one worker and read only after join (a happens-before edge), so
// the executor is clean under TSan without any locking.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "analysis/survey.hpp"
#include "net/simnet.hpp"

namespace dnsboot::analysis {

// Everything one shard worker needs: a private simulated world, identical
// across shards except for the network RNG seed. `keepalive` owns whatever
// backs the network handlers (e.g. the ecosystem's servers) so the world
// survives until the shard's scan finishes.
struct ShardWorld {
  std::unique_ptr<net::SimNetwork> network;
  resolver::RootHints hints;
  // THIS SHARD'S zones only (population order preserved). The executor scans
  // the list as-is; with one shard it is the full population.
  std::vector<dns::Name> targets;
  std::map<std::string, std::string> ns_domain_to_operator;
  std::uint32_t now = 0;
  std::shared_ptr<void> keepalive;
};

// Produces the world for one shard, holding only that shard's target slice.
// Called concurrently from worker threads: implementations must not touch
// shared mutable state. The ecosystem construction must depend only on its
// own seeds (never on shard_seed), so the shard slices partition one
// consistent population; shard_seed goes to the SimNetwork so per-shard
// packet timing is decorrelated.
using ShardWorldSource =
    std::function<ShardWorld(std::size_t shard_index, std::uint64_t shard_seed)>;

struct ShardedSurveyOptions {
  SurveyRunOptions run;
  std::size_t shards = 1;
  std::size_t threads = 1;
  // Seed for the single-shard world; multi-shard seeds are derived from it
  // (see shard_network_seed).
  std::uint64_t base_network_seed = 1;
};

struct ShardedSurveyResult {
  // Merged exactly as a single-world SurveyRunResult: survey counters and
  // maps sum key-wise, reports concatenate in shard order, stats sum,
  // simulated_duration is the slowest shard (shards run concurrently in
  // simulated time), and the table rows are recomputed from the merged
  // operator map.
  SurveyRunResult merged;
  // View over merged.metrics (the per-shard network registries were merged
  // into it), bound by run_sharded_survey after the merge loop. Anyone who
  // replaces `merged` wholesale must rebind this view — it points into the
  // registry `merged` owned at bind time.
  net::FaultStats fault_stats;
  std::uint64_t events_processed = 0;
  std::vector<net::SimTime> shard_durations;
  std::size_t shards = 0;
  std::size_t threads = 0;
};

// Stable shard assignment: FNV-1a over the canonical zone text (delegates to
// base shard_of_canonical, shared with ecosystem::build_shard). Independent
// of scan order, target list position, and everything else mutable.
std::size_t shard_of(const dns::Name& zone, std::size_t shards);

// Per-shard network seed. shards == 1 passes the base seed through
// unchanged (the legacy-equivalence guarantee); otherwise each shard gets a
// SplitMix64-derived seed so shard networks draw independent jitter/loss.
std::uint64_t shard_network_seed(std::uint64_t base_seed,
                                 std::size_t shard_index, std::size_t shards);

ShardedSurveyResult run_sharded_survey(const ShardWorldSource& source,
                                       const ShardedSurveyOptions& options);

}  // namespace dnsboot::analysis
