#include "analysis/aggregate.hpp"

#include <algorithm>

namespace dnsboot::analysis {

void AbColumn::operator+=(const AbColumn& other) {
  with_signal += other.with_signal;
  already_secured += other.already_secured;
  cannot_bootstrap += other.cannot_bootstrap;
  deletion_request += other.deletion_request;
  invalid_dnssec += other.invalid_dnssec;
  potential += other.potential;
  signal_incorrect += other.signal_incorrect;
  signal_correct += other.signal_correct;
}

void OperatorRow::operator+=(const OperatorRow& other) {
  if (name.empty()) name = other.name;
  domains += other.domains;
  unsigned_zones += other.unsigned_zones;
  secured += other.secured;
  invalid += other.invalid;
  islands += other.islands;
  with_cds += other.with_cds;
}

void Survey::operator+=(const Survey& other) {
  total += other.total;
  unresolved += other.unresolved;
  unsigned_zones += other.unsigned_zones;
  secured += other.secured;
  invalid += other.invalid;
  islands += other.islands;

  with_cds += other.with_cds;
  cds_query_failed += other.cds_query_failed;
  unsigned_with_cds += other.unsigned_with_cds;
  unsigned_with_cds_delete += other.unsigned_with_cds_delete;
  secured_with_cds_delete += other.secured_with_cds_delete;
  island_with_cds += other.island_with_cds;
  island_with_cds_delete += other.island_with_cds_delete;
  island_cds_consistent += other.island_cds_consistent;
  island_cds_inconsistent += other.island_cds_inconsistent;
  island_cds_inconsistent_multi_op += other.island_cds_inconsistent_multi_op;
  cds_no_matching_dnskey += other.cds_no_matching_dnskey;
  cds_invalid_rrsig += other.cds_invalid_rrsig;

  for (const auto& [eligibility, count] : other.funnel) {
    funnel[eligibility] += count;
  }

  for (const auto& [op, column] : other.ab_by_operator) {
    ab_by_operator[op] += column;
  }
  ab_total += other.ab_total;
  violation_zone_cut += other.violation_zone_cut;
  violation_not_under_every_ns += other.violation_not_under_every_ns;
  violation_chain_invalid += other.violation_chain_invalid;
  violation_inconsistent += other.violation_inconsistent;
  violation_mismatch += other.violation_mismatch;

  for (const auto& [op, row] : other.operators) {
    operators[op] += row;
  }

  endpoints_queried += other.endpoints_queried;
  endpoints_available += other.endpoints_available;
  pool_sampled_zones += other.pool_sampled_zones;
  multi_operator_zones += other.multi_operator_zones;

  scan_complete += other.scan_complete;
  scan_degraded += other.scan_degraded;
  scan_not_observed += other.scan_not_observed;
  scan_unreachable += other.scan_unreachable;
  probes_failed += other.probes_failed;
  probes_failed_transient += other.probes_failed_transient;
  zones_under_attack += other.zones_under_attack;
  zones_mid_rollover += other.zones_mid_rollover;
  zones_broken_rollover += other.zones_broken_rollover;
}

void SurveyAggregator::add(const ZoneReport& report) {
  Survey& s = survey_;
  ++s.total;
  switch (report.scan_quality) {
    case ScanQuality::kComplete: ++s.scan_complete; break;
    case ScanQuality::kDegraded: ++s.scan_degraded; break;
    case ScanQuality::kNotObserved: ++s.scan_not_observed; break;
    case ScanQuality::kUnreachable: ++s.scan_unreachable; break;
  }
  s.probes_failed += report.failed_probes;
  s.probes_failed_transient += report.transient_failures;
  if (report.under_attack) ++s.zones_under_attack;
  switch (report.key_state) {
    case KeyLifecycleState::kStable: break;
    case KeyLifecycleState::kMidRollover: ++s.zones_mid_rollover; break;
    case KeyLifecycleState::kBrokenRollover: ++s.zones_broken_rollover; break;
  }
  if (!report.resolved) {
    ++s.unresolved;
    return;
  }

  OperatorRow& row = s.operators[report.operator_name];
  row.name = report.operator_name;
  ++row.domains;

  switch (report.dnssec) {
    case dnssec::ZoneDnssecStatus::kUnsigned:
      ++s.unsigned_zones;
      ++row.unsigned_zones;
      break;
    case dnssec::ZoneDnssecStatus::kSecure:
      ++s.secured;
      ++row.secured;
      break;
    case dnssec::ZoneDnssecStatus::kBogus:
      ++s.invalid;
      ++row.invalid;
      break;
    case dnssec::ZoneDnssecStatus::kSecureIsland:
      ++s.islands;
      ++row.islands;
      break;
  }

  if (report.multi_operator) ++s.multi_operator_zones;

  // §4.2 CDS taxonomy.
  if (report.cds.query_failed) ++s.cds_query_failed;
  if (report.cds.present) {
    ++s.with_cds;
    ++row.with_cds;
    const bool is_unsigned =
        report.dnssec == dnssec::ZoneDnssecStatus::kUnsigned;
    const bool is_secured = report.dnssec == dnssec::ZoneDnssecStatus::kSecure;
    const bool is_island =
        report.dnssec == dnssec::ZoneDnssecStatus::kSecureIsland;
    if (is_unsigned) {
      ++s.unsigned_with_cds;
      if (report.cds.delete_request) ++s.unsigned_with_cds_delete;
    }
    if (is_secured && report.cds.delete_request) ++s.secured_with_cds_delete;
    if (is_island) {
      ++s.island_with_cds;
      if (report.cds.delete_request) ++s.island_with_cds_delete;
      if (report.cds.consistent) {
        ++s.island_cds_consistent;
      } else {
        ++s.island_cds_inconsistent;
        if (report.multi_operator) ++s.island_cds_inconsistent_multi_op;
      }
      if (!report.cds.matches_dnskey) ++s.cds_no_matching_dnskey;
      if (report.cds.matches_dnskey && report.cds.consistent &&
          !report.cds.delete_request && !report.cds.rrsig_valid) {
        ++s.cds_invalid_rrsig;
      }
    }
  }

  ++s.funnel[report.eligibility];

  // Table 3.
  if (report.signal_present) {
    AbColumn& column = s.ab_by_operator[report.operator_name];
    ++column.with_signal;
    ++s.ab_total.with_signal;
    auto bump = [&](std::uint64_t AbColumn::* member) {
      ++(column.*member);
      ++(s.ab_total.*member);
    };
    switch (report.ab) {
      case AbStatus::kAlreadySecured:
        bump(&AbColumn::already_secured);
        break;
      case AbStatus::kCannotDeleteRequest:
        bump(&AbColumn::cannot_bootstrap);
        bump(&AbColumn::deletion_request);
        break;
      case AbStatus::kCannotInvalidDnssec:
        bump(&AbColumn::cannot_bootstrap);
        bump(&AbColumn::invalid_dnssec);
        break;
      case AbStatus::kSignalIncorrect:
        bump(&AbColumn::potential);
        bump(&AbColumn::signal_incorrect);
        break;
      case AbStatus::kSignalCorrect:
        bump(&AbColumn::potential);
        bump(&AbColumn::signal_correct);
        break;
      case AbStatus::kNoSignal:
        break;
    }
    if (report.ab == AbStatus::kSignalIncorrect) {
      if (report.signal_violations.zone_cut) ++s.violation_zone_cut;
      if (report.signal_violations.not_under_every_ns) {
        ++s.violation_not_under_every_ns;
      }
      if (report.signal_violations.chain_invalid) ++s.violation_chain_invalid;
      if (report.signal_violations.inconsistent) ++s.violation_inconsistent;
      if (report.signal_violations.mismatch_with_zone) ++s.violation_mismatch;
    }
  }

  s.endpoints_queried += report.endpoints_queried;
  s.endpoints_available += report.endpoints_available;
  if (report.pool_sampled) ++s.pool_sampled_zones;
}

std::vector<OperatorRow> top_rows_by_domains(const Survey& survey,
                                             std::size_t n) {
  std::vector<OperatorRow> rows;
  for (const auto& [name, row] : survey.operators) {
    if (name != kUnknownOperator) rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const OperatorRow& a, const OperatorRow& b) {
              return a.domains > b.domains;
            });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

std::vector<OperatorRow> top_rows_by_cds(const Survey& survey, std::size_t n) {
  std::vector<OperatorRow> rows;
  for (const auto& [name, row] : survey.operators) {
    if (name != kUnknownOperator && row.with_cds > 0) rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const OperatorRow& a, const OperatorRow& b) {
              return a.with_cds > b.with_cds;
            });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

std::vector<OperatorRow> SurveyAggregator::top_by_domains(
    std::size_t n) const {
  return top_rows_by_domains(survey_, n);
}

std::vector<OperatorRow> SurveyAggregator::top_by_cds(std::size_t n) const {
  return top_rows_by_cds(survey_, n);
}

}  // namespace dnsboot::analysis
