#include "analysis/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "base/rng.hpp"

namespace dnsboot::analysis {

std::size_t shard_of(const dns::Name& zone, std::size_t shards) {
  return shard_of_canonical(zone.canonical_text(), shards);
}

std::uint64_t shard_network_seed(std::uint64_t base_seed,
                                 std::size_t shard_index, std::size_t shards) {
  if (shards <= 1) return base_seed;
  SplitMix64 mix(base_seed);
  std::uint64_t derived = mix.next();
  return derived ^
         (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(shard_index) + 1));
}

namespace {

// One shard's output, written by exactly one worker and read only after all
// workers have joined.
struct ShardSlot {
  SurveyRunResult result;
};

}  // namespace

ShardedSurveyResult run_sharded_survey(const ShardWorldSource& source,
                                       const ShardedSurveyOptions& options) {
  const std::size_t shards = std::max<std::size_t>(1, options.shards);
  const std::size_t threads =
      std::clamp<std::size_t>(options.threads, 1, shards);

  std::vector<ShardSlot> slots(shards);
  std::atomic<std::size_t> next_shard{0};

  auto worker = [&] {
    for (;;) {
      const std::size_t shard =  // audit-allow: A004 RMW work-stealing index
          next_shard.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shards) return;

      ShardWorld world =
          source(shard, shard_network_seed(options.base_network_seed, shard,
                                           shards));
      ShardSlot& slot = slots[shard];
      // world.targets is already this shard's slice (streaming-shard
      // contract); run_survey folds the shard network's registry (fault
      // counters, events, traffic) into slot.result.metrics, so the slot
      // needs nothing beyond the result itself.
      slot.result =
          run_survey(*world.network, world.hints, world.targets,
                     world.ns_domain_to_operator, world.now, options.run);
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  ShardedSurveyResult out;
  out.shards = shards;
  out.threads = threads;
  out.shard_durations.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    ShardSlot& slot = slots[shard];
    out.merged.survey += slot.result.survey;
    out.merged.reports.insert(
        out.merged.reports.end(),
        std::make_move_iterator(slot.result.reports.begin()),
        std::make_move_iterator(slot.result.reports.end()));
    // One generic merge replaces the old per-struct operator+= chains:
    // every engine/scanner/network counter and histogram sums name-keyed,
    // and the merged stats views (bound to out.merged.metrics) see the
    // totals with no per-field code at all.
    out.merged.metrics->merge(*slot.result.metrics);
    out.merged.simulated_duration =
        std::max(out.merged.simulated_duration, slot.result.simulated_duration);
    out.merged.datagrams += slot.result.datagrams;
    out.merged.bytes_on_wire += slot.result.bytes_on_wire;
    out.shard_durations.push_back(slot.result.simulated_duration);
  }
  out.fault_stats = net::FaultStats(*out.merged.metrics);
  out.events_processed =
      out.merged.metrics->counter_value("dnsboot_net_events");
  out.merged.top_by_domains = top_rows_by_domains(out.merged.survey, 20);
  out.merged.top_by_cds = top_rows_by_cds(out.merged.survey, 20);
  return out;
}

}  // namespace dnsboot::analysis
