// SurveyAggregator — folds ZoneReports into the aggregate statistics of the
// paper's evaluation: the §4.1 headline, Table 1, Table 2, the §4.2 CDS error
// taxonomy, the Figure 1 funnel, and Table 3.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/zone_report.hpp"

namespace dnsboot::analysis {

struct OperatorRow {
  std::string name;
  std::uint64_t domains = 0;
  std::uint64_t unsigned_zones = 0;
  std::uint64_t secured = 0;
  std::uint64_t invalid = 0;
  std::uint64_t islands = 0;
  std::uint64_t with_cds = 0;

  // Merge a shard's row into this one (`name` must match or be empty).
  void operator+=(const OperatorRow& other);
};

// One Table 3 column.
struct AbColumn {
  std::uint64_t with_signal = 0;
  std::uint64_t already_secured = 0;
  std::uint64_t cannot_bootstrap = 0;   // delete + invalid
  std::uint64_t deletion_request = 0;
  std::uint64_t invalid_dnssec = 0;
  std::uint64_t potential = 0;          // incorrect + correct
  std::uint64_t signal_incorrect = 0;
  std::uint64_t signal_correct = 0;

  void operator+=(const AbColumn& other);
};

struct Survey {
  // §4.1 headline.
  std::uint64_t total = 0;
  std::uint64_t unresolved = 0;
  std::uint64_t unsigned_zones = 0;
  std::uint64_t secured = 0;
  std::uint64_t invalid = 0;
  std::uint64_t islands = 0;

  // §4.2 CDS.
  std::uint64_t with_cds = 0;
  std::uint64_t cds_query_failed = 0;
  std::uint64_t unsigned_with_cds = 0;
  std::uint64_t unsigned_with_cds_delete = 0;
  std::uint64_t secured_with_cds_delete = 0;
  std::uint64_t island_with_cds = 0;
  std::uint64_t island_with_cds_delete = 0;
  std::uint64_t island_cds_consistent = 0;
  std::uint64_t island_cds_inconsistent = 0;
  std::uint64_t island_cds_inconsistent_multi_op = 0;
  std::uint64_t cds_no_matching_dnskey = 0;
  std::uint64_t cds_invalid_rrsig = 0;

  // Figure 1 funnel.
  std::map<BootstrapEligibility, std::uint64_t> funnel;

  // Table 3 (per operator + total).
  std::map<std::string, AbColumn> ab_by_operator;
  AbColumn ab_total;
  // §4.4 violation taxonomy among potential zones.
  std::uint64_t violation_zone_cut = 0;
  std::uint64_t violation_not_under_every_ns = 0;
  std::uint64_t violation_chain_invalid = 0;
  std::uint64_t violation_inconsistent = 0;
  std::uint64_t violation_mismatch = 0;

  // Per-operator rows (Tables 1 and 2).
  std::map<std::string, OperatorRow> operators;

  // Scan-cost accounting (App. D ablation).
  std::uint64_t endpoints_queried = 0;
  std::uint64_t endpoints_available = 0;
  std::uint64_t pool_sampled_zones = 0;
  std::uint64_t multi_operator_zones = 0;

  // Scan-robustness accounting: how much of the survey was actually
  // observed, and how much of the shortfall is scan-side (transient) versus
  // operator-side (permanent).
  std::uint64_t scan_complete = 0;
  std::uint64_t scan_degraded = 0;
  std::uint64_t scan_not_observed = 0;  // transient: scan could not observe
  std::uint64_t scan_unreachable = 0;   // permanent: delegation broken
  std::uint64_t probes_failed = 0;
  std::uint64_t probes_failed_transient = 0;
  std::uint64_t zones_under_attack = 0;  // engine flagged an endpoint mid-scan

  // Key-lifecycle rollup (RFC 7583 provenance on each report).
  std::uint64_t zones_mid_rollover = 0;
  std::uint64_t zones_broken_rollover = 0;

  // Merge another survey into this one: every counter sums, the maps merge
  // key-wise. Used by the sharded executor to fold per-shard surveys into
  // one aggregate; merging in a fixed shard order keeps the result
  // deterministic regardless of how many threads ran the shards.
  void operator+=(const Survey& other);
};

// Table rows computed from an (already merged) survey. SurveyAggregator's
// accessors delegate here so shard merges can recompute the tables from the
// combined operator map.
std::vector<OperatorRow> top_rows_by_domains(const Survey& survey,
                                             std::size_t n);
std::vector<OperatorRow> top_rows_by_cds(const Survey& survey, std::size_t n);

class SurveyAggregator {
 public:
  void add(const ZoneReport& report);
  const Survey& survey() const { return survey_; }

  std::vector<OperatorRow> top_by_domains(std::size_t n) const;
  std::vector<OperatorRow> top_by_cds(std::size_t n) const;

 private:
  Survey survey_;
};

}  // namespace dnsboot::analysis
