#include <algorithm>
#include <set>
#include <tuple>

#include "analysis/zone_report.hpp"
#include "dnssec/signer.hpp"

namespace dnsboot::analysis {
namespace {

using scanner::RRsetProbe;

std::vector<dns::DsRdata> ds_rdatas_of(const dns::RRset& rrset) {
  std::vector<dns::DsRdata> out;
  for (const auto& rd : rrset.rdatas) {
    if (const auto* ds = std::get_if<dns::DsRdata>(&rd)) out.push_back(*ds);
  }
  return out;
}

// Representative answer for `qtype`: prefer an endpoint that returned
// signatures (a rogue endpoint — e.g. a parked NS answering everything with
// unsigned data — must not shadow the operator's authoritative answers).
const RRsetProbe* first_answer(const std::vector<const RRsetProbe*>& probes) {
  const RRsetProbe* unsigned_answer = nullptr;
  for (const auto* probe : probes) {
    if (probe->outcome != RRsetProbe::Outcome::kAnswer) continue;
    if (!probe->rrset.signatures.empty()) return probe;
    if (unsigned_answer == nullptr) unsigned_answer = probe;
  }
  return unsigned_answer;
}

// Endpoint-consistency over one RR type: all endpoints that *answered* must
// agree on the rdatas (paper §4.2). Absence on some endpoint is tracked
// separately — a parked/mismatched NS returning NODATA does not make the
// answering NSes' data inconsistent (the copacabana case of §4.4 stays
// eligible for bootstrapping).
struct ConsistencyResult {
  bool any_answer = false;
  bool any_nodata = false;
  bool any_failure = false;
  bool consistent = true;
  const RRsetProbe* representative = nullptr;
};

ConsistencyResult check_consistency(
    const std::vector<const RRsetProbe*>& probes) {
  ConsistencyResult result;
  for (const auto* probe : probes) {
    switch (probe->outcome) {
      case RRsetProbe::Outcome::kAnswer:
        result.any_answer = true;
        if (result.representative == nullptr) {
          result.representative = probe;
        } else if (!result.representative->rrset.rrset.same_rdatas(
                       probe->rrset.rrset)) {
          result.consistent = false;
        }
        break;
      case RRsetProbe::Outcome::kNoData:
      case RRsetProbe::Outcome::kNxDomain:
        result.any_nodata = true;
        break;
      case RRsetProbe::Outcome::kError:
      case RRsetProbe::Outcome::kTimeout:
        result.any_failure = true;
        break;
    }
  }
  return result;
}

// Does this CDS/CDNSKEY rdata match one of the zone's DNSKEYs?
bool cds_matches_keys(const dns::Name& zone, const dns::Rdata& rdata,
                      const std::vector<dns::DnskeyRdata>& keys) {
  if (const auto* cds = std::get_if<dns::DsRdata>(&rdata)) {
    if (cds->is_delete_sentinel()) return true;
    for (const auto& key : keys) {
      if (dnssec::ds_matches_dnskey(zone, *cds, key)) return true;
    }
    return false;
  }
  if (const auto* cdnskey = std::get_if<dns::DnskeyRdata>(&rdata)) {
    if (cdnskey->is_delete_sentinel()) return true;
    for (const auto& key : keys) {
      if (key.public_key == cdnskey->public_key &&
          key.algorithm == cdnskey->algorithm) {
        return true;
      }
    }
    return false;
  }
  return false;
}

CdsAnalysis analyze_cds(const scanner::ZoneObservation& obs,
                        const std::vector<dns::DnskeyRdata>& zone_keys,
                        const dns::Name& zone, const TrustContext& trust) {
  CdsAnalysis out;
  auto cds_probes = obs.probes_of(dns::RRType::kCDS);
  auto cdnskey_probes = obs.probes_of(dns::RRType::kCDNSKEY);

  ConsistencyResult cds = check_consistency(cds_probes);
  ConsistencyResult cdnskey = check_consistency(cdnskey_probes);

  out.query_failed = cds.any_failure || cdnskey.any_failure;
  out.present = cds.any_answer || cdnskey.any_answer;
  out.consistent = cds.consistent && cdnskey.consistent;
  if (!out.present) return out;

  // Delete sentinel and DNSKEY correspondence, over both record types.
  out.matches_dnskey = true;
  auto inspect = [&](const RRsetProbe* probe) {
    if (probe == nullptr) return;
    for (const auto& rd : probe->rrset.rrset.rdatas) {
      if (const auto* ds = std::get_if<dns::DsRdata>(&rd)) {
        if (ds->is_delete_sentinel()) out.delete_request = true;
        out.cds.push_back(*ds);
      }
      if (const auto* key = std::get_if<dns::DnskeyRdata>(&rd)) {
        if (key->is_delete_sentinel()) out.delete_request = true;
      }
      if (!cds_matches_keys(zone, rd, zone_keys)) out.matches_dnskey = false;
    }
  };
  inspect(cds.representative);
  inspect(cdnskey.representative);

  // Signature check over the CDS RRset (meaningful when the zone has keys).
  if (!zone_keys.empty()) {
    const RRsetProbe* probe =
        cds.representative != nullptr ? cds.representative
                                      : cdnskey.representative;
    if (probe != nullptr) {
      auto v = dnssec::verify_rrset(probe->rrset.rrset,
                                    probe->rrset.signatures, zone_keys, zone,
                                    trust.now());
      out.rrsig_valid = v.valid;
    }
  }
  return out;
}

BootstrapEligibility derive_eligibility(const ZoneReport& report) {
  if (!report.resolved) return BootstrapEligibility::kUnresolved;
  switch (report.dnssec) {
    case dnssec::ZoneDnssecStatus::kSecure:
      return BootstrapEligibility::kAlreadySecured;
    case dnssec::ZoneDnssecStatus::kUnsigned:
      return BootstrapEligibility::kUnsignedZone;
    case dnssec::ZoneDnssecStatus::kBogus:
      return BootstrapEligibility::kInvalidDnssec;
    case dnssec::ZoneDnssecStatus::kSecureIsland:
      break;
  }
  if (!report.cds.present) return BootstrapEligibility::kIslandWithoutCds;
  if (report.cds.delete_request) return BootstrapEligibility::kIslandCdsDelete;
  if (!report.cds.matches_dnskey) {
    return BootstrapEligibility::kIslandCdsMismatch;
  }
  return BootstrapEligibility::kBootstrappable;
}

// Key-lifecycle classification (RFC 7583): what state the zone's keys are
// in, judged purely from served data. "Broken" requires a parent DS — an
// island or unsigned zone has no rollover to break; "mid" requires a secure
// chain plus evidence of a transition in flight.
KeyLifecycleState derive_key_state(const ZoneReport& report,
                                   const std::vector<dns::DnskeyRdata>& keys,
                                   const std::vector<dns::DsRdata>& parent_ds) {
  if (!report.resolved) return KeyLifecycleState::kStable;
  const bool ds_present = !parent_ds.empty();
  if (ds_present && report.dnssec != dnssec::ZoneDnssecStatus::kSecure) {
    // The parent vouches for a chain the child no longer serves: a botched
    // rollover (premature DS swap, stale RRSIGs, withdrawn DNSKEY, ...).
    return KeyLifecycleState::kBrokenRollover;
  }
  if (report.dnssec != dnssec::ZoneDnssecStatus::kSecure &&
      report.dnssec != dnssec::ZoneDnssecStatus::kSecureIsland) {
    return KeyLifecycleState::kStable;
  }

  // Multiple keys of one role, or multiple DNSKEY algorithms: a
  // pre-publication / double-signature roll in progress.
  std::size_t sep_keys = 0;
  std::size_t zone_keys = 0;
  std::set<std::uint8_t> algorithms;
  for (const auto& key : keys) {
    if ((key.flags & 0x0001) != 0) {
      ++sep_keys;
    } else {
      ++zone_keys;
    }
    algorithms.insert(key.algorithm);
  }
  if (sep_keys > 1 || zone_keys > 1 || algorithms.size() > 1) {
    return KeyLifecycleState::kMidRollover;
  }

  // Double DS at the parent: the KSK roll's overlap window.
  std::set<std::uint16_t> ds_tags;
  for (const auto& ds : parent_ds) ds_tags.insert(ds.key_tag);
  if (ds_tags.size() > 1) return KeyLifecycleState::kMidRollover;

  // CDS announcing a DS set that differs from the one the parent serves:
  // RFC 7344 maintenance pending (only meaningful when a DS exists).
  if (ds_present && report.cds.present && !report.cds.delete_request &&
      !report.cds.cds.empty()) {
    auto key_of = [](const dns::DsRdata& ds) {
      return std::make_tuple(ds.key_tag, ds.algorithm, ds.digest_type,
                             ds.digest);
    };
    std::set<decltype(key_of(parent_ds[0]))> served, announced;
    for (const auto& ds : parent_ds) served.insert(key_of(ds));
    for (const auto& ds : report.cds.cds) announced.insert(key_of(ds));
    if (served != announced) return KeyLifecycleState::kMidRollover;
  }
  return KeyLifecycleState::kStable;
}

// --- signal-zone checks (§4.4) ------------------------------------------------

bool signal_has_answer(const scanner::SignalObservation& signal) {
  for (const auto& probe : signal.cds_probes) {
    if (probe.outcome == RRsetProbe::Outcome::kAnswer) return true;
  }
  for (const auto& probe : signal.cdnskey_probes) {
    if (probe.outcome == RRsetProbe::Outcome::kAnswer) return true;
  }
  return false;
}

// Validate one signaling zone: chain from its TLD down to the CDS RRset at
// the signaling name.
bool signal_chain_valid(const scanner::SignalObservation& signal,
                        const TrustContext& trust) {
  // DS for the signaling zone at its parent, authenticated via the TLD keys.
  if (!trust.validate_parent_ds(signal.parent, signal.parent_ds)) return false;
  // Signaling-zone apex DNSKEY chained through that DS.
  const RRsetProbe* dnskey_probe = nullptr;
  for (const auto& probe : signal.dnskey_probes) {
    if (probe.outcome == RRsetProbe::Outcome::kAnswer) {
      dnskey_probe = &probe;
      break;
    }
  }
  if (dnskey_probe == nullptr) return false;
  auto chain = dnssec::validate_dnskey_rrset(
      signal.signaling_zone, dnskey_probe->rrset,
      ds_rdatas_of(signal.parent_ds.rrset), trust.now());
  if (!chain.valid) return false;
  // Every answered signal CDS/CDNSKEY RRset must carry a valid signature.
  auto keys = dnskeys_of(dnskey_probe->rrset.rrset);
  for (const auto* probes :
       {&signal.cds_probes, &signal.cdnskey_probes}) {
    for (const auto& probe : *probes) {
      if (probe.outcome != RRsetProbe::Outcome::kAnswer) continue;
      auto v = dnssec::verify_rrset(probe.rrset.rrset, probe.rrset.signatures,
                                    keys, signal.signaling_zone, trust.now());
      if (!v.valid) return false;
    }
  }
  return true;
}

// Do the signal CDS rdatas match the in-zone CDS set?
bool signal_matches_zone(const scanner::SignalObservation& signal,
                         const std::vector<dns::DsRdata>& zone_cds) {
  for (const auto& probe : signal.cds_probes) {
    if (probe.outcome != RRsetProbe::Outcome::kAnswer) continue;
    auto signal_cds = ds_rdatas_of(probe.rrset.rrset);
    if (signal_cds.size() != zone_cds.size()) return false;
    auto key = [](const dns::DsRdata& ds) {
      return std::make_tuple(ds.key_tag, ds.algorithm, ds.digest_type,
                             ds.digest);
    };
    std::vector<decltype(key(zone_cds[0]))> a, b;
    for (const auto& ds : signal_cds) a.push_back(key(ds));
    for (const auto& ds : zone_cds) b.push_back(key(ds));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) return false;
  }
  return true;
}

}  // namespace

std::string to_string(BootstrapEligibility eligibility) {
  switch (eligibility) {
    case BootstrapEligibility::kUnresolved: return "unresolved";
    case BootstrapEligibility::kAlreadySecured: return "already-secured";
    case BootstrapEligibility::kUnsignedZone: return "unsigned";
    case BootstrapEligibility::kInvalidDnssec: return "invalid-dnssec";
    case BootstrapEligibility::kIslandWithoutCds: return "island-without-cds";
    case BootstrapEligibility::kIslandCdsDelete: return "island-cds-delete";
    case BootstrapEligibility::kIslandCdsMismatch: return "island-cds-mismatch";
    case BootstrapEligibility::kBootstrappable: return "bootstrappable";
  }
  return "?";
}

std::string to_string(ScanQuality quality) {
  switch (quality) {
    case ScanQuality::kComplete: return "complete";
    case ScanQuality::kDegraded: return "degraded";
    case ScanQuality::kNotObserved: return "not-observed";
    case ScanQuality::kUnreachable: return "unreachable";
  }
  return "?";
}

std::string to_string(KeyLifecycleState state) {
  switch (state) {
    case KeyLifecycleState::kStable: return "stable";
    case KeyLifecycleState::kMidRollover: return "mid-rollover";
    case KeyLifecycleState::kBrokenRollover: return "broken-rollover";
  }
  return "?";
}

std::string to_string(AbStatus status) {
  switch (status) {
    case AbStatus::kNoSignal: return "no-signal";
    case AbStatus::kAlreadySecured: return "already-secured";
    case AbStatus::kCannotDeleteRequest: return "deletion-request";
    case AbStatus::kCannotInvalidDnssec: return "invalid-dnssec";
    case AbStatus::kSignalIncorrect: return "signal-incorrect";
    case AbStatus::kSignalCorrect: return "signal-correct";
  }
  return "?";
}

ZoneReport analyze_zone(const scanner::ZoneObservation& obs,
                        const TrustContext& trust,
                        const OperatorIdentifier& operators) {
  ZoneReport report;
  report.zone = obs.zone;
  report.tld = obs.tld;
  report.resolved = obs.resolved;
  report.endpoints_queried = obs.endpoints.size();
  report.endpoints_available = obs.endpoints_before_sampling;
  report.pool_sampled = obs.pool_sampled;
  report.failed_probes = obs.failed_probes;
  report.transient_failures = obs.transient_failures;
  report.scan_attempt = obs.scan_attempt;
  report.under_attack = obs.probes_under_attack > 0;
  if (obs.resolved) {
    report.scan_quality =
        obs.completeness == scanner::ZoneObservation::Completeness::kComplete
            ? ScanQuality::kComplete
            : ScanQuality::kDegraded;
  } else {
    // A transiently-failed resolution means the scan could not observe the
    // zone; a permanent one means the operator's delegation is broken.
    report.scan_quality = scanner::is_transient_failure(obs.failure)
                              ? ScanQuality::kNotObserved
                              : ScanQuality::kUnreachable;
  }
  if (!obs.resolved) {
    report.operator_name = kUnknownOperator;
    return report;
  }

  // Operator identification over the union of parent and child NS sets.
  {
    std::vector<dns::Name> ns_union = obs.parent_ns;
    for (const auto* probe : obs.probes_of(dns::RRType::kNS)) {
      if (probe->outcome != RRsetProbe::Outcome::kAnswer) continue;
      for (const auto& rd : probe->rrset.rrset.rdatas) {
        ns_union.push_back(std::get<dns::NsRdata>(rd).nsdname);
      }
    }
    report.operators = operators.identify_all(ns_union);
    report.operator_name =
        report.operators.empty() ? kUnknownOperator : report.operators[0];
    std::size_t known = 0;
    for (const auto& name : report.operators) {
      if (name != kUnknownOperator) ++known;
    }
    report.multi_operator = known > 1;
  }

  // DNSSEC classification (§4.1).
  dnssec::ZoneObservationForValidation validation;
  validation.apex = obs.zone;
  validation.now = trust.now();
  validation.parent_secure = trust.tld_secure(obs.tld);
  report.parent_ds_authentic =
      trust.validate_parent_ds(obs.tld, obs.parent_ds);
  if (report.parent_ds_authentic) {
    validation.parent_ds = ds_rdatas_of(obs.parent_ds.rrset);
  }
  std::vector<dns::DnskeyRdata> zone_keys;
  if (const RRsetProbe* dnskey =
          first_answer(obs.probes_of(dns::RRType::kDNSKEY))) {
    validation.dnskey = dnskey->rrset;
    zone_keys = dnskeys_of(dnskey->rrset.rrset);
  }
  if (const RRsetProbe* soa = first_answer(obs.probes_of(dns::RRType::kSOA))) {
    if (validation.dnskey.has_value()) {
      validation.data.push_back(soa->rrset);
    }
  }
  auto classification = dnssec::classify_zone(validation);
  report.dnssec = classification.status;
  report.dnssec_reason = classification.reason;

  // CDS analysis (§4.2).
  report.cds = analyze_cds(obs, zone_keys, obs.zone, trust);

  // Figure 1 funnel position.
  report.eligibility = derive_eligibility(report);

  // Key-lifecycle state (RFC 7583 provenance).
  report.key_state =
      derive_key_state(report, zone_keys, ds_rdatas_of(obs.parent_ds.rrset));

  // Signal-zone analysis (§4.4).
  for (const auto& signal : obs.signals) {
    if (signal_has_answer(signal)) {
      report.signal_present = true;
      break;
    }
  }
  if (!report.signal_present) {
    report.ab = AbStatus::kNoSignal;
    return report;
  }

  if (report.dnssec == dnssec::ZoneDnssecStatus::kSecure) {
    report.ab = AbStatus::kAlreadySecured;
    return report;
  }
  if (report.cds.delete_request) {
    report.ab = AbStatus::kCannotDeleteRequest;
    return report;
  }
  if (report.dnssec == dnssec::ZoneDnssecStatus::kUnsigned ||
      report.dnssec == dnssec::ZoneDnssecStatus::kBogus ||
      !report.cds.consistent || !report.cds.matches_dnskey ||
      (report.cds.present && !report.cds.rrsig_valid)) {
    report.ab = AbStatus::kCannotInvalidDnssec;
    return report;
  }

  // The zone is a secure island with valid in-zone CDS: check the signaling
  // trees themselves (RFC 9615 requirements).
  SignalViolations& violations = report.signal_violations;
  for (const auto& signal : obs.signals) {
    // Zone cuts along the signaling path disqualify AB even when the
    // signaling tree is otherwise empty (the parked-typo case of §4.4).
    if (!signal.apparent_cuts.empty()) violations.zone_cut = true;
    const bool has_answer = signal_has_answer(signal);
    if (!has_answer) {
      // Some NS lacks the signaling records entirely.
      violations.not_under_every_ns = true;
      continue;
    }
    // Within one signaling zone, every endpoint must agree.
    ConsistencyResult consistency;
    {
      std::vector<const RRsetProbe*> probes;
      for (const auto& probe : signal.cds_probes) probes.push_back(&probe);
      consistency = check_consistency(probes);
    }
    if (!consistency.consistent) violations.inconsistent = true;
    if (!signal_chain_valid(signal, trust)) violations.chain_invalid = true;
    if (!signal_matches_zone(signal, report.cds.cds)) {
      violations.mismatch_with_zone = true;
    }
  }
  report.ab = violations.any() ? AbStatus::kSignalIncorrect
                               : AbStatus::kSignalCorrect;
  return report;
}

}  // namespace dnsboot::analysis
