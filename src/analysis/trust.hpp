// TrustContext — offline validation of the shared infrastructure chain:
// trust anchor -> root DNSKEY -> TLD DS -> TLD DNSKEY. Built once per scan
// from the InfrastructureSnapshot; per-zone analysis then validates the
// parent-side DS RRsets against the (already validated) TLD keys.
#pragma once

#include <map>
#include <optional>

#include "scanner/observation.hpp"

namespace dnsboot::analysis {

class TrustContext {
 public:
  TrustContext(const scanner::InfrastructureSnapshot& snapshot,
               const std::vector<dns::DsRdata>& trust_anchor,
               std::uint32_t now);

  bool root_secure() const { return root_secure_; }
  // Is the chain down to (and including) this TLD's DNSKEY valid?
  bool tld_secure(const dns::Name& tld) const;
  // The TLD's validated DNSKEYs (empty when the TLD is not secure).
  const std::vector<dns::DnskeyRdata>& tld_keys(const dns::Name& tld) const;

  // Validate a parent-side DS RRset (as captured from a referral) against
  // the parent TLD's validated keys. True only when the TLD chain is secure
  // and the DS RRset's signature verifies.
  bool validate_parent_ds(const dns::Name& parent_tld,
                          const dnssec::SignedRRset& ds) const;

  std::uint32_t now() const { return now_; }

 private:
  struct TldTrust {
    bool secure = false;
    std::vector<dns::DnskeyRdata> keys;
  };

  std::map<std::string, TldTrust> tlds_;
  std::vector<dns::DnskeyRdata> root_keys_;
  bool root_secure_ = false;
  std::uint32_t now_ = 0;
};

// Helpers shared with the per-zone classifier.
std::vector<dns::DnskeyRdata> dnskeys_of(const dns::RRset& rrset);

}  // namespace dnsboot::analysis
