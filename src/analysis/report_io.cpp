#include "analysis/report_io.hpp"

namespace dnsboot::analysis {
namespace {

// Minimal JSON writer — all dnsboot keys/values are ASCII identifiers and
// integers, so no escaping machinery is needed beyond quotes.
class JsonWriter {
 public:
  void open() { out_ += '{'; }
  void close() {
    trim_comma();
    out_ += '}';
  }
  void key(const std::string& name) {
    out_ += '"';
    out_ += name;
    out_ += "\":";
  }
  void value(std::uint64_t v) {
    out_ += std::to_string(v);
    out_ += ',';
  }
  void value(double v) {
    out_ += std::to_string(v);
    out_ += ',';
  }
  void value_string(const std::string& v) {
    out_ += '"';
    for (char c : v) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
    out_ += "\",";
  }
  void open_object(const std::string& name) {
    key(name);
    out_ += '{';
  }
  void close_object() {
    trim_comma();
    out_ += "},";
  }
  void field(const std::string& name, std::uint64_t v) {
    key(name);
    value(v);
  }
  std::string take() {
    trim_comma();
    return std::move(out_);
  }

 private:
  void trim_comma() {
    if (!out_.empty() && out_.back() == ',') out_.pop_back();
  }
  std::string out_;
};

std::string csv_escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string survey_to_json(const SurveyRunResult& result) {
  const Survey& s = result.survey;
  JsonWriter w;
  w.open();

  w.open_object("headline");
  w.field("total", s.total);
  w.field("unresolved", s.unresolved);
  w.field("unsigned", s.unsigned_zones);
  w.field("secured", s.secured);
  w.field("invalid", s.invalid);
  w.field("islands", s.islands);
  w.close_object();

  w.open_object("cds");
  w.field("with_cds", s.with_cds);
  w.field("query_failed", s.cds_query_failed);
  w.field("unsigned_with_cds", s.unsigned_with_cds);
  w.field("unsigned_with_cds_delete", s.unsigned_with_cds_delete);
  w.field("secured_with_cds_delete", s.secured_with_cds_delete);
  w.field("island_with_cds", s.island_with_cds);
  w.field("island_with_cds_delete", s.island_with_cds_delete);
  w.field("island_cds_consistent", s.island_cds_consistent);
  w.field("island_cds_inconsistent", s.island_cds_inconsistent);
  w.field("island_cds_inconsistent_multi_op",
          s.island_cds_inconsistent_multi_op);
  w.field("cds_no_matching_dnskey", s.cds_no_matching_dnskey);
  w.field("cds_invalid_rrsig", s.cds_invalid_rrsig);
  w.close_object();

  w.open_object("funnel");
  for (const auto& [eligibility, count] : s.funnel) {
    w.field(to_string(eligibility), count);
  }
  w.close_object();

  w.open_object("ab_total");
  w.field("with_signal", s.ab_total.with_signal);
  w.field("already_secured", s.ab_total.already_secured);
  w.field("cannot_bootstrap", s.ab_total.cannot_bootstrap);
  w.field("deletion_request", s.ab_total.deletion_request);
  w.field("invalid_dnssec", s.ab_total.invalid_dnssec);
  w.field("potential", s.ab_total.potential);
  w.field("signal_incorrect", s.ab_total.signal_incorrect);
  w.field("signal_correct", s.ab_total.signal_correct);
  w.close_object();

  w.open_object("violations");
  w.field("zone_cut", s.violation_zone_cut);
  w.field("not_under_every_ns", s.violation_not_under_every_ns);
  w.field("chain_invalid", s.violation_chain_invalid);
  w.field("inconsistent", s.violation_inconsistent);
  w.field("mismatch_with_zone", s.violation_mismatch);
  w.close_object();

  w.open_object("ab_by_operator");
  for (const auto& [name, column] : s.ab_by_operator) {
    w.open_object(name);
    w.field("with_signal", column.with_signal);
    w.field("already_secured", column.already_secured);
    w.field("deletion_request", column.deletion_request);
    w.field("invalid_dnssec", column.invalid_dnssec);
    w.field("potential", column.potential);
    w.field("signal_incorrect", column.signal_incorrect);
    w.field("signal_correct", column.signal_correct);
    w.close_object();
  }
  w.close_object();

  w.open_object("operators");
  for (const auto& row : s.operators) {
    if (row.first == kUnknownOperator) continue;
    w.open_object(row.first);
    w.field("domains", row.second.domains);
    w.field("unsigned", row.second.unsigned_zones);
    w.field("secured", row.second.secured);
    w.field("invalid", row.second.invalid);
    w.field("islands", row.second.islands);
    w.field("with_cds", row.second.with_cds);
    w.close_object();
  }
  w.close_object();

  w.open_object("scan");
  w.field("queries", result.engine_stats.queries);
  w.field("sends", result.engine_stats.sends);
  w.field("retries", result.engine_stats.retries);
  w.field("timeouts", result.engine_stats.timeouts);
  w.field("tcp_fallbacks", result.engine_stats.tcp_fallbacks);
  w.field("truncation_loops", result.engine_stats.truncation_loops);
  w.field("fail_fast", result.engine_stats.fail_fast);
  w.field("servfail_cache_hits", result.engine_stats.servfail_cache_hits);
  w.field("budget_denied", result.engine_stats.budget_denied);
  w.field("wasted_sends", result.engine_stats.wasted_sends());
  // Traffic volume and duration are transport-timing facts, not scan facts:
  // they differ between the simulator and a real-socket run of the same
  // seed, so they live in the tools' stdout/bench output, not the report
  // (which must be byte-identical across transports — DESIGN.md §10).
  w.field("endpoints_queried", s.endpoints_queried);
  w.field("endpoints_available", s.endpoints_available);
  w.field("pool_sampled_zones", s.pool_sampled_zones);
  w.close_object();

  w.open_object("scan_quality");
  w.field("complete", s.scan_complete);
  w.field("degraded", s.scan_degraded);
  w.field("not_observed", s.scan_not_observed);
  w.field("unreachable", s.scan_unreachable);
  w.field("probes_failed", s.probes_failed);
  w.field("probes_failed_transient", s.probes_failed_transient);
  w.field("zones_requeued", result.scanner_stats.zones_requeued);
  w.field("zones_recovered", result.scanner_stats.zones_recovered);
  w.field("zones_under_attack", s.zones_under_attack);
  w.close_object();

  w.open_object("key_lifecycle");
  w.field("zones_mid_rollover", s.zones_mid_rollover);
  w.field("zones_broken_rollover", s.zones_broken_rollover);
  w.close_object();

  w.close();
  return w.take();
}

std::string reports_to_csv(const std::vector<ZoneReport>& reports) {
  std::string out =
      "zone,tld,resolved,operator,multi_operator,dnssec,dnssec_reason,"
      "cds_present,cds_delete,cds_consistent,cds_matches_dnskey,"
      "cds_rrsig_valid,cds_query_failed,eligibility,signal_present,ab,"
      "endpoints_queried,endpoints_available,pool_sampled,scan_quality,"
      "failed_probes,scan_attempt,under_attack,key_state\n";
  for (const auto& r : reports) {
    out += csv_escape(r.zone.to_text());
    out += ',';
    out += csv_escape(r.tld.to_text());
    out += ',';
    out += r.resolved ? '1' : '0';
    out += ',';
    out += csv_escape(r.operator_name);
    out += ',';
    out += r.multi_operator ? '1' : '0';
    out += ',';
    out += dnssec::to_string(r.dnssec);
    out += ',';
    out += csv_escape(r.dnssec_reason);
    out += ',';
    out += r.cds.present ? '1' : '0';
    out += ',';
    out += r.cds.delete_request ? '1' : '0';
    out += ',';
    out += r.cds.consistent ? '1' : '0';
    out += ',';
    out += r.cds.matches_dnskey ? '1' : '0';
    out += ',';
    out += r.cds.rrsig_valid ? '1' : '0';
    out += ',';
    out += r.cds.query_failed ? '1' : '0';
    out += ',';
    out += to_string(r.eligibility);
    out += ',';
    out += r.signal_present ? '1' : '0';
    out += ',';
    out += to_string(r.ab);
    out += ',';
    out += std::to_string(r.endpoints_queried);
    out += ',';
    out += std::to_string(r.endpoints_available);
    out += ',';
    out += r.pool_sampled ? '1' : '0';
    out += ',';
    out += to_string(r.scan_quality);
    out += ',';
    out += std::to_string(r.failed_probes);
    out += ',';
    out += std::to_string(r.scan_attempt);
    out += ',';
    // The provenance columns stay at the end on purpose: smoke-test diffs
    // strip trailing columns to compare runs on the measurement columns.
    out += r.under_attack ? '1' : '0';
    out += ',';
    out += to_string(r.key_state);
    out += '\n';
  }
  return out;
}

}  // namespace dnsboot::analysis
