#include "analysis/operator_id.hpp"

#include <algorithm>
#include <set>

#include "base/strings.hpp"

namespace dnsboot::analysis {

OperatorIdentifier::OperatorIdentifier(
    std::map<std::string, std::string> ns_domain_to_operator) {
  for (auto& [suffix, name] : ns_domain_to_operator) add(suffix, name);
}

void OperatorIdentifier::add(const std::string& ns_domain_suffix,
                             const std::string& operator_name) {
  std::string key = ascii_lower(ns_domain_suffix);
  if (key.empty()) return;
  if (key.back() != '.') key += '.';
  suffixes_[key] = operator_name;
}

std::string OperatorIdentifier::identify(const dns::Name& ns) const {
  // Longest matching suffix wins (a white-label alias is more specific than
  // the underlying provider's domain).
  dns::Name walk = ns;
  while (!walk.is_root()) {
    auto it = suffixes_.find(walk.canonical_text());
    if (it != suffixes_.end()) return it->second;
    walk = walk.parent();
  }
  return kUnknownOperator;
}

std::vector<std::string> OperatorIdentifier::identify_all(
    const std::vector<dns::Name>& ns_names) const {
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const auto& ns : ns_names) {
    std::string name = identify(ns);
    if (seen.insert(name).second) out.push_back(name);
  }
  return out;
}

}  // namespace dnsboot::analysis
