// run_survey — the end-to-end measurement pipeline in one call: set up the
// query engine and resolver, scan every target zone, validate and classify
// offline, and aggregate into the paper's tables.
#pragma once

#include "analysis/aggregate.hpp"
#include "resolver/query_engine.hpp"
#include "scanner/scanner.hpp"

namespace dnsboot::analysis {

struct SurveyRunOptions {
  resolver::QueryEngineOptions engine;
  scanner::ScannerOptions scanner;
  bool keep_reports = false;  // retain per-zone reports (memory-heavy)
};

struct SurveyRunResult {
  Survey survey;
  std::vector<ZoneReport> reports;  // only when keep_reports

  scanner::ScannerStats scanner_stats;
  resolver::QueryEngineStats engine_stats;
  net::SimTime simulated_duration = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t bytes_on_wire = 0;

  // Sorted table rows (Tables 1 and 2).
  std::vector<OperatorRow> top_by_domains;
  std::vector<OperatorRow> top_by_cds;
};

SurveyRunResult run_survey(
    net::Transport& network, const resolver::RootHints& hints,
    const std::vector<dns::Name>& targets,
    const std::map<std::string, std::string>& ns_domain_to_operator,
    std::uint32_t now, const SurveyRunOptions& options = {});

}  // namespace dnsboot::analysis
