// run_survey — the end-to-end measurement pipeline in one call: set up the
// query engine and resolver, scan every target zone, validate and classify
// offline, and aggregate into the paper's tables.
#pragma once

#include <memory>

#include "analysis/aggregate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resolver/query_engine.hpp"
#include "scanner/scanner.hpp"

namespace dnsboot::analysis {

struct SurveyRunOptions {
  resolver::QueryEngineOptions engine;
  scanner::ScannerOptions scanner;
  bool keep_reports = false;  // retain per-zone reports (memory-heavy)

  // Optional tracing: threaded into the engine (query spans) and scanner
  // (zone spans) unless they already carry their own tracer, and used by
  // run_survey itself for scan/analysis phase spans. Not owned.
  obs::Tracer* tracer = nullptr;
};

struct SurveyRunResult {
  Survey survey;
  std::vector<ZoneReport> reports;  // only when keep_reports

  // The run's consolidated metrics: run_survey merges the engine's,
  // scanner's and transport's registries in here, and sharded runs merge
  // shard results registry-to-registry (one generic merge instead of the
  // old per-struct operator+= chains). shared_ptr so results stay cheap to
  // move while the stats views below keep pointing at live counters.
  std::shared_ptr<obs::MetricsRegistry> metrics =
      std::make_shared<obs::MetricsRegistry>();
  // Views over `metrics` — same field names the old value-structs had, so
  // report writers and tests read them unchanged.
  scanner::ScannerStats scanner_stats{*metrics};
  resolver::QueryEngineStats engine_stats{*metrics};

  net::SimTime simulated_duration = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t bytes_on_wire = 0;

  // Sorted table rows (Tables 1 and 2).
  std::vector<OperatorRow> top_by_domains;
  std::vector<OperatorRow> top_by_cds;
};

SurveyRunResult run_survey(
    net::Transport& network, const resolver::RootHints& hints,
    const std::vector<dns::Name>& targets,
    const std::map<std::string, std::string>& ns_domain_to_operator,
    std::uint32_t now, const SurveyRunOptions& options = {});

}  // namespace dnsboot::analysis
