// dnsboot-monitor — the continuous longitudinal measurement daemon
// (DESIGN.md §15).
//
// Where dnsboot-survey answers "what is deployed right now", this tool
// answers "how is deployment moving": it builds the same deterministic
// ecosystem from --seed / --scale-denom, arms a scripted bootstrap lifecycle
// (zones sign and publish CDS, registries install DS, some later break a
// rollover or tear DNSSEC down via the RFC 8078 delete sentinel), and then
// re-probes every zone on an adaptive cadence for --sim-days of simulated
// time. Phase transitions are journaled (append = acknowledged, crash-safe),
// periodically compacted into snapshots, and folded incrementally into
// adoption reports:
//
//   dnsboot-monitor --scale-denom 50000 --seed 7 --sim-days 30
//       --chaos mild --state-dir /tmp/mon --snapshot-every 6h
//       --json adoption.json --csv adoption.csv       (one command line)
//
// Restarting after a crash (same flags, same --state-dir) re-simulates the
// identical world from time zero, verifies the regenerated transition stream
// byte-for-byte against the recovered journal, and continues appending where
// the crash cut off — the final journal and reports match an uninterrupted
// run exactly.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "cli.hpp"
#include "dns/name_pool.hpp"
#include "ecosystem/chaos.hpp"
#include "ecosystem/plan.hpp"
#include "kasp/clock.hpp"
#include "longitudinal/lifecycle.hpp"
#include "longitudinal/monitor.hpp"
#include "net/simnet.hpp"
#include "obs/metrics_http.hpp"

using namespace dnsboot;

namespace {

struct CliOptions {
  double scale_denom = 20000;
  std::uint64_t seed = 1;
  bool pathologies = true;
  std::string chaos = "off";
  std::uint64_t chaos_seed = 0xc4a05;

  std::uint64_t sim_days_usec = 30 * cli::kUsecPerDay;  // --sim-days
  std::uint64_t snapshot_every_usec = 0;                // --snapshot-every
  std::uint64_t batch_window_usec = 30 * cli::kUsecPerSecond;
  std::uint64_t max_runtime_usec = 0;  // wall-clock cap on post-run serving
  std::uint32_t stable_probes = 3;
  std::string state_dir;
  std::string csv_path;
  std::string motion = "legacy";
  bool no_lifecycle = false;
  std::uint32_t metrics_port = 0;
  cli::OutputOptions output;
};

cli::FlagParser make_parser(CliOptions* options) {
  cli::FlagParser parser(
      "dnsboot-monitor — continuous longitudinal measurement: re-probe a\n"
      "generated ecosystem for simulated weeks, journal every DNSSEC\n"
      "bootstrapping transition, and emit incremental adoption reports");
  parser.value("--scale-denom", &options->scale_denom,
               "world scale divisor (zones ~ 1/N of the paper's)", 1e-9);
  parser.value("--seed", &options->seed, "world + schedule seed");
  parser.flag("--no-pathologies", &options->pathologies,
              "monitor a misconfiguration-free world", false);
  parser.choice("--chaos", &options->chaos, ecosystem::chaos_preset_names(),
                "inject the deterministic fault schedule");
  parser.value("--chaos-seed", &options->chaos_seed, "fault schedule seed");
  parser.duration("--sim-days", &options->sim_days_usec, cli::kUsecPerDay,
                  "simulated monitoring window — bare number = days, or "
                  "12h/90m");
  parser.duration("--snapshot-every", &options->snapshot_every_usec,
                  cli::kUsecPerMinute,
                  "compacted snapshot cadence in sim time, e.g. 15m or 6h "
                  "(0 = off; needs --state-dir)");
  parser.duration("--batch-window", &options->batch_window_usec,
                  cli::kUsecPerSecond,
                  "coalesce due zones for this long before each batch scan");
  parser.duration("--max-seconds", &options->max_runtime_usec,
                  cli::kUsecPerSecond,
                  "wall-clock cap on serving /metrics after the simulation "
                  "finishes (0 = exit immediately unless --metrics-port)");
  parser.value("--stable-probes", &options->stable_probes,
               "unchanged bootstrapped probes before 'maintained'", 1);
  parser.value("--state-dir", &options->state_dir, "DIR",
               "journal + snapshot directory (enables crash-safe persistence)");
  parser.value("--csv", &options->csv_path, "FILE",
               "write the adoption curve as CSV");
  parser.choice("--motion", &options->motion, {"legacy", "kasp"},
                "world-motion engine: the legacy lifecycle draws or the "
                "RFC 7583 KASP key-lifecycle policy clock");
  parser.flag("--no-lifecycle", &options->no_lifecycle,
              "skip the scripted world motion entirely (static world)");
  parser.value("--metrics-port", &options->metrics_port,
               "serve Prometheus GET /metrics on 127.0.0.1:N (0 = off)");
  cli::OutputFlagSet output_flags;
  output_flags.json_help = "write the adoption report as JSON";
  cli::add_output_flags(parser, &options->output, output_flags);
  return parser;
}

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  cli::FlagParser parser = make_parser(&options);
  if (!parser.parse(argc, argv)) return 2;
  if (parser.help_requested()) return 0;

  // Same derived network seed as dnsboot-survey/-serve, so all three tools
  // construct bit-identical worlds from the same --seed.
  net::SimNetwork network(options.seed ^ 0xd15b007);
  ecosystem::EcosystemConfig config;
  config.seed = options.seed;
  config.scale = 1.0 / options.scale_denom;
  config.inject_pathologies = options.pathologies;
  const ecosystem::EcosystemPlan plan = ecosystem::make_ecosystem_plan(config);
  ecosystem::Ecosystem eco =
      ecosystem::build_shard(network, config, plan, 0, 1);
  if (options.chaos != "off") {
    ecosystem::ChaosOptions chaos_options =
        ecosystem::chaos_preset(options.chaos);
    chaos_options.seed = options.chaos_seed;
    ecosystem::apply_chaos(network, eco, chaos_options);
  }

  // The registry-side world motion uses its own resolver vantage — the same
  // split as reality, where registry CDS scanners and measurement scanners
  // are different hosts.
  resolver::QueryEngine registry_engine(
      network, net::IpAddress::v4({192, 0, 2, 252}), {});
  resolver::DelegationResolver registry_resolver(registry_engine, eco.hints);
  std::unique_ptr<longitudinal::WorldMotion> motion;
  if (!options.no_lifecycle) {
    if (options.motion == "kasp") {
      kasp::KaspOptions kasp_options;
      kasp_options.seed = options.seed;
      kasp_options.horizon = options.sim_days_usec;
      motion = std::make_unique<kasp::PolicyClock>(
          network, registry_engine, registry_resolver, eco, kasp_options);
    } else {
      longitudinal::LifecycleOptions lifecycle_options;
      lifecycle_options.seed = options.seed;
      lifecycle_options.horizon = options.sim_days_usec;
      motion = std::make_unique<longitudinal::LifecycleDriver>(
          network, registry_engine, registry_resolver, eco,
          lifecycle_options);
    }
  }

  longitudinal::MonitorOptions monitor_options;
  monitor_options.seed = options.seed;
  monitor_options.horizon = options.sim_days_usec;
  monitor_options.batch_window = options.batch_window_usec;
  monitor_options.snapshot_every = options.snapshot_every_usec;
  monitor_options.stable_probes = options.stable_probes;
  monitor_options.state_dir = options.state_dir;
  longitudinal::Monitor monitor(network, eco, monitor_options, motion.get());

  Status started = monitor.start();
  if (!started.ok()) {
    std::fprintf(stderr, "dnsboot-monitor: %s\n",
                 started.error().to_string().c_str());
    return 1;
  }

  // Pre-create the NamePool gauges too: after this point the registry's
  // name maps are frozen and a scrape thread may snapshot concurrently.
  dns::NamePool::instance().export_gauges(monitor.metrics());

  obs::MetricsHttpServer metrics_server;
  if (options.metrics_port != 0) {
    const bool up = metrics_server.start(
        static_cast<std::uint16_t>(options.metrics_port),
        [&monitor]() { return monitor.metrics().to_prometheus(); });
    if (!up) {
      std::fprintf(stderr, "dnsboot-monitor: metrics listener failed: %s\n",
                   metrics_server.error().c_str());
      return 1;
    }
    if (!options.output.quiet) {
      std::printf("dnsboot-monitor: /metrics on 127.0.0.1:%u\n",
                  metrics_server.port());
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (!options.output.quiet) {
    std::printf(
        "dnsboot-monitor: %zu zones, %zu %s steps, %.1f sim days"
        "%s%s\n",
        eco.scan_targets.size(), motion ? motion->planned_steps() : 0,
        motion ? std::string(motion->motion_name()).c_str() : "motion",
        static_cast<double>(options.sim_days_usec) /
            static_cast<double>(cli::kUsecPerDay),
        options.chaos != "off" ? (", chaos " + options.chaos).c_str() : "",
        options.state_dir.empty()
            ? ""
            : (", state in " + options.state_dir).c_str());
    std::fflush(stdout);
  }

  monitor.run();
  dns::NamePool::instance().export_gauges(monitor.metrics());

  if (!options.output.quiet) {
    std::printf(
        "dnsboot-monitor: done — %llu probes in %llu batches, "
        "%llu transitions (%zu kinds), journal +%llu/=%llu, %llu snapshots\n",
        static_cast<unsigned long long>(monitor.probes_completed()),
        static_cast<unsigned long long>(monitor.batches_run()),
        static_cast<unsigned long long>(monitor.reporter().transitions()),
        monitor.reporter().distinct_kinds(),
        static_cast<unsigned long long>(monitor.journal_appended()),
        static_cast<unsigned long long>(monitor.journal_replayed()),
        static_cast<unsigned long long>(monitor.snapshots_written()));
    std::fflush(stdout);
  }
  if (monitor.journal_mismatches() > 0) {
    std::fprintf(stderr,
                 "dnsboot-monitor: %llu journal mismatches — the recovered "
                 "journal was not produced by this seed/flags\n",
                 static_cast<unsigned long long>(monitor.journal_mismatches()));
    return 1;
  }

  // Final compacted snapshot: a restart from here replays nothing.
  if (!options.state_dir.empty()) {
    Status snap = monitor.write_snapshot();
    if (!snap.ok()) {
      std::fprintf(stderr, "dnsboot-monitor: snapshot failed: %s\n",
                   snap.error().to_string().c_str());
      return 1;
    }
  }

  bool io_ok = true;
  if (!options.output.json_path.empty()) {
    io_ok &= cli::write_file(options.output.json_path,
                             monitor.reporter().to_json());
  }
  if (!options.csv_path.empty()) {
    io_ok &= cli::write_file(options.csv_path, monitor.reporter().to_csv());
  }
  if (!options.output.metrics_json_path.empty()) {
    io_ok &= cli::write_file(options.output.metrics_json_path,
                             monitor.metrics().to_json());
  }
  if (!io_ok) {
    std::fprintf(stderr, "dnsboot-monitor: failed writing an output file\n");
    return 1;
  }

  // Keep /metrics scrapeable until the wall-clock cap or a signal.
  if (options.metrics_port != 0 && options.max_runtime_usec > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options.max_runtime_usec);
    while (!g_stop.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  metrics_server.stop();
  return 0;
}
