// Shared command-line flag parser for the dnsboot tools (dnsboot-survey,
// dnsboot-lint, dnsboot-serve). One declaration per flag binds a --name to a
// typed target variable; parse() consumes argv, validates, and on any
// problem prints the offending flag plus an auto-generated usage block to
// stderr — the caller exits 2. `--help` prints the same block to stdout.
//
// Header-only on purpose: the tools are single translation units and this
// stays out of the libraries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace dnsboot::cli {

inline constexpr std::uint64_t kUsecPerMilli = 1'000;
inline constexpr std::uint64_t kUsecPerSecond = 1'000'000;
inline constexpr std::uint64_t kUsecPerMinute = 60 * kUsecPerSecond;
inline constexpr std::uint64_t kUsecPerHour = 3'600 * kUsecPerSecond;
inline constexpr std::uint64_t kUsecPerDay = 86'400 * kUsecPerSecond;

// Parse a human duration — "500ms", "90s", "15m", "2h", "30d", or a bare
// number taken as `default_unit_usec` — into microseconds. Fractions work
// ("1.5h"); negatives, junk suffixes, and overflow are rejected.
inline bool parse_duration(const std::string& text,
                           std::uint64_t default_unit_usec,
                           std::uint64_t* out_usec) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0) return false;
  const std::string suffix(end);
  std::uint64_t unit = default_unit_usec;
  if (suffix == "ms") {
    unit = kUsecPerMilli;
  } else if (suffix == "s") {
    unit = kUsecPerSecond;
  } else if (suffix == "m") {
    unit = kUsecPerMinute;
  } else if (suffix == "h") {
    unit = kUsecPerHour;
  } else if (suffix == "d") {
    unit = kUsecPerDay;
  } else if (!suffix.empty()) {
    return false;
  }
  const double usec = value * static_cast<double>(unit);
  if (usec > 9.0e18) return false;  // stays representable in uint64
  *out_usec = static_cast<std::uint64_t>(usec);
  return true;
}

class FlagParser {
 public:
  explicit FlagParser(std::string summary) : summary_(std::move(summary)) {}

  // --name (no value): stores `value` into *target when present.
  FlagParser& flag(const std::string& name, bool* target,
                   const std::string& help, bool value = true) {
    entries_.push_back({name, "", help,
                        [target, value](const std::string&) {
                          *target = value;
                          return true;
                        }});
    return *this;
  }

  FlagParser& value(const std::string& name, std::string* target,
                    const std::string& metavar, const std::string& help) {
    entries_.push_back({name, metavar, help,
                        [target](const std::string& text) {
                          *target = text;
                          return true;
                        }});
    return *this;
  }

  // --name VALUE drawn from a fixed set (e.g. --chaos off|mild|hostile).
  FlagParser& choice(const std::string& name, std::string* target,
                     std::vector<std::string> choices,
                     const std::string& help) {
    std::string metavar;
    for (const std::string& c : choices) {
      if (!metavar.empty()) metavar += '|';
      metavar += c;
    }
    entries_.push_back({name, metavar, help,
                        [target, choices = std::move(choices)](
                            const std::string& text) {
                          for (const std::string& c : choices) {
                            if (text == c) {
                              *target = text;
                              return true;
                            }
                          }
                          return false;
                        }});
    return *this;
  }

  // Numeric flags. `min` is inclusive; values that fail to parse or fall
  // below it are rejected with the usage block.
  FlagParser& value(const std::string& name, double* target,
                    const std::string& help, double min) {
    entries_.push_back({name, "N", help,
                        [target, min](const std::string& text) {
                          char* end = nullptr;
                          double v = std::strtod(text.c_str(), &end);
                          if (end == text.c_str() || *end != '\0' || v < min) {
                            return false;
                          }
                          *target = v;
                          return true;
                        }});
    return *this;
  }

  FlagParser& value(const std::string& name, std::uint64_t* target,
                    const std::string& help, std::uint64_t min = 0) {
    entries_.push_back({name, "N", help,
                        [target, min](const std::string& text) {
                          char* end = nullptr;
                          std::uint64_t v =
                              std::strtoull(text.c_str(), &end, 10);
                          if (end == text.c_str() || *end != '\0' || v < min) {
                            return false;
                          }
                          *target = v;
                          return true;
                        }});
    return *this;
  }

  FlagParser& value(const std::string& name, std::uint32_t* target,
                    const std::string& help, std::uint32_t min = 0) {
    entries_.push_back({name, "N", help,
                        [target, min](const std::string& text) {
                          char* end = nullptr;
                          std::uint64_t v =
                              std::strtoull(text.c_str(), &end, 10);
                          if (end == text.c_str() || *end != '\0' || v < min ||
                              v > UINT32_MAX) {
                            return false;
                          }
                          *target = static_cast<std::uint32_t>(v);
                          return true;
                        }});
    return *this;
  }

  FlagParser& value(const std::string& name, int* target,
                    const std::string& help, int min) {
    entries_.push_back({name, "N", help,
                        [target, min](const std::string& text) {
                          char* end = nullptr;
                          long v = std::strtol(text.c_str(), &end, 10);
                          if (end == text.c_str() || *end != '\0' || v < min ||
                              v > INT32_MAX) {
                            return false;
                          }
                          *target = static_cast<int>(v);
                          return true;
                        }});
    return *this;
  }

  // --name DUR: human duration into *target_usec (microseconds). Bare
  // numbers are taken as `default_unit_usec`, so "--sim-days 30" and
  // "--snapshot-every 15m" both read naturally.
  FlagParser& duration(const std::string& name, std::uint64_t* target_usec,
                       std::uint64_t default_unit_usec,
                       const std::string& help) {
    entries_.push_back(
        {name, "DUR", help,
         [target_usec, default_unit_usec](const std::string& text) {
           return parse_duration(text, default_unit_usec, target_usec);
         }});
    return *this;
  }

  // Accept bare (non ``--``) arguments into *target, e.g. the file list of
  // dnsboot-audit. Without this, a bare argument is a usage error.
  FlagParser& positionals(std::vector<std::string>* target,
                          const std::string& metavar,
                          const std::string& help) {
    positionals_ = target;
    positional_metavar_ = metavar;
    positional_help_ = help;
    return *this;
  }

  // Returns false on any parse problem (after printing the usage block to
  // stderr); the conventional caller response is `return 2`. A bare
  // `--help`/`-h` prints usage to stdout and sets help_requested().
  bool parse(int argc, char** argv) {
    program_ = argc > 0 ? argv[0] : "dnsboot";
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        help_requested_ = true;
        print_usage(stdout);
        return true;
      }
      if (positionals_ != nullptr && arg.rfind("--", 0) != 0) {
        positionals_->push_back(arg);
        continue;
      }
      const Entry* entry = nullptr;
      for (const Entry& candidate : entries_) {
        if (candidate.name == arg) {
          entry = &candidate;
          break;
        }
      }
      if (entry == nullptr) {
        std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
        print_usage(stderr);
        return false;
      }
      std::string text;
      if (!entry->metavar.empty()) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s requires a value\n", arg.c_str());
          print_usage(stderr);
          return false;
        }
        text = argv[++i];
      }
      if (!entry->set(text)) {
        std::fprintf(stderr, "invalid value for %s: '%s'\n", arg.c_str(),
                     text.c_str());
        print_usage(stderr);
        return false;
      }
    }
    return true;
  }

  bool help_requested() const { return help_requested_; }

  void print_usage(std::FILE* out) const {
    std::fprintf(out, "usage: %s [flags]%s%s\n%s\n\n", program_.c_str(),
                 positionals_ != nullptr ? " " : "",
                 positionals_ != nullptr ? positional_metavar_.c_str() : "",
                 summary_.c_str());
    if (positionals_ != nullptr) {
      std::fprintf(out, "  %s  %s\n\n", positional_metavar_.c_str(),
                   positional_help_.c_str());
    }
    std::fprintf(out, "flags:\n");
    std::size_t width = 0;
    for (const Entry& entry : entries_) {
      std::size_t w = entry.name.size() +
                      (entry.metavar.empty() ? 0 : entry.metavar.size() + 1);
      if (w > width) width = w;
    }
    for (const Entry& entry : entries_) {
      std::string left = entry.name;
      if (!entry.metavar.empty()) {
        left += ' ';
        left += entry.metavar;
      }
      std::fprintf(out, "  %-*s  %s\n", static_cast<int>(width), left.c_str(),
                   entry.help.c_str());
    }
  }

 private:
  struct Entry {
    std::string name;
    std::string metavar;  // empty for presence flags
    std::string help;
    std::function<bool(const std::string&)> set;
  };

  std::string summary_;
  std::string program_;
  std::vector<Entry> entries_;
  std::vector<std::string>* positionals_ = nullptr;
  std::string positional_metavar_;
  std::string positional_help_;
  bool help_requested_ = false;
};

// The output surface every tool shares (DESIGN.md §11): one struct, one
// flag-declaration helper, so `--json`, `--metrics-json`, `--trace` and
// `--quiet` mean the same thing in dnsboot-survey, dnsboot-serve and
// dnsboot-lint instead of each main growing its own variants.
struct OutputOptions {
  std::string json_path;          // --json FILE: the tool's primary report
  std::string metrics_json_path;  // --metrics-json FILE: registry dump
  std::string trace_path;         // --trace FILE: sampled spans as JSONL
  bool quiet = false;             // --quiet: suppress progress output
};

// Which of the shared flags a tool exposes (dnsboot-serve has no report
// JSON; only dnsboot-survey traces) and the tool-specific help strings.
struct OutputFlagSet {
  bool with_json = true;
  bool with_trace = false;
  std::string json_help = "write the report as JSON";
  std::string quiet_help = "suppress progress output";
};

inline void add_output_flags(FlagParser& parser, OutputOptions* out,
                             const OutputFlagSet& set = {}) {
  if (set.with_json) {
    parser.value("--json", &out->json_path, "FILE", set.json_help);
  }
  parser.value("--metrics-json", &out->metrics_json_path, "FILE",
               "write the metrics registry as one-line JSON");
  if (set.with_trace) {
    parser.value("--trace", &out->trace_path, "FILE",
                 "write sampled trace spans as JSONL");
  }
  parser.flag("--quiet", &out->quiet, set.quiet_help);
}

// Shared "write whole file or complain" helper for the tools' outputs.
inline bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace dnsboot::cli
