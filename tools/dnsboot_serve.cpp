// dnsboot-serve — serve a generated ecosystem authoritatively over real
// UDP/TCP sockets (DESIGN.md §10).
//
// The ecosystem is built from --seed / --scale-denom exactly as
// dnsboot-survey builds it, each nameserver address is mapped to a
// sequential loopback port above --listen, and every AuthServer — with its
// behaviour profile and fault gates intact — is re-attached to a
// WireTransport. A dnsboot-survey --wire run started with the same seed
// derives the identical map and scans this process over the kernel's
// loopback stack:
//
//   dnsboot-serve  --scale-denom 20000 --seed 7 --listen 127.0.0.1:5300 &
//   dnsboot-survey --scale-denom 20000 --seed 7 --wire 127.0.0.1:5300
//
// With --workers N, N threads each build their own world copy and bind the
// same ports with SO_REUSEPORT (share-nothing: the kernel spreads flows, no
// locks anywhere). --chaos injects the deterministic server-side fault
// schedule (slow/flapping/rate-limited servers); link-level faults live in
// the simulator and do not apply to real sockets.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "ecosystem/chaos.hpp"
#include "ecosystem/plan.hpp"
#include "net/simnet.hpp"
#include "net/wire/wire_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_http.hpp"
#include "server/auth_server.hpp"

using namespace dnsboot;

namespace {

struct CliOptions {
  double scale_denom = 20000;
  std::uint64_t seed = 1;
  std::string listen = "127.0.0.1:5300";
  std::size_t workers = 1;
  bool pathologies = true;
  cli::OutputOptions output;
  std::string chaos = "off";
  std::uint64_t chaos_seed = 0xc4a05;
  std::uint64_t max_runtime_usec = 0;  // 0 = serve until SIGINT/SIGTERM
  std::uint32_t metrics_port = 0;  // 0 = no /metrics listener
};

cli::FlagParser make_parser(CliOptions* options) {
  cli::FlagParser parser(
      "dnsboot-serve — serve a generated ecosystem authoritatively on real\n"
      "sockets; scan it with dnsboot-survey --wire and the same --seed");
  parser.value("--scale-denom", &options->scale_denom,
               "world scale divisor (zones ~ 1/N of the paper's)", 1e-9);
  parser.value("--seed", &options->seed, "ecosystem seed");
  parser.value("--listen", &options->listen, "HOST:PORT",
               "base endpoint; nameserver N serves at PORT+N");
  parser.value("--workers", &options->workers,
               "SO_REUSEPORT worker threads, one world copy each", 1);
  parser.flag("--no-pathologies", &options->pathologies,
              "serve a misconfiguration-free world", false);
  cli::OutputFlagSet output_flags;
  output_flags.with_json = false;  // the serve "report" IS the metrics dump
  cli::add_output_flags(parser, &options->output, output_flags);
  // Same preset registry as dnsboot-survey; over real sockets only the
  // server-side pieces apply (fault gates + defense token buckets), but the
  // accepted names must match so the two tools pair up 1:1.
  parser.choice("--chaos", &options->chaos, ecosystem::chaos_preset_names(),
                "inject the server-side fault schedule");
  parser.value("--chaos-seed", &options->chaos_seed, "fault schedule seed");
  parser.duration("--max-seconds", &options->max_runtime_usec,
                  cli::kUsecPerSecond,
                  "exit after this long — bare number = seconds, or 90s/15m/2h "
                  "(0 = until SIGINT)");
  parser.value("--metrics-port", &options->metrics_port,
               "serve Prometheus GET /metrics on 127.0.0.1:N (0 = off)");
  return parser;
}

struct Worker {
  // The builder wires servers onto a throwaway simulator; both it and the
  // ecosystem stay alive for the zones and fault state the wire handlers
  // reference.
  std::unique_ptr<net::SimNetwork> buildnet;
  std::shared_ptr<ecosystem::Ecosystem> eco;
  std::unique_ptr<net::WireTransport> transport;
  std::thread thread;
};

// Signal handling: stop() is an atomic store plus an eventfd write, both
// async-signal-safe. The pointer list is finalized before the handler is
// installed.
std::vector<net::WireTransport*> g_transports;
std::atomic<bool> g_stop{false};

void handle_signal(int) {
  g_stop.store(true);
  for (net::WireTransport* transport : g_transports) transport->stop();
}

// Build one worker's world and bind its sockets. Returns false (with
// `error` set) when anything fails; safe to call concurrently. Workers stay
// share-nothing on purpose — AuthServer fault gates, token buckets, and
// metrics are mutable per-worker state, and wire scale is bounded by port
// space long before world copies dominate memory — but the immutable
// EcosystemPlan is computed once and read by every concurrent build.
bool setup_worker(const CliOptions& options,
                  const ecosystem::EcosystemConfig& config,
                  const ecosystem::EcosystemPlan& plan, Worker* worker,
                  std::string* error) {
  // Same derived network seed as dnsboot-survey's build (shard 0 of 1 passes
  // the base through unchanged), so both processes construct bit-identical
  // worlds even if the builder ever draws from the network.
  worker->buildnet =
      std::make_unique<net::SimNetwork>(options.seed ^ 0xd15b007);
  worker->eco = std::make_shared<ecosystem::Ecosystem>(
      ecosystem::build_shard(*worker->buildnet, config, plan, 0, 1));
  if (options.chaos != "off") {
    ecosystem::ChaosOptions chaos_options =
        ecosystem::chaos_preset(options.chaos);
    chaos_options.seed = options.chaos_seed;
    ecosystem::apply_chaos(*worker->buildnet, *worker->eco, chaos_options);
  }

  auto base = net::parse_endpoint(options.listen);
  if (!base) {
    *error = "--listen requires HOST:PORT, got '" + options.listen + "'";
    return false;
  }
  net::WireAddressMap map(*base);
  for (const auto& server : worker->eco->servers) {
    for (const auto& address : server->addresses()) {
      if (!map.add(address)) {
        *error = "world needs " + std::to_string(map.size()) +
                 " ports above " + std::to_string(base->port) +
                 "; pick a lower --listen port or a smaller scale";
        return false;
      }
    }
  }

  net::WireTransportOptions transport_options;
  transport_options.reuse_port = options.workers > 1;
  worker->transport =
      std::make_unique<net::WireTransport>(map, transport_options);
  for (const auto& server : worker->eco->servers) {
    for (const auto& address : server->addresses()) {
      server->attach(*worker->transport, address);
    }
  }
  if (!worker->transport->error().empty()) {
    *error = "bind failed: " + worker->transport->error();
    return false;
  }
  return true;
}

// One merged snapshot of every worker's observable state: the wire
// transport's traffic counters plus each AuthServer's request/rcode
// counters. Safe to call from the scrape thread while workers serve —
// registry reads are relaxed-atomic and all metric creation happened at
// construction time (DESIGN.md §11).
obs::MetricsRegistry collect_metrics(const std::vector<Worker>& workers) {
  obs::MetricsRegistry merged;
  for (const Worker& worker : workers) {
    if (const obs::MetricsRegistry* m = worker.transport->metrics_registry()) {
      merged.merge(*m);
    }
    for (const auto& server : worker.eco->servers) {
      merged.merge(server->metrics());
    }
  }
  return merged;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  cli::FlagParser parser = make_parser(&options);
  if (!parser.parse(argc, argv)) return 2;
  if (parser.help_requested()) return 0;

  std::vector<Worker> workers(options.workers);
  std::mutex error_mutex;
  std::string first_error;
  std::atomic<std::size_t> failures{0};

  // Every worker builds its own identical world copy (the builds are
  // deterministic in --seed) and binds the same ports via SO_REUSEPORT, so
  // the serving threads share no mutable state at all. Only the plan — the
  // immutable half of world construction — is shared across the builds.
  ecosystem::EcosystemConfig config;
  config.seed = options.seed;
  config.scale = 1.0 / options.scale_denom;
  config.inject_pathologies = options.pathologies;
  const ecosystem::EcosystemPlan plan = ecosystem::make_ecosystem_plan(config);
  {
    std::vector<std::thread> builders;
    builders.reserve(workers.size());
    for (Worker& worker : workers) {
      builders.emplace_back([&options, &config, &plan, &worker, &error_mutex,
                             &first_error, &failures] {
        std::string error;
        if (!setup_worker(options, config, plan, &worker, &error)) {
          failures.fetch_add(1);
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error.empty()) first_error = std::move(error);
        }
      });
    }
    for (std::thread& thread : builders) thread.join();
  }
  if (failures.load() != 0) {
    std::fprintf(stderr, "dnsboot-serve: %s\n", first_error.c_str());
    return 1;
  }

  const net::WireAddressMap& map = workers[0].transport->address_map();
  if (!options.output.quiet) {
    std::printf(
        "dnsboot-serve: %zu zones on %zu servers, %zu endpoints at "
        "%s..%u, %zu worker(s)%s\n",
        workers[0].eco->truth.size(), workers[0].eco->servers.size(),
        map.size(), map.base().to_text().c_str(),
        static_cast<unsigned>(map.base().port + map.size() - 1),
        workers.size(),
        options.chaos != "off" ? (", chaos " + options.chaos).c_str() : "");
  }

  for (Worker& worker : workers) {
    g_transports.push_back(worker.transport.get());
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  for (Worker& worker : workers) {
    worker.thread =
        std::thread([&worker] { worker.transport->run_forever(); });
  }

  obs::MetricsHttpServer metrics_server;
  if (options.metrics_port != 0) {
    if (!metrics_server.start(
            static_cast<std::uint16_t>(options.metrics_port),
            [&workers] { return collect_metrics(workers).to_prometheus(); })) {
      std::fprintf(stderr, "dnsboot-serve: metrics listener: %s\n",
                   metrics_server.error().c_str());
      handle_signal(0);
      for (Worker& worker : workers) worker.thread.join();
      return 1;
    }
    std::printf("dnsboot-serve: metrics at http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(metrics_server.port()));
  }

  // Scripts wait for this line before starting the survey.
  std::printf("dnsboot-serve: ready\n");
  std::fflush(stdout);

  const auto started = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (options.max_runtime_usec > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::microseconds(options.max_runtime_usec)) {
      handle_signal(0);
    }
  }
  for (Worker& worker : workers) worker.thread.join();
  metrics_server.stop();

  // Final registry dump — every exit path (SIGINT, SIGTERM, --max-seconds)
  // funnels through the stop flag to here, so the last scrape's worth of
  // counters is never lost with the process.
  const obs::MetricsRegistry final_metrics = collect_metrics(workers);
  if (!options.output.metrics_json_path.empty()) {
    if (!cli::write_file(options.output.metrics_json_path,
                         final_metrics.to_json())) {
      std::fprintf(stderr, "dnsboot-serve: cannot write %s\n",
                   options.output.metrics_json_path.c_str());
      return 1;
    }
    if (!options.output.quiet) {
      std::printf("wrote %s\n", options.output.metrics_json_path.c_str());
    }
  }
  if (!options.output.quiet) {
    std::printf(
        "dnsboot-serve: done, %llu datagrams in, %llu out, %llu queries "
        "handled, %llu scrapes\n",
        static_cast<unsigned long long>(
            final_metrics.counter_value("dnsboot_wire_datagrams_delivered")),
        static_cast<unsigned long long>(
            final_metrics.counter_value("dnsboot_wire_datagrams_sent")),
        static_cast<unsigned long long>(
            final_metrics.counter_value("dnsboot_server_queries")),
        static_cast<unsigned long long>(metrics_server.scrapes()));
  }
  return 0;
}
